"""Classical graph reordering baselines.

These are the pre-existing reorderings the related-work section surveys
(degree sorting, BFS/Cuthill–McKee bandwidth reduction, random relabelling).
None of them targets N:M patterns — the ablation benchmarks use them to show
that generic locality-oriented reordering does not deliver V:N:M conformity.
"""

from __future__ import annotations

import numpy as np

from ..core.permutation import Permutation
from ..graphs.graph import Graph

__all__ = ["degree_sort_order", "bfs_order", "rcm_order", "random_order"]


def degree_sort_order(graph: Graph, *, descending: bool = True) -> Permutation:
    """Sort vertices by degree (hubs first by default)."""
    deg = graph.degrees()
    key = -deg if descending else deg
    return Permutation(np.argsort(key, kind="stable").astype(np.int64))


def bfs_order(graph: Graph, *, source: int = 0) -> Permutation:
    """Breadth-first visitation order; unreached vertices append at the end."""
    csr = graph.csr()
    indptr, indices = csr.indptr, csr.indices
    n = graph.n
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    for start in [source] + list(range(n)):
        if visited[start]:
            continue
        visited[start] = True
        queue = [start]
        while queue:
            v = queue.pop(0)
            order.append(v)
            nbrs = indices[indptr[v] : indptr[v + 1]]
            fresh = nbrs[~visited[nbrs]]
            visited[fresh] = True
            queue.extend(int(x) for x in np.sort(fresh))
    return Permutation(np.array(order, dtype=np.int64))


def rcm_order(graph: Graph) -> Permutation:
    """Reverse Cuthill–McKee: BFS from a low-degree root, neighbours visited
    in increasing-degree order, then the whole order reversed — the classic
    bandwidth-minimizing reordering."""
    csr = graph.csr()
    indptr, indices = csr.indptr, csr.indices
    deg = graph.degrees()
    n = graph.n
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    roots = np.argsort(deg, kind="stable")
    for root in roots:
        if visited[root]:
            continue
        visited[root] = True
        queue = [int(root)]
        while queue:
            v = queue.pop(0)
            order.append(v)
            nbrs = indices[indptr[v] : indptr[v + 1]]
            fresh = nbrs[~visited[nbrs]]
            visited[fresh] = True
            queue.extend(int(x) for x in fresh[np.argsort(deg[fresh], kind="stable")])
    return Permutation(np.array(order[::-1], dtype=np.int64))


def random_order(graph: Graph, rng: np.random.Generator) -> Permutation:
    """A uniformly random vertex relabelling (the null baseline)."""
    return Permutation.random(graph.n, rng)
