"""Comparison baselines: Jigsaw column reordering and classical orderings."""

from .classical import bfs_order, degree_sort_order, random_order, rcm_order
from .jigsaw import JigsawResult, jigsaw_column_reorder

__all__ = [
    "degree_sort_order",
    "bfs_order",
    "rcm_order",
    "random_order",
    "JigsawResult",
    "jigsaw_column_reorder",
]
