"""Jigsaw-style column-only matrix reordering (the paper's closest comparator).

Jigsaw [60] reorders only the *columns* of the adjacency matrix into 2:4
form.  Because rows are untouched, the result is generally **asymmetric** —
the property the paper criticizes: symmetry-dependent graph algorithms
(spectral partitioning, MST, isomorphism tests) can no longer run on the
reordered matrix.  This re-implementation uses a greedy first-fit packing:
columns are assigned to M-wide groups so that no row in a group exceeds N
non-zeros, falling back to the least-loaded group when no group fits.
It supports only the basic N:M patterns (Jigsaw's published scope is 2:4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bitmatrix import BitMatrix
from ..core.patterns import NMPattern
from ..core.permutation import Permutation
from ..core.scores import total_pscore

__all__ = ["JigsawResult", "jigsaw_column_reorder"]


@dataclass
class JigsawResult:
    """Column permutation and resulting conformity statistics."""

    column_permutation: Permutation
    matrix: BitMatrix
    initial_invalid_vectors: int
    final_invalid_vectors: int

    @property
    def improvement_rate(self) -> float:
        if self.initial_invalid_vectors == 0:
            return 1.0 if self.final_invalid_vectors == 0 else 0.0
        return (self.initial_invalid_vectors - self.final_invalid_vectors) / self.initial_invalid_vectors


def jigsaw_column_reorder(bm: BitMatrix, pattern: NMPattern) -> JigsawResult:
    """Greedy column packing into N:M-conforming segments.

    Columns are taken in decreasing-population order and placed into the
    first segment group where adding them keeps every row within the N
    budget; if none fits, the group whose violation increase is smallest
    takes it.  Rows are never permuted, so symmetry is destroyed.
    """
    n_rows, n_cols = bm.shape
    m, n = pattern.m, pattern.n
    init = total_pscore(bm, pattern)
    n_groups = (n_cols + m - 1) // m
    cols = [bm.get_column(j) for j in range(n_cols)]
    pop = np.array([c.sum() for c in cols])
    order = np.argsort(-pop, kind="stable")

    group_counts = np.zeros((n_groups, n_rows), dtype=np.int16)
    group_fill = np.zeros(n_groups, dtype=np.int64)
    assignment = np.empty(n_cols, dtype=np.int64)
    capacity = np.full(n_groups, m, dtype=np.int64)
    capacity[-1] = n_cols - m * (n_groups - 1)

    for j in order:
        bits = cols[j].astype(np.int16)
        open_groups = np.nonzero(group_fill < capacity)[0]
        # Violations each open group would gain by absorbing this column.
        deltas = np.empty(open_groups.size, dtype=np.int64)
        for idx, grp in enumerate(open_groups):
            after = group_counts[grp] + bits
            deltas[idx] = int((after > n).sum() - (group_counts[grp] > n).sum())
        best = open_groups[int(np.argmin(deltas))]
        assignment[j] = best
        group_counts[best] += bits
        group_fill[best] += 1

    # Materialize: columns of each group in ascending original id.
    new_order = np.empty(n_cols, dtype=np.int64)
    pos = 0
    for grp in range(n_groups):
        members = np.sort(np.nonzero(assignment == grp)[0])
        new_order[pos : pos + members.size] = members
        pos += members.size
    perm = Permutation(new_order)
    reordered = bm.permute_columns(new_order)
    return JigsawResult(perm, reordered, init, total_pscore(reordered, pattern))
