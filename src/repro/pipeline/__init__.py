"""The preprocess → cache → serve pipeline (paper §4.4 as a subsystem).

* :mod:`repro.pipeline.registry` — pluggable backend registry; the single
  dispatch point for every SpMM call site (kernels, device, GNN layers).
* :mod:`repro.pipeline.preprocess` — declarative offline preprocessing:
  pattern autoselect → reordering → hybrid split → compression, with batch
  mode over the process pool.
* :mod:`repro.pipeline.cache` — content-addressed artifact cache so the
  reorder search runs once per (graph, plan).
* :mod:`repro.pipeline.serving` — the permute-in / SpMM / permute-back
  request cycle, consumable by :class:`repro.gnn.layers.Aggregator`.
"""

from .cache import ArtifactCache, CacheStats, adjacency_fingerprint, cache_key
from .preprocess import PreprocessPlan, PreprocessResult, preprocess, preprocess_many
from .registry import (
    Backend,
    available_backends,
    backend_for,
    compress,
    dispatch_spmm,
    get_backend,
    model_spmm_time,
    register_backend,
    unregister_backend,
)
from .serving import ServingSession

__all__ = [
    "Backend",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "backend_for",
    "available_backends",
    "dispatch_spmm",
    "model_spmm_time",
    "compress",
    "PreprocessPlan",
    "PreprocessResult",
    "preprocess",
    "preprocess_many",
    "ArtifactCache",
    "CacheStats",
    "cache_key",
    "adjacency_fingerprint",
    "ServingSession",
]
