"""The preprocess → cache → serve pipeline (paper §4.4 as a subsystem).

* :mod:`repro.pipeline.registry` — pluggable backend registry; the single
  dispatch point for every SpMM call site (kernels, device, GNN layers),
  now with per-backend graceful-degradation ``fallbacks`` chains.
* :mod:`repro.pipeline.preprocess` — declarative offline preprocessing:
  pattern autoselect → reordering → hybrid split → compression, with batch
  mode over the process pool.
* :mod:`repro.pipeline.cache` — content-addressed artifact cache so the
  reorder search runs once per (graph, plan); checksummed, atomically
  written, with corrupt-entry quarantine.
* :mod:`repro.pipeline.serving` — the permute-in / SpMM / permute-back
  request cycle, consumable by :class:`repro.gnn.layers.Aggregator`, with
  retry/backoff/deadline and backend fallback.
* :mod:`repro.pipeline.resilience` — the shared error taxonomy
  (:class:`PipelineError` and friends) and :class:`RetryPolicy`.
* :mod:`repro.pipeline.guard` — proactive serving guards: per-backend
  circuit breakers (:class:`BreakerBoard`, consulted by ``run_kernel``)
  and :class:`AdmissionPolicy` load shedding.
* :mod:`repro.pipeline.faults` — deterministic fault injection
  (:class:`FaultPlan` + :func:`inject`) for testing every recovery path,
  plus the seeded chaos harness (:class:`ChaosSchedule` +
  :class:`ChaosInvariants`).
* :mod:`repro.pipeline.sharded` — the sharded serving fabric: v-aligned
  row partitioning of one preprocessed operand into per-shard cached
  artefacts (:func:`build_shards`) and the fan-out/merge
  :class:`ShardRouter` with replica failover, hot-shard replication, and
  online rebalance.
* :mod:`repro.pipeline.procshard` — the router's ``executor="process"``
  back-end: one supervised, fork-spawned :class:`ProcessShardWorker` per
  shard replica, serving over zero-copy shared-memory rings so GIL-bound
  shards run truly in parallel and a killed worker costs one failover.
"""

from .cache import (
    ArtifactCache,
    CacheStats,
    adjacency_fingerprint,
    cache_key,
    shard_cache_key,
)
from .faults import (
    ChaosInvariants,
    ChaosSchedule,
    FaultEvent,
    FaultPlan,
    InjectedFault,
    inject,
)
from .guard import (
    AdmissionPolicy,
    BreakerBoard,
    BreakerConfig,
    CircuitBreaker,
    active_breakers,
    breaker_scope,
    disable_breakers,
    enable_breakers,
)
from .preprocess import PreprocessPlan, PreprocessResult, preprocess, preprocess_many
from .registry import (
    Backend,
    available_backends,
    backend_for,
    compress,
    degrade,
    densify,
    dispatch_spmm,
    fallback_chain,
    get_backend,
    model_spmm_time,
    register_backend,
    unregister_backend,
)
from .resilience import (
    ArtifactCorruptError,
    BackendExecutionError,
    CircuitOpenError,
    DeadlineExceeded,
    DowngradeEvent,
    OverloadError,
    PipelineError,
    PreprocessError,
    ResilienceStats,
    RetryPolicy,
    WorkerCrashError,
)
from .procshard import ProcessShardWorker
from .serving import ServingSession
from .sharded import (
    ShardRouter,
    ShardSet,
    ShardSpec,
    build_shards,
    shard_result,
)

__all__ = [
    "Backend",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "backend_for",
    "available_backends",
    "dispatch_spmm",
    "model_spmm_time",
    "compress",
    "densify",
    "degrade",
    "fallback_chain",
    "PreprocessPlan",
    "PreprocessResult",
    "preprocess",
    "preprocess_many",
    "ArtifactCache",
    "CacheStats",
    "cache_key",
    "shard_cache_key",
    "adjacency_fingerprint",
    "ServingSession",
    "ProcessShardWorker",
    "ShardSpec",
    "ShardSet",
    "ShardRouter",
    "build_shards",
    "shard_result",
    "PipelineError",
    "PreprocessError",
    "ArtifactCorruptError",
    "BackendExecutionError",
    "CircuitOpenError",
    "OverloadError",
    "WorkerCrashError",
    "DeadlineExceeded",
    "RetryPolicy",
    "DowngradeEvent",
    "ResilienceStats",
    "BreakerConfig",
    "CircuitBreaker",
    "BreakerBoard",
    "AdmissionPolicy",
    "active_breakers",
    "enable_breakers",
    "disable_breakers",
    "breaker_scope",
    "FaultPlan",
    "FaultEvent",
    "InjectedFault",
    "ChaosSchedule",
    "ChaosInvariants",
    "inject",
]
