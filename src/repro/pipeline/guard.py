"""Proactive serving guards: circuit breakers and admission control.

PR 2 made the pipeline *reactively* fault-tolerant — a failing backend is
retried and downgraded on every single request, and an overloaded queue
grows until latency is unbounded.  This module makes the fault story
*proactive* (HC-SpMM's "always have a correct slower kernel behind the
fast one" argued into a steady state, and BOBA's shed-what-you-cannot-
finish framing applied to serving):

* **Circuit breakers** (:class:`CircuitBreaker`, one per backend, grouped
  in a :class:`BreakerBoard`): after ``failure_threshold`` *consecutive*
  kernel failures a backend's breaker trips ``closed → open`` and
  :func:`repro.pipeline.registry.run_kernel` rejects its calls instantly
  with :class:`~repro.pipeline.resilience.CircuitOpenError` — the
  downgrade ladder skips the backend instead of re-failing per request.
  After ``cooldown`` seconds the breaker admits exactly one *probe*
  (``half_open``); a probe success heals it back to ``closed``, a probe
  failure re-opens it for another cooldown.

* **Admission control** (:class:`AdmissionPolicy`): a bounded queue depth
  and a deadline check driven by the live p95 of ``spmm_latency_seconds``
  — a request that cannot be finished in time is rejected *at the door*
  with :class:`~repro.pipeline.resilience.OverloadError` instead of
  queueing to death (consulted by
  :class:`~repro.perf.batching.MicroBatcher`).

The process-wide board is **off by default**: ``run_kernel`` pays one
``is None`` test per call until :func:`enable_breakers` (or the
``REPRO_BREAKERS=1`` environment variable, or ``repro serve --breakers``)
installs one.  Tests scope a board with :func:`breaker_scope`, usually
with an injected clock so cooldowns are deterministic.

State transitions flow into observability: a ``breaker_state`` gauge per
backend (0 closed / 1 half-open / 2 open), ``breaker_transitions_total``
and ``breaker_open_skips_total`` counters, and ``breaker.transition``
events.  See ``docs/resilience.md`` for the operator's view.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

from ..obs import events as obs_events
from ..obs.metrics import default_registry
from .resilience import CircuitOpenError, OverloadError

__all__ = [
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "BreakerConfig",
    "CircuitBreaker",
    "BreakerBoard",
    "AdmissionPolicy",
    "active_breakers",
    "enable_breakers",
    "disable_breakers",
    "breaker_scope",
]

logger = logging.getLogger("repro.pipeline.guard")

STATE_CLOSED = "closed"
STATE_HALF_OPEN = "half_open"
STATE_OPEN = "open"

# Gauge encoding of the state machine (exported as ``breaker_state``).
STATE_VALUES = {STATE_CLOSED: 0.0, STATE_HALF_OPEN: 1.0, STATE_OPEN: 2.0}


def _env_number(name: str, cast, default):
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        value = cast(raw)
    except ValueError:
        logger.warning("ignoring malformed %s=%r; using %r", name, raw, default)
        return default
    if value <= 0:
        logger.warning("ignoring non-positive %s=%r; using %r", name, raw, default)
        return default
    return value


@dataclass(frozen=True)
class BreakerConfig:
    """Knobs for one breaker: trip threshold and cooldown before a probe.

    ``failure_threshold`` is the number of *consecutive* kernel failures
    that trips the breaker (a single success resets the count — a flaky
    backend that still mostly works is retried, not banned).  ``cooldown``
    is how long an open breaker rejects calls before admitting one
    half-open probe.  ``probe_timeout`` bounds how long a half-open probe
    may stay unresolved before another probe is admitted (a probe whose
    caller vanished must not wedge the breaker half-open forever).
    """

    failure_threshold: int = 5
    cooldown: float = 5.0
    probe_timeout: float = 30.0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown <= 0 or self.probe_timeout <= 0:
            raise ValueError("cooldown and probe_timeout must be positive")

    @classmethod
    def from_env(cls, failure_threshold: int | None = None,
                 cooldown: float | None = None) -> "BreakerConfig":
        """Defaults overridable by ``REPRO_BREAKER_THRESHOLD`` /
        ``REPRO_BREAKER_COOLDOWN``; explicit arguments win over both."""
        if failure_threshold is None:
            failure_threshold = _env_number("REPRO_BREAKER_THRESHOLD", int,
                                            cls.failure_threshold)
        if cooldown is None:
            cooldown = _env_number("REPRO_BREAKER_COOLDOWN", float, cls.cooldown)
        return cls(failure_threshold=failure_threshold, cooldown=cooldown)


class CircuitBreaker:
    """closed → open → half-open state machine guarding one backend.

    Thread-safe; every transition updates the ``breaker_state`` gauge and
    emits a ``breaker.transition`` event.  ``clock`` is injectable so
    tests drive cooldowns deterministically.
    """

    __slots__ = (
        "name", "config", "_clock", "_lock", "_metrics", "state",
        "consecutive_failures", "opened_at", "opens", "_probe_started",
    )

    def __init__(self, name: str, config: BreakerConfig | None = None, *,
                 clock: Callable[[], float] = time.monotonic, metrics=None):
        self.name = name
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        self._metrics = metrics
        self.state = STATE_CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.opens = 0  # lifetime count of closed/half-open → open trips
        self._probe_started: float | None = None

    # -- the guard consulted by run_kernel ---------------------------------
    def before_call(self) -> None:
        """Admit or reject one kernel call; raises :class:`CircuitOpenError`.

        Closed: always admitted.  Open: rejected until the cooldown
        expires, then the breaker turns half-open and admits one probe.
        Half-open: only the single in-flight probe is admitted; concurrent
        calls are rejected (they would all hammer a backend that just
        proved itself broken).
        """
        with self._lock:
            if self.state == STATE_CLOSED:
                return
            now = self._clock()
            if self.state == STATE_OPEN:
                opened = now if self.opened_at is None else self.opened_at
                remaining = self.config.cooldown - (now - opened)
                if remaining > 0:
                    self._count_skip()
                    raise CircuitOpenError(
                        f"circuit breaker for backend {self.name!r} is open "
                        f"({self.consecutive_failures} consecutive failure(s)); "
                        f"probe admitted in {remaining:.3f}s",
                        backend=self.name, state=STATE_OPEN, retry_after=remaining,
                    )
                self._transition(STATE_HALF_OPEN)
            # Half-open: admit one probe at a time, reclaiming a probe slot
            # whose caller never reported back.
            if (self._probe_started is not None
                    and now - self._probe_started < self.config.probe_timeout):
                self._count_skip()
                raise CircuitOpenError(
                    f"circuit breaker for backend {self.name!r} is half-open "
                    f"with a probe already in flight",
                    backend=self.name, state=STATE_HALF_OPEN, retry_after=0.0,
                )
            self._probe_started = now

    def record_success(self) -> None:
        with self._lock:
            self.consecutive_failures = 0
            self._probe_started = None
            if self.state != STATE_CLOSED:
                self._transition(STATE_CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._probe_started = None
            self.consecutive_failures += 1
            if self.state == STATE_HALF_OPEN:
                self._trip()  # the probe failed: straight back to open
            elif (self.state == STATE_CLOSED
                    and self.consecutive_failures >= self.config.failure_threshold):
                self._trip()

    # -- introspection -----------------------------------------------------
    def would_reject(self) -> bool:
        """Whether a call right now would be skipped (open, cooling down).

        The downgrade ladder uses this to step over an open rung without
        raising; a half-open breaker is *not* a rejection — the ladder is
        exactly the probe traffic that can heal it.
        """
        with self._lock:
            if self.state != STATE_OPEN:
                return False
            now = self._clock()
            opened = now if self.opened_at is None else self.opened_at
            return (now - opened) < self.config.cooldown

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "opens": self.opens,
            }

    # -- internals (call with the lock held) -------------------------------
    def _trip(self) -> None:
        self.opened_at = self._clock()
        self.opens += 1
        self._transition(STATE_OPEN)

    def _transition(self, new: str) -> None:
        old, self.state = self.state, new
        if self._metrics is not None:
            self._metrics.gauge(
                "breaker_state",
                help="circuit breaker state per backend (0 closed, 1 half-open, 2 open)",
                backend=self.name,
            ).set(STATE_VALUES[new])
            self._metrics.counter(
                "breaker_transitions_total",
                help="circuit breaker state transitions",
                backend=self.name, to=new,
            ).inc()
        obs_events.emit("breaker.transition", backend=self.name, from_state=old,
                        to_state=new, failures=self.consecutive_failures)
        log = logger.warning if new == STATE_OPEN else logger.info
        log("circuit breaker for backend %r: %s -> %s (%d consecutive failure(s))",
            self.name, old, new, self.consecutive_failures)

    def _count_skip(self) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "breaker_open_skips_total",
                help="kernel calls rejected because the backend's breaker was open",
                backend=self.name,
            ).inc()

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.name!r}, state={self.state!r}, "
                f"failures={self.consecutive_failures}, opens={self.opens})")


class BreakerBoard:
    """Per-backend breakers behind one lookup, sharing a config and clock.

    Breakers are created lazily per backend name; an unseen backend is
    closed by definition.  ``metrics`` defaults to the process
    :func:`~repro.obs.metrics.default_registry` so breaker state is
    observable wherever the board is installed.
    """

    def __init__(self, config: BreakerConfig | None = None, *,
                 clock: Callable[[], float] = time.monotonic, metrics=None):
        self.config = config or BreakerConfig.from_env()
        self._clock = clock
        self._metrics = default_registry() if metrics is None else metrics
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, backend: str) -> CircuitBreaker:
        """The breaker for ``backend``, created (closed) on first use."""
        existing = self._breakers.get(backend)
        if existing is not None:
            return existing
        with self._lock:
            return self._breakers.setdefault(backend, CircuitBreaker(
                backend, self.config, clock=self._clock, metrics=self._metrics))

    # Hot-path delegates, inlined names for run_kernel.
    def before_call(self, backend: str) -> None:
        breaker = self._breakers.get(backend)
        if breaker is not None:
            breaker.before_call()

    def record_success(self, backend: str) -> None:
        breaker = self._breakers.get(backend)
        if breaker is not None and (breaker.consecutive_failures
                                    or breaker.state != STATE_CLOSED):
            breaker.record_success()

    def record_failure(self, backend: str) -> None:
        self.breaker(backend).record_failure()

    def state(self, backend: str) -> str:
        breaker = self._breakers.get(backend)
        return breaker.state if breaker is not None else STATE_CLOSED

    def would_reject(self, backend: str) -> bool:
        breaker = self._breakers.get(backend)
        return breaker is not None and breaker.would_reject()

    def snapshot(self) -> dict:
        """``{backend: {state, consecutive_failures, opens}}`` of every
        breaker the board has seen (``Aggregator.health()`` embeds this)."""
        return {name: b.snapshot() for name, b in sorted(self._breakers.items())}

    def open_backends(self) -> list[str]:
        """Backends whose breaker is currently *open* (half-open rungs are
        probing, hence healthy; ``/healthz`` keys its 503 off this list)."""
        return sorted(
            name for name, b in self._breakers.items() if b.state == STATE_OPEN
        )

    def any_open(self) -> bool:
        """Whether any breaker on the board is open right now."""
        return any(b.state == STATE_OPEN for b in self._breakers.values())

    def reset(self) -> None:
        with self._lock:
            self._breakers.clear()

    def __repr__(self) -> str:
        states = {name: b.state for name, b in self._breakers.items()}
        return f"BreakerBoard({states or 'no breakers yet'})"


# -- the process-wide board (off by default) -----------------------------------

_BOARD: BreakerBoard | None = None


def active_breakers() -> BreakerBoard | None:
    """The installed board, or ``None`` (breakers disabled, zero overhead)."""
    return _BOARD


def enable_breakers(config: BreakerConfig | None = None, *,
                    board: BreakerBoard | None = None, metrics=None,
                    clock: Callable[[], float] = time.monotonic) -> BreakerBoard:
    """Install (and return) the process-wide breaker board.

    ``repro serve --breakers`` and long-lived services call this once at
    startup; installing a new board replaces the old one wholesale.
    """
    global _BOARD
    _BOARD = board if board is not None else BreakerBoard(
        config, metrics=metrics, clock=clock)
    return _BOARD


def disable_breakers() -> None:
    """Remove the process-wide board; ``run_kernel`` goes back to unguarded."""
    global _BOARD
    _BOARD = None


@contextmanager
def breaker_scope(config: BreakerConfig | None = None, *,
                  board: BreakerBoard | None = None, metrics=None,
                  clock: Callable[[], float] = time.monotonic):
    """Scope a breaker board over a block, restoring the previous one after.

    The unit of isolation tests (and the chaos harness) build on — the
    board never leaks across tests the way a bare :func:`enable_breakers`
    would.
    """
    global _BOARD
    previous = _BOARD
    installed = enable_breakers(config, board=board, metrics=metrics, clock=clock)
    try:
        yield installed
    finally:
        _BOARD = previous


if os.environ.get("REPRO_BREAKERS") == "1":  # opt-in process-wide default
    enable_breakers()


# -- admission control ---------------------------------------------------------

@dataclass(frozen=True)
class AdmissionPolicy:
    """Reject-fast bounds on the micro-batched serving queue.

    ``max_queue_depth`` rejects a submission outright once that many
    requests are already queued (:class:`OverloadError`, reason
    ``queue_full``) — shedding instead of the blocking backpressure the
    plain :class:`~repro.perf.batching.BatchPolicy` ``capacity`` applies.
    ``deadline`` sheds a request whose *estimated* completion time —
    queued-batches-ahead times the live p95 of ``spmm_latency_seconds`` —
    already exceeds it (reason ``deadline``); with no latency history yet
    the request is admitted (optimism until measured).  ``min_samples``
    is how many latency observations the p95 needs before it is trusted.
    """

    max_queue_depth: int | None = None
    deadline: float | None = None
    min_samples: int = 5

    def __post_init__(self):
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")

    @classmethod
    def from_env(cls, max_queue_depth: int | None = None,
                 deadline: float | None = None) -> "AdmissionPolicy":
        """Defaults overridable by ``REPRO_MAX_QUEUE_DEPTH`` /
        ``REPRO_SHED_DEADLINE``; explicit arguments win over both."""
        if max_queue_depth is None:
            max_queue_depth = _env_number("REPRO_MAX_QUEUE_DEPTH", int, None)
        if deadline is None:
            deadline = _env_number("REPRO_SHED_DEADLINE", float, None)
        return cls(max_queue_depth=max_queue_depth, deadline=deadline)

    def admit(self, *, depth: int, latency=None, batch_size: int = 1) -> None:
        """Admit one submission or raise :class:`OverloadError`.

        ``depth`` is the current queue depth, ``latency`` the live
        ``spmm_latency_seconds`` histogram (or ``None``), ``batch_size``
        how many queued requests one flush coalesces.
        """
        if self.max_queue_depth is not None and depth >= self.max_queue_depth:
            raise OverloadError(
                f"serving queue is full ({depth} >= {self.max_queue_depth}); "
                f"request shed",
                reason="queue_full", depth=depth,
                max_queue_depth=self.max_queue_depth,
            )
        if self.deadline is None or latency is None:
            return
        if latency.count < self.min_samples:
            return
        p95 = latency.quantile(0.95)
        batches_ahead = depth // max(1, batch_size) + 1
        estimated = batches_ahead * p95
        if estimated > self.deadline:
            raise OverloadError(
                f"estimated completion {estimated * 1e3:.2f}ms (p95 "
                f"{p95 * 1e3:.2f}ms x {batches_ahead} batch(es)) exceeds the "
                f"{self.deadline * 1e3:.2f}ms deadline; request shed",
                reason="deadline", depth=depth, estimated_wait=estimated,
                deadline=self.deadline,
            )
