"""Fault-tolerance primitives for the preprocess → cache → serve pipeline.

Production serving (ROADMAP north star) has to survive the failures the
paper's §4.4 "reorder once, serve many" deployment meets in practice: a
corrupt artefact on disk, a reorder worker that dies mid-batch, a backend
kernel that starts failing.  This module defines the three shared pieces
every pipeline layer builds on:

* the **error taxonomy** — :class:`PipelineError` and its subclasses, raised
  consistently by :mod:`~repro.pipeline.preprocess`,
  :mod:`~repro.pipeline.cache`, :mod:`~repro.pipeline.registry`,
  :mod:`~repro.pipeline.serving` and :mod:`repro.parallel` so callers catch
  one family of exceptions instead of bare ``ValueError``/``RuntimeError``;
* :class:`RetryPolicy` — bounded retry with exponential backoff + jitter and
  a per-request deadline, wrapped around serving requests and worker jobs;
* degradation records (:class:`DowngradeEvent`, :class:`ResilienceStats`) —
  how a :class:`~repro.pipeline.serving.ServingSession` accounts for falling
  back down a backend's ``fallbacks`` chain instead of erroring (the
  HC-SpMM-style "always have a correct slower kernel behind the fast one").

The module is deliberately stdlib-only so every other layer (including
:mod:`repro.sptc.serialize` and :mod:`repro.parallel`, which sit *below* the
pipeline package) can import it without cycles.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "PipelineError",
    "PreprocessError",
    "ArtifactCorruptError",
    "BackendExecutionError",
    "CircuitOpenError",
    "OverloadError",
    "WorkerCrashError",
    "DeadlineExceeded",
    "RetryPolicy",
    "DowngradeEvent",
    "ResilienceStats",
]


class PipelineError(Exception):
    """Base of the pipeline error taxonomy.

    ``context`` carries machine-readable detail (backend names, cache keys,
    batch indices) so operators and tests can assert on *which* fault was
    classified without parsing messages.
    """

    def __init__(self, message: str, **context):
        super().__init__(message)
        self.context = context


class PreprocessError(PipelineError):
    """The offline stage failed: pattern search, reordering, or compression."""


class ArtifactCorruptError(PipelineError, ValueError):
    """A persisted artefact failed checksum or structural validation.

    Also a ``ValueError`` so pre-taxonomy callers that caught the
    serializer's ``ValueError`` keep working unchanged.
    """


class BackendExecutionError(PipelineError):
    """A backend's SpMM kernel raised during execution.

    ``context['backend']`` / ``context['kernel_name']`` identify the failing
    kernel; the original exception is chained as ``__cause__``.
    """


class CircuitOpenError(BackendExecutionError):
    """A backend's circuit breaker is open; the kernel call was skipped.

    Subclasses :class:`BackendExecutionError` so the fallback ladder treats
    a tripped breaker exactly like a failing kernel — but the serving layer
    never *retries* it (retrying a skipped call cannot succeed until the
    cooldown expires).  ``context['backend']`` names the guarded backend and
    ``context['retry_after']`` is the remaining cooldown in seconds.
    """


class OverloadError(PipelineError):
    """Admission control shed the request instead of queueing it to death.

    Raised *before* any work is done — fast rejection is the contract —
    when the serving queue is at its depth bound or the live p95 latency
    says the request cannot meet its deadline.  ``context['reason']`` is
    ``"queue_full"``, ``"deadline"``, or ``"closed"``.
    """


class WorkerCrashError(PipelineError):
    """A process-pool job raised, or its worker process died.

    ``context['index']`` is the batch index of the failing job (the graph
    index once :func:`~repro.pipeline.preprocess.preprocess_many` re-raises).
    """


class DeadlineExceeded(PipelineError, TimeoutError):
    """The per-request deadline expired before an attempt could succeed."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff, jitter, and a deadline.

    Delays grow as ``base_delay * multiplier**attempt`` capped at
    ``max_delay``, each stretched by up to ``jitter`` (a fraction) of random
    extra to de-synchronise retry storms.  ``deadline`` bounds the whole
    call — attempts plus sleeps; a backoff sleep that would overrun it
    raises :class:`DeadlineExceeded` immediately instead of sleeping through
    it.  ``seed`` makes the jitter reproducible for tests.
    """

    max_attempts: int = 3
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.05
    jitter: float = 0.25
    deadline: float | None = None
    seed: int | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")

    def backoff_delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        delay = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * rng.random()
        return delay

    def run(
        self,
        fn: Callable[[], object],
        *,
        retry_on: tuple[type[BaseException], ...] = (PipelineError,),
        give_up_on: tuple[type[BaseException], ...] = (),
        on_retry: Callable[[int, BaseException], None] | None = None,
        describe: str = "",
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ):
        """Call ``fn`` under this policy; return its result.

        Exceptions outside ``retry_on`` propagate immediately.  When the
        attempts or the deadline run out, the last failure (or a
        :class:`DeadlineExceeded` chaining it) propagates.  ``on_retry`` is
        invoked once per retry with the 0-based attempt number and the
        failure that triggered it.  ``give_up_on`` carves exceptions back
        *out* of ``retry_on``: a failure matching it propagates immediately
        without burning the retry budget (e.g. :class:`CircuitOpenError` —
        a skipped call cannot succeed until the breaker's cooldown expires,
        so backing off and re-asking is pure added latency).
        """
        rng = random.Random(self.seed)
        start = clock()
        for attempt in range(self.max_attempts):
            if self.deadline is not None and clock() - start >= self.deadline:
                raise DeadlineExceeded(
                    f"deadline of {self.deadline:.3f}s expired after "
                    f"{attempt} attempt(s)" + (f" while {describe}" if describe else ""),
                    attempts=attempt,
                    deadline=self.deadline,
                )
            try:
                return fn()
            except retry_on as exc:
                if give_up_on and isinstance(exc, give_up_on):
                    raise
                if attempt == self.max_attempts - 1:
                    raise
                delay = self.backoff_delay(attempt, rng)
                if self.deadline is not None and (clock() - start) + delay >= self.deadline:
                    raise DeadlineExceeded(
                        f"deadline of {self.deadline:.3f}s would be exceeded by the next "
                        f"backoff after {attempt + 1} attempt(s)"
                        + (f" while {describe}" if describe else ""),
                        attempts=attempt + 1,
                        deadline=self.deadline,
                    ) from exc
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover


@dataclass(frozen=True)
class DowngradeEvent:
    """One graceful-degradation step: from a failing backend to a fallback."""

    from_backend: str
    to_backend: str
    reason: str


@dataclass
class ResilienceStats:
    """Fault accounting one serving session accumulates across requests."""

    retries: int = 0
    downgrades: list[DowngradeEvent] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.downgrades)
