"""Cross-process shard serving: GIL-free workers over zero-copy shm rings.

The thread-lane :class:`~repro.pipeline.sharded.ShardRouter` fans one SpMM
request out over shard *threads* — correct, but every sub-request still
contends for one interpreter's GIL, so a CPU-bound (or C-extension-stalled)
shard serializes its peers and a crashed lane is a crashed process.  This
module is the process-isolation residual named by ROADMAP item 1: each
shard replica becomes one persistent **worker process** that

* attaches its shard's compressed operand and ``.plan.pkl`` sidecar
  **once at spawn** — from the content-addressed
  :class:`~repro.pipeline.cache.ArtifactCache` when the shard has a cache
  key, else by inheriting the in-memory operand through ``fork`` (the
  post-rebalance case) — and never ships operand bytes per request;
* serves sub-requests over a per-lane **shared-memory ring**
  (:func:`repro.perf.shm.create_segment`): the parent writes the permuted
  feature block into a request slot and bumps the slot's sequence stamp,
  the worker computes and writes the row-partial into the paired response
  slot, stamping its sequence last — a seqlock-style protocol where the
  hot path is write-slice / bump-seq / read-slice with **no pickling and
  no per-request allocation** on the request side (the response pays one
  copy out of the ring, because the slot is recycled);
* wakes on a **doorbell pipe** instead of busy-polling (one byte per
  direction per request).  The pipe doubles as the death detector: a
  SIGKILLed worker's write end closes, the parent reads EOF, and the
  sub-request fails over to a replica instead of wedging the fabric.

Supervision reuses :mod:`repro.perf.pool`'s vocabulary: a
:class:`~repro.perf.pool.SupervisionPolicy` bounds each round-trip
(``job_timeout`` → the hung worker is killed), and a
:class:`~repro.perf.pool.RestartWindow` caps respawns — a crash-looping
lane surfaces as :class:`~repro.pipeline.resilience.WorkerCrashError`
(with ``crash_loop=True`` in its context, which the router uses to mark
the replica dead) after a flight-recorder crash dump, exactly like the
worker pool.  A worker that dies once self-heals: the serve that detects
the death fails fast (one failover), the *next* serve respawns the worker,
which re-attaches its artefact from the cache and answers bit-identically.

Worker-side errors cross the boundary as structured JSON in the response
slot — type name, message, and context — and are rebuilt into the same
:class:`~repro.pipeline.resilience.PipelineError` taxonomy the thread path
raises, so the router's failover/degradation semantics are unchanged.

Observability (all parent-side, so one registry tells the whole story):
``procshard_worker_attach_total{shard,source}``,
``procshard_worker_restarts_total{shard}``,
``procshard_worker_deaths_total{shard}``,
``procshard_job_timeouts_total{shard}``, the
``procshard_ipc_seconds{shard}`` transport-overhead histogram, a
``procshard_ring_depth{shard}`` in-flight gauge, and — because the worker
stamps its own serve nanoseconds into the response header — flight-recorder
exemplars that carry per-request worker-side timings across the process
boundary.  The parent also feeds ``spmm_latency_seconds{shard=...}`` and
``serve_requests_total{shard=...}`` so admission windows and ``repro top``
keep working identically in both executors.

Requires the ``fork`` start method (operand inheritance and pipe fds);
constructing a worker on a platform without it raises
:class:`~repro.pipeline.resilience.PipelineError` with a clear message.
See ``docs/sharding.md`` ("Executors") for the operator's view and
``benchmarks/bench_procshard.py`` for the tracked wall-clock numbers.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import select
import signal
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..obs import events as obs_events
from ..perf import shm as shm_transport
from ..perf.pool import RestartWindow, SupervisionPolicy
from . import faults
from .resilience import (
    ArtifactCorruptError,
    BackendExecutionError,
    CircuitOpenError,
    DeadlineExceeded,
    OverloadError,
    PipelineError,
    PreprocessError,
    WorkerCrashError,
)

__all__ = ["ProcessShardWorker", "ProcWorkerStats", "RingGeometry"]

logger = logging.getLogger("repro.pipeline.procshard")

_MAGIC = 0x5250524F  # "RPRO"

# Slot-header field indices (int64 each; headers are 64-byte aligned).
_HDR_I64 = 8
_REQ_SEQ, _REQ_ROWS, _REQ_COLS, _REQ_STALL = 0, 1, 2, 3
_RESP_SEQ, _RESP_STATUS, _RESP_ROWS, _RESP_COLS, _RESP_SERVE_NS, _RESP_ERR = (
    0, 1, 2, 3, 4, 5)
# Control header (one per segment): magic, worker pid, attach source,
# attach nanoseconds, ready flag.
_CTRL_MAGIC, _CTRL_PID, _CTRL_SOURCE, _CTRL_ATTACH_NS, _CTRL_READY = 0, 1, 2, 3, 4
_SRC_INHERIT, _SRC_CACHE = 0, 1

# Session kwargs that only make sense in the parent process: the worker
# has no reachable registry/recorder, so shipping them is pure confusion.
_PARENT_ONLY_SESSION_KWARGS = ("metrics", "recorder", "latency_window", "shard")

# Taxonomy classes a worker-side error may rebuild into, by type name.
_TAXONOMY = {cls.__name__: cls for cls in (
    PipelineError, PreprocessError, ArtifactCorruptError,
    BackendExecutionError, CircuitOpenError, OverloadError,
    WorkerCrashError, DeadlineExceeded,
)}


@dataclass(frozen=True)
class RingGeometry:
    """Byte layout of one lane's request/response ring segment.

    ``req_rows`` is the operand's column count (every permuted feature
    block has that many rows); ``out_rows`` the shard's row count (every
    partial has at most that many rows); ``h_max`` caps one round-trip's
    feature width — wider requests are served in column chunks.  All
    region sizes are multiples of 8 bytes, so every numpy view over the
    segment is aligned.
    """

    n_slots: int = 4
    req_rows: int = 0
    out_rows: int = 0
    h_max: int = 256
    err_bytes: int = 4096

    def __post_init__(self):
        if self.n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        if self.req_rows < 1 or self.out_rows < 1:
            raise ValueError("ring geometry needs positive operand dims")
        if self.h_max < 1:
            raise ValueError("h_max must be >= 1")

    @property
    def hdr_bytes(self) -> int:
        return _HDR_I64 * 8

    @property
    def req_slot_bytes(self) -> int:
        return self.hdr_bytes + self.req_rows * self.h_max * 8

    @property
    def resp_slot_bytes(self) -> int:
        return self.hdr_bytes + self.out_rows * self.h_max * 8 + self.err_bytes

    @property
    def total_bytes(self) -> int:
        return (self.hdr_bytes  # control header
                + self.n_slots * (self.req_slot_bytes + self.resp_slot_bytes))

    def req_offset(self, slot: int) -> int:
        return self.hdr_bytes + slot * self.req_slot_bytes

    def resp_offset(self, slot: int) -> int:
        return (self.hdr_bytes + self.n_slots * self.req_slot_bytes
                + slot * self.resp_slot_bytes)


class _RingViews:
    """Typed numpy views over one ring segment (built once per side)."""

    def __init__(self, buf, geom: RingGeometry):
        self.ctrl = np.ndarray((_HDR_I64,), dtype=np.int64, buffer=buf)
        self.req_hdr, self.req_pay = [], []
        self.resp_hdr, self.resp_pay, self.resp_err = [], [], []
        for slot in range(geom.n_slots):
            off = geom.req_offset(slot)
            self.req_hdr.append(np.ndarray(
                (_HDR_I64,), dtype=np.int64, buffer=buf, offset=off))
            self.req_pay.append(np.ndarray(
                (geom.req_rows * geom.h_max,), dtype=np.float64, buffer=buf,
                offset=off + geom.hdr_bytes))
            off = geom.resp_offset(slot)
            self.resp_hdr.append(np.ndarray(
                (_HDR_I64,), dtype=np.int64, buffer=buf, offset=off))
            self.resp_pay.append(np.ndarray(
                (geom.out_rows * geom.h_max,), dtype=np.float64, buffer=buf,
                offset=off + geom.hdr_bytes))
            self.resp_err.append(np.ndarray(
                (geom.err_bytes,), dtype=np.uint8, buffer=buf,
                offset=off + geom.hdr_bytes + geom.out_rows * geom.h_max * 8))


@dataclass
class ProcWorkerStats:
    """Lifecycle accounting for one :class:`ProcessShardWorker`."""

    spawns: int = 0
    restarts: int = 0
    served: int = 0
    deaths: int = 0
    timeouts: int = 0
    kills: int = 0


@dataclass
class _WorkerSpec:
    """Everything the worker process needs; inherited via ``fork``, never
    pickled — the operand object rides along copy-on-write."""

    shard_index: int
    replica_index: int
    segment: str
    geometry: RingGeometry
    req_r: int
    req_w: int
    resp_r: int
    resp_w: int
    operand: object
    plan: object
    cache_dir: str | None
    cache_key: str | None
    session_kwargs: dict


def _worker_main(spec: _WorkerSpec) -> None:
    """Worker process entry: attach once, then serve the ring until EOF."""
    # Close the parent's pipe ends we inherited: the parent must see EOF
    # the moment this process dies, and our read must EOF if the parent
    # vanishes without a shutdown byte.
    os.close(spec.req_w)
    os.close(spec.resp_r)
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # ^C belongs to the parent

    t_attach = time.perf_counter()
    seg = shm_transport._attach_untracked(spec.segment)
    views = _RingViews(seg.buf, spec.geometry)

    operand, plan, source = spec.operand, spec.plan, _SRC_INHERIT
    if spec.cache_dir and spec.cache_key:
        try:
            from .cache import ArtifactCache

            cache = ArtifactCache(spec.cache_dir)
            hit = cache.load(spec.cache_key)
            if hit is not None:
                operand = hit[0]
                plan = cache.load_plan(spec.cache_key) or plan
                source = _SRC_CACHE
        except Exception:
            logger.exception(
                "shard %d worker: cache attach for %s failed; serving the "
                "inherited operand", spec.shard_index, spec.cache_key)
    if operand is None:
        return  # nothing to serve: the parent's handshake wait surfaces it
    if plan is not None:
        try:
            from ..perf import engine as perf_engine

            perf_engine.adopt_plan(operand, plan)
        except Exception:
            logger.exception("shard %d worker: plan adoption failed; the "
                             "session will build its own", spec.shard_index)

    from .serving import ServingSession

    session = ServingSession(operand, None, **spec.session_kwargs)

    views.ctrl[_CTRL_PID] = os.getpid()
    views.ctrl[_CTRL_SOURCE] = source
    views.ctrl[_CTRL_ATTACH_NS] = int((time.perf_counter() - t_attach) * 1e9)
    views.ctrl[_CTRL_READY] = 1
    views.ctrl[_CTRL_MAGIC] = _MAGIC
    os.write(spec.resp_w, b"R")

    geom = spec.geometry
    ticket = 0
    try:
        while True:
            try:
                byte = os.read(spec.req_r, 1)
            except OSError:  # pragma: no cover - parent fd torn down
                break
            if not byte or byte == b"Q":
                break
            slot = ticket % geom.n_slots
            hdr = views.req_hdr[slot]
            if int(hdr[_REQ_SEQ]) != ticket + 1:
                # Seqlock mismatch: the parent and this worker disagree on
                # the stream position.  Serving a stale slot could merge
                # the wrong generation's bytes — die instead; the parent
                # classifies the EOF as a crash and respawns cleanly.
                logger.error("shard %d worker: ring desync at ticket %d",
                             spec.shard_index, ticket)
                break
            n_rows, h = int(hdr[_REQ_ROWS]), int(hdr[_REQ_COLS])
            stall_us = int(hdr[_REQ_STALL])
            if stall_us > 0:  # injected "stall": a wedged/GIL-bound worker
                time.sleep(stall_us / 1e6)
            xr = views.req_pay[slot][: n_rows * h].reshape(n_rows, h)
            rhdr = views.resp_hdr[slot]
            t0 = time.perf_counter()
            try:
                out = session.spmm(xr)
                serve_ns = int((time.perf_counter() - t0) * 1e9)
                flat = out.reshape(-1)
                views.resp_pay[slot][: flat.size] = flat
                rhdr[_RESP_STATUS] = 0
                rhdr[_RESP_ROWS] = out.shape[0]
                rhdr[_RESP_COLS] = out.shape[1] if out.ndim == 2 else 1
                rhdr[_RESP_ERR] = 0
            except BaseException as exc:  # noqa: BLE001 - marshalled to parent
                serve_ns = int((time.perf_counter() - t0) * 1e9)
                payload = json.dumps(
                    {"type": type(exc).__name__, "message": str(exc),
                     "context": getattr(exc, "context", {})},
                    default=str,
                ).encode()[: geom.err_bytes]
                views.resp_err[slot][: len(payload)] = np.frombuffer(
                    payload, dtype=np.uint8)
                rhdr[_RESP_STATUS] = 1
                rhdr[_RESP_ERR] = len(payload)
            rhdr[_RESP_SERVE_NS] = serve_ns
            rhdr[_RESP_SEQ] = ticket + 1  # seqlock: stamp after the payload
            try:
                os.write(spec.resp_w, b"\x01")
            except OSError:  # pragma: no cover - parent gone
                break
            ticket += 1
    finally:
        try:
            session.close()
        except Exception:  # pragma: no cover
            pass
        try:
            seg.close()
        except Exception:  # pragma: no cover
            pass


def _rebuild_error(payload: bytes, shard: int, replica: int) -> BaseException:
    """Worker-side error JSON → the same exception the thread path raises."""
    try:
        doc = json.loads(payload.decode("utf-8", "replace"))
    except ValueError:
        doc = {"type": "PipelineError",
               "message": payload[:200].decode("utf-8", "replace")}
    name = str(doc.get("type", "PipelineError"))
    message = str(doc.get("message", ""))
    context = doc.get("context") or {}
    if not isinstance(context, dict):
        context = {}
    context = {str(k): v for k, v in context.items()}
    context.setdefault("worker_shard", shard)
    context.setdefault("worker_replica", replica)
    cls = _TAXONOMY.get(name)
    if cls is not None:
        return cls(message, **context)
    import builtins

    bcls = getattr(builtins, name, None)
    if isinstance(bcls, type) and issubclass(bcls, Exception):
        return bcls(message)
    return BackendExecutionError(f"{name}: {message}", **context)


class ProcessShardWorker:
    """One shard replica as a supervised worker process behind a shm ring.

    The parent-side handle the router's process executor serves through:
    :meth:`serve` is one blocking ring round-trip (chunked by columns when
    the request is wider than the ring's ``h_max``), :meth:`kill` is the
    chaos hook's real SIGKILL, :meth:`close` the graceful shutdown that
    unlinks the segment.  Death is detected by pipe EOF; the serve that
    detects it raises :class:`WorkerCrashError` *fast* (one failover) and
    the next serve respawns the worker under the
    :class:`~repro.perf.pool.RestartWindow` crash-loop cap.
    """

    def __init__(
        self,
        shard_index: int,
        replica_index: int,
        operand,
        *,
        plan=None,
        cache_dir: str | None = None,
        cache_key: str | None = None,
        session_kwargs: dict | None = None,
        supervision: SupervisionPolicy | None = None,
        metrics=None,
        recorder=None,
        h_max: int = 256,
        n_slots: int = 4,
        spawn_timeout: float = 30.0,
        stall_seconds: float | None = None,
    ):
        if "fork" not in multiprocessing.get_all_start_methods():
            raise PipelineError(
                "executor='process' needs the fork start method (operand "
                "inheritance and pipe doorbells); this platform has none")
        if operand is None:
            raise ValueError("process shard worker needs an operand")
        self.shard_index = shard_index
        self.replica_index = replica_index
        self.operand = operand
        self._plan = plan
        self._cache_dir = cache_dir
        self._cache_key = cache_key
        self._session_kwargs = {
            k: v for k, v in dict(session_kwargs or {}).items()
            if k not in _PARENT_ONLY_SESSION_KWARGS
        }
        self.supervision = supervision or SupervisionPolicy()
        self._restarts = RestartWindow(self.supervision)
        self._metrics = metrics
        self._recorder = recorder
        self._spawn_timeout = float(spawn_timeout)
        from .sharded import _SLOW_SHARD_ENV  # shared stall knob

        self._stall_seconds = (
            float(os.environ.get(_SLOW_SHARD_ENV, "0.25"))
            if stall_seconds is None else float(stall_seconds))
        rows, cols = operand.shape
        self.geometry = RingGeometry(n_slots=n_slots, req_rows=cols,
                                     out_rows=rows, h_max=h_max)
        self.stats = ProcWorkerStats()
        self.alive = False
        self.pid: int | None = None
        self.attach_source: str | None = None
        self._closed = False
        self._lock = threading.RLock()
        self._seg = None
        self._views: _RingViews | None = None
        self._proc = None
        self._req_w = self._resp_r = -1
        self._ticket = 0
        if metrics is not None:
            shard = str(shard_index)
            self._m_ipc = metrics.histogram(
                "procshard_ipc_seconds", shard=shard,
                help="ring transport overhead (round-trip minus worker serve)")
            self._m_depth = metrics.gauge(
                "procshard_ring_depth", shard=shard,
                help="request slots in flight on the lane ring")
            self._m_latency = metrics.histogram(
                "spmm_latency_seconds", shard=shard,
                help="end-to-end serve request latency")
            self._m_served = metrics.counter(
                "serve_requests_total", shard=shard,
                help="spmm requests served")
        self._spawn()

    # -- lifecycle ----------------------------------------------------------
    def _spawn(self) -> None:
        geom = self.geometry
        seg = shm_transport.create_segment(
            geom.total_bytes,
            label=f"ring{self.shard_index}r{self.replica_index}")
        req_r, req_w = os.pipe()
        resp_r, resp_w = os.pipe()
        views = _RingViews(seg.buf, geom)
        views.ctrl[:] = 0
        spec = _WorkerSpec(
            shard_index=self.shard_index, replica_index=self.replica_index,
            segment=seg.name, geometry=geom,
            req_r=req_r, req_w=req_w, resp_r=resp_r, resp_w=resp_w,
            operand=self.operand, plan=self._plan,
            cache_dir=self._cache_dir, cache_key=self._cache_key,
            session_kwargs=self._session_kwargs,
        )
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(
            target=_worker_main, args=(spec,), daemon=True,
            name=f"repro-psw{self.shard_index}r{self.replica_index}")
        proc.start()
        os.close(req_r)
        os.close(resp_w)
        self._seg, self._views, self._proc = seg, views, proc
        self._req_w, self._resp_r = req_w, resp_r
        self._ticket = 0
        self.stats.spawns += 1
        byte = self._poll_byte(self._spawn_timeout)
        if byte != b"R" or int(views.ctrl[_CTRL_MAGIC]) != _MAGIC:
            self._teardown(reap=True)
            raise WorkerCrashError(
                f"shard {self.shard_index} replica {self.replica_index} "
                f"worker failed to start (no handshake within "
                f"{self._spawn_timeout:.1f}s)",
                shard=self.shard_index, replica=self.replica_index)
        self.pid = int(views.ctrl[_CTRL_PID])
        self.attach_source = ("cache" if int(views.ctrl[_CTRL_SOURCE]) ==
                              _SRC_CACHE else "inherited")
        attach_seconds = int(views.ctrl[_CTRL_ATTACH_NS]) / 1e9
        self.alive = True
        if self._metrics is not None:
            self._metrics.counter(
                "procshard_worker_attach_total",
                help="shard worker operand attachments at spawn",
                shard=str(self.shard_index), source=self.attach_source).inc()
        obs_events.emit(
            "procshard.worker_attached", shard=self.shard_index,
            replica=self.replica_index, pid=self.pid,
            source=self.attach_source, attach_seconds=attach_seconds)
        logger.debug(
            "shard %d replica %d worker pid %d up (operand %s, %.1fms)",
            self.shard_index, self.replica_index, self.pid,
            self.attach_source, attach_seconds * 1e3)

    def _poll_byte(self, timeout: float) -> bytes:
        """Read one doorbell byte within ``timeout``; ``b""`` on EOF/expiry."""
        deadline = time.perf_counter() + timeout
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                return b""
            readable, _, _ = select.select([self._resp_r], [], [], remaining)
            if readable:
                try:
                    return os.read(self._resp_r, 1)
                except OSError:  # pragma: no cover - torn-down fd
                    return b""

    def _restart(self) -> None:
        """Respawn a dead worker, bounded by the crash-loop window."""
        if self._restarts.exhausted:
            from ..obs import recorder as obs_recorder

            live = self._restarts.count
            obs_recorder.crash_dump(
                "procshard_crash_loop",
                error=f"shard {self.shard_index} replica "
                      f"{self.replica_index}: {live} worker restarts within "
                      f"{self.supervision.restart_window:.0f}s",
            )
            raise WorkerCrashError(
                f"shard {self.shard_index} replica {self.replica_index} "
                f"worker crash-looping: {live} restarts within "
                f"{self.supervision.restart_window:.0f}s "
                f"(cap {self.supervision.max_restarts}); refusing to respawn",
                shard=self.shard_index, replica=self.replica_index,
                restarts=live, crash_loop=True)
        delay = self._restarts.backoff_seconds()
        if delay:
            time.sleep(delay)
        self._restarts.record()
        self.stats.restarts += 1
        if self._metrics is not None:
            self._metrics.counter(
                "procshard_worker_restarts_total",
                help="shard worker respawns after a death or kill",
                shard=str(self.shard_index)).inc()
        self._spawn()

    def kill(self) -> None:
        """SIGKILL the worker process (the chaos hook's real kill)."""
        proc = self._proc
        if proc is not None and proc.pid and proc.is_alive():
            self.stats.kills += 1
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except ProcessLookupError:  # pragma: no cover - already gone
                pass

    def _teardown(self, *, reap: bool) -> None:
        """Close fds, reap the process, unlink the segment; idempotent."""
        self.alive = False
        proc, self._proc = self._proc, None
        if proc is not None and reap:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck in a syscall
                proc.kill()
                proc.join(timeout=2.0)
        for fd in (self._req_w, self._resp_r):
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:  # pragma: no cover
                    pass
        self._req_w = self._resp_r = -1
        seg, self._seg = self._seg, None
        self._views = None
        if seg is not None:
            shm_transport.destroy_segment(seg)

    def _on_death(self, reason: str) -> None:
        """Classify a detected death and raise the failover error."""
        pid = self.pid
        self.stats.deaths += 1
        self._teardown(reap=True)
        if self._metrics is not None:
            self._metrics.counter(
                "procshard_worker_deaths_total",
                help="shard worker processes that died mid-service",
                shard=str(self.shard_index)).inc()
        obs_events.emit("procshard.worker_died", shard=self.shard_index,
                        replica=self.replica_index, pid=pid, reason=reason)
        logger.warning("shard %d replica %d worker (pid %s) died: %s",
                       self.shard_index, self.replica_index, pid, reason)
        raise WorkerCrashError(
            f"shard {self.shard_index} replica {self.replica_index} worker "
            f"died ({reason})",
            shard=self.shard_index, replica=self.replica_index, pid=pid)

    def close(self) -> None:
        """Graceful shutdown: drain byte, join, unlink; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            proc = self._proc
            if self.alive and proc is not None and proc.is_alive():
                try:
                    os.write(self._req_w, b"Q")
                except OSError:  # pragma: no cover - worker already dead
                    pass
                proc.join(timeout=2.0)
                if proc.is_alive():
                    self.kill()
            self._teardown(reap=True)

    @property
    def crash_looping(self) -> bool:
        """Whether the next respawn would breach the crash-loop cap."""
        return self._restarts.exhausted

    # -- serving ------------------------------------------------------------
    def serve(self, xr: np.ndarray, *, timeout: float | None = None,
              action: str | None = None) -> np.ndarray:
        """One sub-request round-trip; returns the shard's row partial.

        ``timeout`` (default: the supervision policy's ``job_timeout``)
        bounds the wait; on expiry the worker is killed (it is presumed
        hung — a stalled C extension holds no Python signal handler) and
        :class:`DeadlineExceeded` raised, which the router's failover path
        absorbs like any replica failure.  ``action`` lets the router
        forward a scripted shard directive; the worker's own
        :func:`~repro.pipeline.faults.procshard_directive` is consulted
        too.
        """
        with self._lock:
            if self._closed:
                raise WorkerCrashError(
                    f"shard {self.shard_index} replica {self.replica_index} "
                    f"worker is closed",
                    shard=self.shard_index, replica=self.replica_index)
            directive = action or faults.procshard_directive(self.shard_index)
            if not self.alive:
                self._restart()
            stall_us = 0
            if directive in ("kill", "sigkill"):
                # A real mid-request SIGKILL: the round-trip below detects
                # the EOF and fails over — one failover, not a dead fabric.
                self.kill()
            elif directive in ("slow", "stall"):
                stall_us = max(1, int(self._stall_seconds * 1e6))
            xr = np.asarray(xr, dtype=np.float64)
            if xr.ndim != 2 or xr.shape[0] != self.geometry.req_rows:
                raise ValueError(
                    f"sub-request must be ({self.geometry.req_rows}, h), "
                    f"got {xr.shape}")
            timeout = (self.supervision.job_timeout if timeout is None
                       else timeout)
            h_max = self.geometry.h_max
            if xr.shape[1] <= h_max:
                return self._roundtrip(xr, stall_us, timeout)
            # Wider than one slot: serve in column chunks (each chunk is a
            # full ring round-trip; the stall directive burns on the first).
            parts = []
            for lo in range(0, xr.shape[1], h_max):
                parts.append(self._roundtrip(
                    xr[:, lo:lo + h_max], stall_us, timeout))
                stall_us = 0
            return np.concatenate(parts, axis=1)

    def _roundtrip(self, xr: np.ndarray, stall_us: int,
                   timeout: float | None) -> np.ndarray:
        geom, views = self.geometry, self._views
        ticket = self._ticket
        slot = ticket % geom.n_slots
        n_rows, h = xr.shape
        t0 = time.perf_counter()
        hdr = views.req_hdr[slot]
        views.req_pay[slot][: n_rows * h].reshape(n_rows, h)[...] = xr
        hdr[_REQ_ROWS] = n_rows
        hdr[_REQ_COLS] = h
        hdr[_REQ_STALL] = stall_us
        hdr[_REQ_SEQ] = ticket + 1  # seqlock: stamp after the payload
        if self._metrics is not None:
            self._m_depth.set(1.0)
        try:
            try:
                os.write(self._req_w, b"\x01")
            except OSError:
                self._on_death("request doorbell closed")
            byte = self._wait_response(t0, timeout)
            if byte == b"":
                self._on_death("response doorbell EOF")
            rhdr = views.resp_hdr[slot]
            if int(rhdr[_RESP_SEQ]) != ticket + 1:
                self.kill()
                self._on_death(
                    f"ring desync (expected seq {ticket + 1}, "
                    f"got {int(rhdr[_RESP_SEQ])})")
            self._ticket = ticket + 1
            wall = time.perf_counter() - t0
            serve_seconds = int(rhdr[_RESP_SERVE_NS]) / 1e9
            ipc_seconds = max(0.0, wall - serve_seconds)
            self._observe(wall, serve_seconds, ipc_seconds,
                          ok=int(rhdr[_RESP_STATUS]) == 0)
            if int(rhdr[_RESP_STATUS]) != 0:
                err_len = int(rhdr[_RESP_ERR])
                raise _rebuild_error(
                    bytes(views.resp_err[slot][:err_len]),
                    self.shard_index, self.replica_index)
            nr, nc = int(rhdr[_RESP_ROWS]), int(rhdr[_RESP_COLS])
            out = np.empty((nr, nc))
            out[...] = views.resp_pay[slot][: nr * nc].reshape(nr, nc)
            self.stats.served += 1
            return out
        finally:
            if self._metrics is not None:
                self._m_depth.set(0.0)

    def _wait_response(self, t0: float, timeout: float | None) -> bytes:
        """Block on the response doorbell; kill the worker on timeout."""
        while True:
            remaining = None
            if timeout is not None:
                remaining = timeout - (time.perf_counter() - t0)
                if remaining <= 0:
                    break
            readable, _, _ = select.select([self._resp_r], [], [], remaining)
            if readable:
                return os.read(self._resp_r, 1)
            if timeout is None:  # pragma: no cover - spurious wakeup only
                continue
        self.stats.timeouts += 1
        if self._metrics is not None:
            self._metrics.counter(
                "procshard_job_timeouts_total",
                help="shard worker round-trips that exceeded the job timeout",
                shard=str(self.shard_index)).inc()
        logger.warning(
            "shard %d replica %d worker exceeded its %.3fs job timeout; "
            "killing", self.shard_index, self.replica_index, timeout)
        self.kill()
        self._teardown(reap=True)
        raise DeadlineExceeded(
            f"shard {self.shard_index} replica {self.replica_index} worker "
            f"exceeded its {timeout:.3f}s job timeout; worker killed",
            shard=self.shard_index, replica=self.replica_index,
            deadline=timeout)

    def _observe(self, wall: float, serve_seconds: float,
                 ipc_seconds: float, *, ok: bool) -> None:
        if self._metrics is not None:
            self._m_ipc.observe(ipc_seconds)
            self._m_latency.observe(wall)
            if ok:
                self._m_served.inc()
        if self._recorder is not None:
            # The exemplar that crosses the process boundary: the worker
            # stamped its own serve time into the response header, so the
            # parent's flight recorder can tell kernel time from transport.
            self._recorder.observe(
                "ok" if ok else "error", latency=wall, kind="procshard",
                shard=self.shard_index, replica=self.replica_index,
                worker_pid=self.pid, serve_seconds=serve_seconds,
                ipc_seconds=ipc_seconds)

    def __enter__(self) -> "ProcessShardWorker":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = ("closed" if self._closed
                 else ("alive" if self.alive else "dead"))
        return (f"ProcessShardWorker(shard={self.shard_index}, "
                f"replica={self.replica_index}, pid={self.pid}, {state}, "
                f"served={self.stats.served}, restarts={self.stats.restarts})")
