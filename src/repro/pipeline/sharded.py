"""Sharded async serving fabric: partitioned operands behind a fan-out router.

The single-process :class:`~repro.pipeline.serving.ServingSession` serves
one compressed operand end to end; ``repro.distributed`` only *simulates*
multi-device SpMM.  This module is the production middle ground the paper's
§4.4 deployment implies: partition the **reordered** operand by row into
v-aligned contiguous shards (:func:`repro.distributed.partition.
partition_rows` with ``align = pattern.v``, so no V:N:M tile row straddles
two shards), preprocess each shard into its own cached artefact + plan
sidecar (:func:`repro.pipeline.cache.shard_cache_key`), and run one
:class:`ServingSession` per shard replica, each on its own serial
execution lane.

On top sits :class:`ShardRouter`: one SpMM request fans out as concurrent
sub-requests (every shard sees the same permuted feature block, each
computes its own row slice), the row partials merge back into a result
**bit-identical** to the single-session path, and the whole cycle is
guarded the same way single-session serving is — per-backend circuit
breakers and downgrade ladders still apply because every shard kernel goes
through :func:`repro.pipeline.registry.run_kernel`, while admission /
backpressure at the router door is driven by per-shard queue depth and the
windowed p95 of the shard-labelled ``spmm_latency_seconds`` series.

Why bit-identical: each output row is one dot product of an operand row
with the feature block; sharding changes *which session* computes a row,
never the row's own summation order.  The equivalence suite
(``tests/pipeline/test_sharded.py``) pins this per backend × shard count
with integer-valued features, where every partial sum is exact.

Operations hooks:

* **replica failover** — each shard serves from one or more replicas
  (least-in-flight pick, round-robin tie-break).  A replica that dies
  mid-request (:class:`~repro.pipeline.resilience.PipelineError`) is
  stepped over; the sub-request re-serves on a surviving replica.
* **hot-shard replication** — :meth:`ShardRouter.replicate` adds a replica
  over the same shard operand; :meth:`ShardRouter.maybe_replicate` does it
  automatically when one shard's live load runs ahead of the mean.
* **online rebalance** — :meth:`ShardRouter.rebalance` splits the hottest
  shard at a v-aligned midpoint into two shards (densify → slice →
  recompress through the registry), without stopping traffic: in-flight
  requests finish on the old layout, new requests fan out over the new one.
* **health** — :meth:`ShardRouter.health` reports per-shard liveness;
  a *minority* of unhealthy shards marks the payload ``degraded`` while
  ``healthy`` stays true (``/healthz`` 200), a majority flips ``healthy``
  (503).  See :func:`repro.obs.server.session_health`.

See ``docs/sharding.md`` for the operator's view and
``benchmarks/bench_sharded_serving.py`` for the tracked throughput scaling
numbers.
"""

from __future__ import annotations

import asyncio
import copy
import logging
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field

import numpy as np

from ..core.permutation import Permutation
from ..obs import events as obs_events
from . import faults, registry
from .cache import shard_cache_key
from .guard import AdmissionPolicy
from .preprocess import (
    _CACHEABLE_BACKENDS,
    PreprocessPlan,
    PreprocessResult,
    _plan_operand,
    preprocess,
)
from .resilience import (
    DeadlineExceeded,
    OverloadError,
    PipelineError,
    RetryPolicy,
    WorkerCrashError,
)
from .serving import ServingSession

__all__ = [
    "ShardSpec",
    "ShardSet",
    "ShardRouter",
    "build_shards",
    "shard_result",
    "split_operand_rows",
]

logger = logging.getLogger("repro.pipeline.sharded")


@dataclass
class ShardSpec:
    """One shard's row block and cache identity."""

    index: int
    start: int
    stop: int
    cache_key: str | None = None
    cached: bool = False  # loaded from the artefact cache, not recompressed

    @property
    def size(self) -> int:
        return self.stop - self.start


@dataclass
class ShardSet:
    """Row-partitioned shards of one preprocessed operand.

    ``operands[i]`` is the compressed ``(specs[i].size, n)`` row slice of
    the reordered operator; ``permutation`` is the *whole-operand* basis
    map (shard sessions serve in the reordered basis — the router permutes
    once per request, not once per shard).  ``plans`` carries each shard's
    precompiled execution plan (or ``None`` for unplannable backends),
    already adopted into the engine's plan cache.
    """

    pattern: object
    permutation: Permutation | None
    backend: str
    base_key: str | None
    specs: list[ShardSpec]
    operands: list = field(default_factory=list)
    plans: list = field(default_factory=list)

    @property
    def n_shards(self) -> int:
        return len(self.specs)

    @property
    def n_rows(self) -> int:
        return self.specs[-1].stop if self.specs else 0

    @property
    def align(self) -> int:
        return int(getattr(self.pattern, "v", 1) or 1)

    def summary(self) -> dict:
        """JSON-ready layout: per-shard rows, keys, and cache provenance."""
        return {
            "backend": self.backend,
            "pattern": str(self.pattern),
            "n_shards": self.n_shards,
            "n_rows": self.n_rows,
            "align": self.align,
            "base_key": self.base_key,
            "shards": [
                {
                    "index": s.index,
                    "rows": [s.start, s.stop],
                    "size": s.size,
                    "cache_key": s.cache_key,
                    "cached": s.cached,
                }
                for s in self.specs
            ],
        }


def split_operand_rows(operand, parts) -> list:
    """Row-slice one operand into per-partition CSR matrices.

    The numeric content of each slice is exact (densify round-trips the
    compressed values bit-for-bit), so recompressing a slice yields a shard
    whose SpMM rows equal the whole-operand rows.  ``parts`` is any
    iterable with ``start``/``stop`` attributes (``RowPartition``,
    :class:`ShardSpec`).
    """
    from ..sptc.csr import CSRMatrix

    if isinstance(operand, CSRMatrix):
        rows, cols, data = operand.to_coo()
        out = []
        for p in parts:
            keep = (rows >= p.start) & (rows < p.stop)
            out.append(CSRMatrix.from_coo(
                rows[keep] - p.start, cols[keep], data[keep],
                (p.stop - p.start, operand.shape[1]),
            ))
        return out
    dense = registry.densify(operand)
    return [CSRMatrix.from_dense(dense[p.start:p.stop]) for p in parts]


def shard_result(
    result: PreprocessResult,
    *,
    n_shards: int,
    cache=None,
) -> ShardSet:
    """Partition one :class:`PreprocessResult` into ``n_shards`` row shards.

    Boundaries come from :func:`~repro.distributed.partition.
    partition_rows` with ``align = pattern.v`` — every row lands in exactly
    one shard and no N:M tile row straddles a boundary, so a shard of a
    conforming operand is itself conforming and recompresses on the same
    backend.  With a ``cache``, each shard is stored (and later loaded)
    under its :func:`~repro.pipeline.cache.shard_cache_key`, with a
    ``<key>.plan.pkl`` execution-plan sidecar exactly like whole-operand
    preprocessing; re-sharding the same artefact under the same geometry
    is a set of file loads.
    """
    from ..distributed.partition import partition_rows

    pattern = result.pattern
    align = int(getattr(pattern, "v", 1) or 1)
    n = result.operand.shape[0]
    backend = result.backend or registry.backend_for(result.operand).name
    parts = partition_rows(n, n_shards, align=align)
    cacheable = (cache is not None and result.cache_key is not None
                 and backend in _CACHEABLE_BACKENDS)

    specs: list[ShardSpec] = []
    operands: list = []
    plans: list = []
    slices = None  # cut lazily: an all-hit reload never densifies
    for p in parts:
        key = (shard_cache_key(result.cache_key, p.device, n_shards, align=align)
               if cacheable else None)
        operand = None
        cached = False
        if key is not None:
            hit = cache.load(key)
            if hit is not None:
                operand, _ = hit
                cached = True
        if operand is None:
            if slices is None:
                slices = split_operand_rows(result.operand, parts)
            operand = registry.compress(slices[p.device], backend, pattern)
            if key is not None:
                cache.store(key, operand, None)
        plan = _plan_operand(operand, key, cache, stored=not cached)
        specs.append(ShardSpec(p.device, p.start, p.stop, cache_key=key,
                               cached=cached))
        operands.append(operand)
        plans.append(plan)
    obs_events.emit(
        "shard.built", n_shards=n_shards, backend=backend, align=align,
        cached=sum(1 for s in specs if s.cached), base_key=result.cache_key,
    )
    return ShardSet(pattern=pattern, permutation=result.permutation,
                    backend=backend, base_key=result.cache_key, specs=specs,
                    operands=operands, plans=plans)


def build_shards(
    graph,
    plan: PreprocessPlan | None = None,
    *,
    n_shards: int,
    cache=None,
) -> ShardSet:
    """Preprocess ``graph`` under ``plan`` and partition it into shards.

    The whole-operand preprocess (reorder → compress) runs — or cache-hits
    — first, exactly as :func:`~repro.pipeline.preprocess.preprocess`
    does; the resulting reordered operand is then row-partitioned via
    :func:`shard_result`.  One reorder, ``n_shards`` serveable artefacts.
    """
    plan = plan or PreprocessPlan()
    result = preprocess(graph, plan, cache=cache)
    return shard_result(result, n_shards=n_shards, cache=cache)


# How long an injected "slow" shard fault stalls a sub-request (seconds).
_SLOW_SHARD_ENV = "REPRO_FAULT_SHARD_SLOW_SECONDS"


class _Replica:
    """One shard replica: an executor back-end plus its serial lane.

    The back-end is either an in-process :class:`ServingSession`
    (``executor="thread"``) or a
    :class:`~repro.pipeline.procshard.ProcessShardWorker`
    (``executor="process"``); exactly one of ``session`` / ``worker`` is
    set.  ``operand`` is the shard operand this replica serves, kept here
    so replication and rebalance never need to reach into a back-end.
    """

    __slots__ = ("shard_index", "replica_index", "session", "worker",
                 "operand", "lane", "alive", "in_flight", "served",
                 "failures", "serve_lock")

    def __init__(self, shard_index: int, replica_index: int,
                 session: ServingSession | None = None, *, worker=None,
                 operand=None):
        self.shard_index = shard_index
        self.replica_index = replica_index
        self.session = session
        self.worker = worker
        self.operand = operand if operand is not None else (
            session.operand if session is not None else None)
        self.lane = ThreadPoolExecutor(
            max_workers=1,
            thread_name_prefix=f"repro-shard{shard_index}r{replica_index}")
        self.alive = True
        self.in_flight = 0
        self.served = 0
        self.failures = 0
        # Sessions are not thread-safe (the engine plan's scratch is
        # per-operand): the lane serializes a replica's own queue, but a
        # failover from another replica's lane calls this session from a
        # foreign thread — the lock makes that path safe and stays
        # uncontended in normal operation.  (Process workers serialize on
        # their own ring lock; this lock still guards the ring's parent
        # side on the failover path.)
        self.serve_lock = threading.Lock()


class ShardRouter:
    """Fan-out / merge front-end over a :class:`ShardSet`.

    One request: validate → admit → permute the features into the reordered
    basis **once** → dispatch one sub-request per shard onto that shard's
    least-loaded live replica lane → merge the row partials (shard order,
    then permute back) into a result bit-identical to single-session
    serving.  :meth:`aspmm` is the asyncio face of the same cycle;
    :meth:`submit` pipelines synchronous callers (consecutive requests
    overlap across shard lanes).

    ``replicas`` seeds every shard with that many replicas.  ``admission``
    (or the ``max_queue_depth`` / ``deadline`` shorthands) sheds at the
    door: per shard, the queue depth the new sub-request would wait behind
    and — when ``windows`` is given — the rolling p95 of that shard's
    ``spmm_latency_seconds{shard=...}`` series estimate its completion;
    a request that cannot finish in time raises
    :class:`~repro.pipeline.resilience.OverloadError` before any lane sees
    it.  ``deadline`` also hard-bounds the in-flight merge wait
    (:class:`~repro.pipeline.resilience.DeadlineExceeded` — a stalled
    shard can delay one answer, never wedge the caller).

    ``metrics`` labels every shard session's series with ``shard="<i>"``
    and adds router-level series (``router_requests_total``,
    ``router_in_flight{shard}``, ``router_shed_total{reason}``,
    ``router_failovers_total{shard}``, ``router_replicas{shard}``,
    ``router_latency_seconds``).  ``session_kwargs`` forwards to every
    shard :class:`ServingSession` (retry policy, recorder, engine, ...).
    ``devices`` optionally pins one compute device per shard (e.g. an
    :class:`~repro.sptc.device.EmulatedDevice` each): sub-requests then
    charge their kernel time to their shard's own virtual clock, so the
    multi-device makespan is ``max`` over the per-device clocks — the
    paper's §5.2 multi-GPU accounting.

    ``executor`` picks the replica back-end: ``"thread"`` (default) runs
    each replica as an in-process :class:`ServingSession` on its own lane;
    ``"process"`` runs each replica as a persistent
    :class:`~repro.pipeline.procshard.ProcessShardWorker` — a forked
    worker process that attaches the shard operand once (from ``cache``
    when the shard has a cache key) and serves over a zero-copy shm ring,
    so CPU-bound shards escape the GIL and a SIGKILLed worker costs one
    failover, not the fabric.  Fan-out/merge, admission, deadline,
    failover, and rebalance semantics are identical in both modes, and so
    are the merged bits.  ``executor_options`` forwards construction knobs
    to each worker (``supervision``, ``h_max``, ``n_slots``,
    ``spawn_timeout``); see ``docs/sharding.md`` ("Executors").
    """

    def __init__(
        self,
        shards: ShardSet,
        *,
        metrics=None,
        windows=None,
        replicas: int = 1,
        devices=None,
        admission: AdmissionPolicy | None = None,
        max_queue_depth: int | None = None,
        deadline: float | None = None,
        retry_policy: RetryPolicy | None = None,
        recorder=None,
        window_seconds: float = 60.0,
        max_pipeline: int | None = None,
        session_kwargs: dict | None = None,
        executor: str = "thread",
        cache=None,
        executor_options: dict | None = None,
    ):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if not shards.specs:
            raise ValueError("cannot route over an empty ShardSet")
        if executor not in ("thread", "process"):
            raise ValueError(
                f"executor must be 'thread' or 'process', got {executor!r}")
        if devices is not None and len(devices) != shards.n_shards:
            raise ValueError(
                f"devices list has {len(devices)} entries for "
                f"{shards.n_shards} shard(s)")
        self._devices = list(devices) if devices is not None else None
        self.shards = shards
        self.permutation = shards.permutation
        self.deadline = deadline
        if admission is None and (max_queue_depth is not None
                                  or deadline is not None):
            admission = AdmissionPolicy(max_queue_depth=max_queue_depth,
                                        deadline=deadline)
        self.admission = admission
        self._metrics = metrics
        self._windows = windows
        self._window_seconds = float(window_seconds)
        self._recorder = recorder
        self._retry_policy = retry_policy
        self._session_kwargs = dict(session_kwargs or {})
        self.executor = executor
        self._cache = cache
        self._executor_options = dict(executor_options or {})
        self._stall_seconds = float(os.environ.get(_SLOW_SHARD_ENV, "0.25"))
        self._retired: list[_Replica] = []
        self._lock = threading.Lock()
        self._rr = 0
        self.n_requests = 0
        self.n_shed = 0
        self.n_failovers = 0
        self.n_rebalances = 0
        self._closed = False
        self._n_cols = shards.operands[0].shape[1]
        self._latency_views: list = []
        self._replicas: list[list[_Replica]] = []
        for i in range(shards.n_shards):
            self._latency_views.append(self._latency_view(i))
            group = [self._make_replica(i, r, shards.operands[i])
                     for r in range(replicas)]
            self._replicas.append(group)
            self._set_replica_gauge(i, len(group))
        if metrics is not None:
            self._m_requests = metrics.counter(
                "router_requests_total", help="sharded spmm requests merged")
            self._m_latency = metrics.histogram(
                "router_latency_seconds",
                help="end-to-end fan-out/merge request latency")
        # The pipelining front: submit() callers park here while their
        # sub-requests run; threads block on shard futures, so the pool is
        # cheap — its size just bounds how many requests overlap.
        self._front = ThreadPoolExecutor(
            max_workers=(max_pipeline if max_pipeline is not None
                         else max(4, 2 * shards.n_shards)),
            thread_name_prefix="repro-router")

    # -- construction helpers ----------------------------------------------
    def _latency_view(self, shard_index: int):
        if self._windows is None:
            return None
        return self._windows.histogram_view(
            "spmm_latency_seconds", self._window_seconds,
            shard=str(shard_index))

    def _make_replica(self, shard_index: int, replica_index: int,
                      operand) -> _Replica:
        if self.executor == "process":
            return self._make_process_replica(shard_index, replica_index,
                                              operand)
        if replica_index > 0:
            # Replicas must NOT share the operand object: the engine's plan
            # cache is keyed by operand identity and plans carry mutable
            # scratch buffers, so two replicas executing the same operand
            # concurrently would race on scratch and merge garbage.  A
            # private copy gives each replica its own plan + scratch — and
            # makes replication real parallel capacity, not lock convoy.
            operand = copy.deepcopy(operand)
        kwargs = dict(self._session_kwargs)
        if self._devices is not None:
            # Each shard charges its kernels to its own (emulated) device;
            # replicas of a shard share that device's virtual clock, which
            # mirrors a spare process on the same accelerator.
            kwargs.setdefault("device", self._devices[shard_index])
        session = ServingSession(
            operand, None,
            metrics=self._metrics,
            shard=str(shard_index),
            retry_policy=self._retry_policy,
            recorder=self._recorder,
            latency_window=self._latency_views[shard_index]
            if shard_index < len(self._latency_views) else None,
            **kwargs,
        )
        return _Replica(shard_index, replica_index, session)

    def _make_process_replica(self, shard_index: int, replica_index: int,
                              operand) -> _Replica:
        """One shard replica as a forked worker over a shm ring.

        No operand deepcopy even for extra replicas: each worker computes
        in its own address space, so plan scratch can never be shared.
        The worker prefers re-attaching the shard artefact from the cache
        (its sidecar plan included); post-rebalance shards have no cache
        key and fall back to inheriting the in-memory operand via fork.
        """
        from .procshard import ProcessShardWorker

        specs = self.shards.specs
        plans = self.shards.plans
        cache_key = (specs[shard_index].cache_key
                     if shard_index < len(specs) else None)
        cache_dir = (str(self._cache.cache_dir)
                     if self._cache is not None and cache_key else None)
        kwargs = dict(self._session_kwargs)
        if self._devices is not None:
            kwargs.setdefault("device", self._devices[shard_index])
        worker = ProcessShardWorker(
            shard_index, replica_index, operand,
            plan=plans[shard_index] if shard_index < len(plans) else None,
            cache_dir=cache_dir, cache_key=cache_key,
            session_kwargs=kwargs, metrics=self._metrics,
            recorder=self._recorder,
            **self._executor_options,
        )
        return _Replica(shard_index, replica_index, worker=worker,
                        operand=operand)

    def _set_replica_gauge(self, shard_index: int, count: int) -> None:
        if self._metrics is not None:
            self._metrics.gauge(
                "router_replicas", help="live replicas per shard",
                shard=str(shard_index)).set(float(count))

    # -- properties ---------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._replicas)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.shards.n_rows, self._n_cols)

    # -- the request cycle --------------------------------------------------
    def _validate(self, x: np.ndarray) -> tuple[np.ndarray, bool]:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim > 2:
            raise ValueError(
                f"features must be 1-D or 2-D (vertices[, channels]), got "
                f"{x.ndim}-D input of shape {x.shape}")
        if x.shape[0] != self._n_cols:
            raise ValueError(
                f"feature rows {x.shape[0]} != operand columns {self._n_cols}")
        squeeze = x.ndim == 1
        return (x[:, None] if squeeze else x), squeeze

    def _admit(self) -> None:
        """Door check: every shard must be able to take the sub-request."""
        if self.admission is None:
            return
        with self._lock:
            groups = list(self._replicas)
        try:
            for i, group in enumerate(groups):
                live = [rep for rep in group if rep.alive]
                if not live:
                    continue  # dispatch surfaces the dead shard, not admit
                depth = min(rep.in_flight for rep in live)
                latency = (self._latency_views[i]
                           if i < len(self._latency_views) else None)
                self.admission.admit(depth=depth, latency=latency,
                                     batch_size=1)
        except OverloadError as exc:
            self.n_shed += 1
            if self._metrics is not None:
                self._metrics.counter(
                    "router_shed_total", help="requests shed at the router door",
                    reason=str(exc.context.get("reason", "overload")),
                ).inc()
            obs_events.emit("router.shed",
                            reason=exc.context.get("reason"))
            raise

    def _pick(self, group: list[_Replica], tried: set | None = None) -> _Replica:
        """Least-in-flight live replica, round-robin on ties."""
        with self._lock:
            candidates = [rep for rep in group if rep.alive
                          and (tried is None or id(rep) not in tried)]
            if not candidates:
                raise WorkerCrashError(
                    "no live replicas left for shard "
                    f"{group[0].shard_index if group else '?'}",
                    shard=group[0].shard_index if group else None)
            self._rr += 1
            rr = self._rr
            return min(
                candidates,
                key=lambda rep: (rep.in_flight,
                                 (rep.replica_index - rr) % len(candidates)))

    def _inc(self, rep: _Replica) -> None:
        with self._lock:
            rep.in_flight += 1
            total = sum(r.in_flight for r in self._replicas[rep.shard_index]
                        ) if rep.shard_index < len(self._replicas) else rep.in_flight
        if self._metrics is not None:
            self._metrics.gauge(
                "router_in_flight", help="sub-requests in flight per shard",
                shard=str(rep.shard_index)).set(float(total))

    def _dec(self, rep: _Replica) -> None:
        with self._lock:
            rep.in_flight = max(0, rep.in_flight - 1)
            group = (self._replicas[rep.shard_index]
                     if rep.shard_index < len(self._replicas) else [rep])
            total = sum(r.in_flight for r in group)
        if self._metrics is not None:
            self._metrics.gauge(
                "router_in_flight", help="sub-requests in flight per shard",
                shard=str(rep.shard_index)).set(float(total))

    def _serve_replica(self, rep: _Replica, xr: np.ndarray) -> np.ndarray:
        action = faults.shard_directive(rep.shard_index)
        if rep.worker is not None:
            # Process mode: the directive crosses the boundary for real —
            # "kill" SIGKILLs the worker mid-request (the ring detects the
            # death and this raises WorkerCrashError for the failover
            # path; the *next* serve respawns it), "slow" stalls inside
            # the worker's serve loop.  The replica itself stays alive:
            # process deaths self-heal, unlike a thread-mode session.
            mapped = {"kill": "sigkill", "slow": "stall"}.get(action)
            with rep.serve_lock:
                out = rep.worker.serve(xr, action=mapped)
            rep.served += 1
            return out
        if action == "kill":
            rep.alive = False
            rep.failures += 1
            raise WorkerCrashError(
                f"shard {rep.shard_index} replica {rep.replica_index} killed "
                f"(injected fault)", shard=rep.shard_index,
                replica=rep.replica_index)
        if action == "slow":
            time.sleep(self._stall_seconds)
        with rep.serve_lock:
            out = rep.session.spmm(xr)
        rep.served += 1
        return out

    def _serve_shard(self, group: list[_Replica], first: _Replica,
                     xr: np.ndarray) -> np.ndarray:
        """One shard sub-request with inline replica failover."""
        tried = {id(first)}
        rep = first
        while True:
            try:
                return self._serve_replica(rep, xr)
            except PipelineError as exc:
                rep.failures += 1
                self.n_failovers += 1
                if exc.context.get("crash_loop"):
                    # A crash-looping worker is done respawning: take the
                    # replica out of rotation so _pick stops offering it.
                    rep.alive = False
                if self._metrics is not None:
                    self._metrics.counter(
                        "router_failovers_total",
                        help="sub-requests re-served on another replica",
                        shard=str(rep.shard_index)).inc()
                obs_events.emit("router.failover", shard=rep.shard_index,
                                replica=rep.replica_index, error=str(exc))
                logger.warning(
                    "shard %d replica %d failed (%s); failing over",
                    rep.shard_index, rep.replica_index, exc)
                try:
                    rep = self._pick(group, tried)
                except WorkerCrashError:
                    raise exc from None
                tried.add(id(rep))

    def _dispatch(self, group: list[_Replica], xr: np.ndarray):
        rep = self._pick(group)
        self._inc(rep)
        fut = rep.lane.submit(self._serve_shard, group, rep, xr)
        fut.add_done_callback(lambda _f, rep=rep: self._dec(rep))
        return fut

    def _fan_out(self, x: np.ndarray):
        """Validate, admit, permute once, dispatch to every shard."""
        x2d, squeeze = self._validate(x)
        if self._closed:
            raise OverloadError("router is closed", reason="closed")
        self._admit()
        xr = (x2d[self.permutation.order]
              if self.permutation is not None else x2d)
        with self._lock:
            groups = list(self._replicas)  # layout snapshot: rebalance-safe
        return [self._dispatch(group, xr) for group in groups], squeeze

    def _merge(self, partials: list[np.ndarray], squeeze: bool) -> np.ndarray:
        out = np.concatenate(partials, axis=0)
        if self.permutation is not None:
            restored = np.empty_like(out)
            restored[self.permutation.order] = out
            out = restored
        return out[:, 0] if squeeze else out

    def _finish(self, t0: float) -> None:
        self.n_requests += 1
        if self._metrics is not None:
            self._m_requests.inc()
            self._m_latency.observe(time.perf_counter() - t0)

    def spmm(self, x: np.ndarray, *, deadline: float | None = None) -> np.ndarray:
        """One request: ``A @ x`` in the caller's vertex order (blocking).

        ``deadline`` (default: the router's) bounds the whole fan-out/merge
        wait; a miss raises :class:`DeadlineExceeded` while the straggler
        lane finishes in the background — the caller never hangs.
        """
        t0 = time.perf_counter()
        budget = self.deadline if deadline is None else deadline
        futures, squeeze = self._fan_out(x)
        partials = []
        for fut in futures:
            remaining = None
            if budget is not None:
                remaining = budget - (time.perf_counter() - t0)
            try:
                if remaining is not None and remaining <= 0:
                    raise FuturesTimeoutError()
                partials.append(fut.result(timeout=remaining))
            except FuturesTimeoutError:
                raise DeadlineExceeded(
                    f"sharded request missed its {budget:.3f}s deadline "
                    f"({len(partials)}/{len(futures)} shard(s) merged)",
                    deadline=budget, merged=len(partials),
                    n_shards=len(futures)) from None
        out = self._merge(partials, squeeze)
        self._finish(t0)
        return out

    async def aspmm(self, x: np.ndarray, *,
                    deadline: float | None = None) -> np.ndarray:
        """The same request cycle, awaitable: fan out, await, merge."""
        t0 = time.perf_counter()
        budget = self.deadline if deadline is None else deadline
        futures, squeeze = self._fan_out(x)
        gathered = asyncio.gather(*(asyncio.wrap_future(f) for f in futures))
        try:
            partials = await asyncio.wait_for(gathered, timeout=budget)
        except asyncio.TimeoutError:
            raise DeadlineExceeded(
                f"sharded request missed its {budget:.3f}s deadline",
                deadline=budget, n_shards=len(futures)) from None
        out = self._merge(partials, squeeze)
        self._finish(t0)
        return out

    def submit(self, x: np.ndarray):
        """Pipeline one request; returns a future of the merged result.

        Consecutive submissions overlap: while one request's sub-requests
        drain through the shard lanes, the next request's are already
        queued behind them — the throughput mode the scaling benchmark
        measures.  Admission applies per request at fan-out time.
        """
        if self._closed:
            raise OverloadError("router is closed", reason="closed")
        return self._front.submit(self.spmm, x)

    # -- load management ----------------------------------------------------
    def shard_load(self) -> list[dict]:
        """Live per-shard load: in-flight, served, failures, replicas."""
        with self._lock:
            groups = list(self._replicas)
        out = []
        for i, group in enumerate(groups):
            out.append({
                "shard": i,
                "rows": [self.shards.specs[i].start, self.shards.specs[i].stop],
                "replicas": len(group),
                "alive": sum(1 for rep in group if rep.alive),
                "in_flight": sum(rep.in_flight for rep in group),
                "served": sum(rep.served for rep in group),
                "failures": sum(rep.failures for rep in group),
            })
        return out

    def hottest_shard(self) -> int:
        """The shard with the most live load (in-flight, then served)."""
        load = self.shard_load()
        return max(load, key=lambda s: (s["in_flight"], s["served"]))["shard"]

    def replicate(self, shard_index: int) -> int:
        """Add one replica over ``shard_index``'s operand; returns the count.

        The new replica shares the shard's operand (and therefore the
        engine's cached execution plan) but owns its own session and lane,
        so the shard's sub-requests immediately spread over one more
        serial queue.
        """
        with self._lock:
            group = self._replicas[shard_index]
            operand = group[0].operand
            rep = self._make_replica(shard_index, len(group), operand)
            group.append(rep)
            count = len(group)
        self._set_replica_gauge(shard_index, count)
        obs_events.emit("router.replicate", shard=shard_index, replicas=count)
        logger.info("shard %d replicated: %d replica(s)", shard_index, count)
        return count

    def maybe_replicate(self, *, factor: float = 1.5,
                        max_replicas: int = 4) -> int | None:
        """Replicate the hottest shard when its load runs ahead of the mean.

        Load is the live in-flight depth plus lifetime served count per
        shard; when the hottest shard's load exceeds ``factor`` times the
        mean (and it has fewer than ``max_replicas`` replicas), one replica
        is added.  Returns the replicated shard index, or ``None``.
        """
        load = self.shard_load()
        if len(load) < 2:
            return None
        scores = [s["in_flight"] + s["served"] for s in load]
        mean = sum(scores) / len(scores)
        hot = max(range(len(load)), key=lambda i: scores[i])
        if mean <= 0 or scores[hot] <= factor * mean:
            return None
        if load[hot]["replicas"] >= max_replicas:
            return None
        self.replicate(hot)
        return hot

    def rebalance(self) -> tuple[int, int] | None:
        """Split the hottest shard at a v-aligned midpoint into two shards.

        The hot shard's operand is row-sliced (densify → cut → recompress
        through the registry) into two conforming halves; the router's
        layout is swapped wholesale under the lock, so in-flight requests
        merge on the snapshot they fanned out over while new requests see
        the finer layout.  Shards after the split point are re-indexed
        (sessions rebuilt so their ``shard`` metric labels stay truthful).
        Returns the new ``(left, right)`` indices, or ``None`` when the
        hottest shard is a single tile and cannot split.
        """
        hot = self.hottest_shard()
        spec = self.shards.specs[hot]
        align = self.shards.align
        tiles = max(1, spec.size // align)
        mid = spec.start + (tiles // 2) * align
        if mid <= spec.start or mid >= spec.stop:
            return None
        with self._lock:
            old_groups = self._replicas
            operand = old_groups[hot][0].operand
            hot_replicas = len(old_groups[hot])
        halves = [ShardSpec(0, 0, mid - spec.start),
                  ShardSpec(1, mid - spec.start, spec.size)]
        compressed = [
            registry.compress(sl, self.shards.backend, self.shards.pattern)
            for sl in split_operand_rows(operand, halves)
        ]

        new_specs: list[ShardSpec] = []
        new_operands = []
        new_devices = [] if self._devices is not None else None
        for s, op in zip(self.shards.specs, self.shards.operands):
            if s.index != hot:
                new_specs.append(ShardSpec(len(new_specs), s.start, s.stop,
                                           cache_key=s.cache_key,
                                           cached=s.cached))
                new_operands.append(op)
                if new_devices is not None:
                    new_devices.append(self._devices[s.index])
                continue
            # The split halves are in-memory only (no cache key: their
            # geometry no longer matches the build-time shard layout).
            new_specs.append(ShardSpec(len(new_specs), spec.start, mid))
            new_specs.append(ShardSpec(len(new_specs), mid, spec.stop))
            new_operands.extend(compressed)
            if new_devices is not None:
                # Both halves stay on the parent shard's device until the
                # operator reassigns one — splitting does not conjure
                # hardware out of thin air.
                new_devices.extend([self._devices[s.index]] * 2)

        with self._lock:
            self._devices = new_devices
            self.shards.specs = new_specs
            self.shards.operands = new_operands
            self.shards.plans = [None] * len(new_specs)
            self._latency_views = [self._latency_view(i)
                                   for i in range(len(new_specs))]
            new_groups: list[list[_Replica]] = []
            retired: list[_Replica] = []
            for i, s in enumerate(new_specs):
                if i < hot:
                    new_groups.append(old_groups[i])
                    continue
                count = hot_replicas if i in (hot, hot + 1) else len(
                    old_groups[i - 1])
                new_groups.append([
                    self._make_replica(i, r, new_operands[i])
                    for r in range(count)
                ])
                if i > hot + 1:
                    retired.extend(old_groups[i - 1])
            retired.extend(old_groups[hot])
            self._replicas = new_groups
        for i, group in enumerate(self._replicas):
            self._set_replica_gauge(i, len(group))
        for rep in retired:
            if rep.worker is not None:
                # Queue the worker shutdown *behind* any in-flight ring
                # round-trip on its own lane: the old layout finishes its
                # requests, then the process exits and the segment unlinks.
                rep.lane.submit(rep.worker.close)
        with self._lock:
            self._retired.extend(retired)
        for rep in retired:
            rep.lane.shutdown(wait=False)  # drains queued work, then exits
        self.n_rebalances += 1
        obs_events.emit("router.rebalance", shard=hot, at=mid,
                        n_shards=len(new_specs))
        logger.info("rebalanced: split shard %d at row %d (%d shard(s) now)",
                    hot, mid, len(new_specs))
        return hot, hot + 1

    # -- health --------------------------------------------------------------
    def health(self) -> dict:
        """Liveness verdict: majority rule over per-shard replica health.

        A shard is unhealthy when none of its replicas is alive.  An
        unhealthy *minority* leaves ``healthy`` true but sets
        ``degraded`` — ``/healthz`` stays 200 so a half-alive deployment
        is not pulled from rotation while it still serves (requests
        touching dead shards fail with the taxonomy; the rest is noise-
        free).  An unhealthy *majority* (or every shard, including the
        1-shard case) flips ``healthy`` — 503.
        """
        load = self.shard_load()
        unhealthy = sorted(s["shard"] for s in load if s["alive"] == 0)
        n = len(load)
        healthy = len(unhealthy) * 2 < n if unhealthy else True
        return {
            "healthy": healthy,
            "degraded": bool(unhealthy) and healthy,
            "n_shards": n,
            "unhealthy_shards": unhealthy,
            "shards": {
                str(s["shard"]): {
                    "healthy": s["alive"] > 0,
                    "replicas": s["replicas"],
                    "alive": s["alive"],
                    "rows": s["rows"],
                    "served": s["served"],
                    "in_flight": s["in_flight"],
                    "failures": s["failures"],
                }
                for s in load
            },
        }

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Drain the front and every lane; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._front.shutdown(wait=True)
        with self._lock:
            groups = list(self._replicas)
            retired = list(self._retired)
            self._retired = []
        for group in groups:
            for rep in group:
                rep.lane.shutdown(wait=True)
                if rep.worker is not None:
                    rep.worker.close()  # joins the process, unlinks the ring
                else:
                    rep.session.close()
        for rep in retired:
            rep.lane.shutdown(wait=True)  # runs any queued worker.close
            if rep.worker is not None:
                rep.worker.close()  # idempotent: covers a skipped queue

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (f"ShardRouter(n_shards={self.n_shards}, "
                f"backend={self.shards.backend!r}, shape={self.shape}, "
                f"executor={self.executor!r}, requests={self.n_requests})")
