"""Offline preprocessing: autoselect → reorder → split → compress.

One :class:`PreprocessPlan` describes everything the offline step does to a
graph — which V:N:M pattern to target (or to auto-search), how hard to try,
which operator structure to build (raw / normalized / self-looped adjacency)
and which serving backend to compress for.  :func:`preprocess` executes the
plan on one graph; :func:`preprocess_many` fans a batch out through
:mod:`repro.parallel`'s process pool.  Both consult an optional
:class:`~repro.pipeline.cache.ArtifactCache` first, so repeated
preprocessing of the same graph is a load, not a re-search (paper §4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.autoselect import find_best_pattern
from ..core.bitmatrix import BitMatrix
from ..obs import events as obs_events
from ..obs import trace as obs_trace
from ..core.patterns import VNMPattern
from ..core.permutation import Permutation
from ..core.reorder import reorder
from ..core.scores import improvement_rate
from ..graphs.graph import Graph
from ..parallel import reorder_many
from ..sptc.csr import CSRMatrix
from . import registry
from .resilience import PipelineError, PreprocessError, WorkerCrashError

__all__ = ["PreprocessPlan", "PreprocessResult", "preprocess", "preprocess_many"]

# Backends whose operands the artifact cache can persist (see sptc/serialize).
_CACHEABLE_BACKENDS = ("vnm", "hybrid")


@dataclass(frozen=True)
class PreprocessPlan:
    """Declarative description of one offline preprocessing run.

    ``pattern=None`` runs the paper's §5 progressive-doubling search
    (:func:`find_best_pattern`) with the ``select`` policy; a concrete
    :class:`VNMPattern` skips the search.  ``normalized`` /
    ``add_self_loops`` choose the operator structure that gets compressed
    (GCN's Â needs both; plain SpMM serving wants the raw adjacency).
    """

    pattern: VNMPattern | None = None
    backend: str = "hybrid"
    max_iter: int = 10
    time_budget: float | None = None
    select: str = "fastest"
    normalized: bool = False
    add_self_loops: bool = False
    reorder_kwargs: dict = field(default_factory=dict)
    # Compile the operand's execution plan as a row-segmented plan
    # (repro.perf.segment): conforming row blocks on the SPTC path, the
    # violating tail on a CSR sub-plan.  Affects the plan sidecar only —
    # the artefact itself is identical either way.
    segmented: bool = False

    def key_fields(self) -> dict:
        """The plan fields that determine the artifact — the cache-key input."""
        fields = {
            "pattern": str(self.pattern) if self.pattern is not None else "auto",
            "backend": self.backend,
            "max_iter": self.max_iter,
            "time_budget": self.time_budget,
            "select": self.select,
            "normalized": self.normalized,
            "add_self_loops": self.add_self_loops,
            "reorder_kwargs": sorted(self.reorder_kwargs.items()),
        }
        # Only present when set, so pre-segmentation cache keys stay valid.
        if self.segmented:
            fields["segmented"] = True
        return fields


@dataclass
class PreprocessResult:
    """Everything serving needs: the operand, its basis, and provenance.

    ``plan`` carries the operand's precompiled
    :class:`~repro.perf.engine.ExecutionPlan` (built here, or loaded from
    the artefact cache's ``<key>.plan.pkl`` sidecar) so serving starts
    with warm gather indices; ``None`` when the backend is unplannable.
    """

    pattern: VNMPattern
    permutation: Permutation
    operand: Any
    backend: str
    cached: bool = False
    cache_key: str | None = None
    summary: dict = field(default_factory=dict)
    plan: Any = None

    @property
    def improvement_rate(self) -> float:
        return improvement_rate(
            self.summary.get("initial_invalid_vectors", 0),
            self.summary.get("final_invalid_vectors", 0),
        )


def _reorder_target(graph: Graph | BitMatrix, plan: PreprocessPlan) -> BitMatrix:
    """The bit structure the reordering optimizes: A, or A + I with loops."""
    bm = graph.bitmatrix() if isinstance(graph, Graph) else graph
    if plan.add_self_loops:
        bm = bm.copy()
        for i in range(bm.n_rows):
            bm.set(i, i, 1)
    return bm


def _operator_csr(graph: Graph | BitMatrix, perm: Permutation, plan: PreprocessPlan) -> CSRMatrix:
    """The reordered numeric operator that gets compressed."""
    if isinstance(graph, Graph):
        return graph.relabel(perm).csr(
            normalized=plan.normalized, add_self_loops=plan.add_self_loops
        )
    reordered = graph.permute_rows(perm.order).permute_columns(perm.order)
    if plan.add_self_loops:
        for i in range(reordered.n_rows):
            reordered.set(i, i, 1)
    return CSRMatrix.from_scipy(reordered.to_scipy())


def _plan_operand(operand, key, cache, *, stored: bool, segmented: bool = False):
    """Build (or load) the operand's execution plan; persist it as a sidecar.

    On a cache hit (``stored=True`` means the artefact was just written;
    ``False`` means it was loaded) the ``<key>.plan.pkl`` sidecar is tried
    first and adopted into the engine's per-operand cache — a stale or
    mismatched sidecar falls back to a fresh build, which is then persisted
    so the next load hits.  Unplannable operands return ``None``.

    ``segmented=True`` compiles a row-segmented plan instead (and rejects a
    non-segmented sidecar, and vice versa, so the two plan kinds never
    masquerade as one another across runs).
    """
    from ..perf import engine

    if cache is not None and key is not None and not stored:
        sidecar = cache.load_plan(key)
        if sidecar is not None and (sidecar.backend == "segmented") == segmented:
            try:
                engine.adopt_plan(operand, sidecar)
                return sidecar
            except (TypeError, ValueError):
                pass  # geometry drifted from the artefact: rebuild below
    try:
        if segmented:
            from ..perf.segment import build_segmented_plan

            try:
                built = build_segmented_plan(operand)
            except ValueError:
                # Pattern-less operand: fall back to the regular plan so a
                # segmented preprocess of e.g. a csr backend still serves.
                built = engine.plan_for(operand)
        else:
            built = engine.plan_for(operand)
    except TypeError:
        return None
    if cache is not None and key is not None:
        cache.store_plan(key, built)
    return built


def _search_or_reorder(bm: BitMatrix, plan: PreprocessPlan):
    """Run the pattern search (pattern=None) or a direct reorder; returns
    ``(pattern, permutation, summary)``.

    Offline-stage failures — a search that finds nothing, or a reorder that
    raises — surface as :class:`PreprocessError` so callers catch one
    taxonomy instead of stage-specific exceptions.
    """
    if plan.pattern is None:
        # reorder_kwargs are reorder()-specific knobs; the pattern search
        # drives reorder() itself, so they do not apply here.
        try:
            best = find_best_pattern(
                bm, max_iter=plan.max_iter, select=plan.select,
                attempt_time_budget=plan.time_budget or 30.0,
            )
        except PipelineError:
            raise
        except Exception as exc:
            raise PreprocessError(f"pattern search failed: {exc}") from exc
        if not best.succeeded:
            raise PreprocessError(
                "no conforming V:N:M pattern found; pass an explicit pattern",
                attempts=[str(pat) for pat, _ in best.attempts],
            )
        return best.pattern, best.result.permutation, best.result.summary()
    try:
        res = reorder(
            bm, plan.pattern, max_iter=plan.max_iter,
            time_budget=plan.time_budget, **plan.reorder_kwargs,
        )
    except PipelineError:
        raise
    except Exception as exc:
        raise PreprocessError(
            f"reorder failed for pattern {plan.pattern}: {exc}",
            pattern=str(plan.pattern),
        ) from exc
    return plan.pattern, res.permutation, res.summary()


def preprocess(
    graph: Graph | BitMatrix,
    plan: PreprocessPlan | None = None,
    *,
    cache=None,
) -> PreprocessResult:
    """Execute ``plan`` on one graph, going through ``cache`` when given."""
    plan = plan or PreprocessPlan()
    with obs_trace.span("preprocess", backend=plan.backend) as sp:
        bm = _reorder_target(graph, plan)

        key = None
        if cache is not None and plan.backend in _CACHEABLE_BACKENDS:
            from .cache import cache_key

            key = cache_key(bm, plan)
            with obs_trace.span("preprocess.cache_lookup"):
                hit = cache.load(key)
            if hit is not None:
                operand, perm = hit
                sp.set(cached=True)
                obs_events.emit("preprocess.done", cached=True, cache_key=key)
                return PreprocessResult(
                    pattern=operand.pattern, permutation=perm, operand=operand,
                    backend=plan.backend, cached=True, cache_key=key,
                    plan=_plan_operand(operand, key, cache, stored=False,
                                       segmented=plan.segmented),
                )

        pattern, perm, summary = _search_or_reorder(bm, plan)
        with obs_trace.span("preprocess.compress", backend=plan.backend):
            csr = _operator_csr(graph, perm, plan)
            operand = registry.compress(csr, plan.backend, pattern)

        if key is not None:
            with obs_trace.span("preprocess.cache_store"):
                cache.store(key, operand, perm)
        sp.set(cached=False, pattern=str(pattern))
        obs_events.emit(
            "preprocess.done", cached=False, cache_key=key, pattern=str(pattern),
            iterations=summary.get("iterations"),
            improvement_rate=summary.get("improvement_rate"),
        )
        return PreprocessResult(
            pattern=pattern, permutation=perm, operand=operand,
            backend=plan.backend, cached=False, cache_key=key, summary=summary,
            plan=_plan_operand(operand, key, cache, stored=True,
                               segmented=plan.segmented),
        )


def preprocess_many(
    graphs: list,
    plan: PreprocessPlan | None = None,
    *,
    n_workers: int | None = None,
    pool=None,
    cache=None,
) -> list[PreprocessResult]:
    """Batch preprocessing; the reorder stage fans out over a process pool.

    Cache hits are answered up front; only the misses go to the workers.
    ``pool`` accepts a persistent :class:`repro.perf.pool.WorkerPool` so
    repeated batches reuse warm workers (and the batch's packed words
    travel by shared memory — see :mod:`repro.parallel`); without one an
    ephemeral pool is built per call.  With ``plan.pattern=None`` the
    per-graph pattern search runs inline (the search's candidate
    reorderings are themselves the expensive part and differ per graph, so
    there is no shared batch to fan out).
    """
    plan = plan or PreprocessPlan()
    results: list[PreprocessResult | None] = [None] * len(graphs)

    batch_span = obs_trace.span("preprocess_many", graphs=len(graphs), backend=plan.backend)
    with batch_span:
        pending: list[int] = []
        keys: list[str | None] = [None] * len(graphs)
        with obs_trace.span("preprocess.cache_lookup", graphs=len(graphs)):
            for i, graph in enumerate(graphs):
                if cache is not None and plan.backend in _CACHEABLE_BACKENDS:
                    from .cache import cache_key

                    key = cache_key(_reorder_target(graph, plan), plan)
                    keys[i] = key
                    hit = cache.load(key)
                    if hit is not None:
                        operand, perm = hit
                        results[i] = PreprocessResult(
                            pattern=operand.pattern, permutation=perm, operand=operand,
                            backend=plan.backend, cached=True, cache_key=key,
                            plan=_plan_operand(operand, key, cache, stored=False,
                                       segmented=plan.segmented),
                        )
                        continue
                pending.append(i)
        batch_span.set(hits=len(graphs) - len(pending))

        if pending and plan.pattern is not None:
            mats = [_reorder_target(graphs[i], plan) for i in pending]
            try:
                # reorder_many runs each job under a worker-local tracer and
                # grafts the picklable span records back here (see
                # repro.parallel), so per-graph reorder spans survive the
                # process-pool boundary.
                summaries = reorder_many(
                    mats, plan.pattern,
                    n_workers=n_workers,
                    pool=pool,
                    max_iter=plan.max_iter,
                    time_budget=plan.time_budget,
                    **plan.reorder_kwargs,
                )
            except WorkerCrashError as exc:
                # Translate the batch-local job index into the caller's graph
                # index before the error leaves the pipeline.
                job = exc.context.get("index")
                graph_index = pending[job] if isinstance(job, int) and job < len(pending) else None
                raise WorkerCrashError(
                    f"preprocessing worker failed on graph {graph_index}: {exc}",
                    index=graph_index, job_index=job,
                ) from exc
            for i, summ in zip(pending, summaries):
                perm = summ.permutation
                with obs_trace.span("preprocess.compress", index=i, backend=plan.backend):
                    csr = _operator_csr(graphs[i], perm, plan)
                    operand = registry.compress(csr, plan.backend, plan.pattern)
                if keys[i] is not None:
                    with obs_trace.span("preprocess.cache_store", index=i):
                        cache.store(keys[i], operand, perm)
                obs_events.emit(
                    "preprocess.done", cached=False, cache_key=keys[i],
                    pattern=summ.pattern, iterations=summ.iterations,
                    improvement_rate=summ.improvement_rate,
                )
                results[i] = PreprocessResult(
                    pattern=plan.pattern, permutation=perm, operand=operand,
                    backend=plan.backend, cached=False, cache_key=keys[i],
                    plan=_plan_operand(operand, keys[i], cache, stored=True,
                                       segmented=plan.segmented),
                    summary={
                        "pattern": summ.pattern,
                        "iterations": summ.iterations,
                        "initial_invalid_vectors": summ.initial_invalid_vectors,
                        "final_invalid_vectors": summ.final_invalid_vectors,
                        "improvement_rate": summ.improvement_rate,
                        "conforms": summ.conforms,
                        "elapsed_seconds": summ.elapsed_seconds,
                    },
                )
        else:
            for i in pending:
                results[i] = preprocess(graphs[i], plan, cache=cache)

    return results  # type: ignore[return-value]
