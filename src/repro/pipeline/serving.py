"""Online serving over preprocessed artefacts.

A :class:`ServingSession` owns the full request cycle the paper's §4.4
deployment runs per inference: gather the features into the reordered basis
(``x[perm]``), SpMM on the compressed operand through the backend registry
(or a virtual-clock device), and scatter the result back to the original
vertex order.  Sessions are themselves registered as a registry backend, so
:class:`repro.gnn.layers.Aggregator` — and anything else that dispatches
through :func:`repro.pipeline.registry.dispatch_spmm` — consumes them like
any other operand.
"""

from __future__ import annotations

import numpy as np

from ..core.permutation import Permutation
from ..sptc.costmodel import CostModel
from . import registry

__all__ = ["ServingSession"]


class ServingSession:
    """Permute-in / SpMM / permute-back over one preprocessed operand.

    ``operand`` is any registry-dispatchable format (typically the
    ``HybridVNM`` or ``VNMCompressed`` a :func:`~repro.pipeline.preprocess.
    preprocess` run produced).  ``permutation`` maps the reordered basis back
    to the caller's vertex order; ``None`` serves in the operand's own basis.
    With a ``device`` every request advances that device's virtual clock
    under ``tag``; without one, requests accumulate cost-model time locally
    in :attr:`modelled_seconds`.
    """

    def __init__(
        self,
        operand,
        permutation: Permutation | None = None,
        *,
        device=None,
        cost_model: CostModel | None = None,
        tag: str = "serving",
    ):
        self.operand = operand
        self.permutation = permutation
        self.device = device
        self.cost_model = cost_model or CostModel()
        self.tag = tag
        self.n_requests = 0
        self.modelled_seconds = 0.0

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_artifact(cls, path, **kwargs) -> "ServingSession":
        """Open a session over a ``save_preprocessed`` artefact on disk."""
        from ..sptc.serialize import load_preprocessed

        operand, permutation = load_preprocessed(path)
        return cls(operand, permutation, **kwargs)

    @classmethod
    def from_result(cls, result, **kwargs) -> "ServingSession":
        """Open a session over a :class:`PreprocessResult`."""
        return cls(result.operand, result.permutation, **kwargs)

    # -- properties --------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.operand.shape

    @property
    def backend_name(self) -> str:
        return registry.backend_for(self.operand).name

    # -- the request cycle -------------------------------------------------
    def spmm(self, x: np.ndarray) -> np.ndarray:
        """One inference request: ``A @ x`` in the caller's vertex order."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[0] != self.shape[1]:
            raise ValueError(
                f"feature rows {x.shape[0]} != operand columns {self.shape[1]}"
            )
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        if self.permutation is not None:
            x = x[self.permutation.order]
        if self.device is not None:
            out = self.device.spmm(self.operand, x, tag=self.tag)
        else:
            out = registry.dispatch_spmm(self.operand, x)
            self.modelled_seconds += registry.model_spmm_time(
                self.cost_model, self.operand, x.shape[1]
            )
        if self.permutation is not None:
            restored = np.empty_like(out)
            restored[self.permutation.order] = out
            out = restored
        self.n_requests += 1
        return out[:, 0] if squeeze else out

    # Aggregator (and any dispatch_spmm caller) treats a session like an
    # operand, so mm/mm_t spell out the symmetric-operator convention.
    def mm(self, x: np.ndarray) -> np.ndarray:
        return self.spmm(x)

    def aggregator(self, **kwargs):
        """An :class:`~repro.gnn.layers.Aggregator` running on this session."""
        from ..gnn.layers import Aggregator

        return Aggregator(self, **kwargs)

    def model_request_seconds(self, h: int) -> float:
        """Cost-model time of one request at feature width ``h``."""
        return registry.model_spmm_time(self.cost_model, self.operand, h)

    def __repr__(self) -> str:
        return (
            f"ServingSession(backend={self.backend_name!r}, shape={self.shape}, "
            f"requests={self.n_requests})"
        )


# Sessions dispatch like operands: Aggregator and friends need no special
# case, and a session's own permutation/device handling stays in charge.
registry.register_backend(registry.Backend(
    name="serving",
    operand_types=(ServingSession,),
    spmm=lambda session, b: session.spmm(b),
    kernel_name="serving_session",
), overwrite=True)
