"""Online serving over preprocessed artefacts.

A :class:`ServingSession` owns the full request cycle the paper's §4.4
deployment runs per inference: gather the features into the reordered basis
(``x[perm]``), SpMM on the compressed operand through the backend registry
(or a virtual-clock device), and scatter the result back to the original
vertex order.  Sessions are themselves registered as a registry backend, so
:class:`repro.gnn.layers.Aggregator` — and anything else that dispatches
through :func:`repro.pipeline.registry.dispatch_spmm` — consumes them like
any other operand.

Fault tolerance: each request runs under a :class:`RetryPolicy`
(exponential backoff + jitter, optional per-request deadline).  When the
kernel keeps failing, the session walks its backend's ``fallbacks`` ladder
(:func:`repro.pipeline.registry.degrade`) — e.g. ``vnm → bsr → csr →
dense`` — rebuilding the operand in a slower-but-correct format, recording
a :class:`DowngradeEvent` in :attr:`resilience`, and continuing to serve
instead of erroring.  Failures surface only as the
:class:`~repro.pipeline.resilience.PipelineError` taxonomy.
"""

from __future__ import annotations

import logging
import time

import numpy as np

from ..core.permutation import Permutation
from ..obs import events as obs_events
from ..obs import trace as obs_trace
from ..perf import engine as perf_engine
from ..sptc.costmodel import CostModel
from . import guard, registry
from .resilience import (
    BackendExecutionError,
    CircuitOpenError,
    DeadlineExceeded,
    DowngradeEvent,
    ResilienceStats,
    RetryPolicy,
)

__all__ = ["ServingSession"]

logger = logging.getLogger("repro.pipeline.serving")


class ServingSession:
    """Permute-in / SpMM / permute-back over one preprocessed operand.

    ``operand`` is any registry-dispatchable format (typically the
    ``HybridVNM`` or ``VNMCompressed`` a :func:`~repro.pipeline.preprocess.
    preprocess` run produced).  ``permutation`` maps the reordered basis back
    to the caller's vertex order; ``None`` serves in the operand's own basis.
    With a ``device`` every request advances that device's virtual clock
    under ``tag``; without one, requests accumulate cost-model time locally
    in :attr:`modelled_seconds`.

    ``retry_policy`` governs per-request retry/backoff/deadline (default:
    3 attempts).  Downgrades are sticky: once a request forces a fallback,
    later requests serve from the degraded operand; :attr:`resilience`
    records every retry and :class:`DowngradeEvent`.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) turns on per-request
    observability: the ``spmm_latency_seconds`` histogram, request/retry/
    downgrade counters, and predicted-vs-measured feeding of the cost
    model's :class:`~repro.sptc.costmodel.Calibration`.  Left ``None`` (the
    default) the request path carries no timing or bookkeeping at all —
    the observability-off hot path is the unchanged pre-obs code path.

    ``batch_policy`` (a :class:`~repro.perf.batching.BatchPolicy`) tunes
    the micro-batched :meth:`submit` path — flush deadline, batch shape
    caps, queue capacity; ``None`` uses the defaults.  :meth:`spmm` is
    unaffected either way.  ``admission`` (a
    :class:`~repro.pipeline.guard.AdmissionPolicy`) adds load shedding to
    :meth:`submit`: a request exceeding the queue-depth bound or whose
    estimated completion (live ``spmm_latency_seconds`` p95) misses the
    deadline is rejected immediately with
    :class:`~repro.pipeline.resilience.OverloadError` instead of queueing.

    ``engine`` (default ``True``) routes kernels through
    :func:`repro.perf.engine.execute` — precompiled execution plans with
    reusable scratch — instead of the naive dispatch; results are
    bit-identical.  ``precision="float32"`` opts into the engine's fp32
    compute path, taken only when :func:`repro.perf.engine.
    fp32_within_bound` admits the operand (otherwise the session stays on
    float64 and logs a warning).  :meth:`tune` picks backend and dtype
    empirically and records the decision on :attr:`tuned`.

    ``recorder`` (a :class:`repro.obs.FlightRecorder`) captures per-request
    exemplars: sampled requests carry a real span tree, every failure is
    kept.  Orthogonal to ``metrics`` — either, both, or neither may be on;
    only with both off does :meth:`spmm` take the unchanged zero-clock
    path.  ``latency_window`` (typically a
    :class:`repro.obs.WindowedHistogram` over ``spmm_latency_seconds``)
    replaces the lifetime histogram as the admission policy's latency
    signal, so shedding follows the *recent* p95.

    ``shard`` labels every metric series this session emits with
    ``{shard="<value>"}`` — the per-shard observability a
    :class:`repro.pipeline.sharded.ShardRouter` deployment needs to tell
    its row-partition sessions apart.  ``None`` (the default) keeps the
    label-less series of an unsharded session.
    """

    def __init__(
        self,
        operand,
        permutation: Permutation | None = None,
        *,
        device=None,
        cost_model: CostModel | None = None,
        tag: str = "serving",
        retry_policy: RetryPolicy | None = None,
        metrics=None,
        batch_policy=None,
        admission=None,
        engine: bool = True,
        precision: str = "float64",
        recorder=None,
        latency_window=None,
        shard: str | None = None,
    ):
        self.operand = operand
        self.permutation = permutation
        self.device = device
        self.cost_model = cost_model or CostModel()
        self.tag = tag
        self.retry_policy = retry_policy or RetryPolicy()
        self.resilience = ResilienceStats()
        self.admission = admission
        self.original_backend = registry.backend_for(operand).name
        self.n_requests = 0
        self.modelled_seconds = 0.0
        self.batch_policy = batch_policy
        self._batcher = None
        self._metrics = metrics
        self.recorder = recorder
        self.latency_window = latency_window
        # Per-shard metric series: a sharded deployment labels each shard
        # session's latency/row series so `repro top`, windowed admission,
        # and the fan-out router can tell the shards apart.  ``None`` (the
        # default, every unsharded session) emits the exact label-less
        # series the rest of the stack already scrapes.
        self.shard = None if shard is None else str(shard)
        self._shard_labels = {} if shard is None else {"shard": self.shard}
        self.operand_key = (
            f"{self.original_backend}:{operand.shape[0]}x{operand.shape[1]}"
        )
        self._path_key = None
        self._path_counters: list = []
        self._engine = engine
        self._dtype = None
        self.tuned = None
        if precision not in ("float64", "float32"):
            raise ValueError(f"precision must be 'float64' or 'float32', got {precision!r}")
        self.precision = "float64"
        if precision == "float32":
            self._enable_float32()
        if metrics is not None:
            self._m_latency = metrics.histogram(
                "spmm_latency_seconds", help="end-to-end serve request latency",
                **self._shard_labels,
            )
            self._m_requests = metrics.counter(
                "serve_requests_total", help="spmm requests served",
                **self._shard_labels,
            )
            self._m_retries = metrics.counter(
                "serve_retries_total", help="kernel attempts retried",
                **self._shard_labels,
            )
            self._m_downgrades = metrics.counter(
                "serve_downgrades_total", help="backend fallback downgrades",
                **self._shard_labels,
            )
            self._m_residual = metrics.gauge(
                "costmodel_residual",
                help="mean relative residual of predicted vs measured kernel time",
            )
            self._m_drain = metrics.histogram(
                "serve_drain_seconds",
                help="time close(drain=True) spent resolving queued requests",
            )

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_artifact(cls, path, **kwargs) -> "ServingSession":
        """Open a session over a ``save_preprocessed`` artefact on disk."""
        from ..sptc.serialize import load_preprocessed

        operand, permutation = load_preprocessed(path)
        return cls(operand, permutation, **kwargs)

    @classmethod
    def from_result(cls, result, **kwargs) -> "ServingSession":
        """Open a session over a :class:`PreprocessResult`.

        A plan attached by :func:`~repro.pipeline.preprocess.preprocess`
        (built fresh or loaded from the artefact cache) is adopted into the
        engine's plan cache, so the first request skips the plan build.
        """
        plan = getattr(result, "plan", None)
        if plan is not None:
            try:
                perf_engine.adopt_plan(result.operand, plan)
            except (TypeError, ValueError):
                logger.debug("stale plan on preprocess result ignored", exc_info=True)
        return cls(result.operand, result.permutation, **kwargs)

    # -- properties --------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.operand.shape

    @property
    def backend_name(self) -> str:
        return registry.backend_for(self.operand).name

    @property
    def degraded(self) -> bool:
        """Whether any request has forced this session down a fallback."""
        return self.resilience.degraded

    # -- the request cycle -------------------------------------------------
    def _validate_features(self, x: np.ndarray) -> tuple[np.ndarray, bool]:
        """Coerce and validate one request's features; returns ``(x2d, squeeze)``.

        Shared by the synchronous :meth:`spmm` path and the micro-batched
        :meth:`submit` path — a malformed request always fails in the
        caller, synchronously, and never reaches a coalesced batch.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim > 2:
            raise ValueError(
                f"features must be 1-D or 2-D (vertices[, channels]), got "
                f"{x.ndim}-D input of shape {x.shape}"
            )
        if x.shape[0] != self.shape[1]:
            raise ValueError(
                f"feature rows {x.shape[0]} != operand columns {self.shape[1]}"
            )
        if not np.isfinite(x).all():
            raise ValueError("features contain non-finite values (nan or inf)")
        squeeze = x.ndim == 1
        return (x[:, None] if squeeze else x), squeeze

    def spmm(self, x: np.ndarray) -> np.ndarray:
        """One inference request: ``A @ x`` in the caller's vertex order."""
        x, squeeze = self._validate_features(x)
        if self._metrics is None and self.recorder is None:
            # Observability off: the unchanged hot path — no clocks, no
            # bookkeeping beyond the request counter.
            out = self._serve_cycle(x)
            self.n_requests += 1
            return out[:, 0] if squeeze else out
        probe = None
        if self.recorder is not None:
            probe = self.recorder.begin(
                backend=self.backend_name, h=int(x.shape[1]),
                operand_key=self.operand_key,
            )
        retries0 = self.resilience.retries
        downgrades0 = len(self.resilience.downgrades)
        t0 = time.perf_counter()
        try:
            if probe is not None:
                # The probe installs a local tracer for sampled requests,
                # so the serve.request span tree lands on the exemplar.
                with probe, obs_trace.span("serve.request", h=x.shape[1]):
                    out = self._serve_cycle(x)
            else:
                with obs_trace.span("serve.request", h=x.shape[1]):
                    out = self._serve_cycle(x)
        except Exception as exc:
            if probe is not None:
                probe.finish("error", error=exc,
                             **self._request_outcome(retries0, downgrades0))
            raise
        self.n_requests += 1
        if self._metrics is not None:
            self._m_requests.inc()
            self._m_latency.observe(time.perf_counter() - t0)
            for counter, rows in self._path_rows_counters():
                counter.inc(rows)
        if probe is not None:
            probe.finish("ok", backend=self.backend_name,
                         **self._request_outcome(retries0, downgrades0))
        return out[:, 0] if squeeze else out

    def _request_outcome(self, retries0: int, downgrades0: int) -> dict:
        """Exemplar fields describing what one request went through."""
        plan = perf_engine.cached_plan(self.operand) if self._engine else None
        return {
            "variant": getattr(plan, "variant", None),
            "retries": self.resilience.retries - retries0,
            "downgrades": tuple(
                e.to_backend for e in self.resilience.downgrades[downgrades0:]
            ),
        }

    def _path_rows_counters(self) -> list:
        """Cached ``(counter, rows)`` pairs for ``serve_path_rows_total``.

        Plain plans put every operand row on the session's backend; a
        segmented plan splits rows by its ``row_coverage``.  Rebuilt only
        when the plan (or a sticky per-group downgrade) changes, so the
        per-request cost is one key compare plus the counter adds.
        """
        plan = perf_engine.cached_plan(self.operand) if self._engine else None
        if plan is not None and getattr(plan, "backend", None) == "segmented":
            subs = getattr(plan, "_subs", None) or ()
            key = (id(plan), sum(len(s.downgraded_from) for s in subs))
            if key == self._path_key:
                return self._path_counters
            coverage = {
                backend: entry["rows"]
                for backend, entry in plan.summary()["row_coverage"].items()
            }
        else:
            key = ("plain", self.backend_name)
            if key == self._path_key:
                return self._path_counters
            coverage = {self.backend_name: self.shape[0]}
        self._path_key = key
        self._path_counters = [
            (self._metrics.counter(
                "serve_path_rows_total",
                help="operand rows routed per kernel path, accumulated "
                     "per request",
                backend=backend, **self._shard_labels,
            ), float(rows))
            for backend, rows in sorted(coverage.items())
        ]
        return self._path_counters

    def _serve_cycle(self, x: np.ndarray) -> np.ndarray:
        """Permute in, execute with recovery, permute back."""
        if self.permutation is not None:
            x = x[self.permutation.order]
        out = self._execute_with_recovery(x)
        if self.permutation is not None:
            restored = np.empty_like(out)
            restored[self.permutation.order] = out
            out = restored
        return out

    def _enable_float32(self) -> None:
        """Turn on the engine's fp32 compute path if the precision model
        admits it for this operand; otherwise stay on float64 (logged)."""
        try:
            ok = perf_engine.fp32_within_bound(self.operand)
        except TypeError:
            ok = False  # unplannable operand: no fp32 path to enable
        if ok:
            self._dtype = np.float32
            self.precision = "float32"
        else:
            logger.warning(
                "float32 serving requested but the operand exceeds the "
                "fp32 row-scaled error bound (or has no plan); staying on float64"
            )

    def _kernel(self, operand, x: np.ndarray) -> np.ndarray:
        """One kernel launch: planned engine path, or naive dispatch."""
        if self._engine:
            return perf_engine.execute(operand, x, dtype=self._dtype)
        return registry.dispatch_spmm(operand, x)

    def _execute(self, operand, x: np.ndarray) -> np.ndarray:
        """One kernel attempt on ``operand`` (device clock or local model)."""
        if self.device is not None:
            return self.device.spmm(operand, x, tag=self.tag)
        if self._metrics is None:
            out = self._kernel(operand, x)
            self.modelled_seconds += registry.model_spmm_time(
                self.cost_model, operand, x.shape[1]
            )
            return out
        # Metrics on: measure the kernel and feed the cost model's
        # calibration so predicted-vs-measured residuals stay observable.
        t0 = time.perf_counter()
        out = self._kernel(operand, x)
        measured = time.perf_counter() - t0
        predicted = registry.model_spmm_time(self.cost_model, operand, x.shape[1])
        self.modelled_seconds += predicted
        self.cost_model.calibration.observe(predicted, measured)
        self._m_residual.set(self.cost_model.calibration.mean_residual)
        return out

    def _execute_with_recovery(self, x: np.ndarray) -> np.ndarray:
        """Retry under the policy, then walk the fallback ladder."""

        def count_retry(attempt: int, exc: BaseException) -> None:
            self.resilience.retries += 1
            if self._metrics is not None:
                self._m_retries.inc()
            obs_events.emit(
                "serve.retry", backend=self.backend_name, attempt=attempt,
                error=str(exc),
            )
            logger.debug(
                "retrying spmm on backend %r (attempt %d): %s",
                self.backend_name, attempt, exc,
            )

        try:
            # CircuitOpenError is carved out of the retry budget: a skipped
            # call cannot succeed until the breaker's cooldown expires, so
            # the session degrades immediately with zero retries burned.
            return self.retry_policy.run(
                lambda: self._execute(self.operand, x),
                retry_on=(BackendExecutionError,),
                give_up_on=(CircuitOpenError,),
                on_retry=count_retry,
                describe=f"serving spmm on backend {self.backend_name!r}",
            )
        except DeadlineExceeded:
            raise
        except BackendExecutionError as failure:
            return self._degrade_and_serve(x, failure)

    def _degrade_and_serve(self, x: np.ndarray, failure: BackendExecutionError) -> np.ndarray:
        """Rebuild the operand down the fallback ladder until a kernel works.

        A successful rung replaces :attr:`operand` (sticky downgrade — the
        next request goes straight to the working backend) and is recorded;
        only when the whole ladder fails does the original error propagate.
        """
        failed = registry.backend_for(self.operand).name
        board = guard.active_breakers()
        for name in registry.fallback_chain(self.operand):
            if board is not None and board.would_reject(name):
                # An open rung cannot serve until its cooldown expires —
                # step over it instead of paying a rebuild just to be
                # rejected (a *half-open* rung is still tried: the ladder
                # is exactly the probe traffic that can heal it).
                obs_events.emit("serve.breaker_skip", backend=name,
                                from_backend=failed)
                logger.info(
                    "fallback ladder skipping backend %r: breaker open", name)
                continue
            try:
                operand = registry.degrade(self.operand, name)
                out = self._execute(operand, x)
            except (BackendExecutionError, TypeError, ValueError) as exc:
                if isinstance(exc, BackendExecutionError):
                    failure = exc
                continue
            self.operand = operand
            self.resilience.downgrades.append(
                DowngradeEvent(from_backend=failed, to_backend=name, reason=str(failure))
            )
            if self._metrics is not None:
                self._m_downgrades.inc()
            obs_events.emit(
                "serve.downgrade", from_backend=failed, to_backend=name,
                reason=str(failure),
            )
            logger.warning(
                "serving downgraded from backend %r to %r: %s",
                failed, name, failure,
            )
            return out
        raise failure

    # -- micro-batched serving (repro.perf.batching) -----------------------
    @property
    def batcher(self):
        """The session's :class:`~repro.perf.batching.MicroBatcher`, built
        lazily on first :meth:`submit` (``None`` until then)."""
        return self._batcher

    def submit(self, x: np.ndarray):
        """Enqueue one request for micro-batched serving; returns a future.

        Compatible requests (same operand/backend — i.e. everything on this
        session) are coalesced into one stacked SpMM whose per-request
        outputs are numerically identical to :meth:`spmm`; the batch goes
        out when full or when the :class:`~repro.perf.batching.BatchPolicy`
        flush deadline expires, so tail latency stays bounded.  Failures
        arrive on the future; a crashed batch is re-served per request, so
        only requests that fail on their own fail at all.
        """
        if self._batcher is None:
            from ..perf.batching import MicroBatcher

            self._batcher = MicroBatcher(self, self.batch_policy)
        return self._batcher.submit(x)

    def flush(self) -> None:
        """Serve every queued :meth:`submit` request now (no-op if none)."""
        if self._batcher is not None:
            self._batcher.flush()

    def close(self, drain: bool = True) -> None:
        """Shut down the micro-batcher; direct :meth:`spmm` still works.

        ``drain=True`` (the default) serves every queued :meth:`submit`
        future before the batcher refuses new work — no caller is ever left
        blocked on ``.result()``.  ``drain=False`` abandons the queue
        instead: pending futures resolve with
        :class:`~repro.pipeline.resilience.OverloadError` (reason
        ``closed``).  Either way every queued future is resolved — even
        when the final flush itself raises, the error is propagated *and*
        delivered to the queued futures.  Drain time is observed on the
        ``serve_drain_seconds`` histogram when metrics are enabled.
        """
        if self._batcher is None:
            return
        batcher, self._batcher = self._batcher, None
        if self._metrics is None:
            batcher.close(drain=drain)
            return
        t0 = time.perf_counter()
        try:
            batcher.close(drain=drain)
        finally:
            self._m_drain.observe(time.perf_counter() - t0)

    def __enter__(self) -> "ServingSession":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- autotuning (repro.perf.tuner) -------------------------------------
    def tune(self, h: int = 64, *, cache=None, backends=None, repeats: int = 3,
             seed: int = 0, include_float32: bool = False,
             include_segmented: bool = False):
        """Tune this session's kernel for feature width ``h`` and apply it.

        Runs (or loads, when ``cache`` already holds the decision for this
        operand/width) the :func:`repro.perf.tuner.tune` micro-benchmark
        and applies the winning backend/dtype via :meth:`apply_decision`.
        ``include_segmented`` adds row-segmented plan candidates
        (:mod:`repro.perf.segment`) to the bake-off.  Returns the
        :class:`~repro.perf.tuner.TunerDecision`.
        """
        from ..perf import tuner as perf_tuner

        decision = perf_tuner.tune(
            self.operand, h, cache=cache, backends=backends,
            repeats=repeats, seed=seed, include_float32=include_float32,
            include_segmented=include_segmented,
        )
        self.apply_decision(decision)
        return decision

    def apply_decision(self, decision) -> None:
        """Switch to a tuner decision's backend and dtype (exact rebuild).

        The operand swap goes through :func:`repro.pipeline.registry.
        degrade` — densify + recompress — so the numeric content is
        unchanged; only the kernel serving it is.  A ``"segmented"``
        decision keeps the operand and instead compiles its row-segmented
        plan (from ``decision.segments``) into the engine's plan cache, so
        subsequent requests route per row block.  The decision stays on
        :attr:`tuned` for the micro-batcher to consult.
        """
        if decision.backend == "segmented":
            from ..perf.segment import SegmentConfig, build_segmented_plan

            config = SegmentConfig.from_dict(decision.segments or {})
            build_segmented_plan(self.operand, config=config)
        elif decision.backend != self.backend_name:
            self.operand = registry.degrade(self.operand, decision.backend)
        self._dtype = np.float32 if decision.dtype == "float32" else None
        self.precision = decision.dtype
        self.tuned = decision
        obs_events.emit(
            "serve.tuned", backend=decision.backend, dtype=decision.dtype,
            h=decision.h, source=decision.source,
        )
        logger.info(
            "session tuned to backend %r (dtype=%s, h=%d, %s)",
            decision.backend, decision.dtype, decision.h, decision.source,
        )

    def segment_summary(self) -> dict | None:
        """Row-block layout of the serving plan, when it is segmented.

        Returns :meth:`repro.perf.segment.SegmentedPlan.summary` — per-block
        backend/variant, per-backend row coverage, downgrade count — or
        ``None`` when the session serves through an ordinary single-kernel
        plan.
        """
        plan = perf_engine.cached_plan(self.operand)
        if plan is not None and getattr(plan, "backend", None) == "segmented":
            return plan.summary()
        return None

    # Aggregator (and any dispatch_spmm caller) treats a session like an
    # operand, so mm/mm_t spell out the symmetric-operator convention.
    def mm(self, x: np.ndarray) -> np.ndarray:
        return self.spmm(x)

    def aggregator(self, **kwargs):
        """An :class:`~repro.gnn.layers.Aggregator` running on this session."""
        from ..gnn.layers import Aggregator

        return Aggregator(self, **kwargs)

    def metrics(self) -> dict:
        """Snapshot of this session's metric series (``{}`` when disabled)."""
        if self._metrics is None:
            return {}
        return self._metrics.snapshot()

    def model_request_seconds(self, h: int) -> float:
        """Cost-model time of one request at feature width ``h``.

        When served requests have fed the cost model's
        :class:`~repro.sptc.costmodel.Calibration` (metrics enabled), the
        raw prediction is corrected by the running measured/predicted
        factor and the residual gauge is refreshed — otherwise the estimate
        is returned as-is, flagged at debug level rather than silently.
        """
        predicted = registry.model_spmm_time(self.cost_model, self.operand, h)
        cal = self.cost_model.calibration
        if cal.count:
            if self._metrics is not None:
                self._m_residual.set(cal.mean_residual)
            return cal.calibrated(predicted)
        logger.debug(
            "model_request_seconds(h=%d): uncalibrated estimate %.3es "
            "(no measured kernel launches yet)", h, predicted,
        )
        return predicted

    def __repr__(self) -> str:
        degraded = (
            f", degraded_from={self.original_backend!r}" if self.degraded else ""
        )
        return (
            f"ServingSession(backend={self.backend_name!r}, shape={self.shape}, "
            f"requests={self.n_requests}{degraded})"
        )


# Sessions dispatch like operands: Aggregator and friends need no special
# case, and a session's own permutation/device handling stays in charge.
registry.register_backend(registry.Backend(
    name="serving",
    operand_types=(ServingSession,),
    spmm=lambda session, b: session.spmm(b),
    kernel_name="serving_session",
), overwrite=True)
