"""Pluggable SpMM backend registry — the pipeline's dispatch layer.

Every operand format the system can serve (CSR, N:M, V:N:M, hybrid, BSR,
SELL-C-σ, TC-GNN tiles, dense) is described by one :class:`Backend` record
bundling the three things the rest of the stack needs:

* ``compress`` — how to build the operand from a (reordered) CSR matrix,
* ``spmm`` — the numerically exact kernel,
* ``model_time`` — the cost-model entry charged by the virtual-clock device.

``repro.sptc.spmm.spmm``, ``EmulatedDevice.spmm`` and
``gnn.layers.Aggregator`` all route through :func:`backend_for` /
:func:`dispatch_spmm` instead of per-call-site ``isinstance`` chains, so a
third party adding a format (:func:`register_backend`) extends the kernel
dispatch, the device's timing, and the GNN aggregation path at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..core.patterns import NMPattern, VNMPattern
from ..sptc.bsr import BSRMatrix
from ..sptc.costmodel import CostModel, SpmmWorkload
from ..sptc.csr import CSRMatrix
from ..sptc.hybrid import HybridVNM
from ..sptc.nm_format import NMCompressed
from ..sptc.sell import SellCSigma
from ..sptc.spmm import csr_spmm, dense_spmm, nm_spmm, venom_spmm
from ..sptc.tcgnn import TCGNNBlocked
from ..sptc.venom import VNMCompressed
from . import faults, guard
from .resilience import BackendExecutionError, PipelineError

__all__ = [
    "Backend",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "backend_for",
    "available_backends",
    "dispatch_spmm",
    "run_kernel",
    "model_spmm_time",
    "compress",
    "densify",
    "degrade",
    "fallback_chain",
]


@dataclass(frozen=True)
class Backend:
    """One serving backend: format name → (compressor, kernel, cost entry).

    ``compress(csr, pattern)`` builds the operand from a reordered CSR matrix
    (``pattern`` may be ignored by unstructured formats).  ``spmm(a, b)`` is
    the exact kernel.  ``model_time(cost_model, a, h)`` is the modelled A100
    launch time the emulated device charges; ``None`` means the backend owns
    its own timing (e.g. a :class:`~repro.pipeline.serving.ServingSession`).
    ``kernel_name`` labels the device's :class:`KernelRecord` entries.
    ``fallbacks`` is the ordered graceful-degradation ladder: backends a
    failing operand can be rebuilt for (via :func:`degrade`), fastest first,
    ending in a always-correct reference (HC-SpMM's hybrid-kernel argument —
    keep a CUDA-core/CSR path behind every SPTC path).
    """

    name: str
    operand_types: tuple[type, ...]
    spmm: Callable[[Any, np.ndarray], np.ndarray]
    compress: Callable[[CSRMatrix, VNMPattern | None], Any] | None = None
    model_time: Callable[[CostModel, Any, int], float] | None = None
    kernel_name: str = ""
    fallbacks: tuple[str, ...] = ()


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend, *, overwrite: bool = False) -> Backend:
    """Add a backend; third parties use this to plug new formats in.

    Raises ``ValueError`` when the name or one of the operand types is
    already claimed, unless ``overwrite`` is set.
    """
    if not overwrite:
        if backend.name in _REGISTRY:
            raise ValueError(f"backend {backend.name!r} is already registered")
        for existing in _REGISTRY.values():
            taken = set(existing.operand_types) & set(backend.operand_types)
            if taken:
                raise ValueError(
                    f"operand type(s) {sorted(t.__name__ for t in taken)} already "
                    f"handled by backend {existing.name!r}"
                )
    _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> Backend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {', '.join(available_backends())}"
        ) from None


def backend_for(operand: Any) -> Backend:
    """Resolve the backend handling ``operand``'s type (the dispatch lookup)."""
    cls = type(operand)
    for backend in _REGISTRY.values():
        if cls in backend.operand_types:
            return backend
    # Subclass fallback (np.matrix-style subtypes, user format hierarchies).
    for backend in _REGISTRY.values():
        if isinstance(operand, backend.operand_types):
            return backend
    raise TypeError(f"unsupported operand type {cls.__name__}")


def available_backends() -> tuple[str, ...]:
    return tuple(_REGISTRY)


def run_kernel(
    backend: Backend,
    a: Any,
    b: np.ndarray,
    *,
    kernel: Callable[[Any, np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """Execute ``backend``'s kernel, classing failures as
    :class:`BackendExecutionError`.

    This is the single choke point for kernel execution (both
    :func:`dispatch_spmm` and the emulated device route through it), so the
    fault-injection hook and the error taxonomy cover every SpMM call site.
    ``kernel`` substitutes an alternative implementation for this one call —
    :func:`repro.perf.engine.execute` passes its precompiled plan here, so
    planned execution stays inside the same fault-injection and error-
    wrapping envelope as the naive kernels.
    The ``serving`` pseudo-backend is exempt from wrapping: a
    :class:`~repro.pipeline.serving.ServingSession` runs its own retry /
    degradation cycle and already raises taxonomy (or validation) errors.

    When a :class:`~repro.pipeline.guard.BreakerBoard` is installed
    (:func:`~repro.pipeline.guard.enable_breakers`), this is also the
    breaker choke point: an open breaker rejects the call with
    :class:`~repro.pipeline.resilience.CircuitOpenError` before the kernel
    runs, successes close the breaker, and kernel failures feed its
    consecutive-failure count.  With no board installed the guard costs
    one ``is None`` test.
    """
    if backend.name == "serving":
        return backend.spmm(a, b)
    fn = backend.spmm if kernel is None else kernel
    board = guard.active_breakers()
    if board is None:
        try:
            faults.maybe_fail_kernel(backend.name)
            return fn(a, b)
        except PipelineError:
            raise
        except Exception as exc:
            raise BackendExecutionError(
                f"backend {backend.name!r} kernel "
                f"{(backend.kernel_name or backend.name)!r} failed: {exc}",
                backend=backend.name,
                kernel_name=backend.kernel_name or backend.name,
            ) from exc
    board.before_call(backend.name)
    try:
        faults.maybe_fail_kernel(backend.name)
        out = fn(a, b)
    except PipelineError:
        # Already-classified errors (injected BackendExecutionError from the
        # fault harness included) count as backend failures; other taxonomy
        # errors passing through (cache, overload) do not implicate the kernel.
        raise
    except Exception as exc:
        board.record_failure(backend.name)
        raise BackendExecutionError(
            f"backend {backend.name!r} kernel "
            f"{(backend.kernel_name or backend.name)!r} failed: {exc}",
            backend=backend.name,
            kernel_name=backend.kernel_name or backend.name,
        ) from exc
    board.record_success(backend.name)
    return out


def dispatch_spmm(a: Any, b: np.ndarray) -> np.ndarray:
    """Run the registered SpMM kernel for ``a``'s format."""
    return run_kernel(backend_for(a), a, b)


def model_spmm_time(cost_model: CostModel, a: Any, h: int) -> float:
    """Cost-model launch time of one SpMM on operand ``a`` with width ``h``."""
    backend = backend_for(a)
    if backend.model_time is None:
        return 0.0
    return backend.model_time(cost_model, a, h)


def compress(csr: CSRMatrix, backend: str, pattern: VNMPattern | None = None) -> Any:
    """Build backend ``backend``'s operand from a (reordered) CSR matrix."""
    entry = get_backend(backend)
    if entry.compress is None:
        raise ValueError(f"backend {backend!r} has no compressor")
    return entry.compress(csr, pattern)


def densify(operand: Any) -> np.ndarray:
    """Dense matrix of any registered operand — the degradation pivot."""
    if isinstance(operand, np.ndarray):
        return np.asarray(operand, dtype=np.float64)
    if hasattr(operand, "decompress"):
        return operand.decompress()
    if hasattr(operand, "to_dense"):
        return operand.to_dense()
    raise TypeError(f"cannot densify operand of type {type(operand).__name__}")


def degrade(operand: Any, target: str) -> Any:
    """Rebuild ``operand`` in fallback format ``target`` (slower but correct).

    The numeric content is preserved exactly: the operand is densified and
    recompressed, so a downgraded serving path stays bitwise-correct for
    exact inputs.  ``target="dense"`` is the terminal reference rung.
    """
    get_backend(target)  # fail fast on unknown fallback names
    dense = densify(operand)
    if target == "dense":
        return dense
    pattern = getattr(operand, "pattern", None)
    vnm_pattern = pattern if isinstance(pattern, VNMPattern) else None
    return compress(CSRMatrix.from_dense(dense), target, vnm_pattern)


def fallback_chain(operand: Any) -> tuple[str, ...]:
    """The degradation ladder registered for ``operand``'s backend."""
    return backend_for(operand).fallbacks


# -- built-in backends ---------------------------------------------------------

def _require_pattern(pattern: VNMPattern | None, backend: str) -> VNMPattern:
    if pattern is None:
        raise ValueError(f"backend {backend!r} needs a V:N:M pattern to compress")
    return pattern


def _compress_nm(csr: CSRMatrix, pattern: VNMPattern | None) -> NMCompressed:
    pat = _require_pattern(pattern, "nm")
    return NMCompressed.compress(csr.to_dense(), NMPattern(pat.n, pat.m))


def _compress_bsr(csr: CSRMatrix, pattern: VNMPattern | None) -> BSRMatrix:
    block = pattern.m if pattern is not None else 16
    return BSRMatrix.from_csr(csr, block)


register_backend(Backend(
    name="csr",
    operand_types=(CSRMatrix,),
    spmm=csr_spmm,
    compress=lambda csr, pattern=None: csr,
    model_time=lambda cm, a, h: cm.time_csr_spmm(SpmmWorkload.from_csr(a, h)),
    kernel_name="csr_spmm",
    fallbacks=("dense",),
))

register_backend(Backend(
    name="nm",
    operand_types=(NMCompressed,),
    spmm=nm_spmm,
    compress=_compress_nm,
    model_time=lambda cm, a, h: cm.time_nm_spmm(a, h),
    kernel_name="nm_spmm",
    fallbacks=("csr", "dense"),
))

register_backend(Backend(
    name="vnm",
    operand_types=(VNMCompressed,),
    spmm=venom_spmm,
    compress=lambda csr, pattern=None: VNMCompressed.compress_csr(
        csr, _require_pattern(pattern, "vnm")),
    model_time=lambda cm, a, h: cm.time_venom_spmm(a, h),
    kernel_name="venom_spmm",
    fallbacks=("bsr", "csr", "dense"),
))

register_backend(Backend(
    name="hybrid",
    operand_types=(HybridVNM,),
    spmm=lambda a, b: a.spmm(b),
    compress=lambda csr, pattern=None: HybridVNM.compress_csr(
        csr, _require_pattern(pattern, "hybrid")),
    model_time=lambda cm, a, h: a.model_time(cm, h),
    kernel_name="hybrid_spmm",
    fallbacks=("bsr", "csr", "dense"),
))

register_backend(Backend(
    name="bsr",
    operand_types=(BSRMatrix,),
    spmm=lambda a, b: a.matmat(b),
    compress=_compress_bsr,
    model_time=lambda cm, a, h: cm.time_bsr_spmm(a, h),
    kernel_name="bsr_spmm",
    fallbacks=("csr", "dense"),
))

register_backend(Backend(
    name="sell",
    operand_types=(SellCSigma,),
    spmm=lambda a, b: a.matmat(b),
    compress=lambda csr, pattern=None: SellCSigma.from_csr(csr),
    model_time=lambda cm, a, h: cm.time_sell_spmm(a, h),
    kernel_name="sell_spmm",
    fallbacks=("csr", "dense"),
))

register_backend(Backend(
    name="tcgnn",
    operand_types=(TCGNNBlocked,),
    spmm=lambda a, b: a.spmm(b),
    compress=lambda csr, pattern=None: TCGNNBlocked.from_csr(csr),
    model_time=lambda cm, a, h: cm.time_tcgnn_spmm(a, h),
    kernel_name="tcgnn_spmm",
    fallbacks=("csr", "dense"),
))

register_backend(Backend(
    name="dense",
    operand_types=(np.ndarray,),
    spmm=dense_spmm,
    compress=lambda csr, pattern=None: csr.to_dense(),
    model_time=lambda cm, a, h: cm.time_dense_gemm(a.shape[0], a.shape[1], h),
    kernel_name="dense_gemm",
))
