"""Content-addressed cache of preprocessing artefacts.

Reordering is the expensive offline step; its outputs (permutation +
compressed operand) are pure functions of the adjacency structure and the
preprocessing plan.  This cache keys artefacts by
``sha256(adjacency bytes, pattern, plan knobs, serialize format version)``
and stores them via :mod:`repro.sptc.serialize`, so preprocessing the same
graph twice is a file load, not a re-search — the paper's §4.4 "reorder
once, reuse across many inferences" deployment story made automatic.

The key covers everything that changes the artefact:

* the exact bit structure of the (self-looped, if requested) adjacency,
* the target pattern (or ``"auto"`` plus the selection policy),
* every reorder knob (``max_iter``, ``time_budget``, extra kwargs),
* the backend name and the on-disk ``_FORMAT_VERSION`` — bumping the
  serializer invalidates every stale artefact at once.

Integrity (robustness PR): stores are **atomic** (written to a ``.tmp``
sibling, then ``os.replace``'d into place) so a killed preprocess never
leaves a half-written artefact, and artefacts carry an embedded checksum
(see :mod:`repro.sptc.serialize`).  A corrupt or unreadable entry is
**quarantined** to a ``.corrupt/`` sidecar directory — counted in
:attr:`CacheStats.quarantined`, never silently deleted — and the read is
answered as a miss.  :meth:`ArtifactCache.fsck` checks every entry offline
(the CLI ``doctor`` subcommand).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path

from ..core.bitmatrix import BitMatrix
from ..obs import events as obs_events
from ..sptc import serialize
from . import faults
from .preprocess import PreprocessPlan

__all__ = ["ArtifactCache", "CacheStats", "cache_key", "adjacency_fingerprint"]

# Failure modes a damaged .npz can surface: structural (BadZipFile/OSError/
# EOFError), compressed-stream damage (zlib.error), missing arrays
# (KeyError), or content-level (ValueError, which includes serialize's
# ArtifactCorruptError checksum failures).
_CORRUPT_ERRORS = (ValueError, KeyError, OSError, EOFError, zipfile.BadZipFile, zlib.error)


def adjacency_fingerprint(bm: BitMatrix) -> str:
    """Hex digest of the exact bit structure (shape + packed words)."""
    digest = hashlib.sha256()
    digest.update(f"{bm.n_rows}x{bm.n_cols}:".encode())
    digest.update(bm.words.tobytes())
    return digest.hexdigest()


def cache_key(bm: BitMatrix, plan: PreprocessPlan) -> str:
    """Content address of the artefact ``plan`` would produce for ``bm``."""
    payload = {
        "adjacency": adjacency_fingerprint(bm),
        "format_version": serialize._FORMAT_VERSION,
        **plan.key_fields(),
    }
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:32]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantined: int = 0


class ArtifactCache:
    """A directory of ``<key>.npz`` artefacts with hit/miss accounting.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) turns on hit/miss/
    corrupt/store counters plus load/store latency histograms; without it
    only the cheap :class:`CacheStats` fields are kept.
    """

    def __init__(self, cache_dir, *, metrics=None):
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self.metrics = metrics
        if metrics is not None:
            self._m_hits = metrics.counter("cache_hits_total", help="artefact cache hits")
            self._m_misses = metrics.counter("cache_misses_total", help="artefact cache misses")
            self._m_corrupt = metrics.counter(
                "cache_corrupt_total", help="corrupt artefacts quarantined"
            )
            self._m_stores = metrics.counter("cache_stores_total", help="artefacts stored")
            self._m_load = metrics.histogram(
                "cache_load_seconds", help="artefact load latency"
            )
            self._m_store = metrics.histogram(
                "cache_store_seconds", help="artefact store latency"
            )

    @property
    def quarantine_dir(self) -> Path:
        return self.cache_dir / ".corrupt"

    def path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.npz"

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def __len__(self) -> int:
        return len(list(self.cache_dir.glob("*.npz")))

    def _quarantine(self, path: Path) -> Path:
        """Move a corrupt artefact aside (never silently delete the evidence)."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        dest = self.quarantine_dir / path.name
        os.replace(path, dest)
        self.stats.quarantined += 1
        if self.metrics is not None:
            self._m_corrupt.inc()
        obs_events.emit("cache.quarantine", key=path.stem, dest=str(dest))
        return dest

    def quarantined(self) -> list[Path]:
        """The artefacts quarantined so far (this cache dir, any session)."""
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(self.quarantine_dir.glob("*.npz"))

    def load(self, key: str):
        """Return ``(operand, permutation)`` or ``None`` on a miss.

        A corrupt or version-mismatched artefact counts as a miss; the bad
        file is quarantined to ``.corrupt/`` (and counted) rather than
        failing the preprocessing run or being silently dropped.
        """
        path = self.path(key)
        if not path.exists():
            self.stats.misses += 1
            if self.metrics is not None:
                self._m_misses.inc()
            return None
        faults.maybe_corrupt_cache_file(key, path)
        t0 = time.perf_counter() if self.metrics is not None else 0.0
        try:
            artefact = serialize.load_preprocessed(path)
        except _CORRUPT_ERRORS:
            self._quarantine(path)
            self.stats.misses += 1
            if self.metrics is not None:
                self._m_misses.inc()
            return None
        self.stats.hits += 1
        if self.metrics is not None:
            self._m_hits.inc()
            self._m_load.observe(time.perf_counter() - t0)
        return artefact

    def store(self, key: str, operand, permutation) -> Path:
        """Atomically persist one artefact.

        The file is written to a ``.tmp`` sibling and ``os.replace``'d into
        place, so a preprocess killed mid-write leaves no half-written
        ``<key>.npz`` that a later run would load as corrupt.
        """
        path = self.path(key)
        tmp = Path(f"{path}.tmp")
        t0 = time.perf_counter() if self.metrics is not None else 0.0
        try:
            serialize.save_preprocessed(tmp, operand=operand, permutation=permutation)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        self.stats.stores += 1
        if self.metrics is not None:
            self._m_stores.inc()
            self._m_store.observe(time.perf_counter() - t0)
        return path

    def invalidate(self, key: str) -> bool:
        """Drop one artefact; returns whether it existed."""
        path = self.path(key)
        existed = path.exists()
        path.unlink(missing_ok=True)
        return existed

    def clear(self) -> int:
        """Drop every artefact; returns how many were removed."""
        removed = 0
        for path in self.cache_dir.glob("*.npz"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def fsck(self, *, quarantine: bool = True) -> dict:
        """Integrity-check every artefact (the ``doctor`` subcommand's core).

        Tries a full checksum-verified load of each ``<key>.npz``; corrupt
        entries are quarantined (unless ``quarantine=False``) and orphaned
        ``.tmp`` files from killed writers are removed.  Returns
        ``{"checked", "ok", "corrupt", "tmp_removed"}`` with key lists.
        """
        report: dict = {"checked": 0, "ok": [], "corrupt": [], "tmp_removed": []}
        for tmp in sorted(self.cache_dir.glob("*.npz.tmp")):
            tmp.unlink(missing_ok=True)
            report["tmp_removed"].append(tmp.name)
        for path in sorted(self.cache_dir.glob("*.npz")):
            key = path.stem
            report["checked"] += 1
            try:
                serialize.load_preprocessed(path)
            except _CORRUPT_ERRORS:
                report["corrupt"].append(key)
                if quarantine:
                    self._quarantine(path)
            else:
                report["ok"].append(key)
        return report
