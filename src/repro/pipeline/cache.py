"""Content-addressed cache of preprocessing artefacts.

Reordering is the expensive offline step; its outputs (permutation +
compressed operand) are pure functions of the adjacency structure and the
preprocessing plan.  This cache keys artefacts by
``sha256(adjacency bytes, pattern, plan knobs, serialize format version)``
and stores them via :mod:`repro.sptc.serialize`, so preprocessing the same
graph twice is a file load, not a re-search — the paper's §4.4 "reorder
once, reuse across many inferences" deployment story made automatic.

The key covers everything that changes the artefact:

* the exact bit structure of the (self-looped, if requested) adjacency,
* the target pattern (or ``"auto"`` plus the selection policy),
* every reorder knob (``max_iter``, ``time_budget``, extra kwargs),
* the backend name and the on-disk ``_FORMAT_VERSION`` — bumping the
  serializer invalidates every stale artefact at once.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from ..core.bitmatrix import BitMatrix
from ..sptc import serialize
from .preprocess import PreprocessPlan

__all__ = ["ArtifactCache", "CacheStats", "cache_key", "adjacency_fingerprint"]


def adjacency_fingerprint(bm: BitMatrix) -> str:
    """Hex digest of the exact bit structure (shape + packed words)."""
    digest = hashlib.sha256()
    digest.update(f"{bm.n_rows}x{bm.n_cols}:".encode())
    digest.update(bm.words.tobytes())
    return digest.hexdigest()


def cache_key(bm: BitMatrix, plan: PreprocessPlan) -> str:
    """Content address of the artefact ``plan`` would produce for ``bm``."""
    payload = {
        "adjacency": adjacency_fingerprint(bm),
        "format_version": serialize._FORMAT_VERSION,
        **plan.key_fields(),
    }
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:32]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0


class ArtifactCache:
    """A directory of ``<key>.npz`` artefacts with hit/miss accounting."""

    def __init__(self, cache_dir):
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.npz"

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def __len__(self) -> int:
        return len(list(self.cache_dir.glob("*.npz")))

    def load(self, key: str):
        """Return ``(operand, permutation)`` or ``None`` on a miss.

        A corrupt or version-mismatched artefact counts as a miss (and is
        removed) rather than failing the preprocessing run.
        """
        path = self.path(key)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            artefact = serialize.load_preprocessed(path)
        except (ValueError, OSError, KeyError):
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return artefact

    def store(self, key: str, operand, permutation) -> Path:
        path = self.path(key)
        serialize.save_preprocessed(path, operand=operand, permutation=permutation)
        self.stats.stores += 1
        return path

    def invalidate(self, key: str) -> bool:
        """Drop one artefact; returns whether it existed."""
        path = self.path(key)
        existed = path.exists()
        path.unlink(missing_ok=True)
        return existed

    def clear(self) -> int:
        """Drop every artefact; returns how many were removed."""
        removed = 0
        for path in self.cache_dir.glob("*.npz"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
