"""Content-addressed cache of preprocessing artefacts.

Reordering is the expensive offline step; its outputs (permutation +
compressed operand) are pure functions of the adjacency structure and the
preprocessing plan.  This cache keys artefacts by
``sha256(adjacency bytes, pattern, plan knobs, serialize format version)``
and stores them via :mod:`repro.sptc.serialize`, so preprocessing the same
graph twice is a file load, not a re-search — the paper's §4.4 "reorder
once, reuse across many inferences" deployment story made automatic.

The key covers everything that changes the artefact:

* the exact bit structure of the (self-looped, if requested) adjacency,
* the target pattern (or ``"auto"`` plus the selection policy),
* every reorder knob (``max_iter``, ``time_budget``, extra kwargs),
* the backend name and the on-disk ``_FORMAT_VERSION`` — bumping the
  serializer invalidates every stale artefact at once.

Integrity (robustness PR): stores are **atomic** (written to a ``.tmp``
sibling, then ``os.replace``'d into place) so a killed preprocess never
leaves a half-written artefact, and artefacts carry an embedded checksum
(see :mod:`repro.sptc.serialize`).  A corrupt or unreadable entry is
**quarantined** to a ``.corrupt/`` sidecar directory — counted in
:attr:`CacheStats.quarantined`, never silently deleted — and the read is
answered as a miss.  :meth:`ArtifactCache.fsck` checks every entry offline
(the CLI ``doctor`` subcommand).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path

from ..core.bitmatrix import BitMatrix
from ..obs import events as obs_events
from ..sptc import serialize
from . import faults
from .preprocess import PreprocessPlan

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "cache_key",
    "adjacency_fingerprint",
    "shard_cache_key",
]

# Failure modes a damaged .npz can surface: structural (BadZipFile/OSError/
# EOFError), compressed-stream damage (zlib.error), missing arrays
# (KeyError), or content-level (ValueError, which includes serialize's
# ArtifactCorruptError checksum failures).
_CORRUPT_ERRORS = (ValueError, KeyError, OSError, EOFError, zipfile.BadZipFile, zlib.error)


def adjacency_fingerprint(bm: BitMatrix) -> str:
    """Hex digest of the exact bit structure (shape + packed words)."""
    digest = hashlib.sha256()
    digest.update(f"{bm.n_rows}x{bm.n_cols}:".encode())
    digest.update(bm.words.tobytes())
    return digest.hexdigest()


def cache_key(bm: BitMatrix, plan: PreprocessPlan) -> str:
    """Content address of the artefact ``plan`` would produce for ``bm``."""
    payload = {
        "adjacency": adjacency_fingerprint(bm),
        "format_version": serialize._FORMAT_VERSION,
        **plan.key_fields(),
    }
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:32]


def shard_cache_key(base_key: str, index: int, n_shards: int, *, align: int = 1) -> str:
    """Content address of one row shard of a cached artefact.

    Derived from the whole-operand ``base_key`` (which already covers the
    adjacency bits, the plan knobs, and the serialize format version) plus
    the shard geometry: its index, the shard count, and the row-block
    alignment (the pattern's tile height ``v``).  Changing any of these
    re-addresses every shard, so a re-partitioned deployment never loads a
    stale slice; shards of the same artefact under the same geometry are
    cache hits across sessions.
    """
    blob = f"{base_key}:shard:{index}/{n_shards}:align{align}".encode()
    return hashlib.sha256(blob).hexdigest()[:32]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantined: int = 0
    # Sidecar accounting: execution-plan (<key>.plan.pkl) and autotuner
    # decision (<key>.tune.json) lookups next to the artefacts.
    plan_hits: int = 0
    plan_misses: int = 0
    decision_hits: int = 0
    decision_misses: int = 0


class ArtifactCache:
    """A directory of ``<key>.npz`` artefacts with hit/miss accounting.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) turns on hit/miss/
    corrupt/store counters plus load/store latency histograms; without it
    only the cheap :class:`CacheStats` fields are kept.
    """

    def __init__(self, cache_dir, *, metrics=None):
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self.metrics = metrics
        if metrics is not None:
            self._m_hits = metrics.counter("cache_hits_total", help="artefact cache hits")
            self._m_misses = metrics.counter("cache_misses_total", help="artefact cache misses")
            self._m_corrupt = metrics.counter(
                "cache_corrupt_total", help="corrupt artefacts quarantined"
            )
            self._m_stores = metrics.counter("cache_stores_total", help="artefacts stored")
            self._m_load = metrics.histogram(
                "cache_load_seconds", help="artefact load latency"
            )
            self._m_store = metrics.histogram(
                "cache_store_seconds", help="artefact store latency"
            )

    @property
    def quarantine_dir(self) -> Path:
        return self.cache_dir / ".corrupt"

    def path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.npz"

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def __len__(self) -> int:
        return len(list(self.cache_dir.glob("*.npz")))

    def _quarantine(self, path: Path) -> Path:
        """Move a corrupt artefact aside (never silently delete the evidence)."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        dest = self.quarantine_dir / path.name
        os.replace(path, dest)
        self.stats.quarantined += 1
        if self.metrics is not None:
            self._m_corrupt.inc()
        obs_events.emit("cache.quarantine", key=path.stem, dest=str(dest))
        return dest

    def quarantined(self) -> list[Path]:
        """The artefacts quarantined so far (this cache dir, any session)."""
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(self.quarantine_dir.glob("*.npz"))

    def load(self, key: str):
        """Return ``(operand, permutation)`` or ``None`` on a miss.

        A corrupt or version-mismatched artefact counts as a miss; the bad
        file is quarantined to ``.corrupt/`` (and counted) rather than
        failing the preprocessing run or being silently dropped.
        """
        path = self.path(key)
        if not path.exists():
            self.stats.misses += 1
            if self.metrics is not None:
                self._m_misses.inc()
            return None
        faults.maybe_corrupt_cache_file(key, path)
        t0 = time.perf_counter() if self.metrics is not None else 0.0
        try:
            artefact = serialize.load_preprocessed(path)
        except _CORRUPT_ERRORS:
            self._quarantine(path)
            self.stats.misses += 1
            if self.metrics is not None:
                self._m_misses.inc()
            return None
        self.stats.hits += 1
        if self.metrics is not None:
            self._m_hits.inc()
            self._m_load.observe(time.perf_counter() - t0)
        return artefact

    def store(self, key: str, operand, permutation) -> Path:
        """Atomically persist one artefact.

        The file is written to a ``.tmp`` sibling and ``os.replace``'d into
        place, so a preprocess killed mid-write leaves no half-written
        ``<key>.npz`` that a later run would load as corrupt.
        """
        path = self.path(key)
        tmp = Path(f"{path}.tmp")
        t0 = time.perf_counter() if self.metrics is not None else 0.0
        try:
            serialize.save_preprocessed(tmp, operand=operand, permutation=permutation)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        self.stats.stores += 1
        if self.metrics is not None:
            self._m_stores.inc()
            self._m_store.observe(time.perf_counter() - t0)
        return path

    # -- sidecars: execution plans and autotuner decisions -----------------
    def plan_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.plan.pkl"

    def decision_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.tune.json"

    def _store_atomic(self, path: Path, payload: bytes) -> Path:
        tmp = Path(f"{path}.tmp")
        try:
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return path

    # Version 1 sidecars were a bare pickled plan; version 2 wraps the plan
    # in an envelope dict so segmented plans (and future metadata) travel
    # alongside.  load_plan reads both.
    _PLAN_SIDECAR_VERSION = 2

    def store_plan(self, key: str, plan) -> Path:
        """Persist an execution plan next to its artefact (atomic write).

        Plans drop their scratch buffers on pickling (see
        :mod:`repro.perf.engine`), so the sidecar stays index-sized.
        """
        import pickle

        envelope = {"sidecar_version": self._PLAN_SIDECAR_VERSION, "plan": plan}
        return self._store_atomic(self.plan_path(key), pickle.dumps(envelope))

    def load_plan(self, key: str):
        """The persisted plan for ``key``, or ``None``.

        Accepts both the v2 envelope and the bare-plan v1 layout.  An
        unreadable plan sidecar is quarantined and answered as a miss —
        the caller rebuilds the plan from the operand, so a damaged sidecar
        never blocks serving.  The cache directory is trusted local state
        (same trust level as the ``.npz`` artefacts it sits beside), which
        is what makes pickle acceptable here.
        """
        import pickle

        path = self.plan_path(key)
        if not path.exists():
            self.stats.plan_misses += 1
            return None
        try:
            plan = pickle.loads(path.read_bytes())
            if isinstance(plan, dict):
                plan = plan["plan"]
        except Exception:  # noqa: BLE001 - any unpickling damage is a miss
            self._quarantine(path)
            self.stats.plan_misses += 1
            return None
        self.stats.plan_hits += 1
        return plan

    def store_decision(self, key: str, decision: dict) -> Path:
        """Persist one autotuner decision as ``<key>.tune.json`` (atomic)."""
        payload = json.dumps(decision, sort_keys=True, indent=2).encode()
        return self._store_atomic(self.decision_path(key), payload)

    def load_decision(self, key: str) -> dict | None:
        """The persisted tuner decision for ``key``, or ``None`` (miss)."""
        path = self.decision_path(key)
        if not path.exists():
            self.stats.decision_misses += 1
            return None
        try:
            decision = json.loads(path.read_text())
        except (ValueError, OSError):
            self._quarantine(path)
            self.stats.decision_misses += 1
            return None
        self.stats.decision_hits += 1
        return decision

    def decisions(self) -> list[tuple[str, dict]]:
        """Every readable persisted tuner decision as ``(key, payload)``."""
        out = []
        for path in sorted(self.cache_dir.glob("*.tune.json")):
            try:
                out.append((path.name.removesuffix(".tune.json"), json.loads(path.read_text())))
            except (ValueError, OSError):
                continue
        return out

    def invalidate(self, key: str) -> bool:
        """Drop one artefact (and its sidecars); returns whether it existed."""
        path = self.path(key)
        existed = path.exists()
        path.unlink(missing_ok=True)
        self.plan_path(key).unlink(missing_ok=True)
        self.decision_path(key).unlink(missing_ok=True)
        return existed

    def clear(self) -> int:
        """Drop every artefact and sidecar; returns how many artefacts were removed."""
        removed = 0
        for path in self.cache_dir.glob("*.npz"):
            path.unlink(missing_ok=True)
            removed += 1
        for pattern in ("*.plan.pkl", "*.tune.json"):
            for path in self.cache_dir.glob(pattern):
                path.unlink(missing_ok=True)
        return removed

    def fsck(self, *, quarantine: bool = True) -> dict:
        """Integrity-check every artefact (the ``doctor`` subcommand's core).

        Tries a full checksum-verified load of each ``<key>.npz``; corrupt
        entries are quarantined (unless ``quarantine=False``) and orphaned
        ``.tmp`` files from killed writers are removed.  Returns
        ``{"checked", "ok", "corrupt", "tmp_removed"}`` with key lists.
        """
        import pickle

        report: dict = {
            "checked": 0, "ok": [], "corrupt": [], "tmp_removed": [],
            "plan_corrupt": [],
        }
        for pattern in ("*.npz.tmp", "*.plan.pkl.tmp", "*.tune.json.tmp"):
            for tmp in sorted(self.cache_dir.glob(pattern)):
                tmp.unlink(missing_ok=True)
                report["tmp_removed"].append(tmp.name)
        for path in sorted(self.cache_dir.glob("*.npz")):
            key = path.stem
            report["checked"] += 1
            try:
                serialize.load_preprocessed(path)
            except _CORRUPT_ERRORS:
                report["corrupt"].append(key)
                if quarantine:
                    self._quarantine(path)
            else:
                report["ok"].append(key)
        for path in sorted(self.cache_dir.glob("*.plan.pkl")):
            try:
                pickle.loads(path.read_bytes())
            except Exception:  # noqa: BLE001 - any unpickling damage counts
                report["plan_corrupt"].append(path.name.removesuffix(".plan.pkl"))
                if quarantine:
                    self._quarantine(path)
        return report
