"""Deterministic fault injection for the pipeline's recovery paths.

A :class:`FaultPlan` scripts exactly which operations fail — the next N
kernel dispatches of a named backend, the next N artefact reads, specific
worker jobs — so every retry / fallback / quarantine path in
:mod:`repro.pipeline.resilience` is exercised by ordinary deterministic
tests instead of real hardware flakiness.

Three hook sites consult the active plan:

* **kernel dispatch** — :func:`repro.pipeline.registry.run_kernel` calls
  :func:`maybe_fail_kernel` before running a backend's SpMM;
* **cache reads** — :class:`repro.pipeline.cache.ArtifactCache.load` calls
  :func:`maybe_corrupt_cache_file`, which scribbles over the on-disk
  artefact so the *real* corruption-detection path runs;
* **worker jobs** — :func:`repro.parallel.reorder_many` asks
  :func:`worker_directive` per job; ``"raise"`` makes the job raise inside
  the worker, ``"exit"`` kills the worker process outright (breaking the
  pool, which exercises resubmission);
* **shared-memory packing** — :class:`repro.perf.shm.SharedMatrixBatch.pack`
  calls :func:`maybe_fail_shm`, so the pickled-payload fallback in
  ``reorder_many`` runs deterministically (as it would on a platform
  without ``/dev/shm``);
* **coalesced batches** — :class:`repro.perf.batching.MicroBatcher` calls
  :func:`maybe_fail_batch` before each stacked SpMM dispatch, exercising
  the re-serve-individually fallback that keeps one bad batch from
  failing every coalesced request.

Every hook is a cheap no-op when no plan is active, and plans record what
they injected in :attr:`FaultPlan.events` so tests can assert the faults
actually fired.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "FaultPlan",
    "FaultEvent",
    "InjectedFault",
    "inject",
    "active_plan",
    "maybe_fail_kernel",
    "maybe_corrupt_cache_file",
    "maybe_fail_shm",
    "maybe_fail_batch",
    "worker_directive",
]


class InjectedFault(RuntimeError):
    """The deliberate failure a :class:`FaultPlan` raises inside a hook."""


@dataclass(frozen=True)
class FaultEvent:
    """Record of one injected fault: where, on what, and which action."""

    site: str  # "kernel" | "cache" | "worker" | "shm" | "batch"
    target: str  # backend name, cache key, job index, or fixed site tag
    action: str  # "raise" | "corrupt" | "exit"


@dataclass
class FaultPlan:
    """Scripted faults, consumed in order as the hooked operations run.

    ``kernel_failures`` maps a backend name to how many of its next kernel
    dispatches raise :class:`InjectedFault` before the backend "heals".
    ``cache_corruptions`` corrupts that many upcoming artefact reads by
    scribbling the file on disk.  ``worker_crashes`` maps a batch index to
    ``"raise"`` or ``"exit"``; directives are consumed when the job is first
    built, so jobs resubmitted after a pool break run clean.
    ``shm_failures`` fails that many upcoming shared-memory segment
    creations (forcing ``reorder_many``'s pickled-payload fallback), and
    ``batch_crashes`` crashes that many upcoming coalesced SpMM batches
    before dispatch (forcing the per-request re-serve fallback).
    """

    kernel_failures: dict[str, int] = field(default_factory=dict)
    cache_corruptions: int = 0
    worker_crashes: dict[int, str] = field(default_factory=dict)
    shm_failures: int = 0
    batch_crashes: int = 0
    events: list[FaultEvent] = field(default_factory=list)

    def take_kernel_failure(self, backend: str) -> bool:
        remaining = self.kernel_failures.get(backend, 0)
        if remaining <= 0:
            return False
        self.kernel_failures[backend] = remaining - 1
        self.events.append(FaultEvent("kernel", backend, "raise"))
        return True

    def take_cache_corruption(self, key: str) -> bool:
        if self.cache_corruptions <= 0:
            return False
        self.cache_corruptions -= 1
        self.events.append(FaultEvent("cache", key, "corrupt"))
        return True

    def take_worker_crash(self, index: int) -> str | None:
        action = self.worker_crashes.pop(index, None)
        if action is not None:
            if action not in ("raise", "exit"):
                raise ValueError(f"unknown worker fault action {action!r}")
            self.events.append(FaultEvent("worker", str(index), action))
        return action

    def take_shm_failure(self) -> bool:
        if self.shm_failures <= 0:
            return False
        self.shm_failures -= 1
        self.events.append(FaultEvent("shm", "segment", "raise"))
        return True

    def take_batch_crash(self) -> bool:
        if self.batch_crashes <= 0:
            return False
        self.batch_crashes -= 1
        self.events.append(FaultEvent("batch", "spmm", "raise"))
        return True

    def count(self, site: str) -> int:
        """How many faults fired at ``site`` so far."""
        return sum(1 for e in self.events if e.site == site)


_ACTIVE: list[FaultPlan] = []


def active_plan() -> FaultPlan | None:
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def inject(plan: FaultPlan | None = None):
    """Scope ``plan`` (default: a fresh empty plan) over the hooked operations."""
    plan = plan if plan is not None else FaultPlan()
    _ACTIVE.append(plan)
    try:
        yield plan
    finally:
        _ACTIVE.remove(plan)


# -- hook points (no-ops without an active plan) -------------------------------

def maybe_fail_kernel(backend: str) -> None:
    plan = active_plan()
    if plan is not None and plan.take_kernel_failure(backend):
        raise InjectedFault(f"injected kernel failure for backend {backend!r}")


def maybe_corrupt_cache_file(key: str, path) -> bool:
    """Scribble over the artefact at ``path``; returns whether it fired."""
    plan = active_plan()
    path = Path(path)
    if plan is None or not path.exists() or not plan.take_cache_corruption(key):
        return False
    raw = path.read_bytes()
    path.write_bytes(b"\x00CORRUPT\x00" + raw[: max(0, len(raw) // 2)])
    return True


def maybe_fail_shm() -> None:
    plan = active_plan()
    if plan is not None and plan.take_shm_failure():
        raise InjectedFault("injected shared-memory segment creation failure")


def maybe_fail_batch() -> None:
    plan = active_plan()
    if plan is not None and plan.take_batch_crash():
        raise InjectedFault("injected coalesced-batch crash before dispatch")


def worker_directive(index: int) -> str | None:
    plan = active_plan()
    if plan is None:
        return None
    return plan.take_worker_crash(index)
