"""Deterministic fault injection for the pipeline's recovery paths.

A :class:`FaultPlan` scripts exactly which operations fail — the next N
kernel dispatches of a named backend, the next N artefact reads, specific
worker jobs — so every retry / fallback / quarantine path in
:mod:`repro.pipeline.resilience` is exercised by ordinary deterministic
tests instead of real hardware flakiness.

Three hook sites consult the active plan:

* **kernel dispatch** — :func:`repro.pipeline.registry.run_kernel` calls
  :func:`maybe_fail_kernel` before running a backend's SpMM;
* **cache reads** — :class:`repro.pipeline.cache.ArtifactCache.load` calls
  :func:`maybe_corrupt_cache_file`, which scribbles over the on-disk
  artefact so the *real* corruption-detection path runs;
* **worker jobs** — :func:`repro.parallel.reorder_many` asks
  :func:`worker_directive` per job; ``"raise"`` makes the job raise inside
  the worker, ``"exit"`` kills the worker process outright (breaking the
  pool, which exercises resubmission);
* **shared-memory packing** — :class:`repro.perf.shm.SharedMatrixBatch.pack`
  calls :func:`maybe_fail_shm`, so the pickled-payload fallback in
  ``reorder_many`` runs deterministically (as it would on a platform
  without ``/dev/shm``);
* **coalesced batches** — :class:`repro.perf.batching.MicroBatcher` calls
  :func:`maybe_fail_batch` before each stacked SpMM dispatch, exercising
  the re-serve-individually fallback that keeps one bad batch from
  failing every coalesced request;
* **shard replicas** — :class:`repro.pipeline.sharded.ShardRouter`'s
  replicas call :func:`shard_directive` before serving a sub-request;
  ``"kill"`` makes the replica die (exercising replica failover and the
  degraded-health path), ``"slow"`` injects a stall (exercising
  deadline-aware fan-out merging);
* **process shard workers** — a process-mode shard replica
  (:class:`repro.pipeline.procshard.ProcessShardWorker`) also consults
  :func:`procshard_directive` before each ring round-trip; ``"sigkill"``
  sends the worker process a *real* ``SIGKILL`` mid-request (exercising
  death detection, replica failover, and respawn-with-reattach), and
  ``"stall"`` makes the worker sleep inside the serve loop (exercising
  the job-timeout watchdog and deadline-bounded merging).

Every hook is a cheap no-op when no plan is active, and plans record what
they injected in :attr:`FaultPlan.events` so tests can assert the faults
actually fired.
"""

from __future__ import annotations

import random
from concurrent.futures import TimeoutError as FuturesTimeoutError
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "FaultPlan",
    "FaultEvent",
    "InjectedFault",
    "ChaosSchedule",
    "ChaosInvariants",
    "inject",
    "active_plan",
    "maybe_fail_kernel",
    "maybe_corrupt_cache_file",
    "maybe_fail_shm",
    "maybe_fail_batch",
    "worker_directive",
    "shard_directive",
    "procshard_directive",
]


class InjectedFault(RuntimeError):
    """The deliberate failure a :class:`FaultPlan` raises inside a hook."""


@dataclass(frozen=True)
class FaultEvent:
    """Record of one injected fault: where, on what, and which action."""

    site: str  # "kernel" | "cache" | "worker" | "shm" | "batch" | "shard" | "procshard"
    target: str  # backend name, cache key, job/shard index, or fixed site tag
    action: str  # "raise" | "corrupt" | "exit" | "kill" | "slow" | "sigkill" | "stall"


@dataclass
class FaultPlan:
    """Scripted faults, consumed in order as the hooked operations run.

    ``kernel_failures`` maps a backend name to how many of its next kernel
    dispatches raise :class:`InjectedFault` before the backend "heals".
    ``cache_corruptions`` corrupts that many upcoming artefact reads by
    scribbling the file on disk.  ``worker_crashes`` maps a batch index to
    ``"raise"``, ``"exit"``, or ``"hang"`` (the worker wedges until the
    hung-worker watchdog kills it); directives are consumed when the job is
    first built, so jobs resubmitted after a pool break run clean.
    ``shm_failures`` fails that many upcoming shared-memory segment
    creations (forcing ``reorder_many``'s pickled-payload fallback), and
    ``batch_crashes`` crashes that many upcoming coalesced SpMM batches
    before dispatch (forcing the per-request re-serve fallback).
    ``shard_faults`` maps a shard index to ``"kill"`` (the next replica
    serving that shard dies, exercising the router's replica failover) or
    ``"slow"`` (the next sub-request on that shard stalls, exercising
    deadline-aware fan-out); each directive fires once.  ``proc_faults``
    is the process-executor analogue: a shard index maps to ``"sigkill"``
    (the worker process is killed for real, mid-request) or ``"stall"``
    (the worker sleeps inside its serve loop); each fires once, on the
    next ring round-trip touching that shard.
    """

    kernel_failures: dict[str, int] = field(default_factory=dict)
    cache_corruptions: int = 0
    worker_crashes: dict[int, str] = field(default_factory=dict)
    shm_failures: int = 0
    batch_crashes: int = 0
    shard_faults: dict[int, str] = field(default_factory=dict)
    proc_faults: dict[int, str] = field(default_factory=dict)
    events: list[FaultEvent] = field(default_factory=list)

    def take_kernel_failure(self, backend: str) -> bool:
        remaining = self.kernel_failures.get(backend, 0)
        if remaining <= 0:
            return False
        self.kernel_failures[backend] = remaining - 1
        self.events.append(FaultEvent("kernel", backend, "raise"))
        return True

    def take_cache_corruption(self, key: str) -> bool:
        if self.cache_corruptions <= 0:
            return False
        self.cache_corruptions -= 1
        self.events.append(FaultEvent("cache", key, "corrupt"))
        return True

    def take_worker_crash(self, index: int) -> str | None:
        action = self.worker_crashes.pop(index, None)
        if action is not None:
            if action not in ("raise", "exit", "hang"):
                raise ValueError(f"unknown worker fault action {action!r}")
            self.events.append(FaultEvent("worker", str(index), action))
        return action

    def take_shard_fault(self, index: int) -> str | None:
        action = self.shard_faults.pop(index, None)
        if action is not None:
            if action not in ("kill", "slow"):
                raise ValueError(f"unknown shard fault action {action!r}")
            self.events.append(FaultEvent("shard", str(index), action))
        return action

    def take_proc_fault(self, index: int) -> str | None:
        action = self.proc_faults.pop(index, None)
        if action is not None:
            if action not in ("sigkill", "stall"):
                raise ValueError(f"unknown procshard fault action {action!r}")
            self.events.append(FaultEvent("procshard", str(index), action))
        return action

    def take_shm_failure(self) -> bool:
        if self.shm_failures <= 0:
            return False
        self.shm_failures -= 1
        self.events.append(FaultEvent("shm", "segment", "raise"))
        return True

    def take_batch_crash(self) -> bool:
        if self.batch_crashes <= 0:
            return False
        self.batch_crashes -= 1
        self.events.append(FaultEvent("batch", "spmm", "raise"))
        return True

    def count(self, site: str) -> int:
        """How many faults fired at ``site`` so far."""
        return sum(1 for e in self.events if e.site == site)


_ACTIVE: list[FaultPlan] = []


def active_plan() -> FaultPlan | None:
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def inject(plan: FaultPlan | None = None):
    """Scope ``plan`` (default: a fresh empty plan) over the hooked operations."""
    plan = plan if plan is not None else FaultPlan()
    _ACTIVE.append(plan)
    try:
        yield plan
    finally:
        _ACTIVE.remove(plan)


# -- hook points (no-ops without an active plan) -------------------------------

def maybe_fail_kernel(backend: str) -> None:
    plan = active_plan()
    if plan is not None and plan.take_kernel_failure(backend):
        raise InjectedFault(f"injected kernel failure for backend {backend!r}")


def maybe_corrupt_cache_file(key: str, path) -> bool:
    """Scribble over the artefact at ``path``; returns whether it fired."""
    plan = active_plan()
    path = Path(path)
    if plan is None or not path.exists() or not plan.take_cache_corruption(key):
        return False
    raw = path.read_bytes()
    path.write_bytes(b"\x00CORRUPT\x00" + raw[: max(0, len(raw) // 2)])
    return True


def maybe_fail_shm() -> None:
    plan = active_plan()
    if plan is not None and plan.take_shm_failure():
        raise InjectedFault("injected shared-memory segment creation failure")


def maybe_fail_batch() -> None:
    plan = active_plan()
    if plan is not None and plan.take_batch_crash():
        raise InjectedFault("injected coalesced-batch crash before dispatch")


def worker_directive(index: int) -> str | None:
    plan = active_plan()
    if plan is None:
        return None
    return plan.take_worker_crash(index)


def shard_directive(index: int) -> str | None:
    """The scripted fault (``"kill"`` / ``"slow"``) for shard ``index``, if any."""
    plan = active_plan()
    if plan is None:
        return None
    return plan.take_shard_fault(index)


def procshard_directive(index: int) -> str | None:
    """The scripted process-worker fault (``"sigkill"`` / ``"stall"``) for
    shard ``index``, if any."""
    plan = active_plan()
    if plan is None:
        return None
    return plan.take_proc_fault(index)


# -- seeded chaos --------------------------------------------------------------

@dataclass
class ChaosSchedule(FaultPlan):
    """A :class:`FaultPlan` drawn from one RNG seed across every fault site.

    Deterministic per seed — the same seed always scripts the same faults,
    so a chaos failure is replayed by re-running its seed — but *randomized
    across seeds*: kernel failures on a random subset of backends, cache
    corruptions, worker crash/exit/hang directives, shared-memory and batch
    faults, all from one ``random.Random(seed)`` stream.  Build with
    :meth:`draw` and activate with :func:`inject` like any plan; the
    invariants a serving stack must hold under *any* schedule are checked
    by :class:`ChaosInvariants` (the ``pytest -m chaos`` corpus).
    """

    seed: int = 0

    @classmethod
    def draw(
        cls,
        seed: int,
        *,
        backends: tuple[str, ...] = ("hybrid", "vnm", "nm", "bsr", "csr"),
        n_jobs: int = 0,
        max_kernel_failures: int = 4,
        max_cache_corruptions: int = 2,
        max_shm_failures: int = 1,
        max_batch_crashes: int = 2,
        worker_actions: tuple[str, ...] = ("raise", "exit", "hang"),
        worker_crash_rate: float = 0.3,
        kernel_failure_rate: float = 0.6,
        n_shards: int = 0,
        shard_actions: tuple[str, ...] = ("kill", "slow"),
        shard_fault_rate: float = 0.5,
        n_proc_shards: int = 0,
        proc_actions: tuple[str, ...] = ("sigkill", "stall"),
        proc_fault_rate: float = 0.5,
    ) -> "ChaosSchedule":
        """Draw one schedule from ``seed``.

        ``backends`` are the kernel-fault candidates; ``"dense"`` is always
        excluded so every fallback ladder keeps a working terminal rung and
        the invariant "every request resolves" stays satisfiable.
        ``n_jobs`` sizes the worker-directive draw (0 = no worker faults);
        ``n_shards`` sizes the shard-directive draw (0 = no shard faults);
        ``n_proc_shards`` sizes the process-worker draw (0 = none).
        New draws always *append* to the stream — shard after every older
        site, procshard after shard — so a schedule that leaves the new
        knob at 0 is byte-identical to a pre-knob one for the same seed:
        the fixed replay corpus keeps its meaning.
        """
        rng = random.Random(seed)
        plan = cls(seed=seed)
        for backend in backends:
            if backend == "dense":
                continue
            if rng.random() < kernel_failure_rate:
                plan.kernel_failures[backend] = rng.randint(1, max_kernel_failures)
        plan.cache_corruptions = rng.randint(0, max_cache_corruptions)
        plan.shm_failures = rng.randint(0, max_shm_failures)
        plan.batch_crashes = rng.randint(0, max_batch_crashes)
        for index in range(n_jobs):
            if rng.random() < worker_crash_rate:
                plan.worker_crashes[index] = rng.choice(list(worker_actions))
        for index in range(n_shards):
            if rng.random() < shard_fault_rate:
                plan.shard_faults[index] = rng.choice(list(shard_actions))
        for index in range(n_proc_shards):
            if rng.random() < proc_fault_rate:
                plan.proc_faults[index] = rng.choice(list(proc_actions))
        return plan

    def describe(self) -> dict:
        """Compact summary for the invariant report (pre-consumption)."""
        return {
            "seed": self.seed,
            "kernel_failures": dict(self.kernel_failures),
            "cache_corruptions": self.cache_corruptions,
            "worker_crashes": {str(k): v for k, v in self.worker_crashes.items()},
            "shm_failures": self.shm_failures,
            "batch_crashes": self.batch_crashes,
            "shard_faults": {str(k): v for k, v in self.shard_faults.items()},
            "proc_faults": {str(k): v for k, v in self.proc_faults.items()},
        }


class ChaosInvariants:
    """What must hold under *any* :class:`ChaosSchedule`.

    Three invariants, checked incrementally and summarized by
    :meth:`report`:

    1. **every future resolves** — a submitted request's future completes
       within a bounded wait with either a bit-identical result or an
       error from the :class:`~repro.pipeline.resilience.PipelineError`
       taxonomy; a hang, a wrong result, or a foreign exception type is a
       violation (:meth:`observe_future`);
    2. **health converges** — after faults stop, serving recovers
       (asserted by the test via :meth:`require`);
    3. **nothing leaks** — no worker processes or shared-memory segments
       survive the run (also via :meth:`require`).
    """

    def __init__(self):
        self.outcomes: dict[str, int] = {}
        self.violations: list[str] = []
        self.checks = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def _count(self, outcome: str) -> str:
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        return outcome

    def observe_future(self, future, expected, *, timeout: float = 30.0,
                       label: str = "") -> str:
        """Classify one submitted request's resolution; returns the outcome.

        ``expected`` is the reference result the future must match
        **bit-identically** when it succeeds.  Outcomes: ``"exact"``,
        ``"taxonomy:<ErrorType>"`` (an acceptable classified failure), or
        a recorded violation — ``"hang"``, ``"wrong_result"``,
        ``"foreign_error:<Type>"``.
        """
        import numpy as np

        from .resilience import PipelineError

        self.checks += 1
        try:
            out = future.result(timeout=timeout)
        except FuturesTimeoutError:
            self.violations.append(
                f"{label or 'request'}: future did not resolve within "
                f"{timeout:.0f}s (hang)")
            return self._count("hang")
        except PipelineError as exc:
            return self._count(f"taxonomy:{type(exc).__name__}")
        except BaseException as exc:  # noqa: BLE001 - classification is the point
            self.violations.append(
                f"{label or 'request'}: non-taxonomy error "
                f"{type(exc).__name__}: {exc}")
            return self._count(f"foreign_error:{type(exc).__name__}")
        if np.array_equal(np.asarray(out), np.asarray(expected)):
            return self._count("exact")
        self.violations.append(
            f"{label or 'request'}: result differs from the reference "
            f"(not bit-identical)")
        return self._count("wrong_result")

    def require(self, condition: bool, message: str) -> bool:
        """Record an arbitrary invariant check (convergence, leaks)."""
        self.checks += 1
        if not condition:
            self.violations.append(message)
        return bool(condition)

    def report(self) -> dict:
        """JSON-ready summary (the CI chaos job uploads these per seed)."""
        return {
            "ok": self.ok,
            "checks": self.checks,
            "outcomes": dict(sorted(self.outcomes.items())),
            "violations": list(self.violations),
        }
