"""Stage-1 reordering: Hamming-position row sort (paper Alg. 2, §4.2).

Every segment vector is encoded with its Hamming position code (the inverse
Gray code of its bit string); codes of vectors violating the horizontal N:M
constraint are negated so the subsequent sort clusters them away from
well-formed meta-blocks instead of contaminating them.  Rows are then sorted
lexicographically by their code vectors and the resulting permutation is
applied to rows *and* columns (graph reordering keeps the adjacency matrix
symmetric), which tends to place rows with similar non-zero positions into
the same V×M meta-block and thereby lowers MBScore.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .bitmatrix import BitMatrix
from .hamming import position_codes
from .patterns import VNMPattern
from .permutation import Permutation
from .scores import mbscore

__all__ = ["Stage1Result", "encode_rows", "lexicographic_row_order", "stage1_reorder"]


@dataclass
class Stage1Result:
    """Outcome of one Stage-1 run."""

    permutation: Permutation
    matrix: BitMatrix
    iterations: int
    mbscore_history: list[int] = field(default_factory=list)

    @property
    def initial_mbscore(self) -> int:
        return self.mbscore_history[0]

    @property
    def final_mbscore(self) -> int:
        return self.mbscore_history[-1]


def encode_rows(bm: BitMatrix, pattern: VNMPattern, *, taint_invalid: bool = True) -> np.ndarray:
    """Per-row Hamming position code vectors, shape ``(n_rows, n_segs)``.

    Codes of segment vectors that violate the horizontal N:M constraint are
    negated when ``taint_invalid`` is set (the paper's "-25" treatment).
    The dtype is the narrowest signed integer that holds ``±(2**m - 1)``.
    """
    vals = bm.segment_values(pattern.m)
    codes = position_codes(vals, pattern.m)
    if taint_invalid:
        invalid = np.bitwise_count(vals) > pattern.n
        codes[invalid] = -codes[invalid]
    for dt in (np.int8, np.int16, np.int32):
        if pattern.m < np.iinfo(dt).bits - 1:
            return codes.astype(dt)
    return codes


def lexicographic_row_order(codes: np.ndarray) -> np.ndarray:
    """Stable lexicographic argsort of the rows of a signed integer matrix.

    Implemented by biasing to unsigned, byte-swapping to big-endian and
    sorting the rows as opaque byte strings — O(n log n) comparisons without
    materializing one sort key per column (the code matrix can have thousands
    of segment columns).
    """
    info = np.iinfo(codes.dtype)
    udtype = np.dtype(f"u{codes.dtype.itemsize}")
    biased = (codes.astype(np.int64) - int(info.min)).astype(udtype)
    be = np.ascontiguousarray(biased.astype(udtype.newbyteorder(">")))
    as_void = be.view([("bytes", "V", be.shape[1] * be.dtype.itemsize)]).ravel()
    return np.argsort(as_void, kind="stable").astype(np.int64)


def stage1_reorder(
    bm: BitMatrix,
    pattern: VNMPattern,
    *,
    max_iter: int = 10,
    taint_invalid: bool = True,
) -> Stage1Result:
    """Iterate encode → sort → symmetric reorder until MBScore stops improving.

    Returns the composed permutation, the reordered matrix, and the MBScore
    trace.  The matrix argument is not modified.
    """
    registry = obs_metrics.default_registry()
    sorts = registry.counter(
        "reorder_stage1_sorts_total", help="Hamming-position row sorts executed"
    )
    gains = registry.counter(
        "reorder_stage1_mbscore_gain_total", help="total MBScore removed by stage-1 sorts"
    )
    with obs_trace.span("stage1", n=bm.n_rows) as sp:
        current = bm
        perm = Permutation.identity(bm.n_rows)
        history = [mbscore(current, pattern)]
        iterations = 0
        while history[-1] > 0 and iterations < max_iter:
            with obs_trace.span("stage1.encode"):
                codes = encode_rows(current, pattern, taint_invalid=taint_invalid)
            with obs_trace.span("stage1.sort"):
                order = lexicographic_row_order(codes)
            sorts.inc()
            with obs_trace.span("stage1.permute"):
                candidate = current.permute_symmetric(order)
                score = mbscore(candidate, pattern)
            if score >= history[-1] and iterations > 0:
                break
            if score > history[-1]:
                # The very first sort can only be accepted if it helps.
                break
            gains.inc(history[-1] - score)
            current = candidate
            perm = perm.then(Permutation(order))
            history.append(score)
            iterations += 1
        sp.set(iterations=iterations, mbscore=history[-1])
    return Stage1Result(perm, current, iterations, history)
