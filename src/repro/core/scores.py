"""Reordering quality metrics (paper §3, §4.2, §4.3).

* **PScore** — per segment (an n×M column group), the number of its segment
  vectors violating the horizontal N:M constraint.  Summed over segments this
  is the paper's ``F_p(φ)``, the count of invalid segment vectors.
* **MBScore** — ``F_MB(φ)``, the number of V×M meta-blocks violating the
  vertical (≤ k live columns) constraint.
* **improvement rate** — fraction of initially-invalid segment vectors that
  the reordering removed.  The paper writes it as
  ``(final ω − initial ω) / initial ω`` but reports positive percentages, so
  we return the magnitude of the reduction.
"""

from __future__ import annotations

import numpy as np

from .bitmatrix import BitMatrix
from .patterns import NMPattern, VNMPattern

__all__ = [
    "pscore_per_segment",
    "total_pscore",
    "mbscore",
    "improvement_rate",
    "conformity_report",
]


def pscore_per_segment(bm: BitMatrix, pattern: NMPattern) -> np.ndarray:
    """Number of invalid segment vectors in each segment, shape ``(n_segs,)``."""
    return pattern.invalid_vector_mask(bm).sum(axis=0).astype(np.int64)


def total_pscore(bm: BitMatrix, pattern: NMPattern) -> int:
    """``F_p(φ)`` — total count of invalid segment vectors."""
    return pattern.count_invalid_vectors(bm)


def mbscore(bm: BitMatrix, pattern: VNMPattern) -> int:
    """``F_MB(φ)`` — meta-blocks violating the vertical constraint."""
    return pattern.count_vertical_violations(bm)


def improvement_rate(initial: int, final: int) -> float:
    """Fractional reduction of invalid segment vectors (1.0 = all removed)."""
    if initial == 0:
        return 1.0 if final == 0 else 0.0
    return (initial - final) / initial


def conformity_report(bm: BitMatrix, pattern: VNMPattern) -> dict:
    """Snapshot of all scores for one matrix/pattern pair."""
    nm = pattern.nm
    return {
        "pattern": str(pattern),
        "invalid_segment_vectors": total_pscore(bm, nm),
        "mbscore": mbscore(bm, pattern),
        "tile_violations": pattern.count_tile_violations(bm),
        "conforms": pattern.matrix_conforms(bm),
        "nnz": bm.nnz(),
        "density": bm.density(),
    }
