"""Bit-packed binary matrices.

The CUDA library in the paper represents segment vectors as bit strings and
manipulates them with integer intrinsics (Listing 1).  :class:`BitMatrix` is
the NumPy analogue: the structural adjacency matrix is packed LSB-first into
``uint64`` words (bit ``b`` of word ``w`` in a row is column ``w * 64 + b``),
and the hot routines — per-segment value extraction, popcounts, symmetric
permutation — are whole-array word operations rather than per-element Python.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BitMatrix", "min_uint_dtype"]

_WORD = 64


def min_uint_dtype(bits: int) -> np.dtype:
    """Smallest unsigned dtype that can hold a ``bits``-wide value."""
    if bits <= 8:
        return np.dtype(np.uint8)
    if bits <= 16:
        return np.dtype(np.uint16)
    if bits <= 32:
        return np.dtype(np.uint32)
    if bits <= 64:
        return np.dtype(np.uint64)
    raise ValueError(f"cannot pack {bits} bits into a single integer")


class BitMatrix:
    """A dense bit-packed ``n_rows × n_cols`` 0/1 matrix."""

    __slots__ = ("words", "n_rows", "n_cols")

    def __init__(self, words: np.ndarray, n_rows: int, n_cols: int):
        expected_w = (n_cols + _WORD - 1) // _WORD
        if words.shape != (n_rows, expected_w) or words.dtype != np.uint64:
            raise ValueError("words array has wrong shape or dtype")
        self.words = words
        self.n_rows = n_rows
        self.n_cols = n_cols

    # -- constructors ------------------------------------------------------
    @classmethod
    def zeros(cls, n_rows: int, n_cols: int) -> "BitMatrix":
        w = (n_cols + _WORD - 1) // _WORD
        return cls(np.zeros((n_rows, w), dtype=np.uint64), n_rows, n_cols)

    @classmethod
    def from_dense(cls, a: np.ndarray) -> "BitMatrix":
        a = np.asarray(a)
        n_rows, n_cols = a.shape
        bm = cls.zeros(n_rows, n_cols)
        rows, cols = np.nonzero(a)
        bm._set_bits(rows, cols)
        return bm

    @classmethod
    def from_edges(cls, n: int, rows: np.ndarray, cols: np.ndarray) -> "BitMatrix":
        """Square matrix with ones at ``(rows[i], cols[i])``."""
        bm = cls.zeros(n, n)
        bm._set_bits(np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64))
        return bm

    @classmethod
    def from_scipy(cls, m) -> "BitMatrix":
        coo = m.tocoo()
        bm = cls.zeros(coo.shape[0], coo.shape[1])
        bm._set_bits(coo.row.astype(np.int64), coo.col.astype(np.int64))
        return bm

    @classmethod
    def from_buffer(cls, words: np.ndarray, n_rows: int, n_cols: int) -> "BitMatrix":
        """Wrap an existing packed word array **without copying**.

        ``words`` may view externally owned memory (e.g. a
        ``multiprocessing.shared_memory`` segment — see
        :mod:`repro.perf.shm`); the caller keeps that memory alive for the
        matrix's lifetime.  A read-only ``words`` yields a read-only matrix:
        the mutating methods (``set``, ``set_column``, ``swap_*``) raise,
        while the permutation/segment routines — which build new arrays —
        work unchanged.
        """
        return cls(words, n_rows, n_cols)

    def copy(self) -> "BitMatrix":
        return BitMatrix(self.words.copy(), self.n_rows, self.n_cols)

    # -- element access ----------------------------------------------------
    def _set_bits(self, rows: np.ndarray, cols: np.ndarray) -> None:
        w = cols // _WORD
        b = (cols % _WORD).astype(np.uint64)
        np.bitwise_or.at(self.words, (rows, w), np.uint64(1) << b)

    def get(self, i: int, j: int) -> int:
        return int((self.words[i, j // _WORD] >> np.uint64(j % _WORD)) & np.uint64(1))

    def set(self, i: int, j: int, value: int) -> None:
        mask = np.uint64(1) << np.uint64(j % _WORD)
        if value:
            self.words[i, j // _WORD] |= mask
        else:
            self.words[i, j // _WORD] &= ~mask

    # -- conversions -------------------------------------------------------
    def to_dense(self, dtype=np.uint8) -> np.ndarray:
        out = np.zeros((self.n_rows, self.n_cols), dtype=dtype)
        for b in range(_WORD):
            bits = (self.words >> np.uint64(b)) & np.uint64(1)
            cols = np.arange(b, self.n_cols, _WORD)
            out[:, cols] = bits[:, : cols.size].astype(dtype)
        return out

    def to_scipy(self):
        import scipy.sparse as sp

        rows, cols = self.nonzero()
        data = np.ones(rows.size, dtype=np.float64)
        return sp.csr_matrix((data, (rows, cols)), shape=(self.n_rows, self.n_cols))

    def nonzero(self) -> tuple[np.ndarray, np.ndarray]:
        """Coordinates of all set bits, in row-major order.

        Scans for non-zero *words* first, then unpacks only those — one pass
        over the packed array plus O(nnz) work, instead of 64 full scans.
        """
        w_rows, w_cols = np.nonzero(self.words)
        if w_rows.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        values = self.words[w_rows, w_cols]
        # Little-endian byte view + bitorder="little" makes unpacked bit k of
        # a word equal column offset k.
        bytes_view = values[:, None].view(np.uint8)
        if bytes_view.dtype.byteorder == ">" or (values.dtype.byteorder == ">"):  # pragma: no cover
            raise RuntimeError("big-endian platforms are not supported")
        bits = np.unpackbits(bytes_view, axis=1, bitorder="little")
        k_idx, bit = np.nonzero(bits)
        rows = w_rows[k_idx].astype(np.int64)
        cols = (w_cols[k_idx] * _WORD + bit).astype(np.int64)
        # np.nonzero on the word matrix is already row-major; within a word
        # bits come out in increasing column order, so (rows, cols) is sorted.
        return rows, cols

    # -- statistics --------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    def nnz(self) -> int:
        return int(np.bitwise_count(self.words).sum())

    def row_nnz(self) -> np.ndarray:
        return np.bitwise_count(self.words).sum(axis=1).astype(np.int64)

    def density(self) -> float:
        total = self.n_rows * self.n_cols
        return self.nnz() / total if total else 0.0

    def is_symmetric(self) -> bool:
        if self.n_rows != self.n_cols:
            return False
        r, c = self.nonzero()
        fwd = set(zip(r.tolist(), c.tolist()))
        return all((j, i) in fwd for i, j in fwd)

    # -- segment views -----------------------------------------------------
    def n_segments(self, m: int) -> int:
        return (self.n_cols + m - 1) // m

    def segment_values(self, m: int) -> np.ndarray:
        """Per-row, per-segment ``m``-bit values, shape ``(n_rows, n_segs)``.

        Columns beyond ``n_cols`` (padding in the last segment) read as zero.
        The dtype is the smallest unsigned type that holds ``m`` bits.
        """
        if m > _WORD:
            raise ValueError(f"segment width {m} exceeds word size")
        import sys

        n_segs = self.n_segments(m)
        little = sys.byteorder == "little"
        if little and m in (8, 16, 32, 64):
            # LSB-first bit layout means a plain little-endian reinterpret of
            # the word array *is* the segment array.
            out = self.words.view(min_uint_dtype(m))
            return np.ascontiguousarray(out[:, :n_segs])
        if little and m == 4:
            b = self.words.view(np.uint8)
            out = np.empty((self.n_rows, b.shape[1] * 2), dtype=np.uint8)
            out[:, 0::2] = b & 0x0F
            out[:, 1::2] = b >> 4
            return out[:, :n_segs]
        if _WORD % m == 0:
            per_word = _WORD // m
            mask = np.uint64((1 << m) - 1)
            dtype = min_uint_dtype(m)
            # Write straight into the narrow dtype: the (n, n_segs) result can
            # be 8x smaller than a uint64 staging array, which dominates the
            # cost on collection-scale matrices.
            out = np.empty((self.n_rows, self.words.shape[1] * per_word), dtype=dtype)
            for j in range(per_word):
                out[:, j::per_word] = ((self.words >> np.uint64(j * m)) & mask).astype(dtype)
            return out[:, :n_segs]
        else:
            out = np.zeros((self.n_rows, n_segs), dtype=np.uint64)
            for j in range(m):
                col = np.arange(0, n_segs) * m + j
                valid = col < self.n_cols
                cv = col[valid]
                bits = (self.words[:, cv // _WORD] >> (cv % _WORD).astype(np.uint64)) & np.uint64(1)
                out[:, valid] |= bits << np.uint64(j)
        return out.astype(min_uint_dtype(m))

    def segment_values_t(self, m: int) -> np.ndarray:
        """Transposed segment values, shape ``(n_segs, n_rows)``, contiguous.

        Equivalent to ``segment_values(m).T`` but built from a word-level
        transpose, which is far cheaper than transposing the (much larger)
        byte-level result.
        """
        if m > _WORD or _WORD % m != 0:
            return np.ascontiguousarray(self.segment_values(m).T)
        n_segs = self.n_segments(m)
        per_word = _WORD // m
        mask = np.uint64((1 << m) - 1)
        dtype = min_uint_dtype(m)
        words_t = np.ascontiguousarray(self.words.T)  # (W, n)
        out = np.empty((words_t.shape[0] * per_word, self.n_rows), dtype=dtype)
        for j in range(per_word):
            out[j::per_word] = ((words_t >> np.uint64(j * m)) & mask).astype(dtype)
        return out[:n_segs]

    def segment_counts(self, m: int) -> np.ndarray:
        """Non-zeros per segment vector, shape ``(n_rows, n_segs)``, uint8."""
        vals = self.segment_values(m)
        return np.bitwise_count(vals).astype(np.uint8)

    def segment_column_bits(self, seg: int, m: int) -> np.ndarray:
        """Boolean ``(n_rows, m)`` view of one segment's columns (zero-padded)."""
        vals = self.segment_values(m)[:, seg]
        shifts = np.arange(m, dtype=vals.dtype)
        return ((vals[:, None] >> shifts) & vals.dtype.type(1)).astype(bool)

    # -- columns -----------------------------------------------------------
    def get_column(self, j: int) -> np.ndarray:
        """Boolean vector of column ``j``."""
        return ((self.words[:, j // _WORD] >> np.uint64(j % _WORD)) & np.uint64(1)).astype(bool)

    def set_column(self, j: int, bits: np.ndarray) -> None:
        mask = np.uint64(1) << np.uint64(j % _WORD)
        w = j // _WORD
        col = self.words[:, w] & ~mask
        self.words[:, w] = col | np.where(bits, mask, np.uint64(0))

    def swap_columns(self, u: int, v: int) -> None:
        bu, bv = self.get_column(u), self.get_column(v)
        self.set_column(u, bv)
        self.set_column(v, bu)

    def swap_rows(self, u: int, v: int) -> None:
        self.words[[u, v]] = self.words[[v, u]]

    # -- permutation -------------------------------------------------------
    def permute_rows(self, order: np.ndarray) -> "BitMatrix":
        return BitMatrix(self.words[np.asarray(order, dtype=np.int64)], self.n_rows, self.n_cols)

    def permute_columns(self, order: np.ndarray) -> "BitMatrix":
        order = np.asarray(order, dtype=np.int64)
        rows, cols = self.nonzero()
        inv = np.empty(self.n_cols, dtype=np.int64)
        inv[order] = np.arange(self.n_cols)
        bm = BitMatrix.zeros(self.n_rows, self.n_cols)
        bm._set_bits(rows, inv[cols])
        return bm

    def permute_symmetric(self, order: np.ndarray) -> "BitMatrix":
        """Return ``A[order][:, order]`` — a graph relabelling."""
        if self.n_rows != self.n_cols:
            raise ValueError("symmetric permutation requires a square matrix")
        return self.permute_rows(order).permute_columns(order)

    def apply_swaps_symmetric(self, swaps: list[tuple[int, int]]) -> "BitMatrix":
        """Apply a batch of vertex transpositions to rows and columns."""
        from .permutation import Permutation

        perm = Permutation.from_swaps(self.n_rows, swaps)
        return self.permute_symmetric(perm.order)

    # -- dunder ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BitMatrix)
            and self.shape == other.shape
            and np.array_equal(self.words, other.words)
        )

    def __hash__(self):  # pragma: no cover - mutable, not hashable
        raise TypeError("BitMatrix is mutable and unhashable")

    def __repr__(self) -> str:
        return f"BitMatrix(shape={self.shape}, nnz={self.nnz()})"
