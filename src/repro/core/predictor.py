"""Best-pattern predictor — the paper's proposed future work (§5.3).

    "It is possible to create some machine learning models to predict the
    preferred V:N:M pattern for a given matrix, akin to the predictors of the
    best sparse storage format [62, 63, 66]."

This module implements that proposal from scratch: cheap structural features
of a matrix (density, degree statistics, locality, initial violation rates)
feed a small multinomial logistic-regression classifier trained on matrices
whose best pattern was found with the full doubling search.  Predicting is
~instant; the search runs the reordering up to ten times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .autoselect import find_best_pattern
from .bitmatrix import BitMatrix
from .patterns import NMPattern, VNMPattern

__all__ = ["pattern_features", "PatternPredictor", "train_pattern_predictor", "FEATURE_NAMES"]

FEATURE_NAMES = (
    "log_n",
    "log_density",
    "log_avg_degree",
    "degree_cv",
    "max_degree_frac",
    "bandwidth_frac",
    "violation_rate_2_4",
    "violation_rate_2_8",
)


def pattern_features(bm: BitMatrix) -> np.ndarray:
    """Structural feature vector of an adjacency matrix (see FEATURE_NAMES)."""
    n = max(bm.n_rows, 1)
    deg = bm.row_nnz().astype(np.float64)
    nnz = float(deg.sum())
    avg_deg = nnz / n if n else 0.0
    density = nnz / (n * n) if n else 0.0
    cv = float(deg.std() / avg_deg) if avg_deg > 0 else 0.0
    max_frac = float(deg.max(initial=0.0) / n)
    rows, cols = bm.nonzero()
    if rows.size:
        bandwidth = float(np.abs(rows - cols).mean()) / n
    else:
        bandwidth = 0.0

    def violation_rate(m: int) -> float:
        pat = NMPattern(2, m)
        total = max(bm.n_rows * bm.n_segments(m), 1)
        return pat.count_invalid_vectors(bm) / total

    return np.array(
        [
            np.log1p(n),
            np.log(max(density, 1e-12)),
            np.log1p(avg_deg),
            cv,
            max_frac,
            bandwidth,
            violation_rate(4),
            violation_rate(8),
        ]
    )


@dataclass
class PatternPredictor:
    """Multinomial logistic regression over candidate V:N:M patterns."""

    classes: list[VNMPattern]
    weights: np.ndarray          # (n_classes, n_features + 1), bias last
    feature_mean: np.ndarray
    feature_std: np.ndarray
    train_accuracy: float = 0.0
    history: list[float] = field(default_factory=list)

    def _design(self, feats: np.ndarray) -> np.ndarray:
        z = (feats - self.feature_mean) / self.feature_std
        return np.concatenate([z, [1.0]])

    def predict_proba(self, bm: BitMatrix) -> np.ndarray:
        x = self._design(pattern_features(bm))
        scores = self.weights @ x
        scores -= scores.max()
        e = np.exp(scores)
        return e / e.sum()

    def predict(self, bm: BitMatrix) -> VNMPattern:
        return self.classes[int(np.argmax(self.predict_proba(bm)))]

    def predict_top_k(self, bm: BitMatrix, k: int = 2) -> list[VNMPattern]:
        """The k most likely patterns — candidates for a narrowed search."""
        proba = self.predict_proba(bm)
        order = np.argsort(-proba)[:k]
        return [self.classes[int(i)] for i in order]


def _softmax_rows(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def train_pattern_predictor(
    graphs,
    *,
    max_iter: int = 5,
    epochs: int = 400,
    lr: float = 0.3,
    l2: float = 1e-3,
    seed: int = 0,
    labels: list[VNMPattern] | None = None,
) -> PatternPredictor:
    """Label a training population with the full search, then fit the model.

    ``graphs`` is an iterable of :class:`~repro.graphs.graph.Graph` (or
    anything with ``bitmatrix()``).  Pre-computed ``labels`` skip the
    expensive search (used by tests).
    """
    feats = []
    pats: list[VNMPattern] = []
    for i, g in enumerate(graphs):
        bm = g.bitmatrix() if hasattr(g, "bitmatrix") else g
        feats.append(pattern_features(bm))
        if labels is not None:
            pats.append(labels[i])
        else:
            found = find_best_pattern(bm, max_iter=max_iter)
            pats.append(found.pattern if found.succeeded else VNMPattern(1, 2, 4))
    x = np.array(feats)
    classes = sorted({(p.v, p.n, p.m) for p in pats})
    class_patterns = [VNMPattern(*c) for c in classes]
    class_index = {c: i for i, c in enumerate(classes)}
    y = np.array([class_index[(p.v, p.n, p.m)] for p in pats])

    mean = x.mean(axis=0)
    std = np.where(x.std(axis=0) > 1e-9, x.std(axis=0), 1.0)
    xn = np.concatenate([(x - mean) / std, np.ones((x.shape[0], 1))], axis=1)

    rng = np.random.default_rng(seed)
    w = rng.normal(0.0, 0.01, size=(len(classes), xn.shape[1]))
    onehot = np.zeros((x.shape[0], len(classes)))
    onehot[np.arange(x.shape[0]), y] = 1.0
    history = []
    for _ in range(epochs):
        p = _softmax_rows(xn @ w.T)
        loss = -np.log(np.maximum(p[np.arange(x.shape[0]), y], 1e-12)).mean()
        history.append(float(loss))
        grad = (p - onehot).T @ xn / x.shape[0] + l2 * w
        w -= lr * grad
    pred = np.argmax(_softmax_rows(xn @ w.T), axis=1)
    acc = float((pred == y).mean())
    return PatternPredictor(
        classes=class_patterns,
        weights=w,
        feature_mean=mean,
        feature_std=std,
        train_accuracy=acc,
        history=history,
    )
