"""N:M and V:N:M sparsity patterns (paper §2–§3).

An **N:M** pattern constrains every M-element *segment vector* (an aligned
M-wide slice of a matrix row) to at most N non-zeros — the pattern natively
supported by GPU Sparse Tensor Cores (2:4 on Ampere).

A **V:N:M** pattern (VENOM) constrains every V×M *meta-block* (tile) to
(i) at most ``k`` columns containing non-zeros (the *vertical constraint*,
``k = 4`` per the hardware) and (ii) every row being an N:M vector (the
*horizontal constraint*).  N:M is the special case V = 1, where the vertical
constraint is implied whenever ``N <= k``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bitmatrix import BitMatrix

__all__ = ["NMPattern", "VNMPattern", "DEFAULT_K"]

DEFAULT_K = 4


@dataclass(frozen=True)
class NMPattern:
    """An N:M sparse pattern: at most ``n`` non-zeros per ``m`` elements."""

    n: int
    m: int

    def __post_init__(self):
        if not (0 < self.n <= self.m):
            raise ValueError(f"invalid N:M pattern {self.n}:{self.m}")
        if self.m > 64:
            raise ValueError("segment width above 64 is not supported")

    def __str__(self) -> str:
        return f"{self.n}:{self.m}"

    def vector_conforms(self, bits: int) -> bool:
        """Does one M-bit segment vector satisfy the horizontal constraint?"""
        return bits.bit_count() <= self.n

    def invalid_vector_mask(self, bm: BitMatrix) -> np.ndarray:
        """Boolean ``(n_rows, n_segs)`` mask of violating segment vectors."""
        return bm.segment_counts(self.m) > self.n

    def count_invalid_vectors(self, bm: BitMatrix) -> int:
        """Total horizontal-constraint violations, the paper's ``F_p(φ)``."""
        return int(self.invalid_vector_mask(bm).sum())

    def matrix_conforms(self, bm: BitMatrix) -> bool:
        return self.count_invalid_vectors(bm) == 0

    def to_vnm(self, v: int = 1, k: int = DEFAULT_K) -> "VNMPattern":
        return VNMPattern(v, self.n, self.m, k)


@dataclass(frozen=True)
class VNMPattern:
    """A V:N:M sparse pattern over V×M meta-blocks with column budget ``k``."""

    v: int
    n: int
    m: int
    k: int = DEFAULT_K

    def __post_init__(self):
        if self.v < 1:
            raise ValueError("V must be at least 1")
        if not (0 < self.n <= self.m):
            raise ValueError(f"invalid V:N:M pattern {self}")
        if self.m > 64:
            raise ValueError("segment width above 64 is not supported")
        if self.k < self.n:
            raise ValueError("column budget k cannot be below N")

    def __str__(self) -> str:
        return f"{self.v}:{self.n}:{self.m}"

    @property
    def nm(self) -> NMPattern:
        return NMPattern(self.n, self.m)

    # -- vertical constraint -------------------------------------------------
    def tile_column_masks(self, bm: BitMatrix) -> np.ndarray:
        """OR of segment values over each V-row group.

        Returns an ``(n_tiles_v, n_segs)`` unsigned array whose entry is the
        M-bit union of non-zero columns inside that meta-block; rows beyond
        ``n_rows`` pad as zero.
        """
        vals = bm.segment_values(self.m)
        n_rows, n_segs = vals.shape
        n_groups = (n_rows + self.v - 1) // self.v
        pad = n_groups * self.v - n_rows
        if pad:
            vals = np.vstack([vals, np.zeros((pad, n_segs), dtype=vals.dtype)])
        grouped = vals.reshape(n_groups, self.v, n_segs)
        return np.bitwise_or.reduce(grouped, axis=1)

    def vertical_violation_mask(self, bm: BitMatrix) -> np.ndarray:
        """Boolean ``(n_tiles_v, n_segs)`` mask of meta-blocks with > k live columns."""
        masks = self.tile_column_masks(bm)
        return np.bitwise_count(masks) > self.k

    def count_vertical_violations(self, bm: BitMatrix) -> int:
        """The paper's MBScore ``F_MB(φ)``: meta-blocks breaking the vertical constraint."""
        return int(self.vertical_violation_mask(bm).sum())

    # -- combined conformity ---------------------------------------------------
    def tile_violation_mask(self, bm: BitMatrix) -> np.ndarray:
        """Meta-blocks violating either constraint."""
        vertical = self.vertical_violation_mask(bm)
        horizontal = self.nm.invalid_vector_mask(bm)
        n_rows = horizontal.shape[0]
        n_groups = vertical.shape[0]
        pad = n_groups * self.v - n_rows
        if pad:
            horizontal = np.vstack(
                [horizontal, np.zeros((pad, horizontal.shape[1]), dtype=bool)]
            )
        horiz_by_tile = horizontal.reshape(n_groups, self.v, -1).any(axis=1)
        return vertical | horiz_by_tile

    def count_tile_violations(self, bm: BitMatrix) -> int:
        return int(self.tile_violation_mask(bm).sum())

    def matrix_conforms(self, bm: BitMatrix) -> bool:
        return self.count_tile_violations(bm) == 0
