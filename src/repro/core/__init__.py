"""Core of the reproduction: the SOGRE dual-level graph reordering algorithm."""

from .bitmatrix import BitMatrix, min_uint_dtype
from .hamming import (
    cumulative_hamming_distance,
    gray_code,
    hamming_distance,
    hamming_distance_order,
    inverse_gray_code,
    position_code,
    position_codes,
)
from .patterns import DEFAULT_K, NMPattern, VNMPattern
from .permutation import Permutation
from .reorder import ReorderResult, reorder, reorder_graph_matrix
from .autoselect import (
    DEFAULT_M_CANDIDATES,
    DEFAULT_V_CANDIDATES,
    PatternSearchResult,
    find_best_pattern,
    reordering_succeeds,
)
from .predictor import (
    FEATURE_NAMES,
    PatternPredictor,
    pattern_features,
    train_pattern_predictor,
)
from .scores import (
    conformity_report,
    improvement_rate,
    mbscore,
    pscore_per_segment,
    total_pscore,
)
from .stage1 import Stage1Result, encode_rows, lexicographic_row_order, stage1_reorder
from .stage2 import Stage2Result, plan_swaps, stage2_reorder

__all__ = [
    "BitMatrix",
    "min_uint_dtype",
    "gray_code",
    "inverse_gray_code",
    "hamming_distance",
    "hamming_distance_order",
    "cumulative_hamming_distance",
    "position_code",
    "position_codes",
    "NMPattern",
    "VNMPattern",
    "DEFAULT_K",
    "Permutation",
    "ReorderResult",
    "reorder",
    "reorder_graph_matrix",
    "PatternSearchResult",
    "find_best_pattern",
    "reordering_succeeds",
    "DEFAULT_M_CANDIDATES",
    "DEFAULT_V_CANDIDATES",
    "conformity_report",
    "improvement_rate",
    "mbscore",
    "pscore_per_segment",
    "total_pscore",
    "Stage1Result",
    "encode_rows",
    "lexicographic_row_order",
    "stage1_reorder",
    "Stage2Result",
    "plan_swaps",
    "stage2_reorder",
    "FEATURE_NAMES",
    "PatternPredictor",
    "pattern_features",
    "train_pattern_predictor",
]
