"""Hamming-distance order and Hamming position codes (paper §4.2).

The *Hamming-distance order* of all ``k``-digit binary strings is the unique
sequence (up to reversal, anchored at ``0…0``) that minimizes the cumulative
Hamming distance between adjacent strings.  That sequence is the binary
reflected Gray code: entry ``i`` is ``gray(i) = i ^ (i >> 1)`` and every
adjacent pair differs in exactly one bit, so the cumulative distance reaches
its lower bound ``2**k - 1``.

The *Hamming position code* of a binary string is its rank in that order,
i.e. the inverse Gray code of its integer value.  The paper's running
examples hold here::

    >>> hamming_distance_order(2)
    [0, 1, 3, 2]
    >>> position_code(0b11, 2)
    2

Stage-1 of the reordering algorithm encodes every segment vector with its
position code so that numerically-close codes correspond to bit strings with
similar non-zero positions.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "gray_code",
    "inverse_gray_code",
    "hamming_distance_order",
    "position_code",
    "position_codes",
    "hamming_distance",
    "cumulative_hamming_distance",
]


def gray_code(i: int | np.ndarray) -> int | np.ndarray:
    """Return the ``i``-th entry of the binary reflected Gray code."""
    if isinstance(i, np.ndarray):
        return i ^ (i >> np.uint64(1) if i.dtype == np.uint64 else i >> 1)
    return i ^ (i >> 1)


def inverse_gray_code(g: int) -> int:
    """Return the rank ``i`` such that ``gray_code(i) == g``."""
    i = g
    shift = 1
    while (g >> shift) > 0:
        i ^= g >> shift
        shift += 1
    return i


def hamming_distance_order(k: int) -> list[int]:
    """All ``k``-digit binary strings (as ints) in Hamming-distance order."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return [i ^ (i >> 1) for i in range(1 << k)]


def position_code(value: int, k: int) -> int:
    """Hamming position code of a ``k``-digit binary string ``value``.

    This is the rank of ``value`` in :func:`hamming_distance_order`, i.e. the
    inverse Gray code.  ``k`` is accepted for interface clarity and bounds
    checking only; the inverse Gray transform itself is width-independent.
    """
    if value < 0 or value >= (1 << k):
        raise ValueError(f"value {value} does not fit in {k} bits")
    return inverse_gray_code(value)


def position_codes(values: np.ndarray, k: int) -> np.ndarray:
    """Vectorized Hamming position codes for an array of ``k``-bit values.

    Parameters
    ----------
    values:
        Unsigned integer array holding ``k``-bit binary strings.
    k:
        Bit width; must be at most 63 so the codes fit in ``int64``.

    Returns
    -------
    ``int64`` array of the same shape, entry-wise inverse Gray codes.
    """
    if k > 63:
        raise ValueError(f"k={k} too wide; codes must fit in int64")
    out = np.asarray(values, dtype=np.uint64).copy()
    shift = np.uint64(1)
    # The inverse Gray code is the running XOR prefix; doubling the shift each
    # round computes it in O(log k) vectorized passes.
    while int(shift) < k:
        out ^= out >> shift
        shift = np.uint64(int(shift) * 2)
    return out.astype(np.int64)


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two integers."""
    return int(a ^ b).bit_count()


def cumulative_hamming_distance(seq: list[int]) -> int:
    """Sum of Hamming distances between adjacent entries of ``seq``."""
    return sum(hamming_distance(x, y) for x, y in zip(seq, seq[1:]))
