"""Best V:N:M pattern auto-selection (paper §5, opening paragraph).

The evaluation methodology: try ``1:2:M`` with M starting at 4 and doubling
while the graph can still be reordered to full conformance; fix the largest
working M, then sweep V upward (N must stay 2 per the hardware constraint).

Which conforming pattern is "best" the paper leaves to the user ("a simple
approach is to try a number of common patterns and select the best one",
§5.3).  Two policies are provided:

* ``select="fastest"`` (default) — among all conforming candidates, keep the
  one with the lowest cost-model SpMM time at a reference H.  Large-V
  patterns on scattered matrices store mostly padding and lose; this policy
  avoids them.
* ``select="largest"`` — the literal doubling procedure: the largest
  conforming (M, then V).  This reproduces the paper's observation that a
  small ultra-sparse tail *slows down* after conversion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bitmatrix import BitMatrix
from .patterns import VNMPattern
from .reorder import ReorderResult, reorder

__all__ = ["PatternSearchResult", "find_best_pattern", "reordering_succeeds"]

DEFAULT_M_CANDIDATES = (4, 8, 16, 32)
DEFAULT_V_CANDIDATES = (1, 2, 4, 8, 16, 32)


@dataclass
class PatternSearchResult:
    """Best conforming pattern and the reordering that achieves it."""

    pattern: VNMPattern | None
    result: ReorderResult | None
    attempts: list[tuple[VNMPattern, bool]]
    candidates: list[tuple[VNMPattern, ReorderResult]] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.pattern is not None


def reordering_succeeds(
    bm: BitMatrix,
    pattern: VNMPattern,
    *,
    max_iter: int = 10,
    time_budget: float | None = None,
) -> ReorderResult | None:
    """Run the reordering; return the result iff the matrix fully conforms."""
    res = reorder(bm, pattern, max_iter=max_iter, time_budget=time_budget)
    return res if res.conforms else None


def _model_spmm_time(res: ReorderResult, h: int) -> float:
    """Cost-model SpMM time of the reordered matrix in its V:N:M form."""
    from ..sptc.costmodel import CostModel
    from ..sptc.csr import CSRMatrix
    from ..sptc.venom import VNMCompressed

    csr = CSRMatrix.from_scipy(res.matrix.to_scipy())
    compressed = VNMCompressed.compress_csr(csr, res.pattern)
    return CostModel().time_venom_spmm(compressed, h)


def find_best_pattern(
    bm: BitMatrix,
    *,
    n: int = 2,
    m_candidates: tuple[int, ...] = DEFAULT_M_CANDIDATES,
    v_candidates: tuple[int, ...] = DEFAULT_V_CANDIDATES,
    max_iter: int = 10,
    select: str = "fastest",
    h_ref: int = 128,
    attempt_time_budget: float | None = 30.0,
) -> PatternSearchResult:
    """Search for the best V:N:M pattern the matrix can be reordered into.

    Follows the paper's progressive-doubling enumeration (grow M at V = 1,
    then grow V at the largest working M), then picks among the conforming
    candidates per ``select`` (see module docs).  ``attempts`` records every
    pattern tried and whether it conformed, for the Table-8 success-rate
    statistics.
    """
    if select not in ("fastest", "largest"):
        raise ValueError(f"unknown selection policy {select!r}")
    attempts: list[tuple[VNMPattern, bool]] = []
    candidates: list[tuple[VNMPattern, ReorderResult]] = []

    # Phase 1: grow M with V = 1 while full conformance is achievable.
    best_m: int | None = None
    for m in m_candidates:
        pat = VNMPattern(1, n, m)
        res = reordering_succeeds(bm, pat, max_iter=max_iter, time_budget=attempt_time_budget)
        attempts.append((pat, res is not None))
        if res is None:
            break
        candidates.append((pat, res))
        best_m = m

    if best_m is None:
        return PatternSearchResult(None, None, attempts, [])

    # Phase 2: grow V at the fixed largest working M.
    for v in v_candidates:
        if v == 1:
            continue
        pat = VNMPattern(v, n, best_m)
        res = reordering_succeeds(bm, pat, max_iter=max_iter, time_budget=attempt_time_budget)
        attempts.append((pat, res is not None))
        if res is None:
            break
        candidates.append((pat, res))

    if select == "largest":
        pattern, result = candidates[-1]
    else:
        timed = [(_model_spmm_time(res, h_ref), -pat.m, -pat.v, pat, res) for pat, res in candidates]
        timed.sort(key=lambda entry: entry[:3])
        _, _, _, pattern, result = timed[0]
    return PatternSearchResult(pattern, result, attempts, candidates)
