"""Dual-level N:M sparsity-oriented reordering (paper Alg. 1, §4.1).

Alternates Stage-1 (vertical-constraint / MBScore reduction via Hamming
position sorting) and Stage-2 (horizontal-constraint / PScore reduction via
greedy vertex swaps) until the matrix conforms to the requested V:N:M
pattern, progress stalls, or the iteration cap is hit.  The composed vertex
permutation is returned alongside the reordered matrix; the transformation
is lossless and keeps the adjacency matrix symmetric.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..obs import events as obs_events
from ..obs import trace as obs_trace
from .bitmatrix import BitMatrix
from .patterns import NMPattern, VNMPattern
from .permutation import Permutation
from .scores import improvement_rate, mbscore, total_pscore
from .stage1 import stage1_reorder
from .stage2 import stage2_reorder

__all__ = ["ReorderResult", "reorder", "reorder_graph_matrix"]


@dataclass
class ReorderResult:
    """Outcome of a full dual-level reordering run."""

    pattern: VNMPattern
    permutation: Permutation
    matrix: BitMatrix
    iterations: int
    initial_invalid_vectors: int
    final_invalid_vectors: int
    initial_mbscore: int
    final_mbscore: int
    elapsed_seconds: float
    stage_trace: list[dict] = field(default_factory=list)

    @property
    def improvement_rate(self) -> float:
        return improvement_rate(self.initial_invalid_vectors, self.final_invalid_vectors)

    @property
    def conforms(self) -> bool:
        return self.pattern.matrix_conforms(self.matrix)

    def summary(self) -> dict:
        return {
            "pattern": str(self.pattern),
            "iterations": self.iterations,
            "initial_invalid_vectors": self.initial_invalid_vectors,
            "final_invalid_vectors": self.final_invalid_vectors,
            "improvement_rate": self.improvement_rate,
            "conforms": self.conforms,
            "elapsed_seconds": self.elapsed_seconds,
        }


def reorder(
    bm: BitMatrix,
    pattern: VNMPattern | NMPattern,
    *,
    max_iter: int = 10,
    stage_max_iter: int = 10,
    use_stage1: bool = True,
    use_stage2: bool = True,
    taint_invalid: bool = True,
    require_positive_gain: bool = False,
    time_budget: float | None = None,
) -> ReorderResult:
    """Reorder ``bm`` toward ``pattern`` and return the composed result.

    ``use_stage1`` / ``use_stage2`` exist for the ablation study; both default
    on (the paper's dual-level algorithm).  ``max_iter`` bounds the outer
    alternation, ``stage_max_iter`` each stage's internal loop.
    ``time_budget`` (seconds) caps the wall-clock spent; the best state found
    within the budget is returned — reordering is offline preprocessing
    (§4.4), so a budget is the natural operational knob.
    """
    if isinstance(pattern, NMPattern):
        pattern = pattern.to_vnm()
    nm = pattern.nm
    with obs_trace.span("reorder", pattern=str(pattern), n=bm.n_rows) as root:
        t0 = time.perf_counter()
        current = bm
        perm = Permutation.identity(bm.n_rows)
        with obs_trace.span("reorder.scores", phase="initial"):
            init_invalid = total_pscore(current, nm)
            init_mb = mbscore(current, pattern)
            prev = init_invalid + init_mb
        trace: list[dict] = []
        iterations = 0

        deadline = None if time_budget is None else t0 + time_budget
        best = (prev, perm, current)
        while prev > 0 and iterations < max_iter:
            if deadline is not None and time.perf_counter() > deadline:
                break
            with obs_trace.span("reorder.iteration", index=iterations) as it_span:
                if use_stage1:
                    s1 = stage1_reorder(
                        current, pattern, max_iter=stage_max_iter, taint_invalid=taint_invalid
                    )
                    current, perm = s1.matrix, perm.then(s1.permutation)
                    trace.append(
                        {"stage": 1, "mbscore": s1.final_mbscore, "iters": s1.iterations}
                    )
                if use_stage2:
                    s2 = stage2_reorder(
                        current,
                        nm,
                        max_iter=stage_max_iter,
                        require_positive_gain=require_positive_gain,
                        deadline=deadline,
                    )
                    current, perm = s2.matrix, perm.then(s2.permutation)
                    trace.append(
                        {"stage": 2, "pscore": s2.final_pscore, "iters": s2.iterations}
                    )
                with obs_trace.span("reorder.scores", phase="iteration"):
                    pscore_now = total_pscore(current, nm)
                    mb_now = mbscore(current, pattern)
                    now = pscore_now + mb_now
                it_span.set(violations=now)
            iterations += 1
            obs_events.emit(
                "reorder.iteration",
                iteration=iterations,
                pscore=pscore_now,
                mbscore=mb_now,
                delta=prev - now,
                improvement_rate=improvement_rate(init_invalid, pscore_now),
            )
            if now < best[0]:
                best = (now, perm, current)
            # Diminishing-returns cutoff: alternating further is not worth it
            # once an iteration recovers less than ~2% of the remaining
            # violations.
            if now >= prev * 0.98:
                break
            prev = now

        # A late non-improving alternation never degrades the returned state.
        _, perm, current = best
        with obs_trace.span("reorder.scores", phase="final"):
            final_invalid = total_pscore(current, nm)
            final_mb = mbscore(current, pattern)
        root.set(iterations=iterations, final_invalid=final_invalid)
        return ReorderResult(
            pattern=pattern,
            permutation=perm,
            matrix=current,
            iterations=iterations,
            initial_invalid_vectors=init_invalid,
            final_invalid_vectors=final_invalid,
            initial_mbscore=init_mb,
            final_mbscore=final_mb,
            elapsed_seconds=time.perf_counter() - t0,
            stage_trace=trace,
        )


def reorder_graph_matrix(adjacency: np.ndarray, pattern: VNMPattern | NMPattern, **kwargs) -> ReorderResult:
    """Convenience wrapper accepting a dense 0/1 adjacency array."""
    return reorder(BitMatrix.from_dense(adjacency), pattern, **kwargs)
