"""Stage-2 reordering: greedy cross-segment vertex swaps (paper Alg. 3, §4.3).

Stage-2 lowers the number of segment vectors violating the horizontal N:M
constraint (the PScore).  It repeatedly takes the *primary* segment — the
n×M column group with the worst PScore — and pairs it with *target* segments
in decreasing-PScore order.  For each pair it enumerates the M×M candidate
vertex swaps, picks the best *fresh* pair (``freshtop``: highest total gain
among pairs whose vertices are not yet in the swap record; the gain is not
required to be positive, per the paper's footnote 1), records it, and moves
on.  Healthy segments are excluded; a segment is retired after serving as
primary; all recorded swaps are applied in one batch at the end of a pass.

Vectorized gain identity
------------------------
A vertex swap is a symmetric transposition (rows *and* columns ``u, v``
exchange).  Permuting rows never changes the total PScore, so only the column
exchange matters.  For columns ``u ∈ P`` and ``v ∈ T``, a row ``r`` changes
the score only when ``A[r,u] != A[r,v]``:

* ``A[r,u]=1, A[r,v]=0`` (non-zero moves P→T): fixes P iff ``cnt_P(r)=N+1``,
  breaks T iff ``cnt_T(r)=N``;
* ``A[r,u]=0, A[r,v]=1`` (moves T→P): fixes T iff ``cnt_T(r)=N+1``, breaks P
  iff ``cnt_P(r)=N``.

All M×M pair gains therefore reduce to four small matrix products over the
rows where any of these indicator weights is non-zero — the NumPy stand-in
for the paper's warp-level CUDA enumeration.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .bitmatrix import BitMatrix
from .patterns import NMPattern
from .permutation import Permutation
from .scores import pscore_per_segment

__all__ = ["Stage2Result", "stage2_reorder", "plan_swaps"]


@dataclass
class Stage2Result:
    """Outcome of one Stage-2 run."""

    permutation: Permutation
    matrix: BitMatrix
    iterations: int
    pscore_history: list[int] = field(default_factory=list)
    swaps_per_iteration: list[int] = field(default_factory=list)

    @property
    def initial_pscore(self) -> int:
        return self.pscore_history[0]

    @property
    def final_pscore(self) -> int:
        # The returned matrix is the best state seen, which is the minimum of
        # the trace (a late non-improving pass never degrades the result).
        return min(self.pscore_history)


class _WorkingState:
    """Planning-time view of the matrix with column swaps applied virtually.

    Row swaps are deferred: a consistent row permutation leaves every per-row
    gain sum unchanged, so planning against column-swapped state is exact.
    """

    def __init__(self, bm: BitMatrix, pattern: NMPattern):
        self.bm = bm
        self.m = pattern.m
        self.n = pattern.n
        # One whole-matrix extraction, stored transposed (segment-major) so
        # per-segment slices are contiguous.  The packed per-segment values
        # are the working truth: column bits are read with shift/mask ops and
        # swaps are applied with XOR, so no per-segment bool caches exist.
        self._seg_vals_t = bm.segment_values_t(pattern.m)
        self.counts_t = np.bitwise_count(self._seg_vals_t).astype(np.int16)
        # Per-segment cache of the rows with count >= N — the only rows a
        # single swap can move w.r.t. either the violation count (boundary
        # rows at N / N+1) or the excess mass (rows above N).  Gains are
        # evaluated on these rows instead of all n per candidate pair.
        self._active: dict[int, np.ndarray] = {}
        self.n_segs = self.counts_t.shape[0]
        self.seg_nnz = self.counts_t.sum(axis=1).astype(np.int64)

    def column_bit(self, seg: int, local: int) -> np.ndarray:
        """One column of a segment as a 0/1 array of the packed dtype."""
        vals = self._seg_vals_t[seg]
        return (vals >> vals.dtype.type(local)) & vals.dtype.type(1)

    def valid_locals(self, seg: int) -> int:
        """Number of real (non-padding) columns in this segment."""
        return min(self.m, self.bm.n_cols - seg * self.m)

    def pscores(self) -> np.ndarray:
        return (self.counts_t > self.n).sum(axis=1).astype(np.int64)

    def segment_nnz(self) -> np.ndarray:
        return self.seg_nnz

    def active_rows(self, seg: int) -> np.ndarray:
        rows = self._active.get(seg)
        if rows is None:
            rows = np.nonzero(self.counts_t[seg] >= self.n)[0]
            self._active[seg] = rows
        return rows

    def pair_gains(self, p: int, t: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gain matrices ``(Gp, Gt, Ge)`` of shape (m, m) for swapping local
        column ``u`` of ``p`` with ``v`` of ``t``.

        ``Gp`` / ``Gt`` are the PScore reductions of the primary resp. target
        segment (the paper's gain).  ``Ge`` is the reduction of the *excess*
        mass ``Σ_r max(0, cnt(r) − N)`` over both segments — a secondary
        objective that keeps the greedy progressing on rows far above the N
        budget, where a single swap cannot yet remove a violation.
        """
        rows = np.union1d(self.active_rows(p), self.active_rows(t))
        m = self.m
        if rows.size == 0:
            z = np.zeros((m, m), dtype=np.int64)
            return z, z.copy(), z.copy()
        boundary = np.int16(self.n)
        cp = self.counts_t[p, rows]
        ct = self.counts_t[t, rows]
        shifts = np.arange(m, dtype=self._seg_vals_t.dtype)
        one = self._seg_vals_t.dtype.type(1)
        xp = ((self._seg_vals_t[p, rows][:, None] >> shifts) & one).astype(np.int64)
        xt = ((self._seg_vals_t[t, rows][:, None] >> shifts) & one).astype(np.int64)
        nxp, nxt = 1 - xp, 1 - xt
        fp = (cp == boundary + 1).astype(np.int64)
        bp = (cp == boundary).astype(np.int64)
        ft = (ct == boundary + 1).astype(np.int64)
        bt = (ct == boundary).astype(np.int64)
        # Gp[u, v] = Σ_r xu(1-xv)·fix_p − (1-xu)xv·brk_p
        gp = (xp * fp[:, None]).T @ nxt - (nxp * bp[:, None]).T @ xt
        # Gt[u, v] = Σ_r (1-xu)xv·fix_t − xu(1-xv)·brk_t
        gt = (nxp * ft[:, None]).T @ xt - (xp * bt[:, None]).T @ nxt
        # Excess deltas: moving a non-zero p→t lowers excess iff cp > N and
        # raises it iff ct >= N (and symmetrically for t→p).
        a2 = (cp > boundary).astype(np.int64) - (ct >= boundary).astype(np.int64)
        b2 = (ct > boundary).astype(np.int64) - (cp >= boundary).astype(np.int64)
        ge = (xp * a2[:, None]).T @ nxt + (nxp * b2[:, None]).T @ xt
        return gp, gt, ge

    def apply_swap(self, p: int, u: int, t: int, v: int) -> None:
        """Virtually exchange column ``u`` of segment ``p`` with ``v`` of ``t``."""
        bu = self.column_bit(p, u)
        bv = self.column_bit(t, v)
        diff = bu ^ bv
        changed = np.nonzero(diff)[0]
        if changed.size == 0:
            return
        dtype = self._seg_vals_t.dtype
        # Flip the differing bits in place: XOR with the diff mask shifted to
        # each column's position.
        self._seg_vals_t[p, changed] ^= dtype.type(int(1) << u) * diff[changed]
        self._seg_vals_t[t, changed] ^= dtype.type(int(1) << v) * diff[changed]
        delta = bv[changed].astype(np.int16) - bu[changed].astype(np.int16)
        self.counts_t[p, changed] += delta
        self.counts_t[t, changed] -= delta
        moved = int(delta.sum())
        self.seg_nnz[p] += moved
        self.seg_nnz[t] -= moved
        self._update_active(p, changed)
        self._update_active(t, changed)

    def _update_active(self, seg: int, changed: np.ndarray) -> None:
        """Incrementally repair the active-row cache on the changed rows.

        A swap touches only a handful of rows; rebuilding the cache from the
        full count column per swap would dominate the runtime on large
        matrices.
        """
        rows = self._active.get(seg)
        if rows is None:
            return
        c = self.counts_t[seg, changed]
        now_active = changed[c >= self.n]
        kept = rows[~np.isin(rows, changed, assume_unique=True)]
        self._active[seg] = np.union1d(kept, now_active)


def _freshtop(
    gp: np.ndarray,
    gt: np.ndarray,
    ge: np.ndarray,
    p: int,
    t: int,
    m: int,
    used: set[int],
    valid_p: int,
    valid_t: int,
    require_positive_gain: bool,
) -> tuple[int, int, int, int] | None:
    """Best fresh pair ``(u_local, v_local, gain_p, gain_t)`` or ``None``.

    Pairs are ranked by (PScore gain, excess gain) lexicographically.  As in
    the paper, a positive PScore gain is not required — but a pair must not
    be *strictly harmful* (negative PScore gain, or zero with no excess
    progress), which keeps the greedy from oscillating on heavily-skewed
    matrices whose rows sit far above the N budget.
    """
    best = None
    best_key = None
    for u in range(valid_p):
        if p * m + u in used:
            continue
        for v in range(valid_t):
            if t * m + v in used:
                continue
            key = (int(gp[u, v]) + int(gt[u, v]), int(ge[u, v]))
            if best_key is None or key > best_key:
                best_key = key
                best = (u, v, int(gp[u, v]), int(gt[u, v]))
    if best is None or best_key is None:
        return None
    if require_positive_gain:
        if best_key[0] <= 0:
            return None
    elif best_key[0] < 0 or best_key == (0, 0) or (best_key[0] == 0 and best_key[1] < 0):
        return None
    return best


def plan_swaps(
    bm: BitMatrix,
    pattern: NMPattern,
    *,
    require_positive_gain: bool = False,
    deadline: float | None = None,
) -> list[tuple[int, int]]:
    """One pass of Alg. 3 lines 1–20: plan a batch of vertex swaps.

    Returns disjoint global vertex pairs; the caller applies them symmetrically.
    """
    state = _WorkingState(bm, pattern)
    m = pattern.m
    pscores = state.pscores()
    active = [int(s) for s in np.nonzero(pscores)[0]]
    used: set[int] = set()
    swaps: list[tuple[int, int]] = []

    def handle_primary(p: int, targets: list[int], fixed_out: list[int]) -> None:
        """Pair primary ``p`` with each target until fixed or out of vertices.

        Targets whose PScore reaches zero are appended to ``fixed_out`` so the
        caller can retire them.
        """
        for t in targets:
            if pscores[p] <= 0:
                break
            valid_p = state.valid_locals(p)
            if sum(1 for u in range(valid_p) if p * m + u not in used) == 0:
                break
            gp, gt, ge = state.pair_gains(p, t)
            pick = _freshtop(
                gp, gt, ge, p, t, m, used,
                valid_p, state.valid_locals(t), require_positive_gain,
            )
            if pick is None:
                continue
            u, v, gain_p, gain_t = pick
            gu, gv = p * m + u, t * m + v
            swaps.append((gu, gv))
            used.add(gu)
            used.add(gv)
            state.apply_swap(p, u, t, v)
            pscores[p] -= gain_p
            pscores[t] -= gain_t
            if pscores[t] <= 0:
                fixed_out.append(t)

    # Max-heap with lazy invalidation: a popped entry whose recorded score is
    # stale (the segment got fixed or changed by earlier swaps) is re-pushed
    # or dropped, so each primary pop is O(log ω) instead of re-sorting.
    heap = [(-int(pscores[s]), s) for s in active]
    heapq.heapify(heap)
    active_set = set(active)

    def pop_worst() -> int | None:
        while heap:
            neg, s = heapq.heappop(heap)
            if s not in active_set:
                continue
            cur = int(pscores[s])
            if cur <= 0:
                active_set.discard(s)
                continue
            if -neg != cur:
                heapq.heappush(heap, (-cur, s))
                continue
            return s
        return None

    while True:
        if deadline is not None and time.perf_counter() > deadline:
            break
        primary = pop_worst()
        if primary is None:
            break
        active_set.discard(primary)
        live = np.fromiter(active_set, dtype=np.int64, count=len(active_set))
        live = live[pscores[live] > 0]
        if live.size == 0:
            # This was the last unhealthy segment; restore it for the
            # sparsest-partner pass below.
            active_set.add(primary)
            break
        # Targets in decreasing-PScore order (snapshot).
        targets = live[np.argsort(-pscores[live], kind="stable")]
        removed: list[int] = []
        handle_primary(primary, targets, removed)
        if pscores[primary] > 0:
            # Every unhealthy target was useless (e.g. a hub row overfills
            # all of them at once).  Generalize the paper's sparsest-segment
            # rule: spill into the emptiest healthy segments, which maximizes
            # the chance of fixing the primary without breaking the partner.
            nnz = state.segment_nnz()
            order = np.argsort(nnz, kind="stable")
            # A handful of candidates is not enough when the overflowing row
            # already occupies most sparse segments; 4m keeps the odds high
            # at negligible cost (one gain evaluation per candidate).
            sparse_targets = [int(sg) for sg in order if sg != primary and pscores[sg] <= 0][: 4 * m]
            handle_primary(primary, sparse_targets, removed)
        for t in removed:
            active_set.discard(t)
    active = [s for s in active_set if pscores[s] > 0]

    if len(active) == 1 and pscores[active[0]] > 0:
        # Last unhealthy segment: pair with the sparsest other segment, which
        # maximizes the chance of fixing it while staying healthy itself.
        primary = active.pop(0)
        nnz = state.segment_nnz()
        order = np.argsort(nnz, kind="stable")
        targets = [int(s) for s in order if s != primary][: max(1, m)]
        handle_primary(primary, targets, [])

    return swaps


def stage2_reorder(
    bm: BitMatrix,
    pattern: NMPattern,
    *,
    max_iter: int = 10,
    require_positive_gain: bool = False,
    min_relative_improvement: float = 0.02,
    deadline: float | None = None,
) -> Stage2Result:
    """Iterate plan-and-apply passes until the PScore stops improving.

    Tracks the best state seen so a non-improving late pass cannot degrade
    the returned reordering.  A pass that improves by less than
    ``min_relative_improvement`` of the current score ends the loop — on
    heavily-skewed matrices the greedy's tail gains are tiny and not worth
    the quadratic grind.  ``deadline`` (a ``time.perf_counter`` value) stops
    the loop between passes once exceeded.  The input matrix is not modified.
    """
    registry = obs_metrics.default_registry()
    swap_counter = registry.counter(
        "reorder_stage2_swaps_total", help="vertex swaps applied by stage-2 passes"
    )
    gain_counter = registry.counter(
        "reorder_stage2_pscore_gain_total", help="total PScore removed by stage-2 passes"
    )
    with obs_trace.span("stage2", n=bm.n_rows) as sp:
        current = bm
        perm = Permutation.identity(bm.n_rows)
        history = [int(pscore_per_segment(current, pattern).sum())]
        swaps_per_iter: list[int] = []
        best = (history[0], perm, current)
        iterations = 0
        while history[-1] > 0 and iterations < max_iter:
            if deadline is not None and time.perf_counter() > deadline:
                break
            with obs_trace.span("stage2.plan", index=iterations):
                swaps = plan_swaps(
                    current, pattern,
                    require_positive_gain=require_positive_gain, deadline=deadline,
                )
            if not swaps:
                break
            with obs_trace.span("stage2.apply", swaps=len(swaps)):
                step = Permutation.from_swaps(bm.n_rows, swaps)
                current = current.permute_symmetric(step.order)
                perm = perm.then(step)
                score = int(pscore_per_segment(current, pattern).sum())
            history.append(score)
            swaps_per_iter.append(len(swaps))
            swap_counter.inc(len(swaps))
            if history[-2] > score:
                gain_counter.inc(history[-2] - score)
            iterations += 1
            if score < best[0]:
                best = (score, perm, current)
            if score >= history[-2] * (1.0 - min_relative_improvement):
                break
        sp.set(iterations=iterations, pscore=min(history))
    _, best_perm, best_matrix = best
    return Stage2Result(best_perm, best_matrix, iterations, history, swaps_per_iter)
