"""Bit-manipulation subroutines (the paper's supplementary-material family).

The CUDA library builds its hot paths from integer intrinsics (`__popc`,
`__brev`, shift/mask field extraction — Listing 1 and "more subroutines are
in the supplementary material").  These are the NumPy ports: vectorized,
word-parallel implementations with the same semantics, used by the bit-packed
matrix layer and available for building new kernels.

`popcount64` is a SWAR (SIMD-within-a-register) implementation kept as an
executable specification of what `np.bitwise_count` / `__popc` compute; the
library itself calls the NumPy builtin.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "popcount64",
    "bit_reverse",
    "extract_field",
    "deposit_field",
    "lowest_set_bit",
    "set_bit_positions",
]

_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)


def popcount64(x: np.ndarray | int) -> np.ndarray | int:
    """SWAR population count of 64-bit words (the `__popc` reference)."""
    scalar = np.isscalar(x)
    v = np.asarray(x, dtype=np.uint64)
    v = v - ((v >> np.uint64(1)) & _M1)
    v = (v & _M2) + ((v >> np.uint64(2)) & _M2)
    v = (v + (v >> np.uint64(4))) & _M4
    out = (v * _H01) >> np.uint64(56)
    return int(out) if scalar else out.astype(np.uint8)


def bit_reverse(x: np.ndarray | int, width: int = 64) -> np.ndarray | int:
    """Reverse the low ``width`` bits of each word (the `__brev` analogue)."""
    if not 1 <= width <= 64:
        raise ValueError("width must be in [1, 64]")
    scalar = np.isscalar(x)
    v = np.asarray(x, dtype=np.uint64)
    masks = [
        (np.uint64(0x5555555555555555), 1),
        (np.uint64(0x3333333333333333), 2),
        (np.uint64(0x0F0F0F0F0F0F0F0F), 4),
        (np.uint64(0x00FF00FF00FF00FF), 8),
        (np.uint64(0x0000FFFF0000FFFF), 16),
        (np.uint64(0x00000000FFFFFFFF), 32),
    ]
    for mask, shift in masks:
        s = np.uint64(shift)
        v = ((v & mask) << s) | ((v >> s) & mask)
    v = v >> np.uint64(64 - width)
    return int(v) if scalar else v


def extract_field(words: np.ndarray, offset: int, width: int) -> np.ndarray:
    """Extract a ``width``-bit field starting at bit ``offset`` (BFE)."""
    if width <= 0 or offset < 0 or offset + width > 64:
        raise ValueError("field out of range")
    mask = np.uint64((1 << width) - 1)
    return (np.asarray(words, dtype=np.uint64) >> np.uint64(offset)) & mask


def deposit_field(words: np.ndarray, values: np.ndarray, offset: int, width: int) -> np.ndarray:
    """Return words with the ``width``-bit field at ``offset`` replaced (BFI)."""
    if width <= 0 or offset < 0 or offset + width > 64:
        raise ValueError("field out of range")
    mask = np.uint64((1 << width) - 1)
    w = np.asarray(words, dtype=np.uint64)
    v = np.asarray(values, dtype=np.uint64) & mask
    cleared = w & ~(mask << np.uint64(offset))
    return cleared | (v << np.uint64(offset))


def lowest_set_bit(x: np.ndarray | int) -> np.ndarray | int:
    """Index of the lowest set bit (`__ffs` − 1); −1 for zero words."""
    scalar = np.isscalar(x)
    v = np.asarray(x, dtype=np.uint64)
    isolated = v & (~v + np.uint64(1))
    # log2 of a power of two via popcount of (isolated - 1); substitute 1 for
    # zero words so the subtraction never wraps (their result is masked off).
    safe = np.where(v == 0, np.uint64(1), isolated)
    idx = np.where(
        v == 0,
        np.int64(-1),
        np.bitwise_count(safe - np.uint64(1)).astype(np.int64),
    )
    return int(idx) if scalar else idx


def set_bit_positions(word: int, width: int = 64) -> list[int]:
    """All set-bit positions of one word, ascending (ballot-scan helper)."""
    out = []
    w = int(word)
    while w:
        low = w & -w
        out.append(low.bit_length() - 1)
        w ^= low
    return [p for p in out if p < width]
