"""Classical reordering-quality metrics.

The related-work section surveys reorderings that optimize *locality*
(bandwidth, linear arrangement, cache behaviour — RCM, MinLA, Gorder…).
SOGRE optimizes something orthogonal: V:N:M pattern conformity.  These
metrics make that contrast measurable — the baseline-comparison bench shows
each family winning on its own objective.
"""

from __future__ import annotations

import numpy as np

from .bitmatrix import BitMatrix
from .patterns import NMPattern, VNMPattern
from .scores import total_pscore

__all__ = [
    "matrix_bandwidth",
    "matrix_profile",
    "linear_arrangement_cost",
    "average_neighbour_distance",
    "ordering_report",
]


def _coords(bm: BitMatrix) -> tuple[np.ndarray, np.ndarray]:
    rows, cols = bm.nonzero()
    return rows, cols


def matrix_bandwidth(bm: BitMatrix) -> int:
    """Maximum |i − j| over non-zeros (what RCM minimizes)."""
    rows, cols = _coords(bm)
    if rows.size == 0:
        return 0
    return int(np.abs(rows - cols).max())


def matrix_profile(bm: BitMatrix) -> int:
    """Sum over rows of the distance from the diagonal to the leftmost
    non-zero (the skyline storage cost)."""
    rows, cols = _coords(bm)
    if rows.size == 0:
        return 0
    left = np.full(bm.n_rows, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(left, rows, cols)
    idx = np.arange(bm.n_rows)
    has_nz = left < np.iinfo(np.int64).max
    below_diag = has_nz & (left < idx)
    return int((idx[below_diag] - left[below_diag]).sum())


def linear_arrangement_cost(bm: BitMatrix) -> int:
    """Σ |i − j| over non-zeros — the MinLA objective [39]."""
    rows, cols = _coords(bm)
    return int(np.abs(rows - cols).sum())


def average_neighbour_distance(bm: BitMatrix) -> float:
    """Mean |i − j| over non-zeros — a cache-locality proxy."""
    rows, cols = _coords(bm)
    if rows.size == 0:
        return 0.0
    return float(np.abs(rows - cols).mean())


def ordering_report(bm: BitMatrix, pattern: VNMPattern | NMPattern | None = None) -> dict:
    """All locality metrics plus (optionally) the pattern-conformity score."""
    out = {
        "bandwidth": matrix_bandwidth(bm),
        "profile": matrix_profile(bm),
        "linear_arrangement": linear_arrangement_cost(bm),
        "avg_neighbour_distance": average_neighbour_distance(bm),
    }
    if pattern is not None:
        nm = pattern.nm if isinstance(pattern, VNMPattern) else pattern
        out["invalid_segment_vectors"] = total_pscore(bm, nm)
    return out
