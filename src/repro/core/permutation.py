"""Vertex permutations.

A :class:`Permutation` stores the *gather* form ``perm[new] = old``: applying
it to a matrix produces ``A[perm][:, perm]``, i.e. new row ``i`` is old row
``perm[i]``.  This matches the output convention of :func:`numpy.argsort`
(sorting keys yields the gather order of the sorted sequence), which is how
Stage-1 produces its reorderings.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Permutation"]


class Permutation:
    """An immutable permutation of ``n`` vertices in gather form."""

    __slots__ = ("order",)

    def __init__(self, order: np.ndarray):
        order = np.asarray(order, dtype=np.int64)
        if order.ndim != 1:
            raise ValueError("permutation must be one-dimensional")
        self.order = order
        self.order.setflags(write=False)

    # -- constructors ------------------------------------------------------
    @classmethod
    def identity(cls, n: int) -> "Permutation":
        return cls(np.arange(n, dtype=np.int64))

    @classmethod
    def from_swaps(cls, n: int, swaps: list[tuple[int, int]]) -> "Permutation":
        """Permutation that exchanges each listed vertex pair.

        Swaps are applied in order, so overlapping pairs compose like
        successive transpositions.
        """
        order = np.arange(n, dtype=np.int64)
        for u, v in swaps:
            order[u], order[v] = order[v], order[u]
        return cls(order)

    @classmethod
    def random(cls, n: int, rng: np.random.Generator) -> "Permutation":
        return cls(rng.permutation(n).astype(np.int64))

    # -- properties --------------------------------------------------------
    @property
    def n(self) -> int:
        return self.order.shape[0]

    def is_identity(self) -> bool:
        return bool(np.array_equal(self.order, np.arange(self.n)))

    def validate(self) -> None:
        """Raise ``ValueError`` unless this is a bijection on ``range(n)``."""
        seen = np.zeros(self.n, dtype=bool)
        if self.order.min(initial=0) < 0 or self.order.max(initial=-1) >= self.n:
            raise ValueError("permutation entries out of range")
        seen[self.order] = True
        if not seen.all():
            raise ValueError("permutation is not a bijection")

    # -- algebra -----------------------------------------------------------
    def inverse(self) -> "Permutation":
        inv = np.empty(self.n, dtype=np.int64)
        inv[self.order] = np.arange(self.n, dtype=np.int64)
        return Permutation(inv)

    def then(self, other: "Permutation") -> "Permutation":
        """Composite permutation equivalent to applying ``self`` then ``other``.

        If ``B = A[self]`` and ``C = B[other]`` then
        ``C = A[self.then(other)]``.
        """
        if other.n != self.n:
            raise ValueError("size mismatch in permutation composition")
        return Permutation(self.order[other.order])

    # -- application -------------------------------------------------------
    def apply_to_vector(self, x: np.ndarray) -> np.ndarray:
        """Gather: ``out[new] = x[old]`` along the first axis."""
        return np.asarray(x)[self.order]

    def apply_to_matrix(self, a: np.ndarray) -> np.ndarray:
        """Symmetrically permute a dense square matrix: ``A[perm][:, perm]``."""
        a = np.asarray(a)
        if a.shape[0] != self.n or a.shape[1] != self.n:
            raise ValueError("matrix shape does not match permutation size")
        return a[np.ix_(self.order, self.order)]

    def new_index_of(self, old: int | np.ndarray):
        """Map old vertex ids to their new ids (the scatter view)."""
        return self.inverse().order[old]

    # -- dunder ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Permutation) and np.array_equal(self.order, other.order)

    def __hash__(self):
        return hash(self.order.tobytes())

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"Permutation(n={self.n})"
