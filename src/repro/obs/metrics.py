"""Process-local metrics: counters, gauges, histograms, and exporters.

A :class:`MetricsRegistry` owns a flat namespace of named instruments, each
optionally split by labels (a Prometheus-style ``(name, labels)`` series
key).  Instruments are created on first use and are stable objects, so hot
paths cache the instrument once and pay only an attribute update per
observation:

* :class:`Counter` — monotonically increasing total (``_total`` names);
* :class:`Gauge` — a value that goes up and down (residuals, queue depths);
* :class:`Histogram` — observations bucketed into **fixed log-scale
  buckets** with p50/p95/p99 summaries interpolated from the bucket counts
  (the classic Prometheus histogram-quantile estimate).

Two exporters cover the usual consumers: :meth:`MetricsRegistry.snapshot`
(JSON-able dict, written by ``repro serve --metrics-file``) and
:meth:`MetricsRegistry.to_prometheus` (text exposition format).

Counters and gauges update under the GIL with plain attribute arithmetic;
histograms take a small per-instrument lock because an observation touches
three fields.  A process-wide :func:`default_registry` collects the
always-cheap library counters (reorder swap totals and the like); request
paths — :class:`~repro.pipeline.serving.ServingSession`,
:class:`~repro.pipeline.cache.ArtifactCache` — only record when the caller
hands them a registry, keeping the disabled hot path free of bookkeeping.
"""

from __future__ import annotations

import json
import threading
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "DEFAULT_BUCKETS",
]

# Log-scale (powers of two) latency buckets: 1us .. ~67s, then +Inf.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(1e-6 * 2.0**i for i in range(27))


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: dict, help: str = ""):
        self.name = name
        self.labels = dict(labels)
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def _sample(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: dict, help: str = ""):
        self.name = name
        self.labels = dict(labels)
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def _sample(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Observations over fixed log-scale buckets with quantile summaries.

    ``buckets`` are the inclusive upper bounds of each bucket (ascending); an
    implicit ``+Inf`` bucket catches the tail.  Quantiles are estimated by
    linear interpolation inside the bucket containing the target rank —
    exact at bucket edges, resolution-limited (one bucket width) inside.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "help", "buckets", "counts", "sum", "count", "_lock")

    def __init__(
        self,
        name: str,
        labels: dict,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("histogram buckets must be strictly ascending")
        self.name = name
        self.labels = dict(labels)
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        # Bisect by hand: bucket lists are short and this avoids an import
        # on a path that runs per request.
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self.counts[lo] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) from the bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            prev_cum = cumulative
            cumulative += c
            if cumulative >= rank:
                hi = self.buckets[i] if i < len(self.buckets) else self.buckets[-1]
                lo = self.buckets[i - 1] if i > 0 else 0.0
                if i >= len(self.buckets):
                    return hi  # +Inf bucket: clamp to the last finite edge
                frac = (rank - prev_cum) / c
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
        return self.buckets[-1]

    def summary(self) -> dict:
        """``{count, sum, avg, p50, p95, p99}`` of everything observed."""
        return {
            "count": self.count,
            "sum": self.sum,
            "avg": self.sum / self.count if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def _sample(self) -> dict:
        out = self.summary()
        # Cumulative counts per upper bound — the Prometheus wire shape.
        cumulative = 0
        edges = []
        for bound, c in zip(self.buckets, self.counts):
            cumulative += c
            if c:
                edges.append([bound, cumulative])
        if self.counts[-1]:
            edges.append(["+Inf", cumulative + self.counts[-1]])
        out["buckets"] = edges
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe namespace of metric series keyed by ``(name, labels)``."""

    def __init__(self):
        self._series: dict[tuple[str, tuple], Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, str] = {}
        self._lock = threading.Lock()

    # -- instrument factories (get-or-create) ------------------------------
    def _get(self, kind: str, name: str, help: str, labels: dict, **kwargs):
        key = (name, _label_key(labels))
        metric = self._series.get(key)
        if metric is not None:
            if metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {metric.kind}, "
                    f"not a {kind}"
                )
            return metric
        with self._lock:
            metric = self._series.get(key)
            if metric is not None:
                return metric
            declared = self._kinds.get(name)
            if declared is not None and declared != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {declared}, not a {kind}"
                )
            metric = _KINDS[kind](name, labels, help=help, **kwargs)
            self._kinds[name] = kind
            self._series[key] = metric
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """The counter series ``name{labels}``, created on first use."""
        return self._get("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """The gauge series ``name{labels}``, created on first use."""
        return self._get("gauge", name, help, labels)

    def histogram(
        self, name: str, help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS, **labels,
    ) -> Histogram:
        """The histogram series ``name{labels}``, created on first use."""
        return self._get("histogram", name, help, labels, buckets=buckets)

    # -- introspection ------------------------------------------------------
    def __iter__(self) -> Iterator:
        return iter(list(self._series.values()))

    def __len__(self) -> int:
        return len(self._series)

    def get(self, name: str, **labels):
        """The existing series, or ``None`` (never creates)."""
        return self._series.get((name, _label_key(labels)))

    def reset(self) -> None:
        """Drop every series (tests and long-lived processes)."""
        with self._lock:
            self._series.clear()
            self._kinds.clear()

    # -- exporters ----------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able ``{name: [{type, labels, ...samples}, ...]}`` export."""
        out: dict[str, list] = {}
        for metric in self:
            entry = {"type": metric.kind, "labels": metric.labels}
            entry.update(metric._sample())
            out.setdefault(metric.name, []).append(entry)
        return out

    def to_json(self, **dumps_kwargs) -> str:
        """The :meth:`snapshot` as a JSON string."""
        return json.dumps(self.snapshot(), sort_keys=True, **dumps_kwargs)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        seen_header: set[str] = set()
        for metric in sorted(self, key=lambda m: (m.name, _label_key(m.labels))):
            if metric.name not in seen_header:
                seen_header.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            if metric.kind == "histogram":
                cumulative = 0
                for bound, c in zip(metric.buckets, metric.counts):
                    cumulative += c
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_fmt_labels(metric.labels, le=_fmt_float(bound))} {cumulative}"
                    )
                lines.append(
                    f"{metric.name}_bucket{_fmt_labels(metric.labels, le='+Inf')} "
                    f"{cumulative + metric.counts[-1]}"
                )
                lines.append(f"{metric.name}_sum{_fmt_labels(metric.labels)} {metric.sum}")
                lines.append(f"{metric.name}_count{_fmt_labels(metric.labels)} {metric.count}")
            else:
                lines.append(f"{metric.name}{_fmt_labels(metric.labels)} {metric.value}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt_float(value: float) -> str:
    return repr(float(value))


def _fmt_labels(labels: dict, **extra) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
    return "{" + body + "}"


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry library internals record into."""
    return _DEFAULT
