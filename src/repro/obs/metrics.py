"""Process-local metrics: counters, gauges, histograms, and exporters.

A :class:`MetricsRegistry` owns a flat namespace of named instruments, each
optionally split by labels (a Prometheus-style ``(name, labels)`` series
key).  Instruments are created on first use and are stable objects, so hot
paths cache the instrument once and pay only an attribute update per
observation:

* :class:`Counter` — monotonically increasing total (``_total`` names);
* :class:`Gauge` — a value that goes up and down (residuals, queue depths);
* :class:`Histogram` — observations bucketed into **fixed log-scale
  buckets** with p50/p95/p99 summaries interpolated from the bucket counts
  (the classic Prometheus histogram-quantile estimate).

Two exporters cover the usual consumers: :meth:`MetricsRegistry.snapshot`
(JSON-able dict, written by ``repro serve --metrics-file``) and
:meth:`MetricsRegistry.to_prometheus` (text exposition format).

Counters and gauges update under the GIL with plain attribute arithmetic;
histograms take a small per-instrument lock because an observation touches
three fields.  A process-wide :func:`default_registry` collects the
always-cheap library counters (reorder swap totals and the like); request
paths — :class:`~repro.pipeline.serving.ServingSession`,
:class:`~repro.pipeline.cache.ArtifactCache` — only record when the caller
hands them a registry, keeping the disabled hot path free of bookkeeping.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "DEFAULT_BUCKETS",
    "quantile_from_counts",
    "fraction_at_or_below",
    "parse_prometheus",
]

# Log-scale (powers of two) latency buckets: 1us .. ~67s, then +Inf.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(1e-6 * 2.0**i for i in range(27))


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def quantile_from_counts(buckets: tuple[float, ...], counts, q: float) -> float:
    """Estimated ``q``-quantile from per-bucket counts (not cumulative).

    ``counts`` has one entry per bucket bound plus a final ``+Inf`` overflow
    entry.  Linear interpolation inside the bucket containing the target
    rank; a rank landing in the overflow bucket is **clamped to the largest
    finite bucket bound** — the histogram cannot know how far past it the
    tail reaches, and extrapolating would invent latencies that were never
    measured.  Shared by :meth:`Histogram.quantile` (lifetime counts) and
    the windowed views in :mod:`repro.obs.window` (bucket-count deltas).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        prev_cum = cumulative
        cumulative += c
        if cumulative >= rank:
            if i >= len(buckets):
                return buckets[-1]  # +Inf bucket: clamp, never extrapolate
            hi = buckets[i]
            lo = buckets[i - 1] if i > 0 else 0.0
            frac = (rank - prev_cum) / c
            return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
    return buckets[-1]


def fraction_at_or_below(buckets: tuple[float, ...], counts, value: float) -> float:
    """Estimated fraction of observations ``<= value`` from bucket counts.

    The SLO layer's "good ratio" for latency objectives: observations in
    the bucket containing ``value`` contribute pro-rata (linear within the
    bucket); overflow-bucket observations only count when ``value`` is
    infinite.  An empty histogram is vacuously good (``1.0``).
    """
    total = sum(counts)
    if total == 0:
        return 1.0
    covered = 0.0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        if i >= len(buckets):
            if value == float("inf"):
                covered += c
            continue
        hi = buckets[i]
        lo = buckets[i - 1] if i > 0 else 0.0
        if value >= hi:
            covered += c
        elif value > lo:
            covered += c * (value - lo) / (hi - lo)
    return covered / total


class Counter:
    """Monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: dict, help: str = ""):
        self.name = name
        self.labels = dict(labels)
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def _sample(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: dict, help: str = ""):
        self.name = name
        self.labels = dict(labels)
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def _sample(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Observations over fixed log-scale buckets with quantile summaries.

    ``buckets`` are the inclusive upper bounds of each bucket (ascending); an
    implicit ``+Inf`` bucket catches the tail.  Quantiles are estimated by
    linear interpolation inside the bucket containing the target rank —
    exact at bucket edges, resolution-limited (one bucket width) inside.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "help", "buckets", "counts", "sum", "count", "_lock")

    def __init__(
        self,
        name: str,
        labels: dict,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("histogram buckets must be strictly ascending")
        self.name = name
        self.labels = dict(labels)
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        # Bisect by hand: bucket lists are short and this avoids an import
        # on a path that runs per request.
        lo, hi = 0, len(self.buckets)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self.counts[lo] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) from the bucket counts.

        Delegates to :func:`quantile_from_counts`, so observations in the
        ``+Inf`` overflow bucket clamp to the largest finite bucket bound
        instead of extrapolating past anything actually measured.
        """
        return quantile_from_counts(self.buckets, self.counts, q)

    def state(self) -> tuple[tuple[int, ...], float, int]:
        """Consistent ``(counts, sum, count)`` snapshot under the lock.

        The windowed views in :mod:`repro.obs.window` subtract two of
        these; reading the three fields without the lock could tear
        mid-observation.
        """
        with self._lock:
            return tuple(self.counts), self.sum, self.count

    def summary(self) -> dict:
        """``{count, sum, avg, p50, p95, p99}`` of everything observed."""
        return {
            "count": self.count,
            "sum": self.sum,
            "avg": self.sum / self.count if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def _sample(self) -> dict:
        out = self.summary()
        # Cumulative counts per upper bound — the Prometheus wire shape.
        cumulative = 0
        edges = []
        for bound, c in zip(self.buckets, self.counts):
            cumulative += c
            if c:
                edges.append([bound, cumulative])
        if self.counts[-1]:
            edges.append(["+Inf", cumulative + self.counts[-1]])
        out["buckets"] = edges
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe namespace of metric series keyed by ``(name, labels)``."""

    def __init__(self):
        self._series: dict[tuple[str, tuple], Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, str] = {}
        self._lock = threading.Lock()

    # -- instrument factories (get-or-create) ------------------------------
    def _get(self, kind: str, name: str, help: str, labels: dict, **kwargs):
        key = (name, _label_key(labels))
        metric = self._series.get(key)
        if metric is not None:
            if metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {metric.kind}, "
                    f"not a {kind}"
                )
            return metric
        with self._lock:
            metric = self._series.get(key)
            if metric is not None:
                return metric
            declared = self._kinds.get(name)
            if declared is not None and declared != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {declared}, not a {kind}"
                )
            metric = _KINDS[kind](name, labels, help=help, **kwargs)
            self._kinds[name] = kind
            self._series[key] = metric
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """The counter series ``name{labels}``, created on first use."""
        return self._get("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """The gauge series ``name{labels}``, created on first use."""
        return self._get("gauge", name, help, labels)

    def histogram(
        self, name: str, help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS, **labels,
    ) -> Histogram:
        """The histogram series ``name{labels}``, created on first use."""
        return self._get("histogram", name, help, labels, buckets=buckets)

    # -- introspection ------------------------------------------------------
    def __iter__(self) -> Iterator:
        return iter(list(self._series.values()))

    def __len__(self) -> int:
        return len(self._series)

    def get(self, name: str, **labels):
        """The existing series, or ``None`` (never creates)."""
        return self._series.get((name, _label_key(labels)))

    def reset(self) -> None:
        """Drop every series (tests and long-lived processes)."""
        with self._lock:
            self._series.clear()
            self._kinds.clear()

    # -- exporters ----------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able ``{name: [{type, labels, ...samples}, ...]}`` export."""
        out: dict[str, list] = {}
        for metric in self:
            entry = {"type": metric.kind, "labels": metric.labels}
            entry.update(metric._sample())
            out.setdefault(metric.name, []).append(entry)
        return out

    def to_json(self, **dumps_kwargs) -> str:
        """The :meth:`snapshot` as a JSON string."""
        return json.dumps(self.snapshot(), sort_keys=True, **dumps_kwargs)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: list[str] = []
        seen_header: set[str] = set()
        for metric in sorted(self, key=lambda m: (m.name, _label_key(m.labels))):
            if metric.name not in seen_header:
                seen_header.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            if metric.kind == "histogram":
                cumulative = 0
                for bound, c in zip(metric.buckets, metric.counts):
                    cumulative += c
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_fmt_labels(metric.labels, le=_fmt_float(bound))} {cumulative}"
                    )
                lines.append(
                    f"{metric.name}_bucket{_fmt_labels(metric.labels, le='+Inf')} "
                    f"{cumulative + metric.counts[-1]}"
                )
                lines.append(f"{metric.name}_sum{_fmt_labels(metric.labels)} {metric.sum}")
                lines.append(f"{metric.name}_count{_fmt_labels(metric.labels)} {metric.count}")
            else:
                lines.append(f"{metric.name}{_fmt_labels(metric.labels)} {metric.value}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt_float(value: float) -> str:
    return repr(float(value))


def _escape_label_value(value) -> str:
    """Escape a label value per the text exposition format (0.0.4):
    backslash, double-quote, and newline are the three escapes."""
    return (str(value)
            .replace("\\", r"\\")
            .replace('"', r"\"")
            .replace("\n", r"\n"))


def _fmt_labels(labels: dict, **extra) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$")


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def parse_prometheus(text: str) -> tuple[dict[str, str], dict[str, list]]:
    """Parse text exposition format back into ``(types, samples)``.

    ``types`` maps metric name to its ``# TYPE`` kind; ``samples`` maps each
    *series* name (including ``_bucket``/``_sum``/``_count`` suffixes) to a
    list of ``(labels, value)`` pairs.  The consumer half of the scrape
    round-trip: ``repro top`` and the exposition tests feed ``/metrics``
    responses through this instead of trusting the producer blindly.
    """
    types: dict[str, str] = {}
    samples: dict[str, list] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        name, label_body, value = match.groups()
        labels = {}
        if label_body:
            labels = {
                k: _unescape_label_value(v)
                for k, v in _LABEL_RE.findall(label_body)
            }
        samples.setdefault(name, []).append((labels, float(value)))
    return types, samples


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry library internals record into."""
    return _DEFAULT
