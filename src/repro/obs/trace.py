"""Nested structured tracing: spans, trace trees, and the null default.

Instrumented code opens spans through the module-level :func:`span` context
manager::

    with obs_trace.span("stage1.sort", rows=bm.n_rows):
        ...

With no tracer installed (the default), :func:`span` hands back a shared
no-op span — no allocation, no clock reads — so library hot paths stay
free to instrument unconditionally.  Installing a :class:`Tracer`
(:func:`use_tracer` / ``repro preprocess --profile``) turns the same calls
into a tree of :class:`SpanRecord`\\ s carrying wall time, attributes and
exception status.

Records are plain picklable dataclasses, which is how spans survive
process-pool workers: a worker runs under its own local tracer, ships its
root records back inside the job result, and the parent grafts them into
the live trace with :func:`adopt` (see :func:`repro.parallel.reorder_many`).

Span nesting is tracked per thread (a ``threading.local`` stack), so
concurrent threads build disjoint subtrees without cross-talk; finished
roots append under one lock.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "span",
    "adopt",
    "use_tracer",
    "set_tracer",
    "current_tracer",
    "tracing_enabled",
    "render_tree",
    "to_chrome_trace",
]


@dataclass
class SpanRecord:
    """One finished (or in-flight) span — plain data, picklable.

    ``start`` is a ``time.perf_counter`` timestamp local to the recording
    process; durations, not absolute starts, are the cross-process truth.
    """

    name: str
    start: float = 0.0
    duration: float = 0.0
    attrs: dict = field(default_factory=dict)
    status: str = "ok"  # "ok" | "error"
    error: str | None = None
    children: list["SpanRecord"] = field(default_factory=list)

    def walk(self) -> Iterator["SpanRecord"]:
        """This record and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["SpanRecord"]:
        """Every descendant (or self) named ``name``."""
        return [r for r in self.walk() if r.name == name]

    @property
    def self_seconds(self) -> float:
        """Duration not accounted for by direct children."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration_seconds": self.duration,
            "attrs": self.attrs,
            "status": self.status,
            "error": self.error,
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        return cls(
            name=payload["name"],
            duration=payload.get("duration_seconds", 0.0),
            attrs=dict(payload.get("attrs", {})),
            status=payload.get("status", "ok"),
            error=payload.get("error"),
            children=[cls.from_dict(c) for c in payload.get("children", [])],
        )


class _NullSpan:
    """Shared do-nothing span returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-overhead default: every span is the shared no-op."""

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def adopt(self, record: SpanRecord) -> None:
        pass

    @property
    def roots(self) -> list:
        return []


class _Span:
    """A live span: context manager that records into its tracer's tree."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.record = SpanRecord(name=name, attrs=attrs)

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.record.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._tracer._push(self.record)
        self.record.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.record.duration = time.perf_counter() - self.record.start
        if exc is not None:
            self.record.status = "error"
            self.record.error = f"{type(exc).__name__}: {exc}"
        self._tracer._pop(self.record)
        return False  # never swallow


class Tracer:
    """Accumulates a forest of span trees; thread-safe."""

    enabled = True

    def __init__(self):
        self._tls = threading.local()
        self._lock = threading.Lock()
        self.roots: list[SpanRecord] = []

    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _push(self, record: SpanRecord) -> None:
        self._stack().append(record)

    def _pop(self, record: SpanRecord) -> None:
        stack = self._stack()
        assert stack and stack[-1] is record, "span exit out of order"
        stack.pop()
        if stack:
            stack[-1].children.append(record)
        else:
            with self._lock:
                self.roots.append(record)

    def span(self, name: str, **attrs) -> _Span:
        """Open a span nested under the thread's current span."""
        return _Span(self, name, attrs)

    def adopt(self, record: SpanRecord) -> None:
        """Graft a finished record (e.g. from a worker) into the tree.

        Adopted subtrees are marked ``worker_adopted`` so exporters can
        distinguish work that ran in another process; the mark lives in
        ``attrs`` and therefore survives ``to_dict`` round-trips.
        """
        record.attrs.setdefault("worker_adopted", True)
        stack = self._stack()
        if stack:
            stack[-1].children.append(record)
        else:
            with self._lock:
                self.roots.append(record)

    def to_dicts(self) -> list[dict]:
        return [r.to_dict() for r in self.roots]

    def render(self, **kwargs) -> str:
        """The trace forest as an indented text tree."""
        return render_tree(self.roots, **kwargs)

    def to_chrome_trace(self) -> dict:
        """The trace forest as a Chrome trace-event JSON object."""
        return to_chrome_trace(self.roots)


_active: Tracer | NullTracer = NullTracer()


def current_tracer() -> Tracer | NullTracer:
    """The active tracer (the shared :class:`NullTracer` by default)."""
    return _active


def tracing_enabled() -> bool:
    """Whether a real :class:`Tracer` is installed."""
    return _active.enabled


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` as the process-wide active tracer; returns the old."""
    global _active
    previous = _active
    _active = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer | None = None):
    """Scope a tracer (default: a fresh one) over the instrumented code."""
    tracer = tracer if tracer is not None else Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, **attrs):
    """A span on the active tracer (the shared no-op when tracing is off)."""
    return _active.span(name, **attrs)


def adopt(record: SpanRecord | None) -> None:
    """Graft a worker-produced record into the active trace, if any."""
    if record is not None:
        _active.adopt(record)


def render_tree(
    roots: list[SpanRecord] | SpanRecord,
    *,
    min_fraction: float = 0.0,
    with_attrs: bool = True,
) -> str:
    """Flamegraph-style text tree: name, wall time, share of the root.

    ``min_fraction`` hides subtrees below that share of their root's time.
    """
    if isinstance(roots, SpanRecord):
        roots = [roots]
    lines: list[str] = []

    def fmt(record: SpanRecord, depth: int, total: float) -> None:
        share = record.duration / total if total > 0 else 0.0
        if depth and share < min_fraction:
            return
        attrs = ""
        if with_attrs and record.attrs:
            body = ", ".join(f"{k}={v}" for k, v in record.attrs.items())
            attrs = f"  [{body}]"
        flag = "  !error" if record.status == "error" else ""
        indent = "  " * depth
        lines.append(
            f"{indent}{record.name:<{max(1, 40 - 2 * depth)}} "
            f"{record.duration * 1e3:9.3f}ms {share:6.1%}{attrs}{flag}"
        )
        for child in record.children:
            fmt(child, depth + 1, total)

    for root in roots:
        fmt(root, 0, root.duration)
    return "\n".join(lines)


_MAIN_PID = 1


def to_chrome_trace(roots: list[SpanRecord] | SpanRecord) -> dict:
    """A span forest as Chrome trace-event JSON (``chrome://tracing``,
    Perfetto, ``about:tracing``).

    Spans become complete (``ph: "X"``) events.  Absolute starts are not
    comparable across processes — ``SpanRecord.start`` is process-local
    ``perf_counter`` time and is not serialized at all — so the exporter
    lays spans out on a **synthetic timeline**: roots run back-to-back and
    children pack sequentially inside their parent.  Durations are exact;
    only concurrency between siblings is flattened.

    Worker-adopted subtrees (the ``worker_adopted`` attr stamped by
    :meth:`Tracer.adopt`) get a distinct ``pid`` per subtree — one fake
    "process" track per worker-shipped tree, aligned to where the parent
    adopted it — plus ``process_name`` metadata so the viewer labels the
    tracks.
    """
    if isinstance(roots, SpanRecord):
        roots = [roots]
    events: list[dict] = []
    pids_named: set[int] = set()
    next_worker_pid = _MAIN_PID + 1

    def name_pid(pid: int, label: str) -> None:
        if pid not in pids_named:
            pids_named.add(pid)
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": label},
            })

    def place(record: SpanRecord, t0_us: float, pid: int) -> float:
        nonlocal next_worker_pid
        if record.attrs.get("worker_adopted") and pid == _MAIN_PID:
            pid = next_worker_pid
            next_worker_pid += 1
            name_pid(pid, f"worker (adopted: {record.name})")
        dur_us = record.duration * 1e6
        args = {k: v for k, v in record.attrs.items() if k != "worker_adopted"}
        if record.status == "error":
            args["status"] = "error"
            if record.error:
                args["error"] = record.error
        events.append({
            "name": record.name, "ph": "X", "ts": t0_us, "dur": dur_us,
            "pid": pid, "tid": pid, "cat": record.status,
            "args": args,
        })
        cursor = t0_us
        for child in record.children:
            advance = place(child, cursor, pid)
            cursor += advance
        return dur_us

    name_pid(_MAIN_PID, "main")
    cursor = 0.0
    for root in roots:
        cursor += place(root, cursor, _MAIN_PID)
    return {"traceEvents": events, "displayTimeUnit": "ms"}
