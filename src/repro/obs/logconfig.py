"""Logging setup for the ``repro`` logger hierarchy.

Library modules log through ``logging.getLogger("repro.<module>")`` and
**never print to stdout**; a :class:`logging.NullHandler` on the root
``repro`` logger keeps an un-configured import silent.  The CLI (and any
embedding application) calls :func:`logging_setup` once to attach a real
handler; ``repro --verbose`` maps to DEBUG and ``repro -q`` to WARNING.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["logging_setup", "verbosity_level"]

_HANDLER_TAG = "_repro_obs_handler"

# Importing repro.obs must never leave the hierarchy handler-less (the
# "No handlers could be found" warning) nor force a configuration on hosts.
logging.getLogger("repro").addHandler(logging.NullHandler())


def verbosity_level(verbosity: int) -> int:
    """Map a ``-q``/``--verbose`` count to a logging level.

    ``-1`` (quiet) → WARNING, ``0`` (default) → INFO, ``>= 1`` → DEBUG.
    """
    if verbosity <= -1:
        return logging.WARNING
    if verbosity == 0:
        return logging.INFO
    return logging.DEBUG


def logging_setup(
    verbosity: int = 0,
    *,
    stream=None,
    fmt: str = "%(message)s",
) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy and return its root logger.

    Attaches one stream handler (default: the *current* ``sys.stdout``, so
    test harnesses that swap stdout capture the output) with a plain
    message-only format, replacing any handler from a previous call —
    the function is idempotent and safe to call per CLI invocation.
    Library diagnostics (DEBUG) appear only with ``verbosity >= 1``.
    """
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stdout)
    handler.setFormatter(logging.Formatter(fmt))
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    logger.setLevel(verbosity_level(verbosity))
    logger.propagate = False
    return logger
