"""Declarative SLOs evaluated as multi-window burn rates.

An :class:`SLO` states an objective over served traffic — "99% of requests
finish within 10ms", "90% of rows serve on the vnm tensor-core path" —
and the evaluator turns the rolling windows of
:mod:`repro.obs.window` into **burn rates**: how fast the error budget
(``1 - objective``) is being spent.  A burn rate of 1.0 spends exactly
the budget; 10.0 spends it ten times too fast.

Alerting follows the multi-window pattern (Google SRE workbook): an SLO
*alerts* only when **both** its fast window (is it burning right now?)
and its slow window (has it been burning long enough to matter?) exceed
``alert_burn`` — a single slow request can spike a 60s burn rate, but it
cannot also spike the 600s one.  Every evaluation writes
``slo_burn_rate{slo=...,window=fast|slow}`` gauges into the registry (so
``/metrics`` exposes them and ``repro top`` renders them) and emits
``slo.alert`` / ``slo.resolved`` events on transitions.

Two SLO kinds cover the serving plane's needs:

* ``latency`` — windowed fraction of ``metric`` observations at or below
  ``threshold`` seconds must be >= ``objective``
  (:func:`repro.obs.metrics.fraction_at_or_below` over bucket-count
  deltas);
* ``ratio`` — windowed delta of the ``good`` counter over the ``total``
  counter must be >= ``objective`` (e.g. vnm-path rows over all rows,
  from the ``serve_path_rows_total`` family).

Specs parse from the CLI (``repro serve --slo``): shorthand
``latency:0.01`` / ``latency:0.01:0.999``, shorthand
``vnm_rows:0.9`` (the built-in tensor-core-path ratio), or the full
``kind=ratio,good=serve_path_rows_total{backend=vnm},
total=serve_path_rows_total,objective=0.9,name=vnm-share`` form.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from . import events as obs_events
from .metrics import fraction_at_or_below
from .window import MetricWindows

__all__ = ["MetricRef", "SLO", "SLOStatus", "SLOEvaluator"]

_REF_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?$")


@dataclass(frozen=True)
class MetricRef:
    """A metric family, optionally narrowed by labels (``name{k=v,...}``)."""

    name: str
    labels: tuple = ()

    @classmethod
    def parse(cls, text: str) -> "MetricRef":
        match = _REF_RE.match(text.strip())
        if match is None:
            raise ValueError(f"bad metric reference {text!r}")
        name, label_body = match.groups()
        labels = []
        if label_body:
            for part in label_body.split(","):
                if not part.strip():
                    continue
                key, _, value = part.partition("=")
                if not _:
                    raise ValueError(f"bad label in metric reference {text!r}")
                labels.append((key.strip(), value.strip().strip('"')))
        return cls(name=name, labels=tuple(sorted(labels)))

    def __str__(self) -> str:
        if not self.labels:
            return self.name
        body = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{body}}}"


@dataclass(frozen=True)
class SLO:
    """One service-level objective over fast/slow burn windows."""

    name: str
    kind: str  # "latency" | "ratio"
    objective: float = 0.99
    metric: str = "spmm_latency_seconds"
    threshold: float | None = None  # latency kind: seconds
    good: MetricRef | None = None   # ratio kind
    total: MetricRef | None = None
    fast_window: float = 60.0
    slow_window: float = 600.0
    alert_burn: float = 1.0

    def __post_init__(self):
        if self.kind not in ("latency", "ratio"):
            raise ValueError(f"SLO kind must be 'latency' or 'ratio', got {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1) — an error budget must exist")
        if self.kind == "latency" and (self.threshold is None or self.threshold <= 0):
            raise ValueError("latency SLOs need a positive threshold (seconds)")
        if self.kind == "ratio" and (self.good is None or self.total is None):
            raise ValueError("ratio SLOs need good= and total= metric references")
        if self.fast_window <= 0 or self.slow_window <= self.fast_window:
            raise ValueError("windows must satisfy 0 < fast_window < slow_window")
        if self.alert_burn <= 0:
            raise ValueError("alert_burn must be positive")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective

    @classmethod
    def parse(cls, spec: str) -> "SLO":
        """Parse one ``--slo`` spec (shorthand or ``key=value`` form)."""
        spec = spec.strip()
        if "=" not in spec:
            parts = spec.split(":")
            if parts[0] == "latency" and len(parts) in (2, 3):
                objective = float(parts[2]) if len(parts) == 3 else 0.99
                threshold = float(parts[1])
                return cls(name=f"latency_le_{threshold:g}s", kind="latency",
                           threshold=threshold, objective=objective)
            if parts[0] == "vnm_rows" and len(parts) in (1, 2):
                objective = float(parts[1]) if len(parts) == 2 else 0.9
                return cls(
                    name="vnm_row_share", kind="ratio", objective=objective,
                    good=MetricRef("serve_path_rows_total",
                                   (("backend", "vnm"),)),
                    total=MetricRef("serve_path_rows_total"),
                )
            raise ValueError(
                f"bad SLO spec {spec!r}; expected 'latency:SECONDS[:OBJECTIVE]', "
                f"'vnm_rows[:OBJECTIVE]', or 'key=value,...'"
            )
        fields: dict[str, str] = {}
        for part in _split_spec(spec):
            key, _, value = part.partition("=")
            fields[key.strip()] = value.strip()
        kind = fields.pop("kind", None)
        if kind is None:
            raise ValueError(f"SLO spec {spec!r} needs kind=latency|ratio")
        kwargs: dict = {"kind": kind}
        if "name" in fields:
            kwargs["name"] = fields.pop("name")
        for key in ("objective", "threshold", "fast_window", "slow_window",
                    "alert_burn"):
            if key in fields:
                kwargs[key] = float(fields.pop(key))
        if "metric" in fields:
            kwargs["metric"] = fields.pop("metric")
        for key in ("good", "total"):
            if key in fields:
                kwargs[key] = MetricRef.parse(fields.pop(key))
        if fields:
            raise ValueError(f"unknown SLO spec key(s): {sorted(fields)}")
        if "name" not in kwargs:
            kwargs["name"] = f"{kind}_slo"
        return cls(**kwargs)


def _split_spec(spec: str) -> list[str]:
    """Split ``key=value`` pairs on commas outside ``{...}`` label bodies."""
    parts, depth, current = [], 0, []
    for ch in spec:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth = max(0, depth - 1)
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [p for p in parts if p.strip()]


@dataclass(frozen=True)
class SLOStatus:
    """One SLO's state over one window at one evaluation."""

    slo: str
    window: str  # "fast" | "slow"
    seconds: float
    burn_rate: float
    good_fraction: float
    samples: float
    alerting: bool = field(default=False)


class SLOEvaluator:
    """Evaluates SLOs over a :class:`MetricWindows`, exporting burn gauges.

    One evaluator per telemetry plane; :meth:`evaluate` is called by the
    telemetry server's sampler thread each tick (and by anything else that
    wants a fresh verdict).  Gauges land in ``registry`` (default: the
    windows' own registry, so they ride the same ``/metrics``).
    """

    def __init__(self, slos, windows: MetricWindows, registry=None):
        self.slos = tuple(slos)
        names = [s.name for s in self.slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.windows = windows
        self.registry = registry if registry is not None else windows.registry
        self._alerting: set[str] = set()

    # -- burn math -----------------------------------------------------------
    def _good_fraction(self, slo: SLO, view) -> tuple[float, float]:
        """``(good_fraction, samples)`` of one SLO over one window view."""
        if slo.kind == "latency":
            total = 0.0
            weighted = 0.0
            hist = None
            for labels, entry in view.series(slo.metric):
                if entry.get("kind") != "histogram":
                    continue
                hist = self.windows.registry.get(slo.metric, **labels)
                if hist is None or entry["count"] <= 0:
                    continue
                # Reconstruct the windowed bucket deltas for this series.
                facade = self.windows.histogram_view(
                    slo.metric, view.window, **labels)
                counts, count = facade._delta_counts()
                if count <= 0:
                    continue
                weighted += count * fraction_at_or_below(
                    hist.buckets, counts, slo.threshold)
                total += count
            return (weighted / total if total else 1.0), total
        good = view.sum_deltas(slo.good.name, **dict(slo.good.labels))
        total = view.sum_deltas(slo.total.name, **dict(slo.total.labels))
        if total <= 0:
            return 1.0, 0.0
        return min(1.0, good / total), total

    def _burn(self, slo: SLO, view) -> SLOStatus:
        good, samples = self._good_fraction(slo, view)
        burn = (1.0 - good) / slo.error_budget
        label = "fast" if view.window == slo.fast_window else "slow"
        return SLOStatus(slo=slo.name, window=label, seconds=view.window,
                         burn_rate=burn, good_fraction=good, samples=samples)

    # -- evaluation ----------------------------------------------------------
    def evaluate(self) -> list[SLOStatus]:
        """Compute every SLO's fast/slow burn; update gauges and alerts."""
        out: list[SLOStatus] = []
        for slo in self.slos:
            fast = self._burn(slo, self.windows.view(slo.fast_window))
            slow = self._burn(slo, self.windows.view(slo.slow_window))
            alerting = (fast.burn_rate > slo.alert_burn
                        and slow.burn_rate > slo.alert_burn)
            for status in (fast, slow):
                self.registry.gauge(
                    "slo_burn_rate",
                    help="error-budget burn rate per SLO and window "
                         "(1.0 = spending the budget exactly)",
                    slo=slo.name, window=status.window,
                ).set(status.burn_rate)
                out.append(SLOStatus(**{**status.__dict__, "alerting": alerting}))
            was_alerting = slo.name in self._alerting
            if alerting and not was_alerting:
                self._alerting.add(slo.name)
                self.registry.counter(
                    "slo_alerts_total", help="SLO burn-rate alerts fired",
                    slo=slo.name,
                ).inc()
                obs_events.emit(
                    "slo.alert", slo=slo.name, fast_burn=fast.burn_rate,
                    slow_burn=slow.burn_rate, objective=slo.objective,
                )
            elif not alerting and was_alerting:
                self._alerting.discard(slo.name)
                obs_events.emit(
                    "slo.resolved", slo=slo.name, fast_burn=fast.burn_rate,
                    slow_burn=slow.burn_rate,
                )
        return out

    def alerting(self) -> tuple[str, ...]:
        """Names of SLOs currently in the alerting state."""
        return tuple(sorted(self._alerting))

    def snapshot(self) -> dict:
        """JSON-able summary (embedded in ``/healthz``)."""
        statuses = self.evaluate()
        return {
            status.slo: {
                **{
                    s.window: {"burn_rate": s.burn_rate,
                               "good_fraction": s.good_fraction,
                               "samples": s.samples}
                    for s in statuses if s.slo == status.slo
                },
                "alerting": status.slo in self._alerting,
            }
            for status in statuses
        }
