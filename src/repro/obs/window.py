"""Rolling time-windowed views over cumulative metrics.

The instruments in :mod:`repro.obs.metrics` are deliberately cumulative —
a counter only ever grows, a histogram's buckets only fill — because that
keeps the hot-path update a single attribute add.  But every *live*
consumer wants windows, not lifetimes: the ROADMAP's deadline-aware
scheduling needs the p95 of the last minute (a server that was slow an
hour ago is not slow now), SLO burn rates are defined over fast/slow
windows, and ``repro top`` renders qps, not a request total.

:class:`MetricWindows` bridges the two without touching the hot path.  A
reader (the telemetry server's sampler thread, a benchmark, a test) calls
:meth:`MetricWindows.record` periodically; each call snapshots every
series in the registry — counter/gauge values, histogram
``(bucket counts, sum, count)`` under the histogram's lock — into a
bounded ring.  :meth:`MetricWindows.view` then subtracts the ring entry
closest to ``now - window`` from the live registry:

* counters → windowed **delta** and per-second **rate**;
* gauges → the current value (windows don't change point-in-time reads);
* histograms → windowed count/rate/avg and **p50/p95/p99 interpolated
  from the bucket-count deltas** (:func:`repro.obs.metrics.
  quantile_from_counts`, so the ``+Inf`` overflow clamp applies to
  windows exactly as it does to lifetimes).

:class:`WindowedHistogram` adapts one histogram series to the
``count``/``quantile`` duck type :class:`repro.pipeline.guard.
AdmissionPolicy` consumes, so load shedding sheds on the *recent* p95
instead of a lifetime average that forgives a currently-degraded backend.

Writers pay nothing: no instrument grows extra fields, and a process with
no :class:`MetricWindows` attached behaves exactly as before.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from .metrics import Histogram, MetricsRegistry, _label_key, quantile_from_counts

__all__ = ["MetricWindows", "WindowView", "WindowedHistogram"]


def _snapshot_series(metric):
    """One series' cumulative state, cheap and consistent."""
    if metric.kind == "histogram":
        return metric.state()
    return metric.value


class MetricWindows:
    """Bounded ring of registry snapshots with windowed difference views.

    ``horizon`` bounds how far back a view can reach; ``max_samples``
    bounds ring memory regardless of the recording cadence.  ``clock`` is
    injectable (monotonic seconds) so tests drive windows deterministically.
    """

    def __init__(self, registry: MetricsRegistry, *, horizon: float = 900.0,
                 max_samples: int = 1024,
                 clock: Callable[[], float] = time.monotonic):
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2 (a delta needs two ends)")
        self.registry = registry
        self.horizon = float(horizon)
        self._clock = clock
        self._samples: deque[tuple[float, dict]] = deque(maxlen=max_samples)
        self._lock = threading.Lock()

    # -- recording ----------------------------------------------------------
    def _snapshot(self) -> dict:
        return {
            (metric.name, _label_key(metric.labels)): _snapshot_series(metric)
            for metric in self.registry
        }

    def record(self) -> float:
        """Snapshot every series now; returns the sample's timestamp."""
        now = self._clock()
        snap = self._snapshot()
        with self._lock:
            self._samples.append((now, snap))
            while self._samples and now - self._samples[0][0] > self.horizon:
                self._samples.popleft()
        return now

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def _base_sample(self, now: float, window: float) -> tuple[float, dict]:
        """The newest recorded sample at or before ``now - window``.

        With no sample that old yet (startup), the oldest available is
        used — the view reports its actual ``elapsed`` so consumers can
        tell a full window from a short one.  With no samples at all the
        view is empty (zero deltas against the live registry).
        """
        cutoff = now - window
        with self._lock:
            chosen = None
            for ts, snap in self._samples:
                if ts <= cutoff:
                    chosen = (ts, snap)
                else:
                    break
            if chosen is None and self._samples:
                chosen = self._samples[0]
        return chosen if chosen is not None else (now, {})

    # -- views --------------------------------------------------------------
    def view(self, window: float) -> "WindowView":
        """Windowed delta/rate/quantile view ending *now*."""
        if window <= 0:
            raise ValueError("window must be positive")
        now = self._clock()
        base_ts, base = self._base_sample(now, window)
        entries: dict[tuple, dict] = {}
        elapsed = max(0.0, now - base_ts)
        for metric in self.registry:
            key = (metric.name, _label_key(metric.labels))
            entries[key] = _window_entry(metric, base.get(key), elapsed)
        return WindowView(window=window, elapsed=elapsed, entries=entries,
                          registry=self.registry)

    def histogram_view(self, name: str, window: float, **labels) -> "WindowedHistogram":
        """An :class:`AdmissionPolicy`-compatible rolling view of one
        histogram series (created in the registry on first use)."""
        hist = self.registry.histogram(name, **labels)
        return WindowedHistogram(self, hist, window)

    # -- exposition ---------------------------------------------------------
    def to_prometheus(self, windows: tuple[float, ...] = (60.0,)) -> str:
        """Windowed series as derived gauges with a ``window`` label.

        Counters export ``<base>_rate{window="60s"}`` (``_total`` suffix
        stripped); histograms export ``<name>_rate`` plus ``_p50/_p95/_p99``
        quantile gauges.  Appended to the cumulative exposition by
        ``GET /metrics``, never replacing it — scrapers that want their own
        windows still get the raw counters.
        """
        lines: list[str] = []
        typed: set[str] = set()

        def emit(name: str, labels: dict, value: float) -> None:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} gauge")
            from .metrics import _fmt_labels  # late: module-private helper

            lines.append(f"{name}{_fmt_labels(labels)} {value}")

        for window in windows:
            view = self.view(window)
            label = f"{int(window)}s"
            for metric in sorted(self.registry,
                                 key=lambda m: (m.name, _label_key(m.labels))):
                entry = view.get(metric.name, **metric.labels)
                if entry is None:
                    continue
                labels = {**metric.labels, "window": label}
                if metric.kind == "counter":
                    base = metric.name.removesuffix("_total")
                    emit(f"{base}_rate", labels, entry["rate"])
                elif metric.kind == "histogram":
                    emit(f"{metric.name}_rate", labels, entry["rate"])
                    for q in ("p50", "p95", "p99"):
                        emit(f"{metric.name}_{q}", labels, entry[q])
        return "\n".join(lines) + ("\n" if lines else "")


def _window_entry(metric, base, elapsed: float) -> dict:
    if metric.kind == "histogram":
        counts, total_sum, count = metric.state()
        if base is None:
            d_counts, d_sum, d_count = counts, total_sum, count
        else:
            base_counts, base_sum, base_count = base
            # A registry reset mid-window shows as negative deltas; clamp
            # to "everything since the reset" rather than reporting noise.
            if base_count > count or len(base_counts) != len(counts):
                d_counts, d_sum, d_count = counts, total_sum, count
            else:
                d_counts = tuple(c - b for c, b in zip(counts, base_counts))
                d_sum, d_count = total_sum - base_sum, count - base_count
        return {
            "kind": "histogram",
            "count": d_count,
            "sum": d_sum,
            "avg": d_sum / d_count if d_count else 0.0,
            "rate": d_count / elapsed if elapsed > 0 else 0.0,
            "p50": quantile_from_counts(metric.buckets, d_counts, 0.50),
            "p95": quantile_from_counts(metric.buckets, d_counts, 0.95),
            "p99": quantile_from_counts(metric.buckets, d_counts, 0.99),
        }
    value = metric.value
    if metric.kind == "gauge":
        return {"kind": "gauge", "value": value}
    # A counter below its base means the registry was reset mid-window;
    # report "everything since the reset", mirroring the histogram clamp.
    delta = value if base is None or value < base else value - base
    return {
        "kind": "counter",
        "delta": delta,
        "rate": delta / elapsed if elapsed > 0 else 0.0,
    }


class WindowView:
    """One computed window: per-series deltas/rates/quantiles at a moment."""

    def __init__(self, *, window: float, elapsed: float, entries: dict,
                 registry: MetricsRegistry):
        self.window = window
        self.elapsed = elapsed
        self._entries = entries
        self._registry = registry

    def get(self, name: str, **labels) -> dict | None:
        """The windowed entry for one series, or ``None`` if unseen."""
        return self._entries.get((name, _label_key(labels)))

    def series(self, name: str) -> list[tuple[dict, dict]]:
        """Every ``(labels, entry)`` of a metric family in this view."""
        out = []
        for (entry_name, label_key), entry in sorted(self._entries.items()):
            if entry_name == name:
                out.append((dict(label_key), entry))
        return out

    def sum_deltas(self, name: str, **labels) -> float:
        """Total windowed delta over every series of ``name`` whose labels
        contain ``labels`` (counters and histogram counts)."""
        total = 0.0
        for series_labels, entry in self.series(name):
            if all(series_labels.get(k) == v for k, v in labels.items()):
                total += entry.get("delta", entry.get("count", 0.0))
        return total


class WindowedHistogram:
    """Rolling ``count``/``quantile`` facade over one histogram series.

    Duck-compatible with :class:`repro.obs.metrics.Histogram` where
    :meth:`repro.pipeline.guard.AdmissionPolicy.admit` is concerned, but
    answering from the last ``window`` seconds only.  Resolved bucket
    deltas are memoised for a quarter second (never more than a tenth of
    the window), so the per-admission cost under a submit burst is one
    clock read and a comparison — a 60-second rolling p95 does not change
    meaningfully in 250 ms, and shedding decisions tolerate that lag.
    """

    def __init__(self, windows: MetricWindows, histogram: Histogram,
                 window: float):
        if window <= 0:
            raise ValueError("window must be positive")
        self._windows = windows
        self._histogram = histogram
        self.window = float(window)
        self._key = (histogram.name, _label_key(histogram.labels))
        self._ttl = min(0.25, self.window / 10.0)
        self._cache: tuple[float, tuple, int] | None = None

    def _delta_counts(self) -> tuple[tuple[int, ...], int]:
        now = self._windows._clock()
        cached = self._cache
        if cached is not None and now < cached[0]:
            return cached[1], cached[2]
        counts, count = self._delta_counts_uncached(now)
        self._cache = (now + self._ttl, counts, count)
        return counts, count

    def _delta_counts_uncached(self, now: float) -> tuple[tuple[int, ...], int]:
        _, base = self._windows._base_sample(now, self.window)
        counts, _, count = self._histogram.state()
        base_state = base.get(self._key)
        if base_state is None:
            return counts, count
        base_counts, _, base_count = base_state
        if base_count > count or len(base_counts) != len(counts):
            return counts, count  # reset mid-window
        return (tuple(c - b for c, b in zip(counts, base_counts)),
                count - base_count)

    @property
    def count(self) -> int:
        """Observations recorded within the window."""
        return self._delta_counts()[1]

    def quantile(self, q: float) -> float:
        """Windowed quantile (with the same ``+Inf`` clamp as lifetimes)."""
        counts, _ = self._delta_counts()
        return quantile_from_counts(self._histogram.buckets, counts, q)

    def __repr__(self) -> str:
        return (f"WindowedHistogram({self._histogram.name!r}, "
                f"window={self.window}s, count={self.count})")
