"""Structured event log: one schema for everything that *happens*.

Metrics aggregate and traces time; events **narrate** — each one is a flat
JSON-able record of a discrete happening with a common envelope::

    {"ts": <unix seconds>, "kind": "serve.downgrade", ...fields}

One log absorbs the pipeline's operational vocabulary under a single
schema:

* ``reorder.iteration`` — per-iteration progress (pscore/mbscore deltas,
  running ``improvement_rate``) from :func:`repro.core.reorder.reorder`;
* ``serve.retry`` / ``serve.downgrade`` — the resilience layer's
  :class:`~repro.pipeline.resilience.DowngradeEvent` and retry happenings;
* ``cache.quarantine`` — a corrupt artefact moved aside;
* ``preprocess.done`` — one graph through the offline stage.

Like tracing, event emission is **off by default**: the module-level
:func:`emit` is a no-op until an :class:`EventLog` is installed
(:func:`use_events`), so library code emits unconditionally at zero idle
cost.  An :class:`EventLog` keeps events in memory and, when given a
``path``, appends each as one JSON line (the ``--events-file`` format).

Long-lived serving processes emit indefinitely, so an on-disk log accepts
``max_bytes``: when an append would push the file past the cap, the
current file rotates to ``<path>.1`` (replacing any previous ``.1``) and
a fresh file starts.  One generation of history is kept — enough to
reconstruct "what led up to this" without unbounded disk growth.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = ["EventLog", "emit", "use_events", "set_event_log", "current_event_log"]


class EventLog:
    """In-memory (and optionally JSON-lines-on-disk) structured event sink."""

    def __init__(self, path=None, *, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive (or None for unbounded)")
        self.events: list[dict] = []
        self.path = Path(path) if path is not None else None
        self.max_bytes = max_bytes
        self.rotations = 0
        self._lock = threading.Lock()
        self._fh = None
        self._bytes = 0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
            self._bytes = self.path.stat().st_size

    def _rotate_locked(self) -> None:
        self._fh.close()
        self.path.replace(self.path.with_name(self.path.name + ".1"))
        self._fh = open(self.path, "a", encoding="utf-8")
        self._bytes = 0
        self.rotations += 1

    def emit(self, kind: str, **fields) -> dict:
        """Record one event; returns the full record."""
        record = {"ts": time.time(), "kind": kind, **fields}
        with self._lock:
            self.events.append(record)
            if self._fh is not None:
                line = json.dumps(record, sort_keys=True, default=str) + "\n"
                encoded = len(line.encode("utf-8"))
                # Rotate *before* the write that would breach the cap, so
                # the live file never exceeds max_bytes (single oversized
                # records still land whole — a record is never split).
                if (self.max_bytes is not None and self._bytes > 0
                        and self._bytes + encoded > self.max_bytes):
                    self._rotate_locked()
                self._fh.write(line)
                self._fh.flush()
                self._bytes += encoded
        return record

    def of_kind(self, kind: str) -> list[dict]:
        """Every recorded event with this ``kind``."""
        return [e for e in self.events if e["kind"] == kind]

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __len__(self) -> int:
        return len(self.events)

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


_active: EventLog | None = None


def current_event_log() -> EventLog | None:
    """The active event sink, or ``None`` (emission disabled)."""
    return _active


def set_event_log(log: EventLog | None) -> EventLog | None:
    """Install ``log`` as the process-wide event sink; returns the old one."""
    global _active
    previous = _active
    _active = log
    return previous


@contextmanager
def use_events(log: EventLog | None = None):
    """Scope an event log (default: a fresh in-memory one)."""
    log = log if log is not None else EventLog()
    previous = set_event_log(log)
    try:
        yield log
    finally:
        set_event_log(previous)
        log.close()


def emit(kind: str, **fields) -> None:
    """Emit to the active log; a cheap no-op when none is installed."""
    log = _active
    if log is not None:
        log.emit(kind, **fields)
