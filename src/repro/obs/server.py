"""In-process telemetry HTTP server: exposition, health, flight dumps.

One stdlib :class:`~http.server.ThreadingHTTPServer` on a daemon thread
turns the process's observability state into four scrape-able endpoints:

* ``GET /metrics`` — Prometheus text exposition: the cumulative registry
  (:meth:`~repro.obs.metrics.MetricsRegistry.to_prometheus`) followed by
  the derived windowed gauges
  (:meth:`~repro.obs.window.MetricWindows.to_prometheus`);
* ``GET /healthz`` — liveness JSON; **503** while any circuit breaker is
  open or the worker pool is crash-looping, 200 otherwise;
* ``GET /readyz`` — readiness JSON; **503** until the owner calls
  :meth:`TelemetryServer.set_ready` (and again after ``set_ready(False)``
  during drain), independent of health;
* ``GET /debug/requests`` — the flight recorder's current ring as JSON
  (404 when no recorder is attached).

A second daemon thread — the **sampler** — drives the pull side of the
plane: every ``sample_interval`` seconds it snapshots the registry into
the rolling windows and re-evaluates the SLOs, so burn-rate gauges are
fresh in the very exposition that reports them.  Nothing here touches the
serving hot path; a process that never starts a :class:`TelemetryServer`
pays nothing.

The server binds ``host:port`` with ``port=0`` meaning "any free port"
(the bound port is on :attr:`TelemetryServer.port` — tests and
``repro top`` use this).
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .metrics import MetricsRegistry
from .recorder import FlightRecorder
from .slo import SLOEvaluator
from .window import MetricWindows

__all__ = ["TelemetryServer", "session_health"]

logger = logging.getLogger("repro.obs.server")


def session_health(session=None, pool=None, router=None) -> dict:
    """Liveness verdict for a serving process: breakers, pool, shards.

    ``healthy`` is False iff any registered circuit breaker is open, the
    pool has hit its crash-loop cap, or — with a ``router`` (a
    :class:`repro.pipeline.sharded.ShardRouter`) — a *majority* of shards
    has no live replica.  A dead shard minority only marks the payload
    ``degraded``: ``/healthz`` keeps answering 200 so the deployment is
    not pulled from rotation while most rows still serve.  Half-open
    breakers (probing) leave the process healthy — traffic is flowing,
    just carefully.  Importable without a session (a bare telemetry plane
    is always healthy).
    """
    # Late import: obs must stay importable below the pipeline layer.
    from ..pipeline.guard import active_breakers

    board = active_breakers()
    breakers = ({name: snap["state"] for name, snap in board.snapshot().items()}
                if board is not None else {})
    open_backends = sorted(n for n, s in breakers.items() if s == "open")
    crash_looping = bool(pool is not None
                         and getattr(pool, "crash_looping", False))
    health = {
        "healthy": not open_backends and not crash_looping,
        "breakers": breakers,
        "open_breakers": open_backends,
        "pool_crash_looping": crash_looping,
    }
    if session is not None and hasattr(session, "segment_summary"):
        health["segments"] = session.segment_summary()
    if router is not None:
        shard_health = router.health()
        health["healthy"] = health["healthy"] and shard_health["healthy"]
        health["degraded"] = shard_health.get("degraded", False)
        health["shards"] = shard_health["shards"]
        health["unhealthy_shards"] = shard_health["unhealthy_shards"]
        health["n_shards"] = shard_health["n_shards"]
    return health


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-telemetry/1"

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: dict) -> None:
        body = (json.dumps(payload, indent=2, default=str) + "\n").encode()
        self._send(code, body, "application/json")

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        plane: "TelemetryServer" = self.server.plane  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                self._send(200, plane.render_metrics().encode(),
                           "text/plain; version=0.0.4; charset=utf-8")
            elif path == "/healthz":
                health = plane.health()
                self._send_json(200 if health.get("healthy", True) else 503,
                                health)
            elif path == "/readyz":
                ready = plane.ready
                self._send_json(200 if ready else 503, {"ready": ready})
            elif path == "/debug/requests":
                if plane.recorder is None:
                    self._send_json(404, {"error": "no flight recorder attached"})
                else:
                    self._send_json(200, plane.recorder.dump(reason="http"))
            else:
                self._send_json(404, {"error": f"unknown path {path!r}"})
        except BrokenPipeError:  # scraper went away mid-response
            pass
        except Exception as exc:  # never kill the handler thread
            logger.exception("telemetry handler failed for %s", path)
            try:
                self._send_json(500, {"error": str(exc)})
            except OSError:
                pass

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        logger.debug("%s %s", self.address_string(), format % args)


class TelemetryServer:
    """The process's telemetry plane: HTTP exposition plus the sampler.

    Composes whatever observability pieces the owner hands over — only
    ``metrics`` is required; windows/evaluator/recorder/health are each
    optional and their endpoints degrade gracefully when absent.  ``health``
    is a zero-argument callable returning the ``/healthz`` payload
    (typically ``lambda: session_health(session, pool)``); without one the
    process always reports healthy.
    """

    def __init__(self, metrics: MetricsRegistry, *, host: str = "127.0.0.1",
                 port: int = 0, windows: MetricWindows | None = None,
                 evaluator: SLOEvaluator | None = None,
                 recorder: FlightRecorder | None = None,
                 health=None, sample_interval: float = 1.0,
                 prom_windows: tuple[float, ...] = (60.0, 600.0)):
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.metrics = metrics
        self.windows = windows
        self.evaluator = evaluator
        self.recorder = recorder
        self._health_fn = health
        self.sample_interval = float(sample_interval)
        self.prom_windows = tuple(prom_windows)
        self.ready = False
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.plane = self  # type: ignore[attr-defined]
        self._serve_thread: threading.Thread | None = None
        self._sampler_thread: threading.Thread | None = None
        self._stop = threading.Event()

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "TelemetryServer":
        if self._serve_thread is not None:
            raise RuntimeError("telemetry server already started")
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-telemetry", daemon=True)
        self._serve_thread.start()
        if self.windows is not None or self.evaluator is not None:
            # Baseline snapshot at time zero: deltas for traffic served
            # before the first periodic tick are measured against startup,
            # not lost to a window that began after them.
            self.sample()
            self._sampler_thread = threading.Thread(
                target=self._sample_loop, name="repro-telemetry-sampler",
                daemon=True)
            self._sampler_thread.start()
        logger.info("telemetry server listening on %s", self.url)
        return self

    def stop(self) -> None:
        self._stop.set()
        self._httpd.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        if self._sampler_thread is not None:
            self._sampler_thread.join(timeout=5.0)
            self._sampler_thread = None
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    def set_ready(self, ready: bool = True) -> None:
        """Flip ``/readyz`` — call once serving can accept traffic, and
        again with ``False`` when draining."""
        self.ready = bool(ready)

    # -- the sampler ---------------------------------------------------------
    def _sample_loop(self) -> None:
        while not self._stop.wait(self.sample_interval):
            self.sample()

    def sample(self) -> None:
        """One sampler tick: snapshot windows, re-evaluate SLOs.

        Public so tests and synchronous callers can tick deterministically
        instead of sleeping against the background thread.
        """
        try:
            if self.windows is not None:
                self.windows.record()
            if self.evaluator is not None:
                self.evaluator.evaluate()
        except Exception:
            logger.exception("telemetry sampler tick failed")

    # -- endpoint bodies (exposed for in-process use) ------------------------
    def render_metrics(self) -> str:
        text = self.metrics.to_prometheus()
        if self.windows is not None and len(self.windows) > 0:
            text += self.windows.to_prometheus(self.prom_windows)
        return text

    def health(self) -> dict:
        payload = self._health_fn() if self._health_fn is not None else {"healthy": True}
        payload = dict(payload)
        payload.setdefault("healthy", True)
        payload["ts"] = time.time()
        if self.evaluator is not None:
            alerting = self.evaluator.alerting()
            payload["slo_alerting"] = list(alerting)
        return payload
