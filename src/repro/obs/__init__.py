"""``repro.obs`` — observability for the reorder → preprocess → cache →
serve stack.

Three complementary signal kinds, each with a zero-overhead disabled
default so library code instruments unconditionally:

* :mod:`repro.obs.metrics` — process-local :class:`MetricsRegistry` with
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` (fixed log-scale
  buckets, p50/p95/p99 summaries) and Prometheus-text / JSON exporters.
* :mod:`repro.obs.trace` — nested :func:`span` context managers building a
  structured trace tree (wall time, attributes, exception status), with a
  :class:`NullTracer` default and picklable :class:`SpanRecord`\\ s that
  survive process-pool workers.
* :mod:`repro.obs.events` — a structured JSON-lines event log unifying
  resilience happenings (retries, downgrades, quarantines) and reorder
  progress under one ``{ts, kind, ...}`` schema.

Plus :func:`logging_setup`, the one sanctioned way output reaches a
terminal — library code never prints to stdout.

See ``docs/observability.md`` for the metric catalogue, the span
hierarchy, and the event schema.
"""

from .events import EventLog, emit, use_events
from .logconfig import logging_setup
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from .trace import (
    NullTracer,
    SpanRecord,
    Tracer,
    adopt,
    render_tree,
    span,
    tracing_enabled,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "span",
    "adopt",
    "use_tracer",
    "tracing_enabled",
    "render_tree",
    "EventLog",
    "emit",
    "use_events",
    "logging_setup",
]
