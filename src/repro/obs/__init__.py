"""``repro.obs`` — observability for the reorder → preprocess → cache →
serve stack.

Three complementary signal kinds, each with a zero-overhead disabled
default so library code instruments unconditionally:

* :mod:`repro.obs.metrics` — process-local :class:`MetricsRegistry` with
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` (fixed log-scale
  buckets, p50/p95/p99 summaries) and Prometheus-text / JSON exporters.
* :mod:`repro.obs.trace` — nested :func:`span` context managers building a
  structured trace tree (wall time, attributes, exception status), with a
  :class:`NullTracer` default and picklable :class:`SpanRecord`\\ s that
  survive process-pool workers.
* :mod:`repro.obs.events` — a structured JSON-lines event log unifying
  resilience happenings (retries, downgrades, quarantines) and reorder
  progress under one ``{ts, kind, ...}`` schema.

On top of the instruments sits the **live telemetry plane**:

* :mod:`repro.obs.window` — rolling time-windowed views (rates, deltas,
  windowed p50/p95/p99) computed reader-side from registry snapshots;
* :mod:`repro.obs.slo` — declarative SLOs evaluated as multi-window
  burn rates with ``slo_burn_rate`` gauges and ``slo.alert`` events;
* :mod:`repro.obs.recorder` — a bounded flight recorder of per-request
  exemplars (sampled span trees, every failure kept);
* :mod:`repro.obs.server` — the stdlib HTTP server exposing
  ``/metrics``, ``/healthz``, ``/readyz`` and ``/debug/requests``.

Plus :func:`logging_setup`, the one sanctioned way output reaches a
terminal — library code never prints to stdout.

See ``docs/observability.md`` for the metric catalogue, the span
hierarchy, and the event schema, and ``docs/telemetry.md`` for the live
plane.
"""

from .events import EventLog, emit, use_events
from .logconfig import logging_setup
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    parse_prometheus,
)
from .recorder import (
    FlightRecorder,
    RequestExemplar,
    current_recorder,
    set_recorder,
    use_recorder,
)
from .server import TelemetryServer, session_health
from .slo import SLO, SLOEvaluator, SLOStatus
from .trace import (
    NullTracer,
    SpanRecord,
    Tracer,
    adopt,
    render_tree,
    span,
    to_chrome_trace,
    tracing_enabled,
    use_tracer,
)
from .window import MetricWindows, WindowedHistogram

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "parse_prometheus",
    "MetricWindows",
    "WindowedHistogram",
    "SLO",
    "SLOEvaluator",
    "SLOStatus",
    "FlightRecorder",
    "RequestExemplar",
    "current_recorder",
    "set_recorder",
    "use_recorder",
    "TelemetryServer",
    "session_health",
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "span",
    "adopt",
    "use_tracer",
    "tracing_enabled",
    "render_tree",
    "to_chrome_trace",
    "EventLog",
    "emit",
    "use_events",
    "logging_setup",
]
