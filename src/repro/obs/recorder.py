"""Request flight recorder: a bounded ring of per-request exemplars.

Metrics aggregate away the *which*: a p99 spike says something was slow,
but not which operand, which backend, or whether the slow request also
downgraded or tripped a breaker.  The :class:`FlightRecorder` keeps a
bounded ring buffer of :class:`RequestExemplar` records — operand key,
backend, engine variant, feature width, latency, retry/downgrade/breaker
outcome, and a span tree — cheap enough to leave on in production:

* every request pays one sequence bump and a branch;
* one request in ``sample_every`` is **sampled**: it runs under a local
  :class:`~repro.obs.trace.Tracer` (installed only when no real tracer is
  active) so its exemplar carries the real span tree;
* every *failed* request is kept regardless of sampling — an unsampled
  failure gets a synthesized single-node error tree (the recorder cannot
  trace retroactively), a sampled one keeps its full tree.

Dumps are JSON and come three ways: on demand (``GET /debug/requests``
from :class:`repro.obs.server.TelemetryServer`, or :meth:`dump`), on
``SIGUSR1`` (:func:`install_signal_dump`), and automatically when the
worker pool declares a crash loop (:func:`crash_dump`, called by
:meth:`repro.perf.pool.WorkerPool.restart` before it raises
:class:`~repro.pipeline.resilience.WorkerCrashError`) — the black box
survives the crash that made it interesting.

Like tracing and events, the process-wide recorder is **off by default**:
:func:`current_recorder` returns ``None`` until :func:`set_recorder` (or
``repro serve --telemetry-port``) installs one.
"""

from __future__ import annotations

import itertools
import json
import logging
import signal
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from . import trace as obs_trace

__all__ = [
    "RequestExemplar",
    "RequestProbe",
    "FlightRecorder",
    "current_recorder",
    "set_recorder",
    "use_recorder",
    "crash_dump",
    "install_signal_dump",
]

logger = logging.getLogger("repro.obs.recorder")


@dataclass
class RequestExemplar:
    """One recorded request — plain data, JSON-able via :meth:`to_dict`."""

    seq: int
    ts: float
    status: str  # "ok" | "error" | "shed"
    latency: float
    h: int | None = None
    backend: str | None = None
    variant: str | None = None
    operand_key: str | None = None
    segments: int | None = None
    retries: int = 0
    downgrades: tuple = ()
    breaker_open: bool = False
    shed_reason: str | None = None
    batched: bool = False
    error: str | None = None
    sampled: bool = False
    span_tree: dict | None = None
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {k: v for k, v in self.__dict__.items()
               if k != "extra" and v not in (None, (), {}, False)}
        out.setdefault("status", self.status)
        out.setdefault("latency", self.latency)
        out.setdefault("seq", self.seq)
        out.setdefault("ts", self.ts)
        out["downgrades"] = list(self.downgrades)
        out.update(self.extra)
        return out


def _error_tree(latency: float, error: str, **attrs) -> dict:
    """Synthesized single-node span tree for an untraced failure."""
    return {
        "name": "serve.request",
        "duration_seconds": latency,
        "attrs": attrs,
        "status": "error",
        "error": error,
        "children": [],
    }


class RequestProbe:
    """Per-request capture handle: decides sampling *before* execution.

    Used as a context manager around the serve cycle — a sampled probe
    installs a private tracer for the duration (only when no real tracer
    is active, so ``--trace-file`` runs keep their single tree) — then
    :meth:`finish` records the exemplar with whatever outcome the caller
    observed.
    """

    __slots__ = ("_recorder", "seq", "sampled", "t0", "_tracer", "_prev",
                 "_attrs", "_finished")

    def __init__(self, recorder: "FlightRecorder", seq: int, sampled: bool,
                 attrs: dict):
        self._recorder = recorder
        self.seq = seq
        self.sampled = sampled
        # Set on __enter__; 0.0 means the probe never wrapped execution,
        # in which case finish() reports zero latency rather than guessing.
        self.t0 = 0.0
        self._tracer = None
        self._prev = None
        self._attrs = attrs
        self._finished = False

    def __enter__(self) -> "RequestProbe":
        if self.sampled and not obs_trace.tracing_enabled():
            self._tracer = obs_trace.Tracer()
            self._prev = obs_trace.set_tracer(self._tracer)
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        if self._tracer is not None:
            obs_trace.set_tracer(self._prev)
            self._prev = None
        return False

    def _span_tree(self, status: str, latency: float, error: str | None) -> dict | None:
        if self._tracer is not None and self._tracer.roots:
            return self._tracer.roots[0].to_dict()
        if status != "ok" and error is not None:
            return _error_tree(latency, error, **self._attrs)
        return None

    def finish(self, status: str = "ok", *, error: BaseException | str | None = None,
               **fields) -> None:
        """Record this request's outcome (idempotent; keep-or-drop applies)."""
        if self._finished:
            return
        self._finished = True
        if status == "ok" and not self.sampled:
            return  # the common case: one branch, nothing retained
        latency = (time.perf_counter() - self.t0) if self.t0 else 0.0
        error_text = None
        if error is not None:
            error_text = (error if isinstance(error, str)
                          else f"{type(error).__name__}: {error}")
        merged = {**self._attrs, **fields}  # finish-time fields win
        self._recorder._record(
            seq=self.seq, status=status, latency=latency, sampled=self.sampled,
            error=error_text,
            span_tree=self._span_tree(status, latency, error_text),
            **merged,
        )


class FlightRecorder:
    """Bounded ring buffer of request exemplars with JSON dumps."""

    def __init__(self, capacity: int = 256, sample_every: int = 16, *,
                 dump_dir=None, clock=time.time):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.capacity = capacity
        self.sample_every = sample_every
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self._clock = clock
        self._ring: deque[RequestExemplar] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        # itertools.count is C-implemented and therefore thread-safe to
        # advance without taking the lock on every request.
        self._seq = itertools.count(1)
        self.n_requests = 0
        self.n_recorded = 0
        self.n_failures = 0
        self.dumps: list[str] = []

    # -- the per-request path ----------------------------------------------
    def begin(self, **attrs) -> RequestProbe:
        """Open a probe for one request; sampling is decided here, up
        front, because tracing cannot be turned on retroactively."""
        seq = next(self._seq)
        self.n_requests += 1
        return RequestProbe(self, seq, seq % self.sample_every == 0, attrs)

    def observe(self, status: str = "ok", *, latency: float = 0.0,
                error: BaseException | str | None = None, **fields) -> None:
        """Record one already-measured request (no probe, no tracing).

        The micro-batcher's path: it owns its request clocks and batches
        never trace per request, so it reports outcomes directly.
        """
        seq = next(self._seq)
        self.n_requests += 1
        error_text = None
        if error is not None:
            error_text = (error if isinstance(error, str)
                          else f"{type(error).__name__}: {error}")
        sampled = seq % self.sample_every == 0
        span_tree = None
        if status != "ok" and error_text is not None:
            span_tree = _error_tree(latency, error_text)
        self._record(seq=seq, status=status, latency=latency, sampled=sampled,
                     error=error_text, span_tree=span_tree, **fields)

    def _record(self, *, seq: int, status: str, latency: float, sampled: bool,
                **fields) -> None:
        if status == "ok" and not sampled:
            return  # the common case: one branch, nothing retained
        known = {f for f in RequestExemplar.__dataclass_fields__}
        extra = {k: fields.pop(k) for k in list(fields) if k not in known}
        exemplar = RequestExemplar(seq=seq, ts=self._clock(), status=status,
                                   latency=latency, sampled=sampled,
                                   extra=extra, **fields)
        with self._lock:
            self._ring.append(exemplar)
            self.n_recorded += 1
            if status != "ok":
                self.n_failures += 1

    # -- introspection / dumps ---------------------------------------------
    def exemplars(self) -> list[RequestExemplar]:
        with self._lock:
            return list(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def dump(self, reason: str = "on_demand") -> dict:
        """JSON-able snapshot of the ring and the recorder's accounting."""
        with self._lock:
            exemplars = [e.to_dict() for e in self._ring]
        return {
            "reason": reason,
            "generated_ts": self._clock(),
            "capacity": self.capacity,
            "sample_every": self.sample_every,
            "requests_seen": self.n_requests,
            "recorded": self.n_recorded,
            "failures": self.n_failures,
            "exemplars": exemplars,
        }

    def dump_json(self, path=None, *, reason: str = "on_demand") -> Path:
        """Write :meth:`dump` to ``path`` (default: ``dump_dir`` or cwd)."""
        if path is None:
            base = self.dump_dir if self.dump_dir is not None else Path(".")
            base.mkdir(parents=True, exist_ok=True)
            path = base / f"flight-recorder-{reason}-{int(self._clock())}.json"
        path = Path(path)
        path.write_text(json.dumps(self.dump(reason=reason), indent=2,
                                   default=str) + "\n")
        self.dumps.append(str(path))
        logger.info("flight recorder dumped %d exemplar(s) to %s (%s)",
                    len(self), path, reason)
        return path


# -- the process-wide recorder (off by default) ---------------------------------

_active: FlightRecorder | None = None


def current_recorder() -> FlightRecorder | None:
    """The installed recorder, or ``None`` (recording disabled)."""
    return _active


def set_recorder(recorder: FlightRecorder | None) -> FlightRecorder | None:
    """Install ``recorder`` process-wide; returns the previous one."""
    global _active
    previous = _active
    _active = recorder
    return previous


@contextmanager
def use_recorder(recorder: FlightRecorder | None = None):
    """Scope a recorder (default: a fresh one) over a block."""
    recorder = recorder if recorder is not None else FlightRecorder()
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


def crash_dump(reason: str, error: str | None = None) -> Path | None:
    """Dump the active recorder because something just crash-looped.

    Called by the worker pool right before it raises
    :class:`~repro.pipeline.resilience.WorkerCrashError`; a no-op without
    an installed recorder, and never raises — the crash being reported
    must propagate, not a dump failure.
    """
    recorder = _active
    if recorder is None:
        return None
    if error is not None:
        recorder.observe(status="error", error=error, crash=reason)
    try:
        return recorder.dump_json(reason=reason)
    except OSError:
        logger.exception("flight recorder crash dump failed (%s)", reason)
        return None


def install_signal_dump(signum: int = signal.SIGUSR1) -> bool:
    """Dump the active recorder on ``signum`` (default ``SIGUSR1``).

    Returns ``False`` (without installing) off the main thread — signal
    handlers can only be registered there.  The previous handler is
    chained, so an application's own ``SIGUSR1`` behaviour survives.
    """
    if threading.current_thread() is not threading.main_thread():
        logger.warning("signal dump not installed: not on the main thread")
        return False

    previous = signal.getsignal(signum)

    def _handler(received, frame):
        crash_dump("signal")
        if callable(previous) and previous not in (signal.SIG_IGN, signal.SIG_DFL):
            previous(received, frame)

    signal.signal(signum, _handler)
    return True
