"""A persistent, reusable process pool with an explicit lifecycle.

``reorder_many`` used to build a fresh ``ProcessPoolExecutor`` per call and
tear it down on exit — for a serving deployment that preprocesses batch
after batch (paper §4.4, "reorder once, serve many"), the spawn cost is
pure overhead paid every time.  :class:`WorkerPool` keeps the workers warm
across calls:

    with WorkerPool(4) as pool:
        pool.warm()                      # optional: pre-spawn the workers
        for batch in batches:
            reorder_many(batch, pattern, pool=pool)

The pool is lazy (no processes until the first submission), restartable
(``restart()`` swaps in a fresh executor after a ``BrokenProcessPool`` —
the resubmission machinery in ``reorder_many`` drives this), and owns an
explicit ``close()``/context-manager lifecycle so tests and CLIs never
leak worker processes.  :attr:`stats` counts spawns/jobs/restarts for the
observability layer and the scaling benchmark.
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor, wait
from dataclasses import dataclass

__all__ = ["PoolStats", "WorkerPool"]

logger = logging.getLogger("repro.perf.pool")


@dataclass
class PoolStats:
    """Lifecycle accounting for one :class:`WorkerPool`."""

    spawns: int = 0
    restarts: int = 0
    jobs: int = 0


def _noop() -> None:
    """Submitted by :meth:`WorkerPool.warm` to force worker spawn."""


class WorkerPool:
    """Lazily-spawned, restartable, explicitly-closed process pool."""

    def __init__(self, n_workers: int | None = None, *, mp_context=None):
        from ..parallel import default_workers  # lazy: parallel imports us

        self.n_workers = default_workers() if n_workers is None else max(1, n_workers)
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False
        self.stats = PoolStats()

    # -- lifecycle ---------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether an executor currently exists (workers may be spawned)."""
        return self._executor is not None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers, mp_context=self._mp_context
            )
            self.stats.spawns += 1
        return self._executor

    def warm(self) -> None:
        """Pre-spawn every worker so the first batch pays no startup cost."""
        pool = self._ensure()
        wait([pool.submit(_noop) for _ in range(self.n_workers)])

    def submit(self, fn, /, *args, **kwargs):
        """Submit one job; spawns the executor on first use."""
        self.stats.jobs += 1
        return self._ensure().submit(fn, *args, **kwargs)

    def restart(self) -> None:
        """Replace a broken executor with a fresh one (same size).

        The old executor is shut down without waiting — its workers are
        already dead or doomed; outstanding futures are cancelled.
        """
        old, self._executor = self._executor, None
        self.stats.restarts += 1
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)
        logger.debug("worker pool restarted (restart #%d)", self.stats.restarts)

    def close(self) -> None:
        """Shut the workers down and refuse further submissions; idempotent."""
        self._closed = True
        old, self._executor = self._executor, None
        if old is not None:
            old.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("warm" if self.alive else "cold")
        return (
            f"WorkerPool(n_workers={self.n_workers}, {state}, "
            f"jobs={self.stats.jobs}, restarts={self.stats.restarts})"
        )
