"""A persistent, reusable process pool with an explicit lifecycle.

``reorder_many`` used to build a fresh ``ProcessPoolExecutor`` per call and
tear it down on exit — for a serving deployment that preprocesses batch
after batch (paper §4.4, "reorder once, serve many"), the spawn cost is
pure overhead paid every time.  :class:`WorkerPool` keeps the workers warm
across calls:

    with WorkerPool(4) as pool:
        pool.warm()                      # optional: pre-spawn the workers
        for batch in batches:
            reorder_many(batch, pattern, pool=pool)

The pool is lazy (no processes until the first submission), restartable
(``restart()`` swaps in a fresh executor after a ``BrokenProcessPool`` —
the resubmission machinery in ``reorder_many`` drives this), and owns an
explicit ``close()``/context-manager lifecycle so tests and CLIs never
leak worker processes.  :attr:`stats` counts spawns/jobs/restarts for the
observability layer and the scaling benchmark.

Supervision (:class:`SupervisionPolicy`) adds the watchdog a serving
deployment needs: :meth:`run` bounds each job with a timeout, a hung
worker is **killed** (``restart(kill=True)`` terminates the worker
processes outright — ``shutdown`` alone would wait on them forever) and
the job resubmitted, and a windowed restart cap turns a crash-looping pool
into a :class:`~repro.pipeline.resilience.WorkerCrashError` instead of an
infinite kill/respawn cycle.  All lifecycle transitions are guarded by an
``RLock``: the micro-batcher's flush timer (or any other thread) can drive
submissions concurrently with the owning thread's restarts.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass

from ..obs.metrics import default_registry
from . import shm

__all__ = ["PoolStats", "RestartWindow", "SupervisionPolicy", "WorkerPool"]

logger = logging.getLogger("repro.perf.pool")


@dataclass
class PoolStats:
    """Lifecycle accounting for one :class:`WorkerPool`."""

    spawns: int = 0
    restarts: int = 0
    jobs: int = 0
    timeouts: int = 0
    kills: int = 0


@dataclass(frozen=True)
class SupervisionPolicy:
    """Watchdog knobs for a supervised :class:`WorkerPool`.

    ``job_timeout`` bounds one job's wall-clock seconds before the worker
    is presumed hung (``None`` disables the watchdog).  ``max_restarts``
    within ``restart_window`` seconds is the crash-loop cap: one more
    restart inside the window raises
    :class:`~repro.pipeline.resilience.WorkerCrashError` instead of
    respawning — a pool whose workers die on arrival must surface, not
    burn CPU forever.  ``backoff`` sleeps ``backoff * 2**k`` (capped at
    ``max_backoff``) before the k-th restart in the current window, giving
    a transiently-sick host room to recover.
    """

    job_timeout: float | None = None
    max_restarts: int = 16
    restart_window: float = 60.0
    backoff: float = 0.0
    max_backoff: float = 1.0

    def __post_init__(self):
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError("job_timeout must be positive (or None)")
        if self.max_restarts < 1:
            raise ValueError("max_restarts must be >= 1")
        if self.restart_window <= 0:
            raise ValueError("restart_window must be positive")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff values must be non-negative")


class RestartWindow:
    """Windowed restart accounting: crash-loop detection plus backoff.

    The supervision logic every restartable worker shares — the pool's
    executor and each :class:`~repro.pipeline.procshard.ProcessShardWorker`
    lane alike: restarts recorded inside ``policy.restart_window`` seconds
    count toward ``policy.max_restarts``; :attr:`exhausted` means the next
    restart must surface as a crash instead of respawning, and
    :meth:`backoff_seconds` gives the exponential pre-restart delay for
    the *current* window depth.  Thread-safe; callers still decide what a
    cap breach raises (the pool and the shard worker both raise
    :class:`~repro.pipeline.resilience.WorkerCrashError`).
    """

    def __init__(self, policy: SupervisionPolicy):
        self.policy = policy
        self._times: deque[float] = deque()
        self._lock = threading.Lock()

    def prune(self, now: float | None = None) -> int:
        """Drop restarts older than the window; returns the live count."""
        now = time.monotonic() if now is None else now
        with self._lock:
            while self._times and now - self._times[0] > self.policy.restart_window:
                self._times.popleft()
            return len(self._times)

    @property
    def count(self) -> int:
        return self.prune()

    @property
    def exhausted(self) -> bool:
        """Whether the windowed cap is hit — the next restart is a crash."""
        return self.prune() >= self.policy.max_restarts

    def backoff_seconds(self) -> float:
        """Exponential delay before the next restart in this window."""
        if not self.policy.backoff:
            return 0.0
        return min(self.policy.backoff * 2 ** self.prune(),
                   self.policy.max_backoff)

    def record(self, now: float | None = None) -> None:
        """Count one restart at ``now`` (after any backoff sleep)."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self._times.append(now)


def _noop() -> None:
    """Submitted by :meth:`WorkerPool.warm` to force worker spawn."""


def _worker_init() -> None:
    """Initializer for every fresh worker generation.

    A forked worker inherits the parent's (or the previous generation's)
    shared-memory attach memo; those entries hold mappings of segments the
    new generation never attached — drop them so the memo only ever caches
    this worker's own attachments.
    """
    shm.detach_all()


class WorkerPool:
    """Lazily-spawned, restartable, explicitly-closed process pool.

    Thread-safe: every lifecycle transition (spawn, submit, restart,
    close) holds one reentrant lock, so a flush-timer thread submitting
    while the main thread restarts after a crash can never race a
    half-built executor.
    """

    def __init__(self, n_workers: int | None = None, *, mp_context=None,
                 supervision: SupervisionPolicy | None = None):
        from ..parallel import default_workers  # lazy: parallel imports us

        self.n_workers = default_workers() if n_workers is None else max(1, n_workers)
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False
        self._lock = threading.RLock()
        self.supervision = supervision or SupervisionPolicy()
        self._restarts = RestartWindow(self.supervision)
        self.stats = PoolStats()

    # -- lifecycle ---------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether an executor currently exists (workers may be spawned)."""
        return self._executor is not None

    @property
    def crash_looping(self) -> bool:
        """Whether the pool is at its windowed restart cap *right now* —
        the next :meth:`restart` would raise
        :class:`~repro.pipeline.resilience.WorkerCrashError`.  ``/healthz``
        turns this into a 503."""
        return self._restarts.exhausted

    def _ensure(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool is closed")
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.n_workers, mp_context=self._mp_context,
                    initializer=_worker_init,
                )
                self.stats.spawns += 1
            return self._executor

    def warm(self) -> None:
        """Pre-spawn every worker so the first batch pays no startup cost."""
        pool = self._ensure()
        wait([pool.submit(_noop) for _ in range(self.n_workers)])

    def submit(self, fn, /, *args, **kwargs):
        """Submit one job; spawns the executor on first use."""
        with self._lock:
            executor = self._ensure()
            self.stats.jobs += 1
            return executor.submit(fn, *args, **kwargs)

    def run(self, fn, /, *args, timeout: float | None = None,
            resubmit: int = 1, **kwargs):
        """One supervised job: submit, bound by a timeout, kill + retry.

        ``timeout`` (default: the supervision policy's ``job_timeout``)
        bounds the job's wall-clock seconds; on expiry the pool's workers
        are killed and restarted (the hung one cannot be cancelled — it is
        *running*) and the job resubmitted up to ``resubmit`` more times.
        A job still hanging after the last attempt raises
        :class:`~repro.pipeline.resilience.DeadlineExceeded`.  Worker
        exceptions propagate as-is on the first attempt — supervision
        guards against *hangs*, not against deterministic job errors.
        """
        timeout = self.supervision.job_timeout if timeout is None else timeout
        attempts = max(1, resubmit + 1) if timeout is not None else 1
        for attempt in range(attempts):
            future = self.submit(fn, *args, **kwargs)
            try:
                return future.result(timeout=timeout)
            except FuturesTimeoutError:
                self.stats.timeouts += 1
                default_registry().counter(
                    "pool_job_timeouts_total",
                    help="supervised pool jobs that exceeded their timeout",
                ).inc()
                logger.warning(
                    "pool job exceeded %.3fs timeout (attempt %d/%d); "
                    "killing workers", timeout, attempt + 1, attempts,
                )
                self.restart(kill=True)
        from ..pipeline.resilience import DeadlineExceeded  # lazy: cycle

        raise DeadlineExceeded(
            f"pool job still hung after {attempts} attempt(s) of "
            f"{timeout:.3f}s each; workers killed",
            attempts=attempts, deadline=timeout,
        )

    def restart(self, *, kill: bool = False) -> None:
        """Replace the executor with a fresh one (same size).

        ``kill=True`` terminates the old executor's worker processes
        outright — the hung-worker path, where ``shutdown`` would block on
        a job that never finishes.  ``kill=False`` (the broken-pool path)
        just abandons them: they are already dead or doomed.  Either way
        outstanding futures are cancelled.

        Restarts are counted against the supervision policy's window;
        exceeding ``max_restarts`` within ``restart_window`` seconds
        raises :class:`~repro.pipeline.resilience.WorkerCrashError`
        (crash-loop protection) *before* spawning yet another doomed
        generation of workers.
        """
        policy = self.supervision
        with self._lock:
            live = self._restarts.prune()
            if live >= policy.max_restarts:
                from ..obs import recorder as obs_recorder
                from ..pipeline.resilience import WorkerCrashError  # lazy: cycle

                # Dump the flight recorder *before* raising: the requests
                # that led up to the crash loop are exactly what the ring
                # still holds, and the raise may end the process.
                obs_recorder.crash_dump(
                    "worker_crash_loop",
                    error=f"{live} pool restarts within "
                          f"{policy.restart_window:.0f}s",
                )
                raise WorkerCrashError(
                    f"worker pool crash-looping: {live} "
                    f"restarts within {policy.restart_window:.0f}s "
                    f"(cap {policy.max_restarts}); refusing to respawn",
                    restarts=live,
                    window=policy.restart_window,
                )
            delay = self._restarts.backoff_seconds()
            if delay:
                time.sleep(delay)
            self._restarts.record()
            # The old generation's segments may be re-packed under recycled
            # names; a stale parent-side attach memo would alias them.
            shm.detach_all()
            old, self._executor = self._executor, None
            self.stats.restarts += 1
            if kill and old is not None:
                self.stats.kills += 1
                for proc in list(getattr(old, "_processes", {}).values()):
                    if proc.is_alive():
                        proc.terminate()
            if old is not None:
                old.shutdown(wait=False, cancel_futures=True)
        default_registry().counter(
            "pool_restarts_total", help="worker pool executor restarts",
        ).inc()
        logger.debug(
            "worker pool restarted (restart #%d%s)",
            self.stats.restarts, ", workers killed" if kill else "",
        )

    def close(self) -> None:
        """Shut the workers down and refuse further submissions; idempotent."""
        with self._lock:
            self._closed = True
            old, self._executor = self._executor, None
        if old is not None:
            old.shutdown(wait=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("warm" if self.alive else "cold")
        return (
            f"WorkerPool(n_workers={self.n_workers}, {state}, "
            f"jobs={self.stats.jobs}, restarts={self.stats.restarts})"
        )
