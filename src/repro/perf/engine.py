"""Precompiled SpMM execution plans — the kernel execution engine.

The serving hot path used to re-derive its access structure on *every*
call: ``NMCompressed.spmm`` rebuilds ``seg_base``/``gather`` per request,
``VNMCompressed.spmm`` re-gathers its tile columns and scatters with
``np.add.at``, and both materialize an ``(n_rows, slots, h)`` rank-3
gather intermediate through ``einsum``.  An :class:`ExecutionPlan` moves
all of that to plan-build time, once per operand:

* **gather/scatter indices** (``seg_base + meta`` for N:M, the tile-column
  gather for V:N:M, reduceat row boundaries for CSR/BSR/V:N:M) are
  precomputed and stored on the plan;
* **padding geometry** is resolved up front — aligned operands
  (``n_cols % M == 0``, the common post-reorder case) never touch a padded
  copy of B;
* **scratch buffers** (dense panels, fp32 casts) are built lazily on first
  execute and *dropped on pickling*, so plans persist compactly next to
  their operand in the :class:`~repro.pipeline.cache.ArtifactCache` and
  rebuild their scratch on first use after a load.

Two kernel variants per format:

* ``"panel"`` — scatter the compressed values into a dense row panel once
  and serve every request as one BLAS GEMM (column-chunked above
  ``REPRO_ENGINE_COL_CHUNK``).  Chosen when the panel fits the
  ``REPRO_ENGINE_PANEL_BUDGET`` byte budget; on this emulation substrate it
  is the SPTC analogue of shipping a specialized kernel per operand.
* ``"gathered"`` — stay on the compressed operand: chunk the slot axis,
  gather B rows per chunk (bounded intermediate, never the full rank-3
  tensor), contract with batched ``matmul`` and reduce rows with
  ``np.add.reduceat`` instead of ``np.add.at``.

Both variants are numerically exact in float64.  ``dtype=np.float32``
selects an opt-in fp32 compute path (cast scratch cached on the plan);
:func:`fp32_within_bound` guards it with the :mod:`repro.sptc.precision`
row-scaled error model before a session enables it.

:func:`execute` is the integration point: it resolves the operand's plan
through a per-process id-keyed cache (``weakref.finalize`` eviction) and
runs it through :func:`repro.pipeline.registry.run_kernel`'s kernel
override, so fault injection and the ``BackendExecutionError`` taxonomy
cover planned execution exactly like the naive kernels.
"""

from __future__ import annotations

import os
import weakref

import numpy as np

from ..sptc.bsr import BSRMatrix
from ..sptc.csr import CSRMatrix
from ..sptc.hybrid import HybridVNM
from ..sptc.nm_format import NMCompressed
from ..sptc.venom import VNMCompressed

__all__ = [
    "ExecutionPlan",
    "NMPlan",
    "VNMPlan",
    "HybridPlan",
    "BSRPlan",
    "CSRPlan",
    "DensePlan",
    "build_plan",
    "plan_for",
    "cached_plan",
    "adopt_plan",
    "clear_plan_cache",
    "execute",
    "fp32_within_bound",
    "engine_enabled",
    "panel_budget_bytes",
]

# Dense-panel scratch budget: above this many bytes for the densified
# operand the plan stays on the compressed ("gathered") variant.
DEFAULT_PANEL_BUDGET = 256 * 1024 * 1024
# B-column chunk for the panel GEMM and slot chunk for gathered kernels.
DEFAULT_COL_CHUNK = 4096
DEFAULT_SLOT_CHUNK = 256


def panel_budget_bytes() -> int:
    return int(os.environ.get("REPRO_ENGINE_PANEL_BUDGET", DEFAULT_PANEL_BUDGET))


def engine_enabled() -> bool:
    """Planned execution is on by default; ``REPRO_ENGINE=0`` forces naive."""
    return os.environ.get("REPRO_ENGINE", "1").lower() not in ("0", "false", "no")


def _col_chunk() -> int:
    return int(os.environ.get("REPRO_ENGINE_COL_CHUNK", DEFAULT_COL_CHUNK))


def _slot_chunk() -> int:
    return int(os.environ.get("REPRO_ENGINE_SLOT_CHUNK", DEFAULT_SLOT_CHUNK))


def _counters():
    from ..obs import metrics as obs_metrics

    reg = obs_metrics.default_registry()
    return (
        reg.counter("engine_plan_builds_total", help="execution plans built"),
        reg.counter("engine_plan_cache_hits_total", help="execution plan cache hits"),
    )


def _chunked_gemm(panel: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out = panel @ b`` with B column-chunking to bound working-set size."""
    chunk = _col_chunk()
    h = b.shape[1]
    if h <= chunk:
        np.matmul(panel, b, out=out)
        return out
    for c0 in range(0, h, chunk):
        c1 = min(c0 + chunk, h)
        np.matmul(panel, b[:, c0:c1], out=out[:, c0:c1])
    return out


class ExecutionPlan:
    """Base class: shared pickling contract and dtype-aware panel caching.

    Everything reusable-but-rebuildable lives in attributes prefixed with
    ``_`` (scratch); ``__getstate__`` drops them so pickled plans stay small
    and a loaded plan lazily rebuilds scratch on first execute.  Plans hold
    **no reference to their operand** — the operand is passed to
    :meth:`execute`, so one plan can outlive cache round-trips and be
    adopted by an equal operand loaded elsewhere (:func:`adopt_plan`).
    Plans assume the operand's numeric content is immutable, which holds
    for everything the pipeline produces.
    """

    backend = ""

    def __init__(self, shape: tuple[int, int], variant: str):
        self.shape = (int(shape[0]), int(shape[1]))
        self.variant = variant

    # -- pickling ----------------------------------------------------------
    def __getstate__(self) -> dict:
        return {k: v for k, v in self.__dict__.items() if not k.startswith("_")}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -- scratch helpers ---------------------------------------------------
    def _dense_panel(self, operand) -> np.ndarray:
        panel = getattr(self, "_panel", None)
        if panel is None:
            panel = np.ascontiguousarray(self._build_panel(operand))
            self._panel = panel
        return panel

    def _dense_panel32(self, operand) -> np.ndarray:
        panel32 = getattr(self, "_panel32", None)
        if panel32 is None:
            panel32 = self._dense_panel(operand).astype(np.float32)
            self._panel32 = panel32
        return panel32

    def _build_panel(self, operand) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, operand, b: np.ndarray) -> np.ndarray:
        b = np.asarray(b, dtype=np.float64)
        if b.shape[0] != self.shape[1]:
            raise ValueError("inner dimension mismatch")
        if operand.shape != self.shape:
            raise ValueError(
                f"plan shape {self.shape} does not match operand shape {operand.shape}"
            )
        return b

    def _panel_execute(self, operand, b: np.ndarray, dtype,
                       out: np.ndarray | None = None) -> np.ndarray:
        if dtype == np.float32:
            panel = self._dense_panel32(operand)
            b32 = b.astype(np.float32)
            out32 = np.empty((self.shape[0], b.shape[1]), dtype=np.float32)
            return self._finish(_chunked_gemm(panel, b32, out32).astype(np.float64), out)
        panel = self._dense_panel(operand)
        if out is None:
            out = np.empty((self.shape[0], b.shape[1]), dtype=np.float64)
        return _chunked_gemm(panel, b, out)

    @staticmethod
    def _finish(result: np.ndarray, out: np.ndarray | None) -> np.ndarray:
        """Deliver ``result`` into the caller's ``out`` buffer when given."""
        if out is None:
            return result
        out[...] = result
        return out

    def execute(self, operand, b: np.ndarray, *, dtype=None,
                out: np.ndarray | None = None) -> np.ndarray:
        """Run one SpMM through the precompiled access structure.

        ``out`` (optional, float64, shape ``(n_rows, h)``) receives the
        result in place — the GEMM variants write straight into it, which
        lets :class:`~repro.perf.segment.SegmentedPlan` stitch sub-plan
        outputs without a per-segment allocation.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(backend={self.backend!r}, "
            f"shape={self.shape}, variant={self.variant!r})"
        )


class NMPlan(ExecutionPlan):
    """Plan over :class:`NMCompressed`: precomputed ``seg_base + meta`` gather.

    ``gather`` maps every value slot to its padded B row; ``aligned`` means
    ``n_cols == n_segs * m`` so the gathered variant reads B directly with
    no zero-padded copy.
    """

    backend = "nm"

    def __init__(self, operand: NMCompressed, variant: str):
        super().__init__(operand.shape, variant)
        n, m = operand.pattern.n, operand.pattern.m
        n_segs = operand.n_segs
        seg_base = np.repeat(np.arange(n_segs, dtype=np.int64) * m, n)
        self.gather = seg_base[None, :] + operand.meta.astype(np.int64)
        self.padded_cols = n_segs * m
        self.aligned = self.shape[1] == self.padded_cols

    def scatter_dense(self, operand: NMCompressed) -> np.ndarray:
        """Fresh dense scatter via the precomputed gather (decompress core).

        In-segment positions are pairwise distinct (an :class:`NMCompressed`
        invariant), so one ``put_along_axis`` reconstructs exactly.
        """
        out = np.zeros((self.shape[0], self.padded_cols), dtype=np.float64)
        np.put_along_axis(out, self.gather, operand.values, axis=1)
        return out

    def _build_panel(self, operand: NMCompressed) -> np.ndarray:
        return self.scatter_dense(operand)[:, : self.shape[1]]

    def _values32(self, operand: NMCompressed) -> np.ndarray:
        v32 = getattr(self, "_v32", None)
        if v32 is None:
            v32 = operand.values.astype(np.float32)
            self._v32 = v32
        return v32

    def execute(self, operand: NMCompressed, b: np.ndarray, *, dtype=None,
                out: np.ndarray | None = None) -> np.ndarray:
        b = self._check(operand, b)
        if self.variant == "panel":
            return self._panel_execute(operand, b, dtype, out)
        # Gathered: slot-chunked take + batched matmul; the (rows, chunk, h)
        # intermediate is bounded by the chunk, never the full slot axis.
        if self.aligned:
            bsrc = b
        else:
            bsrc = np.zeros((self.padded_cols, b.shape[1]), dtype=np.float64)
            bsrc[: b.shape[0]] = b
        fp32 = dtype == np.float32
        values = self._values32(operand) if fp32 else operand.values
        if fp32:
            bsrc = bsrc.astype(np.float32)
        n_rows, n_slots = self.gather.shape
        acc = np.zeros((n_rows, b.shape[1]), dtype=bsrc.dtype)
        # Bound the (rows, chunk, h) gather intermediate to ~8M elements.
        chunk = min(max((8 << 20) // max(n_rows * b.shape[1], 1), 1), _slot_chunk())
        for j0 in range(0, n_slots, chunk):
            j1 = min(j0 + chunk, n_slots)
            gb = bsrc[self.gather[:, j0:j1]]  # (rows, jc, h)
            acc += np.matmul(values[:, None, j0:j1], gb)[:, 0]
        return self._finish(acc.astype(np.float64) if fp32 else acc, out)


class VNMPlan(ExecutionPlan):
    """Plan over :class:`VNMCompressed`: tile-column gather + reduceat rows.

    ``gather_cols`` resolves each value slot's global B row once;
    ``starts``/``nonempty`` are the reduceat boundaries replacing the
    per-call ``np.add.at`` scatter of the naive kernel.
    """

    backend = "vnm"

    def __init__(self, operand: VNMCompressed, variant: str):
        super().__init__(operand.shape, variant)
        v = operand.pattern.v
        self.v = v
        self.n_tiles = operand.n_tiles
        self.n_tile_rows = operand.n_tile_rows
        if self.n_tiles:
            self.gather_cols = np.take_along_axis(
                operand.col_ids[:, None, :].repeat(v, axis=1),
                operand.meta.astype(np.int64), axis=2,
            )  # (n_tiles, v, n)
        else:
            self.gather_cols = np.zeros((0, v, operand.pattern.n), dtype=np.int64)
        self.tile_rows = np.repeat(
            np.arange(self.n_tile_rows, dtype=np.int64), np.diff(operand.tile_ptr)
        )
        nonempty = np.diff(operand.tile_ptr) > 0
        self.nonempty = nonempty
        self.starts = operand.tile_ptr[:-1][nonempty]
        self.padded_rows = max(self.shape[1], int(operand.col_ids.max(initial=0)) + 1)
        self.aligned = self.padded_rows == self.shape[1]

    def scatter_dense(self, operand: VNMCompressed) -> np.ndarray:
        out = np.zeros((self.n_tile_rows * self.v, self.padded_rows), dtype=np.float64)
        if self.n_tiles:
            rows = (
                self.tile_rows[:, None, None] * self.v
                + np.arange(self.v)[None, :, None]
            )
            # Padding slots can duplicate a live position (compress_csr fills
            # them with min(slot, k-1)), so scatter with add, never assign.
            np.add.at(out, (rows, self.gather_cols), operand.values)
        return out[: self.shape[0], : self.shape[1]]

    def _build_panel(self, operand: VNMCompressed) -> np.ndarray:
        return self.scatter_dense(operand)

    def _values32(self, operand: VNMCompressed) -> np.ndarray:
        v32 = getattr(self, "_v32", None)
        if v32 is None:
            v32 = operand.values.astype(np.float32)
            self._v32 = v32
        return v32

    def execute(self, operand: VNMCompressed, b: np.ndarray, *, dtype=None,
                out: np.ndarray | None = None) -> np.ndarray:
        b = self._check(operand, b)
        h = b.shape[1]
        if self.variant == "panel":
            return self._panel_execute(operand, b, dtype, out)
        if self.n_tiles == 0:
            return self._finish(np.zeros((self.shape[0], h), dtype=np.float64), out)
        if self.aligned:
            bsrc = b
        else:
            bsrc = np.zeros((self.padded_rows, h), dtype=np.float64)
            bsrc[: b.shape[0]] = b
        fp32 = dtype == np.float32
        values = self._values32(operand) if fp32 else operand.values
        if fp32:
            bsrc = bsrc.astype(np.float32)
        t, v, n = self.gather_cols.shape
        contrib = np.empty((t, v, h), dtype=bsrc.dtype)
        # Bound the (tc, v, n, h) gather intermediate to ~8M elements.
        chunk = max((8 << 20) // max(v * n * h, 1), 1)
        for t0 in range(0, t, chunk):
            t1 = min(t0 + chunk, t)
            gb = bsrc[self.gather_cols[t0:t1]]  # (tc, v, n, h)
            np.matmul(
                values[t0:t1].reshape(-1, 1, n), gb.reshape(-1, n, h),
                out=contrib[t0:t1].reshape(-1, 1, h),
            )
        acc = np.zeros((self.n_tile_rows, v, h), dtype=contrib.dtype)
        if self.starts.size:
            acc[self.nonempty] = np.add.reduceat(contrib, self.starts, axis=0)
        acc = acc.reshape(self.n_tile_rows * v, h)[: self.shape[0]]
        return self._finish(acc.astype(np.float64) if fp32 else acc, out)


class HybridPlan(ExecutionPlan):
    """Plan over :class:`HybridVNM`: V:N:M main plan plus the CSR residual.

    The panel variant folds the residual into the dense panel, so one GEMM
    serves the whole operand; the gathered variant runs the main plan and
    adds the residual's CSR ``matmat`` (always float64 — the residual is a
    handful of rows and stays on the exact path).
    """

    backend = "hybrid"

    def __init__(self, operand: HybridVNM, variant: str):
        super().__init__(operand.shape, variant)
        self.main = VNMPlan(operand.main, variant)
        self.has_residual = operand.residual is not None

    def _build_panel(self, operand: HybridVNM) -> np.ndarray:
        panel = self.main.scatter_dense(operand.main)
        if operand.residual is not None:
            panel = panel + operand.residual.to_dense()
        return panel

    def execute(self, operand: HybridVNM, b: np.ndarray, *, dtype=None,
                out: np.ndarray | None = None) -> np.ndarray:
        b = self._check(operand, b)
        if self.variant == "panel":
            return self._panel_execute(operand, b, dtype, out)
        res = self.main.execute(operand.main, b, dtype=dtype)
        if operand.residual is not None:
            res = res + operand.residual.matmat(b)
        return self._finish(res, out)


class BSRPlan(ExecutionPlan):
    """Plan over :class:`BSRMatrix`: block-row reduceat replaces ``add.at``."""

    backend = "bsr"

    def __init__(self, operand: BSRMatrix, variant: str):
        super().__init__(operand.shape, variant)
        self.block = operand.block
        self.nbr = operand.brow_ptr.shape[0] - 1
        self.nbc = (self.shape[1] + self.block - 1) // self.block
        nonempty = np.diff(operand.brow_ptr) > 0
        self.nonempty = nonempty
        self.starts = operand.brow_ptr[:-1][nonempty]
        self.aligned = self.shape[1] == self.nbc * self.block

    def _build_panel(self, operand: BSRMatrix) -> np.ndarray:
        return operand.to_dense()

    def execute(self, operand: BSRMatrix, b: np.ndarray, *, dtype=None,
                out: np.ndarray | None = None) -> np.ndarray:
        b = self._check(operand, b)
        if self.variant == "panel":
            return self._panel_execute(operand, b, dtype, out)
        block, h = self.block, b.shape[1]
        if self.aligned:
            bsrc = b
        else:
            bsrc = np.zeros((self.nbc * block, h), dtype=np.float64)
            bsrc[: b.shape[0]] = b
        fp32 = dtype == np.float32
        blocks = operand.blocks
        if fp32:
            b32 = getattr(self, "_blocks32", None)
            if b32 is None:
                b32 = blocks.astype(np.float32)
                self._blocks32 = b32
            blocks = b32
            bsrc = bsrc.astype(np.float32)
        panels = bsrc.reshape(self.nbc, block, h)
        acc = np.zeros((self.nbr, block, h), dtype=bsrc.dtype)
        if operand.n_blocks:
            contrib = np.matmul(blocks, panels[operand.bcol_ind])
            acc[self.nonempty] = np.add.reduceat(contrib, self.starts, axis=0)
        acc = acc.reshape(self.nbr * block, h)[: self.shape[0]]
        return self._finish(acc.astype(np.float64) if fp32 else acc, out)


class CSRPlan(ExecutionPlan):
    """Plan over :class:`CSRMatrix`.

    ``"panel"`` (dense GEMM under the budget) extends the matmat dense fast
    path well past its conservative 4M-cell cutoff; ``"gathered"`` keeps the
    row-gather structure but precomputes the reduceat boundaries and serves
    the fp32 path with a cached data cast.
    """

    backend = "csr"

    def __init__(self, operand: CSRMatrix, variant: str):
        super().__init__(operand.shape, variant)
        nonempty = np.diff(operand.indptr) > 0
        self.nonempty = nonempty
        self.starts = operand.indptr[:-1][nonempty]

    def _build_panel(self, operand: CSRMatrix) -> np.ndarray:
        return operand.to_dense()

    def execute(self, operand: CSRMatrix, b: np.ndarray, *, dtype=None,
                out: np.ndarray | None = None) -> np.ndarray:
        b = self._check(operand, b)
        if self.variant == "panel":
            return self._panel_execute(operand, b, dtype, out)
        fp32 = dtype == np.float32
        data = operand.data
        if fp32:
            d32 = getattr(self, "_data32", None)
            if d32 is None:
                d32 = data.astype(np.float32)
                self._data32 = d32
            data = d32
            b = b.astype(np.float32)
        prod = data[:, None] * b[operand.indices]
        acc = np.zeros((self.shape[0], b.shape[1]), dtype=b.dtype)
        if self.starts.size:
            acc[self.nonempty] = np.add.reduceat(prod, self.starts, axis=0)
        return self._finish(acc.astype(np.float64) if fp32 else acc, out)


class DensePlan(ExecutionPlan):
    """Plan over a dense ndarray: GEMM, with a cached fp32 cast."""

    backend = "dense"

    def __init__(self, operand: np.ndarray, variant: str):
        super().__init__(operand.shape, "panel")

    def _build_panel(self, operand: np.ndarray) -> np.ndarray:
        return np.asarray(operand, dtype=np.float64)

    def execute(self, operand: np.ndarray, b: np.ndarray, *, dtype=None,
                out: np.ndarray | None = None) -> np.ndarray:
        b = self._check(operand, b)
        return self._panel_execute(operand, b, dtype, out)


_PLAN_TYPES: tuple[tuple[type, type], ...] = (
    (NMCompressed, NMPlan),
    (VNMCompressed, VNMPlan),
    (HybridVNM, HybridPlan),
    (BSRMatrix, BSRPlan),
    (CSRMatrix, CSRPlan),
    (np.ndarray, DensePlan),
)


def _default_variant(operand) -> str:
    dense_bytes = int(operand.shape[0]) * int(operand.shape[1]) * 8
    return "panel" if dense_bytes <= panel_budget_bytes() else "gathered"


def build_plan(operand, *, variant: str | None = None, pattern=None,
               segment_config=None) -> ExecutionPlan:
    """Build a fresh plan for ``operand``; ``TypeError`` when unplannable.

    ``variant`` forces ``"panel"`` or ``"gathered"``; by default the panel
    variant is chosen whenever the densified operand fits
    ``REPRO_ENGINE_PANEL_BUDGET`` bytes.  ``variant="segmented"`` builds a
    per-row-block :class:`~repro.perf.segment.SegmentedPlan` instead
    (``pattern``/``segment_config`` parameterize the row segmenter and are
    only meaningful there).
    """
    forced = os.environ.get("REPRO_ENGINE_VARIANT")
    variant = variant or forced or _default_variant(operand)
    if variant == "segmented":
        from .segment import build_segmented_plan

        return build_segmented_plan(operand, pattern=pattern, config=segment_config)
    if pattern is not None or segment_config is not None:
        raise ValueError("pattern/segment_config require variant='segmented'")
    if variant not in ("panel", "gathered"):
        raise ValueError(f"unknown plan variant {variant!r}")
    for operand_type, plan_type in _PLAN_TYPES:
        if isinstance(operand, operand_type):
            return plan_type(operand, variant)
    raise TypeError(f"no execution plan for operand type {type(operand).__name__}")


# id-keyed plan cache: operand dataclasses define __eq__ (unhashable) but
# support weak references, so entries are keyed by id() and evicted by a
# weakref.finalize callback when the operand is collected.
_PLAN_CACHE: dict[int, ExecutionPlan] = {}


def plan_for(operand, *, variant: str | None = None, pattern=None,
             segment_config=None) -> ExecutionPlan:
    """The cached plan for ``operand``, building (and caching) on first use."""
    builds, hits = _counters()
    if isinstance(operand, np.ndarray):
        # ndarrays don't support weak references; dense plans are cheap to
        # rebuild (the array itself *is* the panel), so skip the cache.
        builds.inc()
        return build_plan(operand, variant=variant, pattern=pattern,
                          segment_config=segment_config)
    oid = id(operand)
    plan = _PLAN_CACHE.get(oid)
    if plan is not None and (variant is None or plan.variant == variant):
        hits.inc()
        return plan
    plan = build_plan(operand, variant=variant, pattern=pattern,
                      segment_config=segment_config)
    builds.inc()
    _cache_plan(operand, plan)
    return plan


def _cache_plan(operand, plan: ExecutionPlan) -> None:
    oid = id(operand)
    try:
        weakref.finalize(operand, _PLAN_CACHE.pop, oid, None)
    except TypeError:
        return  # non-weakrefable operand: serve the plan uncached
    _PLAN_CACHE[oid] = plan


def cached_plan(operand) -> ExecutionPlan | None:
    """The already-built plan for ``operand``, or ``None`` (never builds)."""
    return _PLAN_CACHE.get(id(operand))


def adopt_plan(operand, plan: ExecutionPlan) -> ExecutionPlan:
    """Seed the plan cache with a plan built elsewhere (e.g. loaded from the
    :class:`~repro.pipeline.cache.ArtifactCache` next to its operand).

    Raises ``ValueError`` when the plan cannot belong to this operand.
    """
    if tuple(plan.shape) != tuple(operand.shape):
        raise ValueError(
            f"plan shape {plan.shape} does not match operand shape {operand.shape}"
        )
    if plan.backend == "segmented":
        # Segmented plans serve any registered operand of their source
        # backend (the sub-operands are rebuilt from it lazily).
        from ..pipeline import registry

        source = registry.backend_for(operand).name
        if plan.spec.source_backend != source:
            raise ValueError(
                f"segmented plan built for backend {plan.spec.source_backend!r} "
                f"cannot serve operand backend {source!r}"
            )
        _cache_plan(operand, plan)
        return plan
    for operand_type, plan_type in _PLAN_TYPES:
        if isinstance(operand, operand_type):
            if not isinstance(plan, plan_type):
                raise ValueError(
                    f"{type(plan).__name__} cannot serve operand type "
                    f"{type(operand).__name__}"
                )
            break
    else:
        raise TypeError(f"no execution plan for operand type {type(operand).__name__}")
    _cache_plan(operand, plan)
    return plan


def clear_plan_cache() -> int:
    """Drop every cached plan (tests / memory pressure); returns the count."""
    n = len(_PLAN_CACHE)
    _PLAN_CACHE.clear()
    return n


def execute(operand, b: np.ndarray, *, dtype=None) -> np.ndarray:
    """One planned SpMM through the registry's kernel choke point.

    Unplannable operands (SELL, TC-GNN tiles, serving sessions, third-party
    formats) fall back to the backend's naive kernel; either way the call
    goes through :func:`~repro.pipeline.registry.run_kernel`, so fault
    injection and ``BackendExecutionError`` wrapping apply uniformly.
    """
    from ..pipeline import registry

    backend = registry.backend_for(operand)
    if not engine_enabled():
        return registry.run_kernel(backend, operand, b)
    try:
        plan = plan_for(operand)
    except TypeError:
        return registry.run_kernel(backend, operand, b)
    return registry.run_kernel(
        backend, operand, b,
        kernel=lambda a, x, _plan=plan: _plan.execute(a, x, dtype=dtype),
    )


def fp32_within_bound(operand, plan: ExecutionPlan | None = None, *,
                      h: int = 8, seed: int = 0, bound: float | None = None) -> bool:
    """Probe whether the fp32 path stays inside the precision-model bound.

    Runs the plan once in float64 and once in float32 on a seeded random B
    and compares the row-scaled error (the :mod:`repro.sptc.precision`
    normalization) against ``FP32_ROW_SCALED_BOUND``.
    """
    from ..sptc import precision

    if bound is None:
        bound = precision.FP32_ROW_SCALED_BOUND
    if plan is None:
        plan = plan_for(operand)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((operand.shape[1], h))
    exact = plan.execute(operand, b)
    approx = plan.execute(operand, b, dtype=np.float32)
    return precision.row_scaled_error(exact, approx) <= bound
