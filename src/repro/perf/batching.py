"""Micro-batched SpMM serving: coalesce compatible requests, bound the tail.

HC-SpMM's observation — per-call dispatch overhead dominates small SpMMs —
applies directly to :class:`~repro.pipeline.serving.ServingSession`: every
request pays permute-in, kernel dispatch, retry bookkeeping and
permute-back.  Since ``A @ [x1 | x2 | … ]`` computes each feature block's
columns independently, requests against the *same* operand coalesce into
one stacked call with numerically identical per-request outputs.

:class:`MicroBatcher` implements that with a bounded request queue:

* ``submit(x)`` validates eagerly (bad requests fail at the door, never
  poison a batch), enqueues, and returns a ``concurrent.futures.Future``;
* a flusher thread coalesces whatever is queued once the batch is *full*
  (``max_requests`` requests or ``max_columns`` stacked columns) **or**
  the oldest request's ``max_delay`` flush deadline expires — p99 latency
  is bounded by ``max_delay`` plus one stacked call;
* the queue is bounded (``capacity``); ``submit`` blocks for backpressure.

Fault semantics compose with PR 2/3's machinery: the stacked call runs the
session's ordinary retry/downgrade cycle, and if it still fails (e.g. an
injected batch crash — :func:`repro.pipeline.faults.maybe_fail_batch`),
the batcher **re-serves each request individually**, so only requests that
fail on their own get their future's exception; the rest complete.  With
session metrics enabled, per-request latency (submit → resolve) feeds the
existing ``spmm_latency_seconds`` histogram, plus batch-shape counters.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from ..obs import trace as obs_trace

__all__ = ["BatchPolicy", "MicroBatcher"]

logger = logging.getLogger("repro.perf.batching")


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs for one session's micro-batching behaviour.

    ``max_delay`` is the flush deadline: the longest a request waits for
    companions before the batch goes out regardless (the p99 bound).
    ``max_requests`` / ``max_columns`` cap batch shape so one stacked call
    stays cache-friendly; ``capacity`` bounds the queue (backpressure).
    """

    max_delay: float = 0.002
    max_requests: int = 16
    max_columns: int = 1024
    capacity: int = 128

    def __post_init__(self):
        if self.max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if self.max_requests < 1 or self.max_columns < 1 or self.capacity < 1:
            raise ValueError("max_requests, max_columns and capacity must be >= 1")


class _Pending:
    """One queued request: validated features, its future, and its clock."""

    __slots__ = ("x", "squeeze", "future", "t0")

    def __init__(self, x: np.ndarray, squeeze: bool):
        self.x = x
        self.squeeze = squeeze
        self.future: Future = Future()
        self.t0 = time.perf_counter()


class MicroBatcher:
    """Bounded coalescing queue in front of one :class:`ServingSession`."""

    def __init__(self, session, policy: BatchPolicy | None = None):
        self._session = session
        self.policy = policy or BatchPolicy()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)   # new work / close
        self._space = threading.Condition(self._lock)  # queue shrank
        self._pending: deque[_Pending] = deque()
        self._thread: threading.Thread | None = None
        self._closed = False
        self.n_batches = 0
        self.n_coalesced = 0
        self.n_fallbacks = 0

    # -- public API --------------------------------------------------------
    def submit(self, x: np.ndarray) -> Future:
        """Enqueue one request; returns its future.

        Validation runs here, synchronously — a malformed request raises in
        the caller and never reaches a batch.  When the session has an
        :class:`~repro.pipeline.guard.AdmissionPolicy`, it is consulted
        here too: a request past the queue-depth bound, or whose estimated
        completion (live latency p95) misses the deadline, raises
        :class:`~repro.pipeline.resilience.OverloadError` immediately —
        shed at the door, before any queueing.  Otherwise blocks when the
        queue is at ``capacity`` until the flusher drains it.
        """
        x2, squeeze = self._session._validate_features(x)
        item = _Pending(x2, squeeze)
        admission = getattr(self._session, "admission", None)
        with self._lock:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            if admission is not None:
                self._admit_locked(admission)
            while len(self._pending) >= self.policy.capacity:
                self._space.wait()
                if self._closed:
                    raise RuntimeError("MicroBatcher is closed")
            self._pending.append(item)
            self._observe_depth_locked()
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="repro-microbatch", daemon=True
                )
                self._thread.start()
            self._wake.notify_all()
        return item.future

    def flush(self) -> None:
        """Serve everything queued right now, on the calling thread."""
        while True:
            with self._lock:
                batch = self._take_locked()
                self._observe_depth_locked()
                self._space.notify_all()
            if not batch:
                return
            self._run_batch(batch)

    def close(self, drain: bool = True) -> None:
        """Stop the flusher thread and refuse new requests.

        ``drain=True`` serves everything still queued (on the calling
        thread) before shutdown; ``drain=False`` abandons the queue,
        resolving pending futures with
        :class:`~repro.pipeline.resilience.OverloadError` (reason
        ``closed``).  In every case — including a drain whose flush itself
        raises — no queued future is left unresolved, so a caller blocked
        on ``.result()`` can never hang on a closed batcher.
        """
        with self._lock:
            self._closed = True
            self._wake.notify_all()
            self._space.notify_all()
            thread = self._thread
        try:
            if drain:
                self.flush()
            else:
                from ..pipeline.resilience import OverloadError  # lazy: cycle

                self._abort_pending(OverloadError(
                    "MicroBatcher closed without draining; request abandoned",
                    reason="closed",
                ))
        except BaseException as exc:
            # The drain itself failed: the error propagates to the closer,
            # but every still-queued future gets it too (satellite fix —
            # a raising flush used to leave them forever-pending).
            self._abort_pending(exc)
            raise
        finally:
            if thread is not None:
                thread.join(timeout=5.0)
            self._abort_pending(RuntimeError(
                "MicroBatcher closed with unserved requests"))

    def _abort_pending(self, exc: BaseException) -> None:
        """Resolve every queued future with ``exc`` (no-op when empty)."""
        with self._lock:
            abandoned = list(self._pending)
            self._pending.clear()
            self._observe_depth_locked()
            self._space.notify_all()
        for item in abandoned:
            if not item.future.done():
                item.future.set_exception(exc)

    def _admit_locked(self, admission) -> None:
        """Apply the session's admission policy; sheds raise OverloadError."""
        from ..pipeline.resilience import OverloadError  # lazy: cycle

        session = self._session
        # Prefer the session's rolling latency window (recent p95) over the
        # lifetime histogram — a backend that was slow an hour ago should
        # not shed traffic now, and one that is slow *now* should.
        latency = getattr(session, "latency_window", None)
        if latency is None:
            latency = session._m_latency if session._metrics is not None else None
        try:
            admission.admit(
                depth=len(self._pending),
                latency=latency,
                batch_size=self.policy.max_requests,
            )
        except OverloadError as exc:
            from ..obs import events as obs_events

            reason = exc.context.get("reason", "unknown")
            if session._metrics is not None:
                session._metrics.counter(
                    "serve_shed_total",
                    help="requests rejected by admission control",
                    reason=reason,
                ).inc()
            recorder = getattr(session, "recorder", None)
            if recorder is not None:
                recorder.observe("shed", shed_reason=reason,
                                 backend=session.backend_name,
                                 error=exc)
            obs_events.emit("serve.shed", reason=reason,
                            depth=len(self._pending))
            logger.debug("request shed (%s): %s", reason, exc)
            raise

    def _observe_depth_locked(self) -> None:
        session = self._session
        if session._metrics is not None:
            session._metrics.gauge(
                "serve_queue_depth", help="requests queued for micro-batching"
            ).set(float(len(self._pending)))

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    @property
    def queued(self) -> int:
        with self._lock:
            return len(self._pending)

    def __repr__(self) -> str:
        return (
            f"MicroBatcher(queued={self.queued}, batches={self.n_batches}, "
            f"coalesced={self.n_coalesced}, fallbacks={self.n_fallbacks})"
        )

    # -- internals ---------------------------------------------------------
    def _max_columns(self) -> int:
        """The effective column cap: the policy's, tightened by a tuner
        decision on the session — coalescing past ``max_batch_columns``
        would leave the shape regime the autotuner measured."""
        cap = self.policy.max_columns
        tuned = getattr(self._session, "tuned", None)
        if tuned is not None and getattr(tuned, "max_batch_columns", 0) > 0:
            cap = min(cap, tuned.max_batch_columns)
        return cap

    def _full_locked(self) -> bool:
        if len(self._pending) >= self.policy.max_requests:
            return True
        cols = 0
        max_columns = self._max_columns()
        for item in self._pending:
            cols += item.x.shape[1]
            if cols >= max_columns:
                return True
        return False

    def _take_locked(self) -> list[_Pending]:
        """Pop the next batch under the shape caps; leftovers stay queued."""
        batch: list[_Pending] = []
        cols = 0
        max_columns = self._max_columns()
        while self._pending and len(batch) < self.policy.max_requests:
            nxt = self._pending[0]
            if batch and cols + nxt.x.shape[1] > max_columns:
                break
            batch.append(self._pending.popleft())
            cols += nxt.x.shape[1]
        return batch

    def _loop(self) -> None:
        while True:
            with self._lock:
                while not self._pending and not self._closed:
                    self._wake.wait()
                if self._closed and not self._pending:
                    return
                # Batch window: wait for companions until the oldest
                # request's flush deadline, or until the batch fills.
                deadline = self._pending[0].t0 + self.policy.max_delay
                while self._pending and not self._closed and not self._full_locked():
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._wake.wait(remaining)
                batch = self._take_locked()
                self._observe_depth_locked()
                self._space.notify_all()
            if batch:
                try:
                    self._run_batch(batch)
                except Exception:  # noqa: BLE001 - futures already carry it
                    # The batch's futures were resolved with the error by
                    # _run_batch; the flusher thread itself keeps serving.
                    logger.exception("micro-batch flusher survived a batch error")

    def _resolve(self, item: _Pending, out: np.ndarray) -> None:
        session = self._session
        session.n_requests += 1
        if session._metrics is not None:
            session._m_requests.inc()
            session._m_latency.observe(time.perf_counter() - item.t0)
            for counter, rows in session._path_rows_counters():
                counter.inc(rows)
        recorder = getattr(session, "recorder", None)
        if recorder is not None:
            recorder.observe(
                "ok", latency=time.perf_counter() - item.t0,
                backend=session.backend_name, batched=True,
                h=int(item.x.shape[1]),
                operand_key=getattr(session, "operand_key", None),
            )
        item.future.set_result(out[:, 0] if item.squeeze else np.ascontiguousarray(out))

    def _run_batch(self, batch: list[_Pending]) -> None:
        """Serve one batch, guaranteeing its futures resolve.

        :meth:`_run_batch_inner` already routes per-request failures to
        their futures; this wrapper covers what escapes it (keyboard
        interrupt mid-drain, a resolve-path bug) — the batch's unresolved
        futures get the error before it propagates, so no caller blocked on
        ``.result()`` outlives the batch that carried its request.
        """
        try:
            self._run_batch_inner(batch)
        except BaseException as exc:
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(exc)
            raise

    def _run_batch_inner(self, batch: list[_Pending]) -> None:
        from ..pipeline import faults  # lazy: pipeline imports repro.perf users

        session = self._session
        self.n_batches += 1
        self.n_coalesced += len(batch)
        if session._metrics is not None:
            session._metrics.counter(
                "serve_batches_total", help="coalesced spmm batches executed"
            ).inc()
            session._metrics.counter(
                "serve_coalesced_requests_total",
                help="spmm requests served through a coalesced batch",
            ).inc(len(batch))
        try:
            faults.maybe_fail_batch()
            stacked = (
                batch[0].x if len(batch) == 1
                else np.concatenate([item.x for item in batch], axis=1)
            )
            with obs_trace.span(
                "serve.batch", requests=len(batch), h=stacked.shape[1]
            ):
                out = session._serve_cycle(stacked)
        except Exception as exc:
            # The stacked call failed even after the session's own
            # retry/downgrade cycle (or was injected to crash).  Serve each
            # request individually so only genuinely-failing requests fail.
            self.n_fallbacks += 1
            if session._metrics is not None:
                session._metrics.counter(
                    "serve_batch_fallbacks_total",
                    help="coalesced batches re-served request-by-request",
                ).inc()
            logger.debug(
                "coalesced batch of %d failed (%s); re-serving individually",
                len(batch), exc,
            )
            recorder = getattr(session, "recorder", None)
            for item in batch:
                try:
                    single = session._serve_cycle(item.x)
                except Exception as single_exc:  # noqa: BLE001 - routed to future
                    if recorder is not None:
                        recorder.observe(
                            "error", latency=time.perf_counter() - item.t0,
                            error=single_exc, backend=session.backend_name,
                            batched=True, h=int(item.x.shape[1]),
                        )
                    item.future.set_exception(single_exc)
                else:
                    self._resolve(item, single)
            return
        col = 0
        for item in batch:
            h = item.x.shape[1]
            self._resolve(item, out[:, col:col + h])
            col += h
