"""Segmented execution plans: per-row-block dispatch with tail fallback.

The monolithic :class:`~repro.perf.engine.ExecutionPlan` picks **one**
format and variant for the whole operand, so a single M-segment violating
the N:M constraint makes the entire ``vnm`` backend unavailable (the
availability cliff in ``BENCH_spmm_engine.json``).  This module splits the
row space instead, the HC-SpMM move of serving dense rows on tensor cores
and the sparse tail on CUDA cores:

* :class:`RowSegmenter` profiles per-tile-row N:M conformance (the shared
  :mod:`repro.sptc.conformance` scan also used by the hybrid splitter) and
  partitions the rows into contiguous blocks — conforming runs go to the
  ``dense_backend`` (``vnm`` by default), everything else to the
  ``tail_backend`` (``csr``);
* :class:`SegmentedPlan` composes one sub-plan per block and stitches the
  per-block SpMM outputs back in row order, bit-identical to the naive
  kernels.  Each sub-plan call still routes through
  :func:`repro.pipeline.registry.run_kernel`, so fault injection, the
  ``BackendExecutionError`` taxonomy and the obs counters apply **per
  segment** — and when one segment's backend fails, only that segment
  walks its degradation ladder (sticky, like the serving session's, but
  scoped to the rows that need it).

Only the :class:`SegmentSpec` is pickled with the plan (a compact JSON-able
description of the split); the per-segment sub-operands and sub-plans are
scratch, rebuilt lazily from the operand on first execute after a cache
load — the same contract as every other plan's panels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.patterns import VNMPattern
from ..sptc.conformance import conforming_tile_rows
from ..sptc.csr import CSRMatrix
from .engine import ExecutionPlan, build_plan, _cache_plan

__all__ = [
    "SegmentConfig",
    "RowSegment",
    "SegmentSpec",
    "RowSegmenter",
    "SegmentedPlan",
    "build_segmented_plan",
    "DEFAULT_SEGMENT_CONFIG",
]

# Row-count buckets for the engine_segment_rows histogram (powers of two).
_ROW_BUCKETS: tuple[float, ...] = tuple(float(2**i) for i in range(21))


def _seg_counters():
    from ..obs import metrics as obs_metrics

    reg = obs_metrics.default_registry()
    return (
        reg.counter("engine_segments_total", help="row segments built into plans"),
        reg.histogram(
            "engine_segment_rows", help="rows per built segment", buckets=_ROW_BUCKETS
        ),
    )


def _variant_counter(backend: str):
    from ..obs import metrics as obs_metrics

    return obs_metrics.default_registry().counter(
        "engine_segment_variant_total",
        help="segments routed per backend variant",
        backend=backend,
    )


def _downgrade_counter():
    from ..obs import metrics as obs_metrics

    return obs_metrics.default_registry().counter(
        "engine_segment_downgrades_total", help="per-segment backend downgrades"
    )


@dataclass(frozen=True)
class SegmentConfig:
    """Tunable segmentation thresholds (the autotuner's candidate axes).

    ``min_block_rows`` demotes conforming runs shorter than this to the
    tail (per-segment dispatch overhead would beat the SPTC win);
    ``max_blocks`` bounds the total segment count by demoting the smallest
    conforming runs first.  ``variant`` forces every sub-plan's kernel
    variant (``None`` = per-sub-plan default by panel budget).
    """

    min_block_rows: int = 1
    max_blocks: int = 256
    dense_backend: str = "vnm"
    tail_backend: str = "csr"
    variant: str | None = None
    # Coalesce same-backend blocks into one pooled sub-plan per backend —
    # one "kernel launch" over every conforming row-panel plus one over the
    # whole tail (the HC-SpMM / SPTC tile-list shape), instead of a launch
    # per block.  Dispatch is still decided per row-block.
    coalesce: bool = True

    def to_dict(self) -> dict:
        return {
            "min_block_rows": self.min_block_rows,
            "max_blocks": self.max_blocks,
            "dense_backend": self.dense_backend,
            "tail_backend": self.tail_backend,
            "variant": self.variant,
            "coalesce": self.coalesce,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SegmentConfig":
        return cls(
            min_block_rows=int(d.get("min_block_rows", 1)),
            max_blocks=int(d.get("max_blocks", 256)),
            dense_backend=str(d.get("dense_backend", "vnm")),
            tail_backend=str(d.get("tail_backend", "csr")),
            variant=d.get("variant"),
            coalesce=bool(d.get("coalesce", True)),
        )


DEFAULT_SEGMENT_CONFIG = SegmentConfig()


@dataclass(frozen=True)
class RowSegment:
    """One contiguous row block ``[start, stop)`` and its serving backend."""

    start: int
    stop: int
    backend: str
    variant: str | None = None

    @property
    def rows(self) -> int:
        return self.stop - self.start

    def to_dict(self) -> dict:
        d = {"start": self.start, "stop": self.stop, "backend": self.backend}
        if self.variant is not None:
            d["variant"] = self.variant
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "RowSegment":
        return cls(
            start=int(d["start"]), stop=int(d["stop"]),
            backend=str(d["backend"]), variant=d.get("variant"),
        )


@dataclass(frozen=True)
class SegmentSpec:
    """The persisted description of a segmented plan: shape, pattern, blocks.

    JSON-able (``to_dict``/``from_dict``) so it can ride in ``.tune.json``
    tuner decisions as well as pickled ``.plan.pkl`` sidecars.
    ``source_backend`` records which registered backend's operand the plan
    was built against (:func:`~repro.perf.engine.adopt_plan` checks it).
    """

    shape: tuple[int, int]
    pattern: dict
    source_backend: str
    segments: tuple[RowSegment, ...] = field(default_factory=tuple)
    coalesce: bool = True

    def vnm_pattern(self) -> VNMPattern:
        p = self.pattern
        return VNMPattern(int(p["v"]), int(p["n"]), int(p["m"]), k=int(p["k"]))

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "shape": list(self.shape),
            "pattern": dict(self.pattern),
            "source_backend": self.source_backend,
            "segments": [s.to_dict() for s in self.segments],
            "coalesce": self.coalesce,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SegmentSpec":
        return cls(
            shape=(int(d["shape"][0]), int(d["shape"][1])),
            pattern=dict(d["pattern"]),
            source_backend=str(d["source_backend"]),
            segments=tuple(RowSegment.from_dict(s) for s in d["segments"]),
            coalesce=bool(d.get("coalesce", True)),
        )


def _pattern_dict(pattern: VNMPattern) -> dict:
    return {"v": pattern.v, "n": pattern.n, "m": pattern.m, "k": pattern.k}


class RowSegmenter:
    """Partition the row space into conforming blocks and tail blocks.

    Profiles per-tile-row (V-row band) N:M conformance via
    :func:`~repro.sptc.conformance.conforming_tile_rows` and emits
    contiguous, ``v``-aligned row blocks: maximal conforming runs of at
    least ``min_block_rows`` rows on the dense backend, everything else
    merged into tail blocks.  The split is a pure function of the operand's
    sparsity structure and the config, so it fingerprints cleanly for the
    tuner cache.
    """

    def __init__(self, pattern: VNMPattern, config: SegmentConfig | None = None):
        self.pattern = pattern
        self.config = config or DEFAULT_SEGMENT_CONFIG

    def segment(self, csr: CSRMatrix) -> SegmentSpec:
        cfg = self.config
        v = self.pattern.v
        n_rows = csr.shape[0]
        spec_kwargs = dict(
            shape=(csr.shape[0], csr.shape[1]),
            pattern=_pattern_dict(self.pattern),
            source_backend="csr",
            coalesce=cfg.coalesce,
        )
        if n_rows == 0:
            return SegmentSpec(segments=(), **spec_kwargs)
        conf = conforming_tile_rows(csr, self.pattern)
        # Tile-row runs: (start_tr, stop_tr, conforming) triples.
        runs: list[list] = []
        for t, ok in enumerate(conf):
            ok = bool(ok)
            if runs and runs[-1][2] == ok:
                runs[-1][1] = t + 1
            else:
                runs.append([t, t + 1, ok])
        # Demote conforming runs too short to amortize a dispatch.
        min_trows = max(1, -(-cfg.min_block_rows // v))
        for run in runs:
            if run[2] and (run[1] - run[0]) < min_trows:
                run[2] = False
        runs = self._merge(runs)
        # Bound the block count: demote the smallest conforming runs first.
        while len(runs) > max(1, cfg.max_blocks):
            conforming = [r for r in runs if r[2]]
            if not conforming:
                break
            smallest = min(conforming, key=lambda r: (r[1] - r[0], r[0]))
            smallest[2] = False
            runs = self._merge(runs)
        segments = []
        for start_tr, stop_tr, ok in runs:
            start, stop = start_tr * v, min(stop_tr * v, n_rows)
            if stop <= start:
                continue
            backend = cfg.dense_backend if ok else cfg.tail_backend
            segments.append(RowSegment(start, stop, backend, cfg.variant))
        return SegmentSpec(segments=tuple(segments), **spec_kwargs)

    @staticmethod
    def _merge(runs: list[list]) -> list[list]:
        merged: list[list] = []
        for run in runs:
            if merged and merged[-1][2] == run[2]:
                merged[-1][1] = run[1]
            else:
                merged.append(list(run))
        return merged


def _slice_rows(csr: CSRMatrix, start: int, stop: int) -> CSRMatrix:
    """Zero-copy-ish row slice ``csr[start:stop]`` (indices/data views)."""
    lo, hi = int(csr.indptr[start]), int(csr.indptr[stop])
    return CSRMatrix(
        csr.indptr[start : stop + 1] - csr.indptr[start],
        csr.indices[lo:hi],
        csr.data[lo:hi],
        (stop - start, csr.shape[1]),
    )


def _stack_rows(csr: CSRMatrix, blocks: tuple[RowSegment, ...]) -> CSRMatrix:
    """The row blocks of ``csr`` stacked into one contiguous matrix.

    Blocks are kept in row order, so V-row bands stay aligned: every block
    starts on a ``v`` boundary and only the globally last block can end on
    a partial band.
    """
    if len(blocks) == 1:
        return _slice_rows(csr, blocks[0].start, blocks[0].stop)
    counts = np.concatenate([
        np.diff(csr.indptr[seg.start : seg.stop + 1]) for seg in blocks
    ])
    indptr = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    spans = [
        slice(int(csr.indptr[seg.start]), int(csr.indptr[seg.stop]))
        for seg in blocks
    ]
    indices = np.concatenate([csr.indices[s] for s in spans])
    data = np.concatenate([csr.data[s] for s in spans])
    return CSRMatrix(indptr, indices, data, (int(counts.size), csr.shape[1]))


class _SubPlan:
    """Runtime state for one backend group: operand + plan + sticky backend.

    A group serves one or more row blocks that share a backend/variant —
    one "kernel launch" covering all of them (their rows stacked in row
    order).  Scratch only (lives in the plan's ``_subs``) — rebuilt from
    the operand after unpickling.  ``downgraded_from`` records the ladder
    walked when the group's original backend failed.
    """

    __slots__ = ("blocks", "operand", "plan", "backend", "variant",
                 "row_index", "downgraded_from")

    def __init__(self, blocks: tuple[RowSegment, ...], operand,
                 plan: ExecutionPlan, backend: str, variant: str | None):
        self.blocks = blocks
        self.operand = operand
        self.plan = plan
        self.backend = backend
        self.variant = variant
        # Destination rows of the stacked result; None when the group is a
        # single contiguous block (stitched via an out= view instead).
        if len(blocks) == 1:
            self.row_index = None
        else:
            self.row_index = np.concatenate(
                [np.arange(seg.start, seg.stop, dtype=np.int64) for seg in blocks]
            )
        self.downgraded_from: list[str] = []

    @property
    def rows(self) -> int:
        return sum(seg.rows for seg in self.blocks)

    def run(self, b: np.ndarray, dtype, out: np.ndarray | None) -> np.ndarray:
        """One sub-SpMM through the registry choke point, degrading this
        group (and only this group) when its backend fails.

        ``out`` — when the group is a single block, its row-slice view of
        the stitched result (panel sub-plans GEMM straight into it);
        ``None`` for multi-block groups, whose result is scattered by the
        caller.
        """
        from ..pipeline import registry
        from ..pipeline.resilience import BackendExecutionError

        try:
            return registry.run_kernel(
                registry.backend_for(self.operand), self.operand, b,
                kernel=lambda a, x: self.plan.execute(a, x, dtype=dtype, out=out),
            )
        except BackendExecutionError:
            last: BackendExecutionError | None = None
            for target in registry.fallback_chain(self.operand):
                try:
                    operand = registry.degrade(self.operand, target)
                    plan = build_plan(operand, variant=self.variant)
                    result = registry.run_kernel(
                        registry.backend_for(operand), operand, b,
                        kernel=lambda a, x, _p=plan: _p.execute(a, x, dtype=dtype, out=out),
                    )
                except BackendExecutionError as exc:
                    last = exc
                    continue
                # Sticky: later calls serve this group from the fallback.
                self.downgraded_from.append(self.backend)
                self.operand, self.plan, self.backend = operand, plan, target
                _downgrade_counter().inc()
                return result
            raise last if last is not None else BackendExecutionError(
                f"segment group {self.backend!r} has no fallbacks",
                backend=self.backend, kernel_name=self.backend,
            )


class SegmentedPlan(ExecutionPlan):
    """A composition of per-row-block sub-plans stitched in row order.

    Serves any registered operand whose backend matches the spec's
    ``source_backend``; rows inside conforming blocks run on the dense
    (SPTC) sub-plan, tail rows on the fallback sub-plan, and the outputs
    are written back into one ``(n_rows, h)`` result — bitwise-identical
    to the naive kernel on exact inputs, since every row's products and
    reduction order are unchanged by the row split.
    """

    backend = "segmented"

    def __init__(self, spec: SegmentSpec):
        super().__init__(spec.shape, "segmented")
        self.spec = spec

    # -- scratch -----------------------------------------------------------
    def _operand_csr(self, operand) -> CSRMatrix:
        if isinstance(operand, CSRMatrix):
            return operand
        from ..pipeline import registry

        return CSRMatrix.from_dense(registry.densify(operand))

    def _ensure_subs(self, operand) -> list[_SubPlan]:
        subs = getattr(self, "_subs", None)
        if subs is not None:
            return subs
        from ..pipeline import registry

        csr = self._operand_csr(operand)
        pattern = self.spec.vnm_pattern()
        # Group blocks per (backend, variant): one pooled sub-plan per group
        # when coalescing, one group per block otherwise.
        if self.spec.coalesce:
            grouped: dict[tuple, list[RowSegment]] = {}
            for seg in self.spec.segments:
                grouped.setdefault((seg.backend, seg.variant), []).append(seg)
            groups = [tuple(v) for v in grouped.values()]
        else:
            groups = [(seg,) for seg in self.spec.segments]
        subs = []
        seg_total, seg_rows = _seg_counters()
        for blocks in groups:
            backend, variant = blocks[0].backend, blocks[0].variant
            stacked = _stack_rows(csr, blocks)
            if backend == "csr":
                sub_operand = stacked
            elif backend == "dense":
                sub_operand = stacked.to_dense()
            else:
                sub_operand = registry.compress(stacked, backend, pattern)
            plan = build_plan(sub_operand, variant=variant)
            subs.append(_SubPlan(blocks, sub_operand, plan, backend, variant))
            for seg in blocks:
                seg_total.inc()
                seg_rows.observe(seg.rows)
                _variant_counter(backend).inc()
        self._subs = subs
        return subs

    # -- execution ---------------------------------------------------------
    def execute(self, operand, b: np.ndarray, *, dtype=None,
                out: np.ndarray | None = None) -> np.ndarray:
        b = self._check(operand, b)
        subs = self._ensure_subs(operand)
        # Segments partition [0, n_rows) exactly, so no zero-fill is needed;
        # single-block groups write their row-slice of ``out`` in place,
        # multi-block groups scatter their stacked result per block.
        if out is None:
            out = np.empty((self.shape[0], b.shape[1]), dtype=np.float64)
        for sub in subs:
            if sub.row_index is None:
                seg = sub.blocks[0]
                sub.run(b, dtype, out[seg.start : seg.stop])
            else:
                out[sub.row_index] = sub.run(b, dtype, None)
        return out

    # -- introspection -----------------------------------------------------
    def summary(self) -> dict:
        """Per-segment routing report for health endpoints and ``repro stats``.

        Uses the live sub-plans when built (reflecting sticky downgrades);
        otherwise reports the spec as persisted.
        """
        subs = getattr(self, "_subs", None)
        segments = []
        coverage: dict[str, int] = {}
        downgrades = 0
        n_groups = None
        if subs is not None:
            n_groups = len(subs)
            for sub in subs:
                for seg in sub.blocks:
                    entry = {
                        "start": seg.start,
                        "stop": seg.stop,
                        "rows": seg.rows,
                        "backend": sub.backend,
                        "variant": sub.plan.variant,
                    }
                    if sub.downgraded_from:
                        entry["downgraded_from"] = list(sub.downgraded_from)
                    segments.append(entry)
                    coverage[sub.backend] = coverage.get(sub.backend, 0) + seg.rows
                downgrades += len(sub.downgraded_from)
        else:
            for seg in self.spec.segments:
                segments.append({
                    "start": seg.start, "stop": seg.stop, "rows": seg.rows,
                    "backend": seg.backend, "variant": seg.variant,
                })
                coverage[seg.backend] = coverage.get(seg.backend, 0) + seg.rows
        segments.sort(key=lambda s: s["start"])
        total = self.shape[0]
        out = {
            "n_segments": len(segments),
            "rows": total,
            "coalesce": self.spec.coalesce,
            "row_coverage": {
                k: {"rows": r, "fraction": r / total if total else 0.0}
                for k, r in sorted(coverage.items())
            },
            "downgrades": downgrades,
            "segments": segments,
        }
        if n_groups is not None:
            out["n_groups"] = n_groups
        return out

    def __repr__(self) -> str:
        return (
            f"SegmentedPlan(shape={self.shape}, "
            f"segments={len(self.spec.segments)}, "
            f"source={self.spec.source_backend!r})"
        )


def build_segmented_plan(
    operand,
    *,
    pattern: VNMPattern | None = None,
    config: SegmentConfig | None = None,
    spec: SegmentSpec | None = None,
    cache: bool = True,
) -> SegmentedPlan:
    """Build a :class:`SegmentedPlan` for ``operand``.

    With ``spec`` given, trusts it (cache / tuner replay).  Otherwise the
    operand is profiled: ``pattern`` defaults to the operand's own
    ``.pattern`` and is required for pattern-less formats (CSR, dense).
    The plan is seeded into the engine's plan cache unless ``cache=False``
    (the tuner builds throwaway candidates that must not shadow the
    operand's served plan).
    """
    from ..pipeline import registry

    if spec is None:
        if pattern is None:
            pattern = getattr(operand, "pattern", None)
            if isinstance(pattern, VNMPattern):
                pass
            elif pattern is not None and hasattr(pattern, "n") and hasattr(pattern, "m"):
                pattern = VNMPattern(1, pattern.n, pattern.m)
            else:
                raise ValueError(
                    "segmented plans need a V:N:M pattern; the operand carries "
                    "none — pass pattern= explicitly"
                )
        source = registry.backend_for(operand).name
        csr = operand if isinstance(operand, CSRMatrix) else CSRMatrix.from_dense(
            registry.densify(operand)
        )
        profiled = RowSegmenter(pattern, config).segment(csr)
        spec = SegmentSpec(
            shape=spec_shape(operand),
            pattern=_pattern_dict(pattern),
            source_backend=source,
            segments=profiled.segments,
            coalesce=profiled.coalesce,
        )
    plan = SegmentedPlan(spec)
    if cache:
        _cache_plan(operand, plan)
    return plan


def spec_shape(operand) -> tuple[int, int]:
    return (int(operand.shape[0]), int(operand.shape[1]))
