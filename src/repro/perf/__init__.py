"""repro.perf — the hot-path performance layer.

Five pieces, each consumed by the existing stack rather than replacing it:

* :mod:`repro.perf.engine` — precompiled SpMM :class:`ExecutionPlan`\\ s
  (gather indices, padding geometry, scratch panels, opt-in fp32) behind
  :func:`repro.perf.engine.execute`, the planned kernel path
  :class:`~repro.pipeline.serving.ServingSession` and
  :class:`~repro.gnn.layers.Aggregator` run on;
* :mod:`repro.perf.tuner` — the cached kernel autotuner
  (:func:`repro.perf.tuner.tune`, ``repro tune``) persisting
  :class:`TunerDecision`\\ s content-addressed in the artefact cache;
* :mod:`repro.perf.segment` — per-row-block :class:`SegmentedPlan`\\ s:
  a :class:`RowSegmenter` splits the row space by N:M conformance so
  conforming blocks run the SPTC path and the sparse tail a fallback
  sub-plan, each through its own ``run_kernel`` envelope;

* :mod:`repro.perf.shm` — zero-copy shared-memory transport for batch
  reordering: workers attach read-only views of the packed ``uint64``
  words instead of receiving pickled copies
  (:class:`SharedMatrixBatch`, used by :func:`repro.parallel.reorder_many`);
* :mod:`repro.perf.pool` — :class:`WorkerPool`, a persistent, restartable
  process pool with an explicit lifecycle, reused across
  ``reorder_many`` / ``preprocess_many`` calls (CLI ``--pool``), supervised
  by a :class:`SupervisionPolicy` (job timeouts, hung-worker kills,
  windowed crash-loop caps);
* :mod:`repro.perf.batching` — :class:`MicroBatcher` + :class:`BatchPolicy`,
  the bounded coalescing queue behind
  :meth:`repro.pipeline.serving.ServingSession.submit`.

See ``docs/performance.md`` for lifecycle rules, platform caveats and the
scaling benchmark (`benchmarks/bench_parallel_scaling.py`).
"""

from .batching import BatchPolicy, MicroBatcher
from .engine import ExecutionPlan, build_plan, plan_for
from .pool import PoolStats, RestartWindow, SupervisionPolicy, WorkerPool
from .segment import (
    RowSegment,
    RowSegmenter,
    SegmentConfig,
    SegmentSpec,
    SegmentedPlan,
    build_segmented_plan,
)
from .shm import (
    SEGMENT_PREFIX,
    MatrixHandle,
    SharedMatrixBatch,
    attach_bitmatrix,
    create_segment,
    destroy_segment,
    invalidate_attachment,
    live_segments,
    sweep_leaked_segments,
)
from .tuner import TunerDecision, tune

__all__ = [
    "BatchPolicy",
    "MicroBatcher",
    "ExecutionPlan",
    "build_plan",
    "plan_for",
    "RowSegment",
    "RowSegmenter",
    "SegmentConfig",
    "SegmentSpec",
    "SegmentedPlan",
    "build_segmented_plan",
    "TunerDecision",
    "tune",
    "PoolStats",
    "RestartWindow",
    "SupervisionPolicy",
    "WorkerPool",
    "MatrixHandle",
    "SharedMatrixBatch",
    "SEGMENT_PREFIX",
    "attach_bitmatrix",
    "create_segment",
    "destroy_segment",
    "invalidate_attachment",
    "live_segments",
    "sweep_leaked_segments",
]
