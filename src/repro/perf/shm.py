"""Zero-copy shared-memory transport for packed BitMatrix batches.

``reorder_many`` historically pickled every packed ``uint64`` word array
into its job tuple — a full copy per job through the executor's pipe, paid
again on every pool restart.  For the collection-scale batches (Tables 7/8)
of small-to-medium matrices, that serialization dominates wall-clock.

:class:`SharedMatrixBatch` packs the whole batch's word arrays into **one**
``multiprocessing.shared_memory`` segment; jobs then carry a tiny
``(segment, offset, shape)`` handle and workers attach a read-only NumPy
view straight onto the mapped words — no copies in either direction.  The
reordering stages never mutate their input words (they build permuted
copies), so a read-only view is sufficient and enforced.

Lifecycle rules, in order of importance:

* the **creating process owns the segment** — :meth:`SharedMatrixBatch.
  dispose` (or the context manager) both closes and unlinks it, and
  :func:`repro.parallel.reorder_many` calls it from a ``finally`` so the
  segment dies on normal completion, on a raised job fault, and on a
  ``BrokenProcessPool`` alike;
* workers attach **untracked** (``track=False`` on 3.13+; on older
  versions the attach-side register dedupes into the inherited tracker's
  per-name set, so the creator's single unlink still clears it) — see
  :func:`_attach_untracked`;
* attached segments are cached per worker process (small LRU) because a
  warm :class:`~repro.perf.pool.WorkerPool` serves many batches — a stale
  cache entry for an unlinked segment only holds a private mapping and is
  evicted by the cap.

Platforms without a usable shared-memory mount (``/dev/shm``) surface as
``OSError`` at :meth:`pack` time; callers fall back to pickled payloads
(see ``reorder_many``).  :func:`repro.pipeline.faults.maybe_fail_shm` can
inject that failure deterministically.

Every segment this module creates carries the :data:`SEGMENT_PREFIX` name
prefix, so a segment orphaned by a SIGKILLed owner (nobody left to unlink
it) is recognizable on the shared-memory mount.  ``repro doctor`` calls
:func:`sweep_leaked_segments` to reclaim aged orphans and count them into
``shm_segments_leaked_total``.
"""

from __future__ import annotations

import logging
import os
import secrets
import time
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from ..core.bitmatrix import BitMatrix

__all__ = [
    "MatrixHandle",
    "SharedMatrixBatch",
    "SEGMENT_PREFIX",
    "attach_bitmatrix",
    "create_segment",
    "destroy_segment",
    "live_segments",
    "detach_all",
    "invalidate_attachment",
    "sweep_leaked_segments",
]

logger = logging.getLogger("repro.perf.shm")

_WORD_BYTES = 8

# Every segment name starts with this, so leaked segments (owner SIGKILLed
# before it could unlink) are identifiable on /dev/shm and sweepable by
# `repro doctor` without ever touching foreign applications' segments.
SEGMENT_PREFIX = "repro-shm"

# Segments created (and not yet unlinked) by *this* process, for tests and
# leak auditing: reorder_many must leave this empty on every exit path.
# Values are the owning objects (a SharedMatrixBatch, a SharedMemory);
# only the keys matter to the audit.
_LIVE: dict[str, object] = {}

# Worker-side cache of attached segments, keyed by name.  Bounded: a warm
# pool outlives many batches and each batch uses a fresh segment.
_ATTACH_CACHE_CAP = 8
_ATTACHED: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()


@dataclass(frozen=True)
class MatrixHandle:
    """Picklable pointer to one matrix inside a shared segment."""

    segment: str
    offset: int
    n_rows: int
    n_cols: int
    n_words: int


class SharedMatrixBatch:
    """One shared-memory segment holding a batch of packed word arrays."""

    def __init__(self, shm: shared_memory.SharedMemory, handles: list[MatrixHandle]):
        self._shm = shm
        self.handles = handles
        self.name = shm.name
        self._disposed = False

    @classmethod
    def pack(cls, matrices: list[BitMatrix]) -> "SharedMatrixBatch":
        """Copy every matrix's packed words into one fresh segment.

        This is the single copy the shared-memory path pays (parent side,
        sequential memcpy); workers attach views instead of unpickling.
        Raises ``OSError`` when the platform cannot provide shared memory
        and ``ValueError`` on an empty/degenerate batch.
        """
        from ..pipeline import faults  # lazy: pipeline imports repro.parallel

        faults.maybe_fail_shm()
        total = sum(bm.words.nbytes for bm in matrices)
        if total <= 0:
            raise ValueError("batch has no packed words to share")
        shm = create_segment(total, label="batch")
        try:
            handles: list[MatrixHandle] = []
            offset = 0
            for bm in matrices:
                n_words = bm.words.shape[1]
                dest = np.ndarray(
                    bm.words.shape, dtype=np.uint64, buffer=shm.buf, offset=offset
                )
                dest[:] = bm.words
                handles.append(MatrixHandle(
                    segment=shm.name, offset=offset,
                    n_rows=bm.n_rows, n_cols=bm.n_cols, n_words=n_words,
                ))
                offset += bm.words.nbytes
        except BaseException:
            destroy_segment(shm)
            raise
        batch = cls(shm, handles)
        _LIVE[shm.name] = batch
        return batch

    def view(self, index: int) -> BitMatrix:
        """Read-only BitMatrix over matrix ``index`` (creator-side view)."""
        h = self.handles[index]
        return _view_from(self._shm, h)

    def dispose(self) -> None:
        """Close and unlink the segment; idempotent, never raises."""
        if self._disposed:
            return
        self._disposed = True
        _LIVE.pop(self.name, None)
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - platform quirk
            logger.debug("closing shared segment %s failed", self.name, exc_info=True)
        try:
            self._shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            logger.debug("unlinking shared segment %s failed", self.name, exc_info=True)

    def __enter__(self) -> "SharedMatrixBatch":
        return self

    def __exit__(self, *exc) -> bool:
        self.dispose()
        return False

    def __len__(self) -> int:
        return len(self.handles)

    def __repr__(self) -> str:
        return (
            f"SharedMatrixBatch(name={self.name!r}, matrices={len(self.handles)}, "
            f"bytes={self._shm.size})"
        )


def live_segments() -> list[str]:
    """Names of segments this process created and has not yet unlinked."""
    return sorted(_LIVE)


def create_segment(size: int, *, label: str = "seg") -> shared_memory.SharedMemory:
    """Create one fresh :data:`SEGMENT_PREFIX`-named segment of ``size`` bytes.

    The segment is registered in the live-segment audit (this process owns
    unlinking it — pair with :func:`destroy_segment`) and its name encodes
    the creating pid plus a random token, so concurrent processes never
    collide and :func:`sweep_leaked_segments` can recognize our segments.
    """
    if size <= 0:
        raise ValueError("segment size must be positive")
    name = f"{SEGMENT_PREFIX}-{label}-{os.getpid()}-{secrets.token_hex(4)}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=size)
    _LIVE[name] = shm
    return shm


def destroy_segment(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink a :func:`create_segment` segment; idempotent.

    Also drops any attach-memo entry for the name: a future attach to a
    recycled name must map the new segment, not a stale cached one.
    """
    name = shm.name
    _LIVE.pop(name, None)
    invalidate_attachment(name)
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover - platform quirk
        logger.debug("closing shared segment %s failed", name, exc_info=True)
    try:
        shm.unlink()
    except (OSError, FileNotFoundError):  # pragma: no cover
        logger.debug("unlinking shared segment %s failed", name, exc_info=True)


def sweep_leaked_segments(
    max_age_seconds: float = 300.0,
    *,
    prefix: str = SEGMENT_PREFIX,
    shm_dir: str = "/dev/shm",
    metrics=None,
) -> list[str]:
    """Unlink aged orphan segments left behind by killed owners.

    :func:`live_segments` only *lists* what this process still owns; a
    worker that was SIGKILLed mid-batch leaves its segment on the mount
    with nobody left to unlink it.  This pass — ``repro doctor``'s
    shared-memory counterpart of ``ArtifactCache.fsck`` — removes every
    ``prefix``-named segment older than ``max_age_seconds`` that this
    process does not own, and counts each into
    ``shm_segments_leaked_total``.  The age gate keeps a sweep from
    racing segments that a *live* sibling process created moments ago.
    Returns the reclaimed segment names; missing mounts sweep nothing.
    """
    from ..obs.metrics import default_registry

    root = Path(shm_dir)
    if max_age_seconds < 0:
        raise ValueError("max_age_seconds must be non-negative")
    if not root.is_dir():
        return []
    # NB: an empty registry is falsy (it has __len__), so `or` would drop it.
    registry = default_registry() if metrics is None else metrics
    counter = registry.counter(
        "shm_segments_leaked_total",
        help="orphaned shared-memory segments reclaimed by the doctor sweep",
    )
    now = time.time()
    reclaimed: list[str] = []
    for path in sorted(root.glob(f"{prefix}-*")):
        name = path.name
        if name in _LIVE:
            continue  # still owned by this process — not a leak
        try:
            age = now - path.stat().st_mtime
        except OSError:
            continue  # vanished mid-sweep: its owner cleaned it up
        if age < max_age_seconds:
            continue
        invalidate_attachment(name)
        try:
            path.unlink()
        except FileNotFoundError:
            continue
        except OSError:  # pragma: no cover - permissions/races
            logger.warning("could not reclaim leaked segment %s", name,
                           exc_info=True)
            continue
        counter.inc()
        reclaimed.append(name)
        logger.info("reclaimed leaked shared-memory segment %s (%.0fs old)",
                    name, age)
    return reclaimed


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to ``name`` without adding a second tracking claim.

    The creator owns unlinking.  On Python 3.13+ ``track=False`` keeps the
    attachment invisible to the resource tracker.  Before that,
    ``SharedMemory(create=False)`` *also* registers the name (cpython
    #82300), which misfires both ways for a pool attachment: a worker
    forked before the parent's tracker started gets its own tracker that
    later warns about (and re-unlinks) a segment the creator already
    disposed, while an explicit worker-side ``unregister`` on a *shared*
    tracker steals the creator's claim instead.  The standard workaround
    is to make ``register`` a no-op for the duration of the attach — the
    attachment then exists in no tracker at all, matching ``track=False``.
    """
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track kwarg; see docstring
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *a, **kw: None
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original


def _cached_segment(name: str) -> shared_memory.SharedMemory:
    shm = _ATTACHED.get(name)
    if shm is not None:
        _ATTACHED.move_to_end(name)
        return shm
    shm = _attach_untracked(name)
    _ATTACHED[name] = shm
    while len(_ATTACHED) > _ATTACH_CACHE_CAP:
        _, old = _ATTACHED.popitem(last=False)
        try:
            old.close()
        except (OSError, BufferError):  # pragma: no cover
            pass
    return shm


def _view_from(shm: shared_memory.SharedMemory, handle: MatrixHandle) -> BitMatrix:
    words = np.ndarray(
        (handle.n_rows, handle.n_words), dtype=np.uint64,
        buffer=shm.buf, offset=handle.offset,
    )
    words.flags.writeable = False
    return BitMatrix.from_buffer(words, handle.n_rows, handle.n_cols)


def attach_bitmatrix(handle: MatrixHandle) -> BitMatrix:
    """Worker-side zero-copy view of the matrix behind ``handle``.

    The underlying segment stays attached in a per-process cache; the view
    is read-only (the reordering stages build permuted copies, they never
    write their input).
    """
    return _view_from(_cached_segment(handle.segment), handle)


def invalidate_attachment(name: str) -> None:
    """Drop one memoized attachment (the segment was or will be unlinked)."""
    shm = _ATTACHED.pop(name, None)
    if shm is not None:
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover
            pass


def detach_all() -> None:
    """Drop every cached attachment — the memo's explicit invalidation.

    Called on :meth:`repro.perf.pool.WorkerPool.restart` (parent side and,
    via the executor initializer, in each fresh worker generation, whose
    fork-inherited memo maps segments the previous generation attached)
    and by tests for hygiene.  A re-attach after this maps the segment
    anew, so restarted workers serve from live bytes, never stale private
    mappings.
    """
    while _ATTACHED:
        _, shm = _ATTACHED.popitem(last=False)
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover
            pass
