"""Cached kernel autotuner: per-workload backend selection over plans.

HC-SpMM's observation is that no single kernel wins every (matrix, feature
width) workload — the remaining 1.5–2x after reordering lives in picking
the right one.  :func:`tune` micro-benchmarks the registered backend
variants (csr / nm / vnm / bsr / hybrid / dense crossover) on the *actual*
operand: each candidate is rebuilt losslessly through
:func:`repro.pipeline.registry.degrade`, given an
:class:`~repro.perf.engine.ExecutionPlan`, warmed, and timed on a seeded
random B of the requested feature width.  The winner — deterministic
tie-break on ``(time, label)`` — becomes a :class:`TunerDecision`.

Decisions are **content-addressed**: the cache key hashes the operand's
numeric fingerprint, its shape/nnz profile, the feature width, the
candidate set and the tuner version, and the decision persists as a
``<key>.tune.json`` sidecar in the :class:`~repro.pipeline.cache.
ArtifactCache`.  Re-tuning the same workload is a cache hit that returns
the stored decision verbatim (``source="cache"``) — wall-clock noise never
flips an already-made choice.  ``repro tune`` drives this from the CLI;
:meth:`repro.pipeline.serving.ServingSession.tune` applies decisions to a
live session (and its :class:`~repro.perf.batching.MicroBatcher` consults
``max_batch_columns`` so coalescing stays inside the tuned regime).
"""

from __future__ import annotations

import hashlib
import json
import logging
import time
from dataclasses import dataclass, field

import numpy as np

from . import engine

__all__ = [
    "TunerDecision",
    "tune",
    "decision_key",
    "operand_fingerprint",
    "DEFAULT_BACKENDS",
    "DEFAULT_SEGMENT_CONFIGS",
]

logger = logging.getLogger("repro.perf.tuner")

# Candidate order is part of the cache key; keep it stable.
DEFAULT_BACKENDS = ("csr", "nm", "vnm", "bsr", "hybrid", "dense")

# SegmentConfig grid tried when include_segmented=True.  Small on purpose:
# each entry costs a full profile + stacked sub-plan build per tune().
DEFAULT_SEGMENT_CONFIGS = (
    {"min_block_rows": 1, "max_blocks": 256},
    {"min_block_rows": 8, "max_blocks": 64},
)

# Bump to invalidate persisted decisions when the engine's kernels change
# enough that old winners are stale.
_TUNER_VERSION = 1


@dataclass(frozen=True)
class TunerDecision:
    """The tuned kernel choice for one (operand, feature width) workload.

    ``timings`` holds every measured candidate as ``(label, seconds)``
    sorted fastest-first (labels are backend names, ``+fp32`` suffixed for
    the float32 path); ``failed`` lists candidates that could not be built
    for this operand.  ``max_batch_columns`` bounds how far a
    :class:`~repro.perf.batching.MicroBatcher` may coalesce past the tuned
    width before the measurement stops being representative.
    ``source`` is ``"measured"`` for a fresh run, ``"cache"`` when the
    decision was answered from a persisted sidecar.
    """

    backend: str
    dtype: str
    variant: str
    h: int
    key: str
    timings: tuple[tuple[str, float], ...] = ()
    failed: tuple[str, ...] = ()
    max_batch_columns: int = 0
    source: str = "measured"
    # SegmentConfig.to_dict() payload when the winner is a segmented plan
    # (backend == "segmented"); None otherwise.  Lets the decision be
    # replayed: serving rebuilds the same row partition from it.
    segments: dict | None = None

    @property
    def label(self) -> str:
        return self.backend + ("+fp32" if self.dtype == "float32" else "")

    def to_dict(self) -> dict:
        payload = {
            "version": _TUNER_VERSION,
            "backend": self.backend,
            "dtype": self.dtype,
            "variant": self.variant,
            "h": self.h,
            "key": self.key,
            "timings": [[label, seconds] for label, seconds in self.timings],
            "failed": list(self.failed),
            "max_batch_columns": self.max_batch_columns,
        }
        if self.segments is not None:
            payload["segments"] = dict(self.segments)
        return payload

    @classmethod
    def from_dict(cls, payload: dict, *, source: str = "cache") -> "TunerDecision":
        return cls(
            backend=payload["backend"],
            dtype=payload.get("dtype", "float64"),
            variant=payload.get("variant", "panel"),
            h=int(payload["h"]),
            key=payload["key"],
            timings=tuple((str(l), float(s)) for l, s in payload.get("timings", ())),
            failed=tuple(payload.get("failed", ())),
            max_batch_columns=int(payload.get("max_batch_columns", 0)),
            source=source,
            segments=payload.get("segments"),
        )


def _hash_arrays(digest, *arrays) -> None:
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())


def operand_fingerprint(operand) -> str:
    """Hex digest of the operand's exact numeric content and layout."""
    digest = hashlib.sha256()
    digest.update(type(operand).__name__.encode())
    digest.update(str(tuple(operand.shape)).encode())
    if isinstance(operand, np.ndarray):
        _hash_arrays(digest, operand)
    elif hasattr(operand, "main"):  # HybridVNM
        digest.update(operand_fingerprint(operand.main).encode())
        if operand.residual is not None:
            digest.update(operand_fingerprint(operand.residual).encode())
    elif hasattr(operand, "tile_ptr"):  # VNMCompressed
        digest.update(str(operand.pattern).encode())
        _hash_arrays(digest, operand.tile_ptr, operand.tile_seg,
                     operand.col_ids, operand.values, operand.meta)
    elif hasattr(operand, "meta"):  # NMCompressed
        digest.update(str(operand.pattern).encode())
        _hash_arrays(digest, operand.values, operand.meta)
    elif hasattr(operand, "indptr"):  # CSRMatrix
        _hash_arrays(digest, operand.indptr, operand.indices, operand.data)
    elif hasattr(operand, "brow_ptr"):  # BSRMatrix
        digest.update(str(operand.block).encode())
        _hash_arrays(digest, operand.brow_ptr, operand.bcol_ind, operand.blocks)
    else:
        raise TypeError(f"cannot fingerprint operand type {type(operand).__name__}")
    return digest.hexdigest()


def _nnz_profile(operand) -> dict:
    """Coarse nnz statistics — part of the key so near-identical graphs that
    compress differently do not collide on shape alone."""
    if isinstance(operand, np.ndarray):
        nnz = int(np.count_nonzero(operand))
    elif hasattr(operand, "nnz"):
        nnz = int(operand.nnz)
    elif hasattr(operand, "values"):
        nnz = int(np.count_nonzero(operand.values))
    elif hasattr(operand, "main"):
        nnz = int(np.count_nonzero(operand.main.values)) + (
            operand.residual.nnz if operand.residual is not None else 0
        )
    else:
        nnz = -1
    return {"nnz": nnz}


def decision_key(operand, h: int, backends: tuple[str, ...], *,
                 include_float32: bool = False,
                 include_segmented: bool = False) -> str:
    """Content address of the decision :func:`tune` would produce."""
    payload = {
        "fingerprint": operand_fingerprint(operand),
        "shape": list(operand.shape),
        **_nnz_profile(operand),
        "h": int(h),
        "backends": list(backends),
        "include_float32": bool(include_float32),
        "tuner_version": _TUNER_VERSION,
    }
    # Added to the payload only when enabled so keys persisted before
    # segmented tuning existed remain valid addresses.
    if include_segmented:
        payload["include_segmented"] = True
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:32]


def _counters():
    from ..obs import metrics as obs_metrics

    reg = obs_metrics.default_registry()
    return (
        reg.counter("tuner_decisions_total", help="fresh autotuner decisions measured"),
        reg.counter("tuner_cache_hits_total", help="autotuner decisions answered from cache"),
    )


@dataclass
class _Candidate:
    label: str
    operand: object
    plan: engine.ExecutionPlan
    dtype: str = "float64"
    seconds: float = field(default=float("inf"))
    segments: dict | None = None


def _build_candidates(operand, backends, *, include_float32: bool,
                      include_segmented: bool = False) -> tuple[list, list]:
    from ..pipeline import registry

    current = registry.backend_for(operand).name
    candidates: list[_Candidate] = []
    failed: list[str] = []
    for name in backends:
        try:
            op = operand if name == current else registry.degrade(operand, name)
            plan = engine.plan_for(op) if op is operand else engine.build_plan(op)
        except Exception as exc:  # noqa: BLE001 - a candidate that cannot build is skipped
            logger.debug("tuner: candidate %r unavailable: %s", name, exc)
            failed.append(name)
            continue
        candidates.append(_Candidate(name, op, plan))
        if include_float32 and engine.fp32_within_bound(op, plan):
            candidates.append(_Candidate(f"{name}+fp32", op, plan, dtype="float32"))
    if include_segmented:
        from .segment import SegmentConfig, build_segmented_plan

        for cfg_dict in DEFAULT_SEGMENT_CONFIGS:
            cfg = SegmentConfig.from_dict(cfg_dict)
            label = f"segmented:min{cfg.min_block_rows}"
            try:
                # cache=False: throwaway candidates must not shadow the
                # operand's served plan in the engine cache.
                plan = build_segmented_plan(operand, config=cfg, cache=False)
            except Exception as exc:  # noqa: BLE001
                logger.debug("tuner: candidate %r unavailable: %s", label, exc)
                failed.append(label)
                continue
            candidates.append(_Candidate(label, operand, plan, segments=cfg.to_dict()))
    return candidates, failed


def tune(
    operand,
    h: int = 64,
    *,
    cache=None,
    backends: tuple[str, ...] | None = None,
    repeats: int = 3,
    seed: int = 0,
    include_float32: bool = False,
    include_segmented: bool = False,
) -> TunerDecision:
    """Pick the fastest (backend, dtype) for serving ``operand`` at width ``h``.

    With a ``cache`` (an :class:`~repro.pipeline.cache.ArtifactCache`) the
    persisted decision is consulted first and the fresh decision is stored
    after measuring, so the same workload tunes once per cache directory.
    """
    backends = tuple(backends) if backends else DEFAULT_BACKENDS
    fresh_counter, hit_counter = _counters()
    key = decision_key(operand, h, backends, include_float32=include_float32,
                       include_segmented=include_segmented)
    if cache is not None:
        stored = cache.load_decision(key)
        if stored is not None:
            hit_counter.inc()
            return TunerDecision.from_dict(stored, source="cache")

    candidates, failed = _build_candidates(
        operand, backends,
        include_float32=include_float32, include_segmented=include_segmented,
    )
    if not candidates:
        raise ValueError(
            f"no tuner candidate could be built for operand type "
            f"{type(operand).__name__} (tried {', '.join(backends)})"
        )
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((operand.shape[1], int(h)))
    for cand in candidates:
        dtype = np.float32 if cand.dtype == "float32" else None
        cand.plan.execute(cand.operand, b, dtype=dtype)  # warm scratch
        best = float("inf")
        for _ in range(max(int(repeats), 1)):
            t0 = time.perf_counter()
            cand.plan.execute(cand.operand, b, dtype=dtype)
            best = min(best, time.perf_counter() - t0)
        cand.seconds = best

    # Deterministic winner: fastest, then lexicographic label on exact ties.
    ranked = sorted(candidates, key=lambda cand: (cand.seconds, cand.label))
    winner = ranked[0]
    backend = winner.label.removesuffix("+fp32")
    if winner.segments is not None:
        backend = "segmented"  # label carries the config ("segmented:minN")
    decision = TunerDecision(
        backend=backend,
        dtype=winner.dtype,
        variant=winner.plan.variant,
        h=int(h),
        key=key,
        timings=tuple((cand.label, cand.seconds) for cand in ranked),
        failed=tuple(failed),
        # Coalesced batches beyond ~8x the tuned width leave the measured
        # shape regime; MicroBatcher caps its column budget here.
        max_batch_columns=int(h) * 8,
        source="measured",
        segments=winner.segments,
    )
    fresh_counter.inc()
    if cache is not None:
        cache.store_decision(key, decision.to_dict())
    logger.info(
        "tuner: %s wins at h=%d (%.3es); candidates: %s",
        decision.label, decision.h, winner.seconds,
        ", ".join(f"{label}={seconds:.2e}s" for label, seconds in decision.timings),
    )
    return decision
