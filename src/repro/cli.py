"""Command-line interface.

Usage::

    python -m repro reorder  INPUT.mtx [--pattern V:N:M] [--output OUT.mtx]
    python -m repro survey   INPUT.mtx [--h 128]
    python -m repro collection CLASS [--count N] [--seed S]
    python -m repro preprocess INPUT.mtx [...] --cache-dir DIR [--workers N]
                          [--pool] [--profile] [--segmented]
    python -m repro serve INPUT.mtx --cache-dir DIR [--h 64] [--requests N]
                          [--micro-batch] [--max-retries N] [--deadline SECONDS]
                          [--breakers] [--breaker-threshold N] [--breaker-cooldown S]
                          [--max-queue-depth N] [--shed-deadline SECONDS]
                          [--metrics-file M.json] [--trace-file T.json] [--segmented]
                          [--telemetry-port P] [--slo SPEC] [--hold SECONDS]
    python -m repro top [--url http://127.0.0.1:9464] [--interval S] [--frames N]
    python -m repro tune INPUT.mtx --cache-dir DIR [--h 64] [--repeats N]
                          [--float32] [--segmented]
    python -m repro stats [--metrics-file M.json] [--cache-dir DIR]
                          [--trace-file T.json [--chrome-out C.json]]
    python -m repro doctor --cache-dir DIR [--selftest] [--shm-sweep]

``reorder`` writes the reordered (still symmetric) matrix and prints the
conformity report; ``survey`` runs the best-pattern search and the modelled
SpMM comparison for one matrix; ``collection`` prints Table-1-style stats of
the synthetic SuiteSparse stand-in; ``preprocess`` runs the offline
pipeline (autoselect → reorder → compress) into a content-addressed
artifact cache, fanning batches out over ``--workers`` processes
(``--pool`` keeps a warm shared-memory worker pool, ``--profile`` prints
the run's span tree); ``serve`` answers SpMM requests from those artefacts
(retrying/degrading per ``--max-retries`` / ``--deadline``,
``--micro-batch`` coalescing requests through the bounded queue,
``--breakers`` guarding every kernel call with per-backend circuit
breakers, ``--max-queue-depth`` / ``--shed-deadline`` shedding overload at
admission — see ``docs/resilience.md``, ``--telemetry-port`` starting the
live telemetry plane — ``/metrics``, ``/healthz``, ``/readyz``,
``/debug/requests`` plus the request flight recorder, with ``--slo``
declaring burn-rate objectives and ``--hold`` keeping the server
scrapeable after the demo requests — see ``docs/telemetry.md``) and
verifies the output against the dense reference,
optionally exporting metrics/trace files; ``top`` polls a telemetry
server's ``/metrics`` and renders a live qps / windowed-p95 / row-share /
breaker / SLO-burn frame per interval; ``tune`` micro-benchmarks every
backend kernel on the preprocessed operand and persists the winning
(backend, dtype) decision in the cache — rerunning the same workload is a
cache hit; ``--segmented`` (preprocess / serve / tune) compiles
row-segmented execution plans — conforming row blocks on the SPTC path,
the violating tail on a fallback sub-plan — and for ``tune`` adds those
plans as candidates; ``stats`` pretty-prints a metrics
export and/or cache-directory statistics (including persisted tuner
decisions and segmented plan sidecars), and with ``--trace-file`` renders
a span-tree export (``--chrome-out`` converts it to Chrome trace-event
JSON for chrome://tracing or Perfetto); ``doctor`` fsck-checks a cache
directory, quarantining corrupt artefacts and cleaning half-written temp
files, with ``--selftest`` runs a tiny operand through every
compressible backend under a scoped breaker board, and with
``--shm-sweep`` reclaims shared-memory segments orphaned by killed
workers (``serve --shards N --executor process`` runs each shard replica
as a forked worker over a zero-copy shm ring — see ``docs/sharding.md``).

Output goes through the ``repro`` logger hierarchy (see
:func:`repro.obs.logging_setup`); ``-v/--verbose`` raises it to DEBUG and
``-q/--quiet`` lowers it to WARNING.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from pathlib import Path

import numpy as np

from .bench import render_table
from .core import VNMPattern, find_best_pattern, reorder
from .graphs import collection_stats, graph_from_mtx, graph_to_mtx, suitesparse_like_collection
from .obs import MetricsRegistry, logging_setup, use_tracer
from .sptc import CSRMatrix, CostModel, HybridVNM, SpmmWorkload

__all__ = ["main", "parse_pattern"]

logger = logging.getLogger("repro.cli")


def parse_pattern(text: str) -> VNMPattern:
    """Parse ``"V:N:M"`` or ``"N:M"`` (V defaults to 1)."""
    parts = text.split(":")
    try:
        nums = [int(p) for p in parts]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad pattern {text!r}") from exc
    if len(nums) == 2:
        return VNMPattern(1, nums[0], nums[1])
    if len(nums) == 3:
        return VNMPattern(nums[0], nums[1], nums[2])
    raise argparse.ArgumentTypeError(f"bad pattern {text!r}; expected N:M or V:N:M")


def _cmd_reorder(args) -> int:
    graph = graph_from_mtx(args.input)
    res = reorder(graph.bitmatrix(), args.pattern, max_iter=args.max_iter,
                  time_budget=args.time_budget)
    for key, value in res.summary().items():
        logger.info(f"{key}: {value}")
    if args.output:
        reordered = graph.relabel(res.permutation)
        graph_to_mtx(reordered, args.output)
        logger.info(f"wrote {args.output}")
    return 0 if res.conforms else 1


def _cmd_survey(args) -> int:
    graph = graph_from_mtx(args.input)
    bm = graph.bitmatrix()
    logger.info(
        f"{args.input}: {graph.n} vertices, nnz {bm.nnz()}, density {bm.density():.4%}"
    )
    best = find_best_pattern(bm, max_iter=args.max_iter)
    if not best.succeeded:
        logger.info("no conforming V:N:M pattern found")
        return 1
    logger.info(f"best pattern: {best.pattern}")
    for pat, ok in best.attempts:
        logger.info(f"  tried {pat}: {'conforms' if ok else 'fails'}")
    cm = CostModel()
    csr = CSRMatrix.from_scipy(best.result.matrix.to_scipy())
    hy = HybridVNM.compress_csr(csr, best.pattern)
    t_csr = cm.time_csr_spmm(SpmmWorkload.from_csr(csr, args.h))
    t_sptc = hy.model_time(cm, args.h)
    logger.info(f"modelled SpMM (H={args.h}): CSR {t_csr * 1e6:.1f}us, "
                f"SPTC {t_sptc * 1e6:.1f}us, speedup {t_csr / t_sptc:.2f}x")
    return 0


def _cmd_collection(args) -> int:
    graphs = suitesparse_like_collection(args.cls, args.count, seed=args.seed)
    stats = collection_stats(graphs, with_diameter=args.diameter)
    rows = []
    for key, agg in stats.items():
        if key == "n_graphs":
            continue
        rows.append([key, agg["avg"], agg["med"]])
    logger.info(render_table(f"{args.cls} class ({stats['n_graphs']} graphs)",
                             ["stat", "avg", "med"], rows))
    return 0


def _build_plan(args):
    from .pipeline import PreprocessPlan

    return PreprocessPlan(
        pattern=args.pattern,
        backend=args.backend,
        max_iter=args.max_iter,
        time_budget=args.time_budget,
        segmented=getattr(args, "segmented", False),
    )


def _cmd_preprocess(args) -> int:
    from .pipeline import ArtifactCache, preprocess_many

    graphs = [graph_from_mtx(path) for path in args.inputs]
    cache = ArtifactCache(args.cache_dir)
    pool = None
    if args.pool:
        from .perf import WorkerPool

        pool = WorkerPool(args.workers)
        pool.warm()
        logger.info(f"warmed persistent pool: {pool.n_workers} worker(s)")
    try:
        if args.profile:
            with use_tracer() as tracer:
                results = preprocess_many(
                    graphs, _build_plan(args), n_workers=args.workers,
                    pool=pool, cache=cache,
                )
        else:
            tracer = None
            results = preprocess_many(
                graphs, _build_plan(args), n_workers=args.workers,
                pool=pool, cache=cache,
            )
    finally:
        if pool is not None:
            pool.close()
    for path, res in zip(args.inputs, results):
        status = "cache hit" if res.cached else "preprocessed"
        logger.info(f"{path}: {status} — pattern {res.pattern}, backend {res.backend}, "
                    f"key {res.cache_key}")
        if not res.cached and res.summary:
            logger.info(f"  reorder: {res.summary.get('iterations')} iterations, "
                        f"improvement {res.summary.get('improvement_rate', 0.0):.2%}, "
                        f"conforms {res.summary.get('conforms')}")
    logger.info(f"cache {cache.cache_dir}: {len(cache)} artefact(s), "
                f"{cache.stats.hits} hit(s), {cache.stats.misses} miss(es)")
    if tracer is not None:
        logger.info("profile (wall time per span):")
        logger.info(tracer.render())
    return 0


def _cmd_shard(args) -> int:
    """Offline shard build: preprocess once, cache one artefact per shard."""
    from .pipeline import ArtifactCache, preprocess
    from .pipeline.sharded import shard_result

    graph = graph_from_mtx(args.input)
    cache = ArtifactCache(args.cache_dir)
    result = preprocess(graph, _build_plan(args), cache=cache)
    logger.info(
        f"{args.input}: {'loaded cached artefact' if result.cached else 'preprocessed'} "
        f"(pattern {result.pattern}, backend {result.backend}, key {result.cache_key})"
    )
    shards = shard_result(result, n_shards=args.shards, cache=cache)
    for entry in shards.summary()["shards"]:
        status = "cache hit" if entry["cached"] else "compressed"
        logger.info(f"shard {entry['index']}: rows {entry['rows'][0]}-"
                    f"{entry['rows'][1]} ({entry['size']}), {status}, "
                    f"key {entry['cache_key']}")
    logger.info(f"{shards.n_shards} shard(s), tile align {shards.align}, "
                f"cache {cache.cache_dir}: {len(cache)} artefact(s)")
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(shards.summary(), indent=2) + "\n")
        logger.info(f"wrote shard layout to {args.json_out}")
    return 0


def _cmd_serve(args) -> int:
    from .pipeline import ArtifactCache, RetryPolicy, ServingSession, preprocess
    from .pipeline.guard import (
        AdmissionPolicy,
        BreakerConfig,
        active_breakers,
        enable_breakers,
    )

    # The telemetry plane needs a live registry even without --metrics-file.
    metrics = (MetricsRegistry()
               if args.metrics_file or args.telemetry_port is not None
               else None)

    telemetry = None
    recorder = None
    latency_window = None
    windows = None
    holder: dict = {}  # the session/router, once built, for /healthz
    if args.telemetry_port is not None:
        from .obs import (
            SLO,
            FlightRecorder,
            MetricWindows,
            SLOEvaluator,
            TelemetryServer,
            session_health,
            set_recorder,
        )

        try:
            slos = [SLO.parse(spec) for spec in (args.slo or [])]
        except ValueError as exc:
            logger.error(f"bad --slo spec: {exc}")
            return 2
        windows = MetricWindows(metrics)
        recorder = FlightRecorder()
        evaluator = SLOEvaluator(slos, windows) if slos else None
        # Load shedding consults the rolling p95, not the lifetime one.
        latency_window = windows.histogram_view("spmm_latency_seconds", 60.0)
        telemetry = TelemetryServer(
            metrics, port=args.telemetry_port, windows=windows,
            evaluator=evaluator, recorder=recorder,
            health=lambda: session_health(holder.get("session"),
                                          router=holder.get("router")),
        ).start()
        set_recorder(recorder)  # crash_dump / SIGUSR1 find it
        logger.info(f"telemetry: {telemetry.url}/metrics  /healthz  /readyz  "
                    f"/debug/requests  (try `repro top --url {telemetry.url}`)")

    if args.breakers:
        # The board shares the serve run's registry so breaker gauges and
        # transition counters land in --metrics-file alongside latency.
        enable_breakers(
            BreakerConfig.from_env(args.breaker_threshold, args.breaker_cooldown),
            metrics=metrics,
        )
    admission = None
    if args.max_queue_depth is not None or args.shed_deadline is not None:
        admission = AdmissionPolicy.from_env(args.max_queue_depth, args.shed_deadline)

    graph = graph_from_mtx(args.input)
    cache = ArtifactCache(args.cache_dir, metrics=metrics)

    def run() -> tuple[ServingSession, bool]:
        result = preprocess(graph, _build_plan(args), cache=cache)
        logger.info(
            f"{args.input}: {'loaded cached artefact' if result.cached else 'preprocessed'} "
            f"(pattern {result.pattern}, backend {result.backend})"
        )
        policy = RetryPolicy(max_attempts=args.max_retries + 1, deadline=args.deadline)
        session = None
        if args.shards > 1:
            from .pipeline.sharded import ShardRouter, shard_result

            shards = shard_result(result, n_shards=args.shards, cache=cache)
            cached = sum(1 for s in shards.specs if s.cached)
            logger.info(
                f"sharded: {shards.n_shards} shard(s) x {args.replicas} "
                f"replica(s), align {shards.align}, "
                f"rows {[s.size for s in shards.specs]}, "
                f"{cached} shard artefact(s) cache-hit"
            )
            server = ShardRouter(
                shards, metrics=metrics, windows=windows,
                replicas=args.replicas, retry_policy=policy,
                admission=admission, deadline=args.deadline,
                recorder=recorder, executor=args.executor, cache=cache,
            )
            holder["router"] = server
        else:
            session = ServingSession.from_result(
                result, retry_policy=policy, metrics=metrics, admission=admission,
                recorder=recorder, latency_window=latency_window,
            )
            holder["session"] = session
            server = session
        if telemetry is not None:
            telemetry.set_ready()  # /readyz flips once the session can serve

        # Integer-valued features keep every partial sum exact, so the served
        # output must match the dense reference bitwise, not just approximately.
        rng = np.random.default_rng(args.seed)
        reference_op = graph.dense_adjacency()
        ok = True
        batches = [
            rng.integers(0, 1 << 10, size=(graph.n, args.h)).astype(np.float64)
            for _ in range(args.requests)
        ]
        if args.micro_batch or args.shards > 1:
            # Coalesced/pipelined path: enqueue everything, then verify
            # each per-request output against the dense reference.  The
            # router's submit path is its throughput mode — consecutive
            # requests overlap across shard lanes.
            futures = [server.submit(features) for features in batches]
            if session is not None:
                session.flush()
            outputs = [fut.result() for fut in futures]
            if session is not None:
                session.close()
        else:
            outputs = [server.spmm(features) for features in batches]
        for i, (features, out) in enumerate(zip(batches, outputs)):
            reference = reference_op @ features
            bitwise = bool(np.array_equal(out, reference))
            ok &= bitwise
            logger.info(f"request {i}: output {out.shape}, "
                        f"bitwise-equal to dense reference: {bitwise}")
        if args.micro_batch and session is not None and session.batcher is None:
            logger.info(f"served {args.requests} request(s) micro-batched")
        return session, ok

    try:
        if args.trace_file:
            with use_tracer() as tracer:
                session, ok = run()
        else:
            tracer = None
            session, ok = run()

        if telemetry is not None and args.hold:
            logger.info(f"holding for {args.hold:g}s for scrapes "
                        f"(`repro top --url {telemetry.url}`; ctrl-c to stop)")
            try:
                time.sleep(args.hold)
            except KeyboardInterrupt:
                logger.info("hold interrupted; shutting down")
    finally:
        if telemetry is not None:
            from .obs import set_recorder

            telemetry.set_ready(False)
            telemetry.stop()
            set_recorder(None)

    router = holder.get("router")
    if router is not None:
        health = router.health()
        for entry in router.shard_load():
            logger.info(
                f"shard {entry['shard']}: rows {entry['rows'][0]}-{entry['rows'][1]}, "
                f"{entry['alive']}/{entry['replicas']} replica(s) alive, "
                f"{entry['served']} served, {entry['failures']} failure(s)"
            )
        logger.info(f"router: {router.n_requests} request(s) merged, "
                    f"{router.n_failovers} failover(s), {router.n_shed} shed; "
                    f"healthy={health['healthy']} degraded={health['degraded']}")
        router.close()
    else:
        cm = session.cost_model
        t_csr = cm.time_csr_spmm(SpmmWorkload.from_csr(graph.csr(), args.h))
        t_req = session.model_request_seconds(args.h)
        logger.info(f"modelled per-request time {t_req * 1e6:.1f}us "
                    f"({t_csr / t_req:.2f}x vs CSR baseline); "
                    f"served {session.n_requests} request(s)")
        segments = session.segment_summary()
        if segments is not None:
            coverage = ", ".join(
                f"{name} {info['rows']} row(s) ({info['fraction']:.0%})"
                for name, info in sorted(segments["row_coverage"].items())
            )
            logger.info(f"segmented plan: {segments['n_segments']} row block(s) "
                        f"in {segments.get('n_groups', '?')} kernel group(s); {coverage}")
        stats = session.resilience
        if stats.retries or stats.downgrades or cache.stats.quarantined:
            logger.info(f"resilience: {stats.retries} retr(ies), "
                        f"{cache.stats.quarantined} quarantined artefact(s)")
            for event in stats.downgrades:
                logger.info(f"  downgraded {event.from_backend} -> {event.to_backend}: "
                            f"{event.reason}")
    board = active_breakers()
    if board is not None:
        snapshot = board.snapshot()
        states = ", ".join(
            f"{name}={info['state']}" for name, info in snapshot.items()
        ) or "no backends guarded yet"
        logger.info(f"breakers: {states}")

    if metrics is not None and args.metrics_file:
        path = Path(args.metrics_file)
        if path.suffix == ".prom":
            path.write_text(metrics.to_prometheus())
        else:
            path.write_text(metrics.to_json(indent=2) + "\n")
        logger.info(f"wrote metrics to {path}")
    if tracer is not None:
        path = Path(args.trace_file)
        path.write_text(json.dumps(tracer.to_dicts(), indent=2) + "\n")
        logger.info(f"wrote trace to {path}")
    return 0 if ok else 1


_BREAKER_STATE_NAMES = {0.0: "closed", 1.0: "half_open", 2.0: "open"}


def _scrape_json(url: str, timeout: float = 5.0):
    """GET a JSON endpoint, returning the payload even on a 503 verdict."""
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return json.load(resp)
    except urllib.error.HTTPError as exc:  # /healthz 503 still carries JSON
        try:
            return json.loads(exc.read().decode() or "{}")
        except (ValueError, OSError):
            return None
    except (OSError, ValueError):
        return None


def _top_frame(samples: dict, health: dict | None) -> str:
    """Render one `repro top` frame from parsed /metrics samples."""

    def first(name: str, **match):
        for labels, value in samples.get(name, []):
            if all(labels.get(k) == v for k, v in match.items()):
                return value
        return None

    lines = []
    qps = first("serve_requests_rate", window="60s")
    p95 = first("spmm_latency_seconds_p95", window="60s")
    depth = first("serve_queue_depth")
    head = [f"qps(60s) {qps:8.1f}" if qps is not None else "qps(60s)      n/a"]
    head.append(f"p95(60s) {_fmt_seconds(p95)}" if p95 is not None
                else "p95(60s) n/a")
    if depth is not None:
        head.append(f"queue {int(depth)}")
    if health is not None:
        if not health.get("healthy"):
            detail = ", ".join(health.get("open_breakers", []))
            if health.get("pool_crash_looping"):
                detail += " pool-crash-loop"
            if health.get("unhealthy_shards"):
                detail += (" shards " + ",".join(
                    str(s) for s in health["unhealthy_shards"]))
            head.append(f"UNHEALTHY ({detail.strip()})")
        elif health.get("degraded"):
            head.append("DEGRADED (shards " + ",".join(
                str(s) for s in health.get("unhealthy_shards", [])) + ")")
        else:
            head.append("healthy")
    lines.append("  ".join(head))

    rows = samples.get("serve_path_rows_total", [])
    total_rows = sum(v for _, v in rows)
    if total_rows > 0:
        share = "  ".join(
            f"{labels.get('backend', '?')} {value / total_rows:6.1%}"
            for labels, value in sorted(rows,
                                        key=lambda s: -s[1])
        )
        lines.append(f"rows by path: {share}")

    # Sharded serving: one row per shard, keyed off the shard="<i>" label
    # the router's per-shard sessions put on their series.
    shard_rows: dict[str, dict] = {}

    def shard_col(name: str, field: str, **match):
        for labels, value in samples.get(name, []):
            shard = labels.get("shard")
            if shard is None:
                continue
            if all(labels.get(k) == v for k, v in match.items()):
                row = shard_rows.setdefault(shard, {})
                row[field] = row.get(field, 0.0) + value

    shard_col("serve_requests_total", "req")
    shard_col("spmm_latency_seconds_p95", "p95", window="60s")
    shard_col("router_in_flight", "in_flight")
    shard_col("router_replicas", "replicas")
    shard_col("router_failovers_total", "failovers")
    if shard_rows:
        lines.append("shard   req     p95(60s)  inflight  repl  failover")
        for shard in sorted(shard_rows, key=lambda s: (len(s), s)):
            row = shard_rows[shard]
            p95s = (_fmt_seconds(row["p95"]) if "p95" in row else "     n/a")
            lines.append(
                f"{shard:>5}  {int(row.get('req', 0)):6d}  {p95s:>9}  "
                f"{int(row.get('in_flight', 0)):8d}  "
                f"{int(row.get('replicas', 0)):4d}  "
                f"{int(row.get('failovers', 0)):8d}")

    breakers = samples.get("breaker_state", [])
    if breakers:
        states = "  ".join(
            f"{labels.get('backend', '?')}="
            f"{_BREAKER_STATE_NAMES.get(value, value)}"
            for labels, value in sorted(breakers, key=lambda s: str(s[0]))
        )
        lines.append(f"breakers: {states}")

    burns = samples.get("slo_burn_rate", [])
    if burns:
        by_slo: dict[str, dict] = {}
        for labels, value in burns:
            by_slo.setdefault(labels.get("slo", "?"), {})[
                labels.get("window", "?")] = value
        text = "  ".join(
            f"{slo} fast={windows.get('fast', 0.0):.2f} "
            f"slow={windows.get('slow', 0.0):.2f}"
            for slo, windows in sorted(by_slo.items())
        )
        lines.append(f"slo burn: {text}")
    return "\n".join(lines)


def _cmd_top(args) -> int:
    import urllib.request

    from .obs import parse_prometheus

    url = args.url.rstrip("/")
    frame = 0
    while args.frames is None or frame < args.frames:
        if frame:
            time.sleep(args.interval)
        frame += 1
        try:
            with urllib.request.urlopen(f"{url}/metrics", timeout=5) as resp:
                body = resp.read().decode()
        except (OSError, ValueError) as exc:
            logger.error(f"scrape of {url}/metrics failed: {exc}")
            return 1
        _, samples = parse_prometheus(body)
        health = _scrape_json(f"{url}/healthz")
        # A live screen, not a log line: top owns the terminal like its
        # namesake (the only CLI path that prints to stdout directly).
        if not args.no_clear and sys.stdout.isatty():
            print("\x1b[2J\x1b[H", end="")
        print(f"repro top — {url}  (frame {frame})")
        print(_top_frame(samples, health))
        sys.stdout.flush()
    return 0


def _cmd_tune(args) -> int:
    from .perf import tuner
    from .pipeline import ArtifactCache, preprocess

    graph = graph_from_mtx(args.input)
    cache = ArtifactCache(args.cache_dir)
    result = preprocess(graph, _build_plan(args), cache=cache)
    logger.info(
        f"{args.input}: {'loaded cached artefact' if result.cached else 'preprocessed'} "
        f"(pattern {result.pattern}, backend {result.backend})"
    )
    decision = tuner.tune(
        result.operand, args.h, cache=cache,
        repeats=args.repeats, include_float32=args.float32,
        include_segmented=args.segmented,
    )
    origin = "cache hit" if decision.source == "cache" else "measured fresh"
    logger.info(f"decision ({origin}): backend {decision.backend}, "
                f"dtype {decision.dtype}, variant {decision.variant}, h={decision.h}")
    if decision.segments:
        seg_text = ", ".join(f"{k}={v}" for k, v in sorted(decision.segments.items()))
        logger.info(f"  segmented plan config: {seg_text}")
    for label, seconds in decision.timings:
        logger.info(f"  {label:<12} {_fmt_seconds(seconds)}")
    for name in decision.failed:
        logger.info(f"  {name:<12} (unavailable for this operand)")
    logger.info(f"persisted as {decision.key}.tune.json in {cache.cache_dir}; "
                f"rerunning this tune is a cache hit")
    return 0


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.1f}us"


def _cmd_stats(args) -> int:
    if not args.metrics_file and not args.cache_dir and not args.trace_file:
        logger.warning("stats: pass --metrics-file, --cache-dir and/or --trace-file")
        return 2
    if args.chrome_out and not args.trace_file:
        logger.warning("stats: --chrome-out needs --trace-file")
        return 2
    if args.trace_file:
        from .obs import SpanRecord, render_tree, to_chrome_trace

        payload = json.loads(Path(args.trace_file).read_text())
        roots = [SpanRecord.from_dict(d)
                 for d in (payload if isinstance(payload, list) else [payload])]
        if args.chrome_out:
            chrome = to_chrome_trace(roots)
            Path(args.chrome_out).write_text(json.dumps(chrome) + "\n")
            logger.info(
                f"wrote {len(chrome['traceEvents'])} trace event(s) to "
                f"{args.chrome_out} (open in chrome://tracing or Perfetto)")
        else:
            logger.info(f"trace from {args.trace_file}:")
            logger.info(render_tree(roots))
    if args.metrics_file:
        snapshot = json.loads(Path(args.metrics_file).read_text())
        logger.info(f"metrics from {args.metrics_file}:")
        for name in sorted(snapshot):
            for series in snapshot[name]:
                labels = series.get("labels") or {}
                label_text = (
                    "{" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                    if labels else ""
                )
                if series.get("type") == "histogram":
                    logger.info(
                        f"  {name}{label_text} (histogram): count={series['count']} "
                        f"avg={_fmt_seconds(series['avg'])} "
                        f"p50={_fmt_seconds(series['p50'])} "
                        f"p95={_fmt_seconds(series['p95'])} "
                        f"p99={_fmt_seconds(series['p99'])}"
                    )
                else:
                    logger.info(
                        f"  {name}{label_text} ({series.get('type')}): "
                        f"{series.get('value')}"
                    )
    if args.cache_dir:
        from .pipeline import ArtifactCache

        cache = ArtifactCache(args.cache_dir)
        artefacts = sorted(cache.cache_dir.glob("*.npz"))
        total_bytes = sum(p.stat().st_size for p in artefacts)
        logger.info(f"cache {cache.cache_dir}: {len(artefacts)} artefact(s), "
                    f"{total_bytes} bytes, {len(cache.quarantined())} quarantined")
        for p in artefacts:
            logger.info(f"  {p.stem}  {p.stat().st_size} bytes")
        decisions = cache.decisions()
        if decisions:
            logger.info(f"tuner decisions: {len(decisions)}")
            for key, payload in decisions:
                logger.info(
                    f"  {key}: backend {payload.get('backend')}, "
                    f"dtype {payload.get('dtype')}, h={payload.get('h')}"
                )
        plans = sorted(cache.cache_dir.glob("*.plan.pkl"))
        segmented_lines = []
        for path in plans:
            key = path.name.removesuffix(".plan.pkl")
            plan = cache.load_plan(key)
            if plan is None or getattr(plan, "backend", None) != "segmented":
                continue
            summary = plan.summary()
            coverage = ", ".join(
                f"{name} {info['fraction']:.0%}"
                for name, info in sorted(summary["row_coverage"].items())
            )
            segmented_lines.append(
                f"  {key}: {summary['n_segments']} row block(s), {coverage}"
            )
        if plans:
            logger.info(f"plan sidecars: {len(plans)} "
                        f"({len(segmented_lines)} segmented)")
            for line in segmented_lines:
                logger.info(line)
    return 0


def _backend_selftest() -> int:
    """Run a tiny operand through every compressible backend.

    Each backend compresses a small reference matrix and serves one SpMM
    through :func:`run_kernel` under a scoped breaker board, so the report
    shows both kernel correctness and the breaker state each backend ends
    in.  Returns the number of *failing* backends (``unavailable`` — the
    operand cannot be built, e.g. a non-conforming matrix for ``vnm`` — is
    not a failure).
    """
    from .pipeline import registry
    from .pipeline.guard import breaker_scope

    rng = np.random.default_rng(0)
    dense = (rng.random((16, 16)) < 0.4).astype(np.float64)
    csr = CSRMatrix.from_dense(dense)
    x = rng.integers(0, 8, size=(16, 4)).astype(np.float64)
    reference = dense @ x
    pattern = VNMPattern(1, 2, 4)
    failures = 0
    logger.info("backend self-test (16x16 reference operand):")
    with breaker_scope() as board:
        for name in registry.available_backends():
            backend = registry.get_backend(name)
            if backend.compress is None or name == "serving":
                continue
            try:
                operand = registry.compress(csr, name, pattern)
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                logger.info(f"  {name:<8} unavailable ({type(exc).__name__}: {exc})")
                continue
            try:
                out = registry.run_kernel(backend, operand, x)
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                failures += 1
                logger.warning(f"  {name:<8} FAIL ({type(exc).__name__}: {exc})")
                continue
            bitwise = bool(np.array_equal(out, reference))
            if not bitwise:
                failures += 1
            logger.info(
                f"  {name:<8} {'ok' if bitwise else 'FAIL (result mismatch)'} "
                f"(breaker {board.state(name)})"
            )
    return failures


def _cmd_doctor(args) -> int:
    from .pipeline import ArtifactCache

    cache = ArtifactCache(args.cache_dir)
    report = cache.fsck()
    logger.info(f"cache {cache.cache_dir}: checked {report['checked']} artefact(s)")
    for name in report["tmp_removed"]:
        logger.info(f"  removed half-written temp file {name}")
    for key in report["ok"]:
        logger.info(f"  ok       {key}")
    for key in report["corrupt"]:
        logger.info(f"  corrupt  {key} -> quarantined in {cache.quarantine_dir}")
    if report["corrupt"]:
        logger.info(f"{len(report['corrupt'])} corrupt artefact(s) quarantined; "
                    f"rerun `repro preprocess` to rebuild them")
    if args.shm_sweep:
        from .perf.shm import sweep_leaked_segments

        reclaimed = sweep_leaked_segments(max_age_seconds=args.shm_age)
        if reclaimed:
            logger.info(f"reclaimed {len(reclaimed)} leaked shared-memory "
                        f"segment(s) older than {args.shm_age:.0f}s:")
            for name in reclaimed:
                logger.info(f"  unlinked {name}")
        else:
            logger.info(f"no leaked shared-memory segments older than "
                        f"{args.shm_age:.0f}s")
    failures = _backend_selftest() if args.selftest else 0
    if failures:
        logger.warning(f"{failures} backend(s) failed the self-test")
    return 1 if report["corrupt"] or failures else 0


_EPILOGUE = """\
live telemetry:
  `repro serve --telemetry-port 9464 --hold 60` starts an HTTP server with
  /metrics (Prometheus text + rolling-window gauges), /healthz (503 while a
  breaker is open or the pool crash-loops), /readyz and /debug/requests
  (the flight recorder ring).  `repro top --url http://127.0.0.1:9464`
  renders a live frame per --interval: qps and windowed p95, per-path row
  share, breaker states, queue depth and SLO burn rates.  See
  docs/telemetry.md.
"""


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description=__doc__, epilog=_EPILOGUE,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    p.add_argument("-v", "--verbose", action="count", default=0,
                   help="more output (DEBUG); repeatable")
    p.add_argument("-q", "--quiet", action="count", default=0,
                   help="less output (WARNING only)")
    sub = p.add_subparsers(dest="command", required=True)

    r = sub.add_parser("reorder", help="reorder a MatrixMarket adjacency matrix")
    r.add_argument("input")
    r.add_argument("--pattern", type=parse_pattern, default=VNMPattern(1, 2, 4))
    r.add_argument("--output", default=None)
    r.add_argument("--max-iter", type=int, default=10)
    r.add_argument("--time-budget", type=float, default=None)
    r.set_defaults(fn=_cmd_reorder)

    s = sub.add_parser("survey", help="best-pattern search + modelled speedup")
    s.add_argument("input")
    s.add_argument("--h", type=int, default=128)
    s.add_argument("--max-iter", type=int, default=6)
    s.set_defaults(fn=_cmd_survey)

    c = sub.add_parser("collection", help="synthetic SuiteSparse class stats")
    c.add_argument("cls", choices=["small", "medium", "large"])
    c.add_argument("--count", type=int, default=None)
    c.add_argument("--seed", type=int, default=0)
    c.add_argument("--diameter", action="store_true")
    c.set_defaults(fn=_cmd_collection)

    def add_plan_args(sp, *, default_backend="hybrid"):
        sp.add_argument("--pattern", type=parse_pattern, default=None,
                        help="target V:N:M pattern (default: autoselect)")
        sp.add_argument("--backend", default=default_backend,
                        choices=["hybrid", "vnm", "nm", "csr", "bsr", "sell", "tcgnn", "dense"])
        sp.add_argument("--cache-dir", default=".repro-cache")
        sp.add_argument("--max-iter", type=int, default=10)
        sp.add_argument("--time-budget", type=float, default=None)
        sp.add_argument("--segmented", action="store_true",
                        help="compile a row-segmented execution plan: "
                             "conforming row blocks on the SPTC path, the "
                             "violating tail on a fallback sub-plan "
                             "(repro.perf.segment)")

    pp = sub.add_parser("preprocess",
                        help="offline pipeline: reorder + compress into the artifact cache")
    pp.add_argument("inputs", nargs="+")
    add_plan_args(pp)
    pp.add_argument("--workers", type=int, default=None,
                    help="process-pool size for batch preprocessing "
                         "(default: REPRO_WORKERS or cores-1)")
    pp.add_argument("--pool", action="store_true",
                    help="pre-spawn a persistent shared-memory worker pool "
                         "(repro.perf.WorkerPool) instead of an ephemeral one")
    pp.add_argument("--profile", action="store_true",
                    help="trace the run and print the span tree (wall time per stage)")
    pp.set_defaults(fn=_cmd_preprocess)

    sv = sub.add_parser("serve",
                        help="serve SpMM requests from cached artefacts; verifies vs dense")
    sv.add_argument("input")
    add_plan_args(sv)
    sv.add_argument("--h", type=int, default=64)
    sv.add_argument("--requests", type=int, default=3)
    sv.add_argument("--seed", type=int, default=0)
    sv.add_argument("--micro-batch", action="store_true",
                    help="serve requests through the coalescing micro-batch "
                         "queue (ServingSession.submit) instead of one spmm "
                         "call per request")
    sv.add_argument("--max-retries", type=int, default=2,
                    help="kernel retries per request before degrading (default 2)")
    sv.add_argument("--deadline", type=float, default=None,
                    help="per-request deadline in seconds (default: none)")
    sv.add_argument("--breakers", action="store_true",
                    help="install per-backend circuit breakers around every "
                         "kernel call (repro.pipeline.guard)")
    sv.add_argument("--breaker-threshold", type=int, default=None,
                    help="consecutive failures before a breaker opens "
                         "(default 5, or REPRO_BREAKER_THRESHOLD)")
    sv.add_argument("--breaker-cooldown", type=float, default=None,
                    help="seconds an open breaker rejects calls before its "
                         "half-open probe (default 5.0, or REPRO_BREAKER_COOLDOWN)")
    sv.add_argument("--max-queue-depth", type=int, default=None,
                    help="admission control: shed micro-batch submissions "
                         "beyond this queue depth (OverloadError)")
    sv.add_argument("--shed-deadline", type=float, default=None,
                    help="admission control: shed requests whose estimated "
                         "completion (live p95) exceeds this many seconds")
    sv.add_argument("--metrics-file", default=None,
                    help="export request metrics here (.json snapshot, or "
                         ".prom Prometheus text)")
    sv.add_argument("--trace-file", default=None,
                    help="trace the run and write the span tree here as JSON")
    sv.add_argument("--telemetry-port", type=int, default=None,
                    help="start the telemetry HTTP server on this port "
                         "(0 = any free port): /metrics, /healthz, /readyz, "
                         "/debug/requests, plus the request flight recorder "
                         "and rolling-window admission (docs/telemetry.md)")
    sv.add_argument("--slo", action="append", default=None, metavar="SPEC",
                    help="declare an SLO for burn-rate alerting (repeatable): "
                         "'latency:SECONDS[:OBJECTIVE]', "
                         "'vnm_rows[:OBJECTIVE]', or 'kind=...,key=value,...' "
                         "(needs --telemetry-port)")
    sv.add_argument("--hold", type=float, default=None, metavar="SECONDS",
                    help="after serving, keep the telemetry server up this "
                         "long for scrapes / `repro top`")
    sv.add_argument("--shards", type=int, default=1,
                    help="serve through the sharded fan-out router: partition "
                         "the operand into this many v-aligned row shards, "
                         "one session per shard (docs/sharding.md; default 1 "
                         "= single session)")
    sv.add_argument("--replicas", type=int, default=1,
                    help="replicas per shard for failover and hot-shard "
                         "throughput (needs --shards > 1; default 1)")
    sv.add_argument("--executor", choices=["thread", "process"],
                    default="thread",
                    help="shard replica back-end (needs --shards > 1): "
                         "'thread' = in-process session lanes; 'process' = "
                         "one forked worker per replica over a zero-copy "
                         "shm ring — GIL-free shard parallelism "
                         "(docs/sharding.md; default %(default)s)")
    sv.set_defaults(fn=_cmd_serve)

    sh = sub.add_parser("shard",
                        help="offline shard build: partition a preprocessed "
                             "operand into per-shard cached artefacts")
    sh.add_argument("input")
    add_plan_args(sh)
    sh.add_argument("--shards", type=int, default=4,
                    help="number of v-aligned row shards (default %(default)s)")
    sh.add_argument("--json-out", default=None,
                    help="write the shard layout summary here as JSON")
    sh.set_defaults(fn=_cmd_shard)

    tp = sub.add_parser("top",
                        help="live serving dashboard polled from a telemetry "
                             "server's /metrics")
    tp.add_argument("--url", default="http://127.0.0.1:9464",
                    help="telemetry server base URL (repro serve "
                         "--telemetry-port; default %(default)s)")
    tp.add_argument("--interval", type=float, default=2.0,
                    help="seconds between frames (default %(default)s)")
    tp.add_argument("--frames", type=int, default=None,
                    help="stop after N frames (default: run until ctrl-c)")
    tp.add_argument("--no-clear", action="store_true",
                    help="append frames instead of clearing the screen")
    tp.set_defaults(fn=_cmd_top)

    tn = sub.add_parser("tune",
                        help="micro-benchmark backend kernels and cache the winner")
    tn.add_argument("input")
    add_plan_args(tn)
    tn.add_argument("--h", type=int, default=64,
                    help="feature width to tune for (default 64)")
    tn.add_argument("--repeats", type=int, default=3,
                    help="timing repeats per candidate (min is kept; default 3)")
    tn.add_argument("--float32", action="store_true",
                    help="also try the fp32 compute path where the precision "
                         "model admits it")
    tn.set_defaults(fn=_cmd_tune)

    st = sub.add_parser("stats",
                        help="pretty-print a metrics export and/or cache statistics")
    st.add_argument("--metrics-file", default=None,
                    help="metrics JSON written by `repro serve --metrics-file`")
    st.add_argument("--cache-dir", default=None,
                    help="artifact cache directory to summarize")
    st.add_argument("--trace-file", default=None,
                    help="span-tree JSON written by `repro serve --trace-file`; "
                         "rendered as a text tree unless --chrome-out is given")
    st.add_argument("--chrome-out", default=None,
                    help="convert --trace-file to Chrome trace-event JSON "
                         "(chrome://tracing / Perfetto); worker-adopted "
                         "subtrees get their own process track")
    st.set_defaults(fn=_cmd_stats)

    dr = sub.add_parser("doctor",
                        help="fsck a cache directory: verify checksums, quarantine corrupt entries")
    dr.add_argument("--cache-dir", default=".repro-cache")
    dr.add_argument("--selftest", action="store_true",
                    help="additionally run a tiny operand through every "
                         "compressible backend under a scoped breaker board")
    dr.add_argument("--shm-sweep", action="store_true",
                    help="reclaim shared-memory segments orphaned by killed "
                         "workers: unlink repro-prefixed /dev/shm entries "
                         "older than --shm-age not owned by this process "
                         "(counted in shm_segments_leaked_total)")
    dr.add_argument("--shm-age", type=float, default=300.0, metavar="SECONDS",
                    help="minimum age before an orphaned segment is swept "
                         "(default %(default)s)")
    dr.set_defaults(fn=_cmd_doctor)
    return p


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    logging_setup(args.verbose - args.quiet)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
