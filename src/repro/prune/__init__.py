"""Lossy V:N:M magnitude pruning — the *revised-pruned* comparison baseline."""

from .magnitude import PruneResult, magnitude_prune, prune_graph

__all__ = ["PruneResult", "magnitude_prune", "prune_graph"]
