"""Magnitude pruning to V:N:M (the paper's *revised-pruned* baseline, §5.1).

For each V×M meta-block, the minimum number of least-magnitude entries are
zeroed so the block conforms: the top-k columns by magnitude mass survive the
vertical constraint, and within them each row keeps its N largest entries.
This makes any matrix SPTC-compatible but is *lossy* — removed graph edges
carry information, which is exactly what Table 5 quantifies against the
lossless reordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.patterns import VNMPattern
from ..graphs.graph import Graph
from ..sptc.hybrid import split_to_pattern

__all__ = ["PruneResult", "magnitude_prune", "prune_graph"]


@dataclass
class PruneResult:
    """Pruned matrix plus the bookkeeping Table 5 reports."""

    matrix: np.ndarray
    pattern: VNMPattern
    original_nnz: int
    pruned_nnz: int

    @property
    def prune_ratio(self) -> float:
        """Fraction of non-zeros removed (the paper's "Prune ratio")."""
        if self.original_nnz == 0:
            return 0.0
        return (self.original_nnz - self.pruned_nnz) / self.original_nnz


def magnitude_prune(a: np.ndarray, pattern: VNMPattern) -> PruneResult:
    """Zero the minimum least-magnitude entries to reach V:N:M conformity."""
    a = np.asarray(a, dtype=np.float64)
    conforming, _residual = split_to_pattern(a, pattern)
    return PruneResult(
        matrix=conforming,
        pattern=pattern,
        original_nnz=int(np.count_nonzero(a)),
        pruned_nnz=int(np.count_nonzero(conforming)),
    )


def prune_graph(graph: Graph, pattern: VNMPattern, *, symmetrize: bool = True) -> tuple[Graph, PruneResult]:
    """Prune a graph's normalized adjacency to the pattern.

    Pruning is generally *asymmetric* (a kept entry's mirror may be pruned in
    its own meta-block); ``symmetrize`` keeps an edge only if both directions
    survive, which preserves undirectedness like the adjacency consumers here
    assume.  Returns the pruned graph and the prune statistics.
    """
    dense = graph.dense_adjacency()
    result = magnitude_prune(dense, pattern)
    kept = result.matrix != 0
    if symmetrize:
        kept = kept & kept.T
    pruned_dense = np.where(kept, dense, 0.0)
    pruned = Graph.from_dense(
        pruned_dense,
        features=graph.features,
        labels=graph.labels,
        train_mask=graph.train_mask,
        val_mask=graph.val_mask,
        test_mask=graph.test_mask,
        name=f"{graph.name}-pruned",
    )
    stats = PruneResult(
        matrix=pruned_dense,
        pattern=pattern,
        original_nnz=result.original_nnz,
        pruned_nnz=int(np.count_nonzero(pruned_dense)),
    )
    return pruned, stats
