"""Process-parallel batch reordering.

The collection-scale experiments (Tables 7/8, Fig. 4) reorder hundreds of
independent matrices — embarrassingly parallel work.  This module fans the
batch out over a process pool; each worker reorders its share and returns
compact summaries (permutation order + scores), keeping pickling cheap.

The same pattern covers the paper's §4.4 deployment note: per-partition
reordering of a distributed graph is independent per device.

Performance (see :mod:`repro.perf` and ``docs/performance.md``): by default
the batch's packed ``uint64`` words are published once through a
shared-memory segment (:class:`repro.perf.shm.SharedMatrixBatch`) and
workers attach zero-copy read-only views instead of unpickling a copy per
job; jobs are submitted in chunks to amortize executor round-trips; and a
persistent :class:`repro.perf.pool.WorkerPool` can be passed as ``pool=``
so repeated batches reuse warm workers instead of re-spawning a
``ProcessPoolExecutor`` every call.

Fault tolerance: a job that raises surfaces as a
:class:`~repro.pipeline.resilience.WorkerCrashError` carrying the batch
index (or is returned in place with ``return_exceptions=True``, so one bad
matrix no longer aborts the batch), and a worker process that dies —
``BrokenProcessPool`` — has its lost jobs resubmitted to a restarted pool.
Shared-memory segments are disposed (closed **and** unlinked) on every exit
path, including raised faults and broken pools.  The
:mod:`repro.pipeline.faults` harness can script every failure kind
deterministically, including segment-creation failure (which exercises the
pickled-payload fallback).
"""

from __future__ import annotations

import logging
import math
import os
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from .core.bitmatrix import BitMatrix
from .core.patterns import VNMPattern
from .core.permutation import Permutation
from .core.reorder import reorder
from .core.scores import improvement_rate
from .obs import trace as obs_trace
from .obs.trace import SpanRecord

__all__ = ["ReorderSummary", "reorder_many", "default_workers"]

logger = logging.getLogger("repro.parallel")


@dataclass
class ReorderSummary:
    """Picklable result of one reordering job.

    ``trace`` carries the job's span tree (a picklable
    :class:`~repro.obs.trace.SpanRecord`) when the parent had tracing
    enabled at submission time; the parent grafts it back into its live
    trace, so profiling survives the process-pool boundary.
    """

    index: int
    pattern: str
    order: np.ndarray
    initial_invalid_vectors: int
    final_invalid_vectors: int
    initial_mbscore: int
    final_mbscore: int
    iterations: int
    elapsed_seconds: float
    trace: SpanRecord | None = None

    @property
    def improvement_rate(self) -> float:
        return improvement_rate(self.initial_invalid_vectors, self.final_invalid_vectors)

    @property
    def conforms(self) -> bool:
        return self.final_invalid_vectors == 0 and self.final_mbscore == 0

    @property
    def permutation(self) -> Permutation:
        return Permutation(self.order)


def default_workers() -> int:
    """Respect ``REPRO_WORKERS`` if set, else leave one core free.

    A malformed ``REPRO_WORKERS`` (non-integer, or ``<= 0``) is logged and
    ignored rather than exploding deep inside a batch call.
    """
    fallback = max(1, (os.cpu_count() or 2) - 1)
    env = os.environ.get("REPRO_WORKERS")
    if not env:
        return fallback
    try:
        value = int(env)
    except ValueError:
        logger.warning(
            "ignoring non-integer REPRO_WORKERS=%r; using %d worker(s)",
            env, fallback,
        )
        return fallback
    if value < 1:
        logger.warning(
            "ignoring non-positive REPRO_WORKERS=%r; using %d worker(s)",
            env, fallback,
        )
        return fallback
    return value


def _crash_error(index: int, failure):
    from .pipeline.resilience import WorkerCrashError  # lazy: pipeline imports us

    detail = failure if isinstance(failure, str) else repr(failure)
    return WorkerCrashError(
        f"reorder job {index} failed in worker: {detail}", index=index
    )


# -- job payloads ---------------------------------------------------------
#
# A job tuple is (index, payload, pattern_tuple, kwargs, want_trace, fault).
# ``payload`` is either ("words", words, n_rows, n_cols) — the packed array
# pickled into the job (inline mode, or the fallback when shared memory is
# unavailable) — or ("shm", MatrixHandle) — a tiny pointer into a
# SharedMatrixBatch segment the worker attaches zero-copy.

def _materialize(payload) -> BitMatrix:
    kind = payload[0]
    if kind == "words":
        _, words, n_rows, n_cols = payload
        return BitMatrix(words, n_rows, n_cols)
    if kind == "shm":
        from .perf.shm import attach_bitmatrix

        return attach_bitmatrix(payload[1])
    raise ValueError(f"unknown job payload kind {kind!r}")


def _job(args) -> ReorderSummary:
    index, payload, pattern_tuple, kwargs, want_trace, fault = args
    if fault == "exit":
        # Injected hard crash: the worker dies, breaking the pool so the
        # parent's resubmission path runs.  Never taken outside inject().
        os._exit(13)
    if fault == "hang":
        # Injected hang: the worker wedges (far past any reasonable job
        # timeout) so the parent's hung-worker watchdog runs.  Bounded so a
        # watchdog-less caller still terminates eventually.
        import time as _time

        _time.sleep(float(os.environ.get("REPRO_FAULT_HANG_SECONDS", "30")))
        raise RuntimeError(f"injected worker hang on job {index} timed out")
    if fault == "raise":
        raise RuntimeError(f"injected worker fault on job {index}")
    bm = _materialize(payload)
    pattern = VNMPattern(*pattern_tuple)
    record = None
    if want_trace:
        # The worker records into its own local tracer; the finished (and
        # picklable) root record rides back on the summary so the parent can
        # graft it into the live trace.
        with obs_trace.use_tracer() as tracer:
            res = reorder(bm, pattern, **kwargs)
        if tracer.roots:
            record = tracer.roots[0]
            record.attrs["job"] = index
    else:
        res = reorder(bm, pattern, **kwargs)
    return ReorderSummary(
        index=index,
        pattern=str(pattern),
        order=res.permutation.order,
        initial_invalid_vectors=res.initial_invalid_vectors,
        final_invalid_vectors=res.final_invalid_vectors,
        initial_mbscore=res.initial_mbscore,
        final_mbscore=res.final_mbscore,
        iterations=res.iterations,
        elapsed_seconds=res.elapsed_seconds,
        trace=record,
    )


def _job_chunk(jobs: list) -> list:
    """Run a chunk of jobs in one worker round-trip.

    Per-job outcomes are ``("ok", summary)`` or ``("err", repr)`` so one
    soft failure never voids its chunk-mates; an ``"exit"`` fault still
    kills the whole worker (the parent resubmits the lost chunk).
    """
    out = []
    for job in jobs:
        try:
            out.append(("ok", _job(job)))
        except Exception as exc:  # noqa: BLE001 - marker crosses the pickle boundary
            out.append(("err", f"{exc!r}"))
    return out


def _default_chunk_size(n_jobs: int, workers: int) -> int:
    # ~4 chunks per worker balances round-trip amortization against
    # stragglers; capped so one chunk never hoards a giant batch.
    return max(1, min(16, math.ceil(n_jobs / (workers * 4))))


def reorder_many(
    matrices: list[BitMatrix],
    pattern: VNMPattern,
    *,
    n_workers: int | None = None,
    pool=None,
    use_shared_memory: bool | None = None,
    chunk_size: int | None = None,
    return_exceptions: bool = False,
    max_pool_restarts: int = 2,
    job_timeout: float | None = None,
    **reorder_kwargs,
) -> list:
    """Reorder a batch of matrices in parallel worker processes.

    Results come back in input order.  ``n_workers=1`` (or a single-item
    batch) runs inline — no pool overhead, easier debugging.

    ``pool`` accepts a persistent :class:`repro.perf.pool.WorkerPool`; the
    pool is *borrowed* (its workers stay warm for the next batch) and its
    size wins over ``n_workers``.  Without one, an ephemeral pool is built
    and torn down around the call — the pre-``repro.perf`` behaviour.

    ``use_shared_memory`` (default: on whenever jobs go to worker
    processes) publishes the packed words through one shared-memory
    segment so workers attach zero-copy views instead of unpickling
    copies; when the platform cannot provide shared memory the call falls
    back to pickled payloads with a log line, and the segment is always
    disposed — normal completion, job fault, or broken pool — before this
    function returns.  ``chunk_size`` groups jobs per submission to
    amortize executor round-trips (default: auto).

    A job that raises is re-raised as ``WorkerCrashError`` with the batch
    index attached; with ``return_exceptions=True`` the error object is
    returned at the job's position instead, so the rest of the batch
    survives.  When a worker process dies (``BrokenProcessPool``), the
    pool is restarted and the lost jobs resubmitted up to
    ``max_pool_restarts`` times.

    ``job_timeout`` arms the hung-worker watchdog: a chunk whose result
    does not arrive within that many seconds is presumed wedged, the
    worker processes are **killed** (``pool.restart(kill=True)`` — a hung
    worker cannot be cancelled) and the lost jobs resubmitted under the
    same ``max_pool_restarts`` budget.  ``None`` defaults to the borrowed
    pool's :class:`~repro.perf.pool.SupervisionPolicy` ``job_timeout``
    (so a supervised pool brings its own watchdog); with neither set,
    chunk waits are unbounded — the pre-supervision behaviour.
    """
    from .pipeline import faults  # lazy: pipeline imports us

    want_trace = obs_trace.tracing_enabled()
    if pool is not None:
        workers = pool.n_workers
    else:
        workers = default_workers() if n_workers is None else n_workers

    def _merge_traces(results: list) -> list:
        """Graft worker span records into the caller's live trace, in order."""
        for res in results:
            if isinstance(res, ReorderSummary):
                obs_trace.adopt(res.trace)
        return results

    def _make_job(i: int, payload) -> tuple:
        return (
            i, payload, (pattern.v, pattern.n, pattern.m, pattern.k),
            reorder_kwargs, want_trace, faults.worker_directive(i),
        )

    inline = (pool is None and workers <= 1) or len(matrices) <= 1
    if inline:
        jobs = [
            _make_job(i, ("words", bm.words, bm.n_rows, bm.n_cols))
            for i, bm in enumerate(matrices)
        ]
        with obs_trace.span("parallel.reorder_many", jobs=len(jobs), workers=1):
            results = []
            for job in jobs:
                if job[-1] in ("exit", "hang"):
                    # Inline mode has no worker process to kill (or watch);
                    # degrade the injected hard crash/hang to a soft failure.
                    job = job[:-1] + ("raise",)
                try:
                    results.append(_job(job))
                except Exception as exc:
                    failure = _crash_error(job[0], exc)
                    if not return_exceptions:
                        raise failure from exc
                    results.append(failure)
            return _merge_traces(results)

    from .perf.pool import WorkerPool
    from .perf.shm import SharedMatrixBatch

    shared = None
    if use_shared_memory is None or use_shared_memory:
        try:
            shared = SharedMatrixBatch.pack(matrices)
        except (OSError, ValueError, faults.InjectedFault) as exc:
            logger.warning(
                "shared-memory unavailable (%s); falling back to pickled "
                "job payloads", exc,
            )
    jobs = [
        _make_job(
            i,
            ("shm", shared.handles[i]) if shared is not None
            else ("words", bm.words, bm.n_rows, bm.n_cols),
        )
        for i, bm in enumerate(matrices)
    ]
    chunk = chunk_size or _default_chunk_size(len(jobs), workers)

    owns_pool = pool is None
    if owns_pool:
        pool = WorkerPool(workers)
    if job_timeout is None:
        supervision = getattr(pool, "supervision", None)
        if supervision is not None:
            job_timeout = supervision.job_timeout
    try:
        with obs_trace.span(
            "parallel.reorder_many", jobs=len(jobs), workers=workers,
            shared_memory=shared is not None, chunk_size=chunk,
        ):
            results: list = [None] * len(jobs)
            pending = list(range(len(jobs)))
            restarts = 0
            while pending:
                lost: list[int] = []
                hung = False
                futures = {}
                for at in range(0, len(pending), chunk):
                    indices = pending[at:at + chunk]
                    futures[pool.submit(_job_chunk, [jobs[i] for i in indices])] = indices
                for fut, indices in futures.items():
                    try:
                        outcomes = fut.result(timeout=job_timeout)
                    except BrokenProcessPool:
                        lost.extend(indices)
                        continue
                    except FuturesTimeoutError:
                        # Hung worker: the chunk's jobs are lost and the
                        # worker holding them must be killed, not joined.
                        hung = True
                        lost.extend(indices)
                        logger.warning(
                            "reorder chunk %s exceeded the %.3fs job timeout; "
                            "presuming the worker hung", indices, job_timeout,
                        )
                        continue
                    for i, outcome in zip(indices, outcomes):
                        if outcome[0] == "ok":
                            results[i] = outcome[1]
                        else:
                            failure = _crash_error(i, outcome[1])
                            if not return_exceptions:
                                raise failure
                            results[i] = failure
                if not lost:
                    break
                restarts += 1
                if restarts > max_pool_restarts:
                    raise _crash_error(lost[0], BrokenProcessPool(
                        f"worker pool broke or hung {restarts} time(s); "
                        f"{len(lost)} job(s) could not be completed"
                    ))
                pool.restart(kill=hung)
                # Resubmit the lost jobs, stripping any injected fault
                # directive so the retry runs clean.
                for i in sorted(lost):
                    jobs[i] = jobs[i][:-1] + (None,)
                pending = sorted(lost)
            return _merge_traces(results)
    finally:
        if shared is not None:
            shared.dispose()
        if owns_pool:
            pool.close()
