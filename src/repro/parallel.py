"""Process-parallel batch reordering.

The collection-scale experiments (Tables 7/8, Fig. 4) reorder hundreds of
independent matrices — embarrassingly parallel work.  This module fans the
batch out over a process pool; each worker reorders its share and returns
compact summaries (permutation order + scores), keeping pickling cheap.

The same pattern covers the paper's §4.4 deployment note: per-partition
reordering of a distributed graph is independent per device.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from .core.bitmatrix import BitMatrix
from .core.patterns import VNMPattern
from .core.permutation import Permutation
from .core.reorder import reorder
from .core.scores import improvement_rate

__all__ = ["ReorderSummary", "reorder_many", "default_workers"]


@dataclass
class ReorderSummary:
    """Picklable result of one reordering job."""

    index: int
    pattern: str
    order: np.ndarray
    initial_invalid_vectors: int
    final_invalid_vectors: int
    initial_mbscore: int
    final_mbscore: int
    iterations: int
    elapsed_seconds: float

    @property
    def improvement_rate(self) -> float:
        return improvement_rate(self.initial_invalid_vectors, self.final_invalid_vectors)

    @property
    def conforms(self) -> bool:
        return self.final_invalid_vectors == 0 and self.final_mbscore == 0

    @property
    def permutation(self) -> Permutation:
        return Permutation(self.order)


def default_workers() -> int:
    """Respect ``REPRO_WORKERS`` if set, else leave one core free."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return max(1, (os.cpu_count() or 2) - 1)


def _job(args) -> ReorderSummary:
    index, words, n_rows, n_cols, pattern_tuple, kwargs = args
    bm = BitMatrix(words, n_rows, n_cols)
    pattern = VNMPattern(*pattern_tuple)
    res = reorder(bm, pattern, **kwargs)
    return ReorderSummary(
        index=index,
        pattern=str(pattern),
        order=res.permutation.order,
        initial_invalid_vectors=res.initial_invalid_vectors,
        final_invalid_vectors=res.final_invalid_vectors,
        initial_mbscore=res.initial_mbscore,
        final_mbscore=res.final_mbscore,
        iterations=res.iterations,
        elapsed_seconds=res.elapsed_seconds,
    )


def reorder_many(
    matrices: list[BitMatrix],
    pattern: VNMPattern,
    *,
    n_workers: int | None = None,
    **reorder_kwargs,
) -> list[ReorderSummary]:
    """Reorder a batch of matrices in parallel worker processes.

    Results come back in input order.  ``n_workers=1`` (or a single-item
    batch) runs inline — no pool overhead, easier debugging.
    """
    jobs = [
        (i, bm.words, bm.n_rows, bm.n_cols, (pattern.v, pattern.n, pattern.m, pattern.k), reorder_kwargs)
        for i, bm in enumerate(matrices)
    ]
    workers = default_workers() if n_workers is None else n_workers
    if workers <= 1 or len(jobs) <= 1:
        return [_job(j) for j in jobs]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # pool.map yields results in input order, so no re-sort is needed.
        return list(pool.map(_job, jobs, chunksize=max(1, len(jobs) // (workers * 4))))
