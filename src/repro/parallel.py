"""Process-parallel batch reordering.

The collection-scale experiments (Tables 7/8, Fig. 4) reorder hundreds of
independent matrices — embarrassingly parallel work.  This module fans the
batch out over a process pool; each worker reorders its share and returns
compact summaries (permutation order + scores), keeping pickling cheap.

The same pattern covers the paper's §4.4 deployment note: per-partition
reordering of a distributed graph is independent per device.

Fault tolerance: a job that raises surfaces as a
:class:`~repro.pipeline.resilience.WorkerCrashError` carrying the batch
index (or is returned in place with ``return_exceptions=True``, so one bad
matrix no longer aborts the batch), and a worker process that dies —
``BrokenProcessPool`` — has its lost jobs resubmitted to a fresh pool.
The :mod:`repro.pipeline.faults` harness can script both failure kinds
deterministically.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from .core.bitmatrix import BitMatrix
from .core.patterns import VNMPattern
from .core.permutation import Permutation
from .core.reorder import reorder
from .core.scores import improvement_rate
from .obs import trace as obs_trace
from .obs.trace import SpanRecord

__all__ = ["ReorderSummary", "reorder_many", "default_workers"]


@dataclass
class ReorderSummary:
    """Picklable result of one reordering job.

    ``trace`` carries the job's span tree (a picklable
    :class:`~repro.obs.trace.SpanRecord`) when the parent had tracing
    enabled at submission time; the parent grafts it back into its live
    trace, so profiling survives the process-pool boundary.
    """

    index: int
    pattern: str
    order: np.ndarray
    initial_invalid_vectors: int
    final_invalid_vectors: int
    initial_mbscore: int
    final_mbscore: int
    iterations: int
    elapsed_seconds: float
    trace: SpanRecord | None = None

    @property
    def improvement_rate(self) -> float:
        return improvement_rate(self.initial_invalid_vectors, self.final_invalid_vectors)

    @property
    def conforms(self) -> bool:
        return self.final_invalid_vectors == 0 and self.final_mbscore == 0

    @property
    def permutation(self) -> Permutation:
        return Permutation(self.order)


def default_workers() -> int:
    """Respect ``REPRO_WORKERS`` if set, else leave one core free."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return max(1, (os.cpu_count() or 2) - 1)


def _crash_error(index: int, exc: BaseException):
    from .pipeline.resilience import WorkerCrashError  # lazy: pipeline imports us

    return WorkerCrashError(
        f"reorder job {index} failed in worker: {exc!r}", index=index
    )


def _job(args) -> ReorderSummary:
    index, words, n_rows, n_cols, pattern_tuple, kwargs, want_trace, fault = args
    if fault == "exit":
        # Injected hard crash: the worker dies, breaking the pool so the
        # parent's resubmission path runs.  Never taken outside inject().
        os._exit(13)
    if fault == "raise":
        raise RuntimeError(f"injected worker fault on job {index}")
    bm = BitMatrix(words, n_rows, n_cols)
    pattern = VNMPattern(*pattern_tuple)
    record = None
    if want_trace:
        # The worker records into its own local tracer; the finished (and
        # picklable) root record rides back on the summary so the parent can
        # graft it into the live trace.
        with obs_trace.use_tracer() as tracer:
            res = reorder(bm, pattern, **kwargs)
        if tracer.roots:
            record = tracer.roots[0]
            record.attrs["job"] = index
    else:
        res = reorder(bm, pattern, **kwargs)
    return ReorderSummary(
        index=index,
        pattern=str(pattern),
        order=res.permutation.order,
        initial_invalid_vectors=res.initial_invalid_vectors,
        final_invalid_vectors=res.final_invalid_vectors,
        initial_mbscore=res.initial_mbscore,
        final_mbscore=res.final_mbscore,
        iterations=res.iterations,
        elapsed_seconds=res.elapsed_seconds,
        trace=record,
    )


def reorder_many(
    matrices: list[BitMatrix],
    pattern: VNMPattern,
    *,
    n_workers: int | None = None,
    return_exceptions: bool = False,
    max_pool_restarts: int = 2,
    **reorder_kwargs,
) -> list:
    """Reorder a batch of matrices in parallel worker processes.

    Results come back in input order.  ``n_workers=1`` (or a single-item
    batch) runs inline — no pool overhead, easier debugging.

    A job that raises is re-raised as ``WorkerCrashError`` with the batch
    index attached; with ``return_exceptions=True`` the error object is
    returned at the job's position instead, so the rest of the batch
    survives.  When a worker process dies (``BrokenProcessPool``), the lost
    jobs are resubmitted to a fresh pool up to ``max_pool_restarts`` times.
    """
    from .pipeline import faults  # lazy: pipeline imports us

    want_trace = obs_trace.tracing_enabled()
    jobs = [
        (
            i, bm.words, bm.n_rows, bm.n_cols,
            (pattern.v, pattern.n, pattern.m, pattern.k), reorder_kwargs,
            want_trace, faults.worker_directive(i),
        )
        for i, bm in enumerate(matrices)
    ]
    workers = default_workers() if n_workers is None else n_workers

    def _merge_traces(results: list) -> list:
        """Graft worker span records into the caller's live trace, in order."""
        for res in results:
            if isinstance(res, ReorderSummary):
                obs_trace.adopt(res.trace)
        return results

    if workers <= 1 or len(jobs) <= 1:
        with obs_trace.span("parallel.reorder_many", jobs=len(jobs), workers=1):
            results = []
            for job in jobs:
                if job[-1] == "exit":
                    # Inline mode has no worker process to kill; degrade the
                    # injected hard crash to a soft failure.
                    job = job[:-1] + ("raise",)
                try:
                    results.append(_job(job))
                except Exception as exc:
                    failure = _crash_error(job[0], exc)
                    if not return_exceptions:
                        raise failure from exc
                    results.append(failure)
            return _merge_traces(results)

    with obs_trace.span("parallel.reorder_many", jobs=len(jobs), workers=workers):
        results: list = [None] * len(jobs)
        pending = list(range(len(jobs)))
        restarts = 0
        while pending:
            lost: list[int] = []
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {pool.submit(_job, jobs[i]): i for i in pending}
                for fut, i in futures.items():
                    try:
                        results[i] = fut.result()
                    except BrokenProcessPool:
                        lost.append(i)
                    except Exception as exc:
                        failure = _crash_error(i, exc)
                        if not return_exceptions:
                            raise failure from exc
                        results[i] = failure
            if not lost:
                break
            restarts += 1
            if restarts > max_pool_restarts:
                raise _crash_error(lost[0], BrokenProcessPool(
                    f"worker pool broke {restarts} time(s); "
                    f"{len(lost)} job(s) could not be completed"
                ))
            # Resubmit the lost jobs to a fresh pool, stripping any injected
            # fault directive so the retry runs clean.
            for i in lost:
                jobs[i] = jobs[i][:-1] + (None,)
            pending = lost
        return _merge_traces(results)
