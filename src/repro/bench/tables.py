"""Plain-text table rendering for the benchmark harness.

Each benchmark prints the same rows/series the paper's table or figure
reports, via these helpers, so `pytest benchmarks/ -s` output reads like the
paper's evaluation section.
"""

from __future__ import annotations

__all__ = ["render_table", "format_cell"]


def format_cell(value) -> str:
    """Render one table cell: floats get magnitude-appropriate precision."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def render_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Render an ASCII table with a title banner."""
    str_rows = [[format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells):
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} ==", fmt_row(headers), sep]
    lines += [fmt_row(r) for r in str_rows]
    return "\n".join(lines)
