"""Benchmark harness utilities shared by the files in ``benchmarks/``."""

from .runner import collection_counts, full_scale, geomean, seeded_rng
from .tables import format_cell, render_table

__all__ = [
    "geomean",
    "full_scale",
    "collection_counts",
    "seeded_rng",
    "render_table",
    "format_cell",
]
