"""Shared benchmark-harness utilities."""

from __future__ import annotations

import os

import numpy as np

__all__ = ["geomean", "full_scale", "collection_counts", "seeded_rng"]


def geomean(values) -> float:
    """Geometric mean, ignoring non-positive entries defensively."""
    arr = np.asarray(list(values), dtype=np.float64)
    arr = arr[arr > 0]
    if arr.size == 0:
        return 0.0
    return float(np.exp(np.log(arr).mean()))


def full_scale() -> bool:
    """``REPRO_FULL=1`` switches benches from CI-sized to paper-sized runs."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "False")


def collection_counts() -> dict[str, int]:
    """SuiteSparse stand-in population sizes per class.

    CI default keeps runtimes in seconds; full scale matches Table 1 counts.
    """
    if full_scale():
        return {"small": 444, "medium": 724, "large": 188}
    return {"small": 24, "medium": 16, "large": 6}


def seeded_rng(seed: int = 0) -> np.random.Generator:
    """A fresh deterministic generator for benchmark workloads."""
    return np.random.default_rng(seed)
