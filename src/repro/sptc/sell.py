"""SELL-C-σ (sliced ELLPACK) — the classic SIMD-friendly sparse format.

A standard HPC baseline between CSR and fully-structured formats: rows are
sorted by length within windows of σ, grouped into slices of C rows, and
each slice is padded to its longest row.  It regularizes access like the
SPTC formats do, but by *padding* rather than by reordering to a hardware
pattern — a useful comparison point for the padding-vs-reordering trade-off
the paper's design avoids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRMatrix

__all__ = ["SellCSigma"]


@dataclass
class SellCSigma:
    """SELL-C-σ storage.

    Attributes
    ----------
    c / sigma:
        Slice height and sorting-window size (σ a multiple of C).
    slice_ptr:
        ``(n_slices + 1,)`` offsets into the value/column arrays, in units of
        entries (slice width × C).
    cols / vals:
        Column indices (−1 for padding) and values, slice-major, stored
        column-major *within* each slice so SIMD lanes read consecutively.
    row_order:
        Permutation applied to rows (gather form): slice row ``i`` holds
        original row ``row_order[i]``.
    """

    c: int
    sigma: int
    shape: tuple[int, int]
    slice_ptr: np.ndarray
    slice_width: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    row_order: np.ndarray

    @classmethod
    def from_csr(cls, csr: CSRMatrix, c: int = 8, sigma: int = 64) -> "SellCSigma":
        if sigma % c != 0:
            raise ValueError("sigma must be a multiple of C")
        n_rows = csr.shape[0]
        lengths = csr.row_nnz()
        row_order = np.arange(n_rows, dtype=np.int64)
        # Sort rows by descending length within σ-windows.
        for start in range(0, n_rows, sigma):
            stop = min(start + sigma, n_rows)
            window = row_order[start:stop]
            row_order[start:stop] = window[np.argsort(-lengths[window], kind="stable")]

        n_slices = (n_rows + c - 1) // c
        slice_width = np.zeros(n_slices, dtype=np.int64)
        slice_ptr = np.zeros(n_slices + 1, dtype=np.int64)
        for s in range(n_slices):
            rows = row_order[s * c : (s + 1) * c]
            slice_width[s] = int(lengths[rows].max(initial=0))
            slice_ptr[s + 1] = slice_ptr[s] + slice_width[s] * c
        total = int(slice_ptr[-1])
        cols = np.full(total, -1, dtype=np.int64)
        vals = np.zeros(total, dtype=np.float64)
        for s in range(n_slices):
            width = int(slice_width[s])
            base = int(slice_ptr[s])
            for lane, r in enumerate(row_order[s * c : (s + 1) * c]):
                lo, hi = csr.indptr[r], csr.indptr[r + 1]
                k = int(hi - lo)
                # column-major within the slice: entry j of lane sits at
                # base + j * c + lane.
                idx = base + np.arange(k) * c + lane
                cols[idx] = csr.indices[lo:hi]
                vals[idx] = csr.data[lo:hi]
        return cls(c, sigma, csr.shape, slice_ptr, slice_width, cols, vals, row_order)

    @property
    def n_slices(self) -> int:
        return int(self.slice_width.shape[0])

    @property
    def padded_entries(self) -> int:
        return int(self.vals.size)

    def padding_fraction(self) -> float:
        nnz = int((self.cols >= 0).sum())
        return 1.0 - nnz / self.vals.size if self.vals.size else 0.0

    def storage_bytes(self, value_bytes: int = 4) -> int:
        return self.vals.size * value_bytes + self.cols.size * 4 + self.slice_ptr.size * 8

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        for s in range(self.n_slices):
            base, width = int(self.slice_ptr[s]), int(self.slice_width[s])
            for lane in range(min(self.c, self.shape[0] - s * self.c)):
                r = self.row_order[s * self.c + lane]
                idx = base + np.arange(width) * self.c + lane
                cc = self.cols[idx]
                valid = cc >= 0
                out[r, cc[valid]] = self.vals[idx][valid]
        return out

    def matmat(self, b: np.ndarray) -> np.ndarray:
        """Slice-parallel SpMM with padding lanes multiplying zero."""
        b = np.asarray(b, dtype=np.float64)
        if b.shape[0] != self.shape[1]:
            raise ValueError("inner dimension mismatch")
        out = np.zeros((self.shape[0], b.shape[1]), dtype=np.float64)
        safe_cols = np.where(self.cols >= 0, self.cols, 0)
        gathered = b[safe_cols] * self.vals[:, None]
        for s in range(self.n_slices):
            base, width = int(self.slice_ptr[s]), int(self.slice_width[s])
            lanes = min(self.c, self.shape[0] - s * self.c)
            if width == 0:
                continue
            block = gathered[base : base + width * self.c].reshape(width, self.c, -1)
            out[self.row_order[s * self.c : s * self.c + lanes]] = block[:, :lanes].sum(axis=0)
        return out

    def __repr__(self) -> str:
        return (
            f"SellCSigma(shape={self.shape}, C={self.c}, sigma={self.sigma}, "
            f"padding={self.padding_fraction():.1%})"
        )
