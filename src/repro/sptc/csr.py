"""Compressed Sparse Row matrices, built from scratch.

This is the baseline storage the paper compares against: PyG's
torchsparse-style CSR SpMM and DGL's cuSPARSE ``CSR_ALG2`` both consume this
layout.  The implementation is self-contained (converters to/from SciPy are
provided for interop and testing only).
"""

from __future__ import annotations

import numpy as np

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """A float CSR matrix with int64 index arrays."""

    # __weakref__ lets the execution-plan cache (repro.perf.engine) key
    # plans by operand identity with weakref-finalize eviction.
    __slots__ = ("indptr", "indices", "data", "shape", "_dense_cache", "__weakref__")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, data: np.ndarray, shape: tuple[int, int]):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self.shape = shape
        if self.indptr.shape[0] != shape[0] + 1:
            raise ValueError("indptr length must be n_rows + 1")
        if self.indices.shape[0] != self.data.shape[0]:
            raise ValueError("indices and data must have equal length")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= shape[1]):
            raise ValueError("column index out of range")

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        data: np.ndarray | None,
        shape: tuple[int, int],
        *,
        sum_duplicates: bool = True,
    ) -> "CSRMatrix":
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if data is None:
            data = np.ones(rows.shape[0], dtype=np.float64)
        data = np.asarray(data, dtype=np.float64)
        order = np.lexsort((cols, rows))
        rows, cols, data = rows[order], cols[order], data[order]
        if sum_duplicates and rows.size:
            keep = np.ones(rows.size, dtype=bool)
            keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            group = np.cumsum(keep) - 1
            summed = np.zeros(int(group[-1]) + 1, dtype=np.float64)
            np.add.at(summed, group, data)
            rows, cols, data = rows[keep], cols[keep], summed
        indptr = np.zeros(shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, cols, data, shape)

    @classmethod
    def from_dense(cls, a: np.ndarray) -> "CSRMatrix":
        a = np.asarray(a, dtype=np.float64)
        rows, cols = np.nonzero(a)
        return cls.from_coo(rows, cols, a[rows, cols], a.shape)

    @classmethod
    def from_scipy(cls, m) -> "CSRMatrix":
        m = m.tocsr()
        return cls(m.indptr.astype(np.int64), m.indices.astype(np.int64), m.data.astype(np.float64), m.shape)

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        return cls(np.arange(n + 1), np.arange(n), np.ones(n), (n, n))

    # -- conversions -------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        out[rows, self.indices] = self.data
        return out

    def to_scipy(self):
        import scipy.sparse as sp

        return sp.csr_matrix((self.data, self.indices, self.indptr), shape=self.shape)

    def to_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return rows, self.indices.copy(), self.data.copy()

    # -- properties --------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    def row_nnz(self) -> np.ndarray:
        return np.diff(self.indptr)

    def density(self) -> float:
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    # -- operations --------------------------------------------------------
    def _row_reduce(self, prod: np.ndarray) -> np.ndarray:
        """Sum per-non-zero products into rows via the reduceat row-boundary
        trick (empty rows have zero-length segments and are masked out)."""
        out_shape = (self.shape[0],) + prod.shape[1:]
        out = np.zeros(out_shape, dtype=np.float64)
        nonempty = np.diff(self.indptr) > 0
        if nonempty.any():
            starts = self.indptr[:-1][nonempty]
            out[nonempty] = np.add.reduceat(prod, starts, axis=0)
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return self._row_reduce(self.data * x[self.indices])

    # Below this many cells, a cached dense copy plus BLAS matmul beats any
    # pure-NumPy segment reduction by an order of magnitude (the *timing*
    # experiments never use wall clock of this kernel — see the cost model).
    _DENSE_FASTPATH_CELLS = 4_000_000

    def matmat(self, b: np.ndarray) -> np.ndarray:
        """Row-gather SpMM: the same access structure as a CUDA-core kernel.

        For every non-zero ``(r, c, v)`` it gathers row ``c`` of ``B`` — the
        irregular access pattern the cost model charges for.  Small operands
        take a numerically-identical dense-BLAS fast path so the training
        loops stay quick.
        """
        b = np.asarray(b, dtype=np.float64)
        if b.shape[0] != self.shape[1]:
            raise ValueError("inner dimension mismatch")
        if (
            self.shape[0] * self.shape[1] <= self._DENSE_FASTPATH_CELLS
            and b.shape[1] >= 8
        ):
            dense = getattr(self, "_dense_cache", None)
            if dense is None:
                dense = self.to_dense()
                self._dense_cache = dense
            return dense @ b
        return self._row_reduce(self.data[:, None] * b[self.indices])

    def transpose(self) -> "CSRMatrix":
        rows, cols, data = self.to_coo()
        return CSRMatrix.from_coo(cols, rows, data, (self.shape[1], self.shape[0]), sum_duplicates=False)

    def permute_symmetric(self, order: np.ndarray) -> "CSRMatrix":
        """Return ``A[order][:, order]`` (graph relabelling)."""
        if self.shape[0] != self.shape[1]:
            raise ValueError("symmetric permutation requires a square matrix")
        order = np.asarray(order, dtype=np.int64)
        inv = np.empty_like(order)
        inv[order] = np.arange(order.size)
        rows, cols, data = self.to_coo()
        return CSRMatrix.from_coo(inv[rows], inv[cols], data, self.shape, sum_duplicates=False)

    def is_symmetric(self, tol: float = 0.0) -> bool:
        if self.shape[0] != self.shape[1]:
            return False
        diff = self.to_scipy() - self.to_scipy().T
        return bool(np.abs(diff.data).max(initial=0.0) <= tol)

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
