"""Shared N:M / V:N:M conformance scans over CSR coordinates.

Two places need the same (row, M-segment) top-N analysis of a sparse
matrix: :func:`repro.sptc.hybrid.split_csr_to_pattern` (to decide which
entries overflow into the CSR residual) and the row segmenter in
:mod:`repro.perf.segment` (to decide which row-blocks can be served on a
pure V:N:M sub-plan at all).  The scan lives here once —
:func:`topn_keep_mask` is the magnitude-ranked keep decision, and the
``*_violations`` profilers turn it into the per-row / per-tile-row
conformance picture the segmenter partitions on.

Everything is vectorized over the COO triplets (lexsort + segmented
cumulative counts); nothing densifies the matrix.
"""

from __future__ import annotations

import numpy as np

from ..core.patterns import VNMPattern

__all__ = [
    "topn_keep_mask",
    "row_nm_violations",
    "tile_row_vertical_violations",
    "conforming_tile_rows",
]


def topn_keep_mask(
    rows: np.ndarray,
    cols: np.ndarray,
    data: np.ndarray,
    *,
    n: int,
    m: int,
    n_segs: int,
    keep: np.ndarray | None = None,
) -> np.ndarray:
    """Keep the top-``n`` magnitude entries per (row, M-segment) group.

    ``keep`` pre-masks the candidates (entries already rejected by an
    earlier pass — e.g. the vertical column selection in
    :func:`~repro.sptc.hybrid.split_csr_to_pattern` — stay rejected and do
    not consume top-N slots).  Ranking is by descending ``|data|`` with a
    stable tie-break on the input order, so the decision is deterministic.
    Returns a boolean mask over the input entries.
    """
    if keep is None:
        keep = np.ones(rows.size, dtype=bool)
    if rows.size == 0:
        return keep.copy()
    seg_key = rows * np.int64(n_segs) + (cols // m)
    order = np.lexsort((-np.abs(data), seg_key))
    sk, kept = seg_key[order], keep[order]
    grp_start = np.ones(sk.size, dtype=bool)
    grp_start[1:] = sk[1:] != sk[:-1]
    # Running count of kept entries within each (row, seg) group.
    kept_int = kept.astype(np.int64)
    cum = np.cumsum(kept_int)
    starts = np.nonzero(grp_start)[0]
    grp_first_idx = np.repeat(starts, np.diff(np.append(starts, sk.size)))
    cum_before_group = np.where(grp_first_idx > 0, cum[np.maximum(grp_first_idx - 1, 0)], 0)
    kept_rank = cum - cum_before_group - kept_int  # kept entries before this one
    kept &= kept_rank < n
    out = np.empty(rows.size, dtype=bool)
    out[order] = kept
    return out


def row_nm_violations(csr, pattern: VNMPattern) -> np.ndarray:
    """Per-row count of entries exceeding the N:M horizontal budget.

    A row is N:M-conforming exactly when its count is zero; non-zero counts
    are how many entries a lossless split would push into a residual.
    """
    rows, cols, data = csr.to_coo()
    n_segs = (csr.shape[1] + pattern.m - 1) // pattern.m
    keep = topn_keep_mask(rows, cols, data, n=pattern.n, m=pattern.m, n_segs=n_segs)
    overflow = np.zeros(csr.shape[0], dtype=np.int64)
    if rows.size:
        np.add.at(overflow, rows[~keep], 1)
    return overflow


def tile_row_vertical_violations(csr, pattern: VNMPattern) -> np.ndarray:
    """Per tile-row (V-row band) count of meta-blocks with > k live columns.

    This is the VENOM vertical constraint; for ``v == 1`` with ``n <= k``
    it is implied by the horizontal one and the counts are all zero.
    """
    v, m, k = pattern.v, pattern.m, pattern.k
    n_trows = (csr.shape[0] + v - 1) // v
    out = np.zeros(n_trows, dtype=np.int64)
    rows, cols, _ = csr.to_coo()
    if rows.size == 0:
        return out
    n_segs = (csr.shape[1] + m - 1) // m
    # Distinct live (meta-block, local column) pairs, counted per block.
    key = ((rows // v) * np.int64(n_segs) + cols // m) * np.int64(m) + (cols % m)
    tiles = np.unique(key) // m
    tile_ids, live = np.unique(tiles, return_counts=True)
    bad = tile_ids[live > k]
    if bad.size:
        np.add.at(out, bad // n_segs, 1)
    return out


def conforming_tile_rows(csr, pattern: VNMPattern) -> np.ndarray:
    """Boolean per tile-row: every meta-block in the V-row band satisfies
    both V:N:M constraints with the entries exactly as stored (no split).

    A contiguous run of ``True`` bands compresses losslessly to a pure
    :class:`~repro.sptc.venom.VNMCompressed` operand — the property the
    row segmenter partitions on.
    """
    v = pattern.v
    n_rows = csr.shape[0]
    n_trows = (n_rows + v - 1) // v
    horiz = row_nm_violations(csr, pattern)
    padded = np.zeros(n_trows * v, dtype=np.int64)
    padded[:n_rows] = horiz
    per_band = padded.reshape(n_trows, v).sum(axis=1)
    per_band += tile_row_vertical_violations(csr, pattern)
    return per_band == 0
