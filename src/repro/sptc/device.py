"""Emulated GPU device: functional execution plus a virtual clock.

An :class:`EmulatedDevice` runs the numerically-exact kernels from
:mod:`repro.sptc.spmm` while advancing a virtual clock by the cost-model time
of each launch, so experiments measure "A100 time" deterministically.  The
multi-GPU experiments (§5.2) instantiate several devices and take the
makespan.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from .costmodel import CostModel, SpmmWorkload
from .csr import CSRMatrix
from .hybrid import HybridVNM
from .nm_format import NMCompressed
from .spmm import csr_spmm, nm_spmm, venom_spmm
from .venom import VNMCompressed

__all__ = ["EmulatedDevice", "KernelRecord", "use_device", "active_device"]

_ACTIVE_DEVICE: list["EmulatedDevice"] = []


@contextmanager
def use_device(device: "EmulatedDevice"):
    """Make ``device`` the ambient compute device.

    Dense layers and element-wise ops inside the scope charge their modelled
    time to it, so end-to-end GNN forward times include the update phase.
    """
    _ACTIVE_DEVICE.append(device)
    try:
        yield device
    finally:
        _ACTIVE_DEVICE.pop()


def active_device() -> "EmulatedDevice | None":
    return _ACTIVE_DEVICE[-1] if _ACTIVE_DEVICE else None


@dataclass
class KernelRecord:
    """One launched kernel: name, modelled seconds, and a tag for grouping."""

    name: str
    seconds: float
    tag: str = ""


@dataclass
class EmulatedDevice:
    """A single emulated GPU with its own virtual clock."""

    cost_model: CostModel = field(default_factory=CostModel)
    device_id: int = 0
    clock: float = 0.0
    records: list[KernelRecord] = field(default_factory=list)

    def _launch(self, name: str, seconds: float, tag: str) -> None:
        self.clock += seconds
        self.records.append(KernelRecord(name, seconds, tag))

    def reset(self) -> None:
        self.clock = 0.0
        self.records.clear()

    def elapsed(self, tag: str | None = None) -> float:
        if tag is None:
            return self.clock
        return sum(r.seconds for r in self.records if r.tag == tag)

    # -- kernels ---------------------------------------------------------------
    def spmm_csr(self, a: CSRMatrix, b: np.ndarray, *, tag: str = "spmm") -> np.ndarray:
        wl = SpmmWorkload.from_csr(a, b.shape[1])
        self._launch("csr_spmm", self.cost_model.time_csr_spmm(wl), tag)
        return csr_spmm(a, b)

    def spmm_venom(self, a: VNMCompressed, b: np.ndarray, *, tag: str = "spmm") -> np.ndarray:
        self._launch("venom_spmm", self.cost_model.time_venom_spmm(a, b.shape[1]), tag)
        return venom_spmm(a, b)

    def spmm_nm(self, a: NMCompressed, b: np.ndarray, *, tag: str = "spmm") -> np.ndarray:
        self._launch("nm_spmm", self.cost_model.time_nm_spmm(a, b.shape[1]), tag)
        return nm_spmm(a, b)

    def spmm_hybrid(self, a: HybridVNM, b: np.ndarray, *, tag: str = "spmm") -> np.ndarray:
        self._launch("hybrid_spmm", a.model_time(self.cost_model, b.shape[1]), tag)
        return a.spmm(b)

    def spmm(self, a, b: np.ndarray, *, tag: str = "spmm") -> np.ndarray:
        """Launch the SpMM backend registered for ``a``'s format.

        One registry lookup supplies the kernel, the cost-model entry, and
        the record label — any format registered via
        :func:`repro.pipeline.registry.register_backend` (including
        third-party ones) runs on the virtual clock without device changes.
        """
        from ..pipeline.registry import backend_for, run_kernel  # lazy: registry imports kernels

        backend = backend_for(a)
        seconds = 0.0
        if backend.model_time is not None:
            seconds = backend.model_time(self.cost_model, a, b.shape[1])
        self._launch(backend.kernel_name or backend.name, seconds, tag)
        # run_kernel classes kernel failures as BackendExecutionError and
        # honours the fault-injection hooks, same as host-side dispatch.
        return run_kernel(backend, a, b)

    def gemm(self, a: np.ndarray, b: np.ndarray, *, tensor_core: bool = True, tag: str = "gemm") -> np.ndarray:
        m, k = a.shape
        n = b.shape[1]
        self._launch(
            "dense_gemm", self.cost_model.time_dense_gemm(m, k, n, tensor_core=tensor_core), tag
        )
        return a @ b

    def elementwise(self, x: np.ndarray, fn, *, tag: str = "elementwise") -> np.ndarray:
        self._launch("elementwise", self.cost_model.time_elementwise(x.size), tag)
        return fn(x)
