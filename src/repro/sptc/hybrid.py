"""Hybrid V:N:M + residual splitting.

A reordered matrix occasionally retains a handful of pattern violations
(the paper reports 98–100% — not always 100% — vector-level violation
removal).  To keep the SPTC pipeline lossless in those cases, the matrix is
split into a conforming part (compressed to V:N:M and run on the SPTC path)
plus a tiny CSR *residual* holding the overflow entries (run on the CUDA-core
path).  SpMM results add back exactly; the residual's cost-model time is
charged alongside the SPTC kernel's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.patterns import VNMPattern
from .conformance import topn_keep_mask
from .costmodel import CostModel, SpmmWorkload
from .csr import CSRMatrix
from .venom import VNMCompressed

__all__ = ["HybridVNM", "split_to_pattern", "split_csr_to_pattern"]


def split_csr_to_pattern(csr: CSRMatrix, pattern: VNMPattern) -> tuple[CSRMatrix, CSRMatrix]:
    """Sparse-path equivalent of :func:`split_to_pattern`.

    Works per meta-block on the CSR coordinates: ranks each tile's live
    columns by magnitude mass (keep top-k), then each row panel's surviving
    entries by magnitude (keep top-N).  Returns (conforming, residual) CSR
    matrices whose sum is exactly the input.
    """
    n_rows, n_cols = csr.shape
    v, n, m, k = pattern.v, pattern.n, pattern.m, pattern.k
    n_segs = (n_cols + m - 1) // m
    rows, cols, data = csr.to_coo()
    if rows.size == 0:
        empty = CSRMatrix.from_coo(rows, cols, data, csr.shape)
        return empty, CSRMatrix.from_coo(rows, cols, data, csr.shape)
    tile_key = (rows // v) * np.int64(n_segs) + (cols // m)
    lcol = cols % m

    # Column mass per (tile, lcol) pair.
    o1 = np.lexsort((lcol, tile_key))
    tk1, lc1, dat1 = tile_key[o1], lcol[o1], np.abs(data[o1])
    pair_start = np.ones(tk1.size, dtype=bool)
    pair_start[1:] = (tk1[1:] != tk1[:-1]) | (lc1[1:] != lc1[:-1])
    pair_id = np.cumsum(pair_start) - 1
    starts = np.nonzero(pair_start)[0]
    mass = np.add.reduceat(dat1, starts)
    pair_tile = tk1[pair_start]
    # Rank pairs within each tile by (-mass, lcol): stable column selection.
    op = np.lexsort((lc1[pair_start], -mass, pair_tile))
    ranked_tile = pair_tile[op]
    rstart = np.ones(ranked_tile.size, dtype=bool)
    rstart[1:] = ranked_tile[1:] != ranked_tile[:-1]
    first = np.repeat(np.nonzero(rstart)[0], np.diff(np.append(np.nonzero(rstart)[0], ranked_tile.size)))
    rank_sorted = np.arange(ranked_tile.size) - first
    col_rank = np.empty(pair_tile.size, dtype=np.int64)
    col_rank[op] = rank_sorted
    keep_pair = col_rank < k
    keep1 = keep_pair[pair_id]  # per non-zero, in o1 order

    keep = np.empty(rows.size, dtype=bool)
    keep[o1] = keep1

    # Horizontal: among kept entries, keep top-N magnitude per (row, seg).
    # Shared with the row segmenter (repro.perf.segment) via conformance.
    final_keep = topn_keep_mask(rows, cols, data, n=n, m=m, n_segs=n_segs, keep=keep)

    conforming = CSRMatrix.from_coo(rows[final_keep], cols[final_keep], data[final_keep], csr.shape)
    residual = CSRMatrix.from_coo(rows[~final_keep], cols[~final_keep], data[~final_keep], csr.shape)
    return conforming, residual


def split_to_pattern(a: np.ndarray, pattern: VNMPattern) -> tuple[np.ndarray, np.ndarray]:
    """Split ``a = conforming + residual`` with the conforming part V:N:M-valid.

    Per meta-block, keep the ``k`` columns with the largest magnitude mass and
    per row the ``N`` largest entries among them; everything else moves to the
    residual.  The split is exact (no values are altered) — only placement
    changes, unlike pruning which discards the overflow.
    """
    a = np.asarray(a, dtype=np.float64)
    n_rows, n_cols = a.shape
    v, n, m, k = pattern.v, pattern.n, pattern.m, pattern.k
    n_trows = (n_rows + v - 1) // v
    n_segs = (n_cols + m - 1) // m
    padded = np.zeros((n_trows * v, n_segs * m), dtype=np.float64)
    padded[:n_rows, :n_cols] = a
    tiles = padded.reshape(n_trows, v, n_segs, m).transpose(0, 2, 1, 3)  # (tr, ts, v, m)

    # Vertical: keep the top-k columns per tile by total magnitude.
    col_mass = np.abs(tiles).sum(axis=2)  # (tr, ts, m)
    col_rank = np.argsort(np.argsort(-col_mass, axis=2, kind="stable"), axis=2)
    col_keep = col_rank < k  # (tr, ts, m)
    keep = np.broadcast_to(col_keep[:, :, None, :], tiles.shape).copy()

    # Horizontal: among kept columns, keep the N largest per row.
    masked = np.where(keep, np.abs(tiles), -1.0)
    row_rank = np.argsort(np.argsort(-masked, axis=3, kind="stable"), axis=3)
    keep &= row_rank < n

    conforming_tiles = np.where(keep, tiles, 0.0)
    residual_tiles = np.where(keep, 0.0, tiles)
    def untile(t):
        return t.transpose(0, 2, 1, 3).reshape(n_trows * v, n_segs * m)[:n_rows, :n_cols]

    return untile(conforming_tiles), untile(residual_tiles)


@dataclass
class HybridVNM:
    """A lossless SPTC operand: V:N:M main part plus CSR residual."""

    main: VNMCompressed
    residual: CSRMatrix | None

    @classmethod
    def compress(cls, a: np.ndarray, pattern: VNMPattern) -> "HybridVNM":
        conforming, residual = split_to_pattern(a, pattern)
        main = VNMCompressed.compress(conforming, pattern)
        res = CSRMatrix.from_dense(residual) if np.any(residual) else None
        return cls(main, res)

    @classmethod
    def compress_csr(cls, csr: CSRMatrix, pattern: VNMPattern) -> "HybridVNM":
        """Sparse-path compression — never densifies the operand."""
        conforming, residual = split_csr_to_pattern(csr, pattern)
        main = VNMCompressed.compress_csr(conforming, pattern)
        return cls(main, residual if residual.nnz else None)

    @property
    def shape(self) -> tuple[int, int]:
        return self.main.shape

    @property
    def pattern(self) -> VNMPattern:
        return self.main.pattern

    @property
    def residual_nnz(self) -> int:
        return 0 if self.residual is None else self.residual.nnz

    def residual_fraction(self) -> float:
        total = int((self.main.values != 0).sum()) + self.residual_nnz
        return self.residual_nnz / total if total else 0.0

    def decompress(self) -> np.ndarray:
        out = self.main.decompress()
        if self.residual is not None:
            out = out + self.residual.to_dense()
        return out

    def spmm(self, b: np.ndarray) -> np.ndarray:
        out = self.main.spmm(b)
        if self.residual is not None:
            out = out + self.residual.matmat(b)
        return out

    def model_time(self, cost_model: CostModel, h: int) -> float:
        t = cost_model.time_venom_spmm(self.main, h)
        if self.residual is not None:
            t += cost_model.time_csr_spmm(SpmmWorkload.from_csr(self.residual, h))
        return t
