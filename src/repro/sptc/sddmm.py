"""SDDMM — sampled dense-dense matrix multiplication.

The second core sparse kernel of GNN frameworks (attention models like GAT
compute per-edge scores ``S[i,j] = <Q[i], K[j]>`` only where an edge
exists).  The paper optimizes SpMM; SDDMM is the natural companion and uses
the same V:N:M structure: a conforming sparsity pattern lets the tile
kernel compute V×k dense panels per meta-block instead of per-edge gathers.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix
from .venom import VNMCompressed

__all__ = ["csr_sddmm", "venom_sddmm"]


def csr_sddmm(pattern: CSRMatrix, q: np.ndarray, k: np.ndarray) -> CSRMatrix:
    """Per-edge dot products on a CSR pattern: ``out[i,j] = <q[i], k[j]>``.

    The baseline CUDA-core structure: one irregular gather pair per non-zero.
    The stored values of ``pattern`` scale the result (pass ones for the pure
    dot products).
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    if q.shape[0] != pattern.shape[0] or k.shape[0] != pattern.shape[1]:
        raise ValueError("Q/K row counts must match the pattern shape")
    if q.shape[1] != k.shape[1]:
        raise ValueError("Q and K must share the feature dimension")
    rows, cols, data = pattern.to_coo()
    scores = np.einsum("ef,ef->e", q[rows], k[cols]) * data
    return CSRMatrix(pattern.indptr.copy(), pattern.indices.copy(), scores, pattern.shape)


def venom_sddmm(a: VNMCompressed, q: np.ndarray, k: np.ndarray) -> VNMCompressed:
    """Tile-structured SDDMM: scores computed per meta-block panel.

    For each stored tile, the kernel forms the V×k panel of dot products
    between the tile's Q rows and its ≤k live K columns — dense tensor-core
    shaped work — then keeps the slots the metadata selects.  Returns a new
    compressed operand whose values are ``old_value * <q_row, k_col>``.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    if q.shape[0] != a.shape[0] or k.shape[0] != a.shape[1]:
        raise ValueError("Q/K row counts must match the operand shape")
    if q.shape[1] != k.shape[1]:
        raise ValueError("Q and K must share the feature dimension")
    v = a.pattern.v
    if a.n_tiles == 0:
        return VNMCompressed(
            a.pattern, a.shape, a.tile_ptr.copy(), a.tile_seg.copy(),
            a.col_ids.copy(), a.values.copy(), a.meta.copy(), a.n_live_cols,
        )
    padded_k = np.zeros((max(k.shape[0], int(a.col_ids.max(initial=0)) + 1), k.shape[1]))
    padded_k[: k.shape[0]] = k
    padded_q = np.zeros((a.n_tile_rows * v, q.shape[1]))
    padded_q[: q.shape[0]] = q

    tile_rows = np.repeat(np.arange(a.n_tile_rows), np.diff(a.tile_ptr))
    # Q panel per tile: (n_tiles, V, F); K panel per tile: (n_tiles, k, F).
    q_rows = tile_rows[:, None] * v + np.arange(v)[None, :]
    q_panel = padded_q[q_rows]                      # (T, V, F)
    k_panel = padded_k[a.col_ids]                   # (T, k, F)
    scores = np.einsum("tvf,tkf->tvk", q_panel, k_panel)  # dense panel per tile
    picked = np.take_along_axis(scores, a.meta.astype(np.int64), axis=2)  # (T, V, N)
    new_values = a.values * picked
    return VNMCompressed(
        a.pattern, a.shape, a.tile_ptr.copy(), a.tile_seg.copy(),
        a.col_ids.copy(), new_values, a.meta.copy(), a.n_live_cols,
    )
