"""Functional emulation of the SPTC ``mma.sp.sync`` warp instruction.

The paper's kernels issue ``mma.sp.sync`` with the default ``m16n8k32``
shape: a 16×32 operand A that is 2:4-sparse (stored as 16×16 values plus
2-bit metadata selecting each value's position inside its 4-wide group), a
dense 32×8 operand B, and a 16×8 accumulator C.  This module reproduces the
instruction's *semantics* — the hardware's dynamic non-zero compaction — so
kernels built on it are numerically exact; the *timing* lives in
:mod:`repro.sptc.costmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MmaShape", "MMA_M16N8K32", "mma_sp", "compress_tile_2to4", "expand_tile_2to4"]


@dataclass(frozen=True)
class MmaShape:
    """``m × n × k`` tile shape of one sparse MMA instruction."""

    m: int
    n: int
    k: int
    sparsity_n: int = 2
    sparsity_m: int = 4

    @property
    def packed_k(self) -> int:
        """Stored (compressed) K extent of operand A."""
        return self.k * self.sparsity_n // self.sparsity_m

    def __str__(self) -> str:
        return f"m{self.m}n{self.n}k{self.k}"


MMA_M16N8K32 = MmaShape(16, 8, 32)


def compress_tile_2to4(a: np.ndarray, shape: MmaShape = MMA_M16N8K32) -> tuple[np.ndarray, np.ndarray]:
    """Compress a conforming ``m × k`` tile into (values, metadata).

    ``values`` is ``m × packed_k``; ``meta`` holds, per value, its position
    (0..sparsity_m-1) within its group — the 2-bit hardware metadata.
    Raises ``ValueError`` if any group exceeds the N:M budget.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.shape != (shape.m, shape.k):
        raise ValueError(f"tile must be {shape.m}x{shape.k}, got {a.shape}")
    sn, sm = shape.sparsity_n, shape.sparsity_m
    groups = a.reshape(shape.m, shape.k // sm, sm)
    if ((groups != 0).sum(axis=2) > sn).any():
        raise ValueError(f"tile violates {sn}:{sm} sparsity")
    order = np.argsort(groups == 0, axis=2, kind="stable")
    meta = order[:, :, :sn].astype(np.uint8)
    values = np.take_along_axis(groups, order[:, :, :sn], axis=2)
    return values.reshape(shape.m, shape.packed_k), meta.reshape(shape.m, shape.packed_k)


def expand_tile_2to4(values: np.ndarray, meta: np.ndarray, shape: MmaShape = MMA_M16N8K32) -> np.ndarray:
    """Inverse of :func:`compress_tile_2to4`."""
    sn, sm = shape.sparsity_n, shape.sparsity_m
    out = np.zeros((shape.m, shape.k), dtype=np.float64)
    groups = out.reshape(shape.m, shape.k // sm, sm)
    v = values.reshape(shape.m, shape.k // sm, sn)
    p = meta.reshape(shape.m, shape.k // sm, sn).astype(np.int64)
    np.put_along_axis(groups, p, v, axis=2)
    return out


def mma_sp(
    values: np.ndarray,
    meta: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    shape: MmaShape = MMA_M16N8K32,
) -> np.ndarray:
    """Sparse fused multiply-accumulate: ``C += A_sparse @ B``.

    ``values``/``meta`` are the compressed operand from
    :func:`compress_tile_2to4`; ``b`` is the dense ``k × n`` operand; ``c``
    the ``m × n`` accumulator (zeros if omitted).  Like the hardware, the
    computation reads only the packed non-zero slots and uses the metadata
    to select the matching B rows.
    """
    values = np.asarray(values, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (shape.k, shape.n):
        raise ValueError(f"B must be {shape.k}x{shape.n}, got {b.shape}")
    if values.shape != (shape.m, shape.packed_k) or meta.shape != values.shape:
        raise ValueError("compressed operand shape mismatch")
    out = np.zeros((shape.m, shape.n), dtype=np.float64) if c is None else np.array(c, dtype=np.float64)
    sn, sm = shape.sparsity_n, shape.sparsity_m
    group_base = np.repeat(np.arange(shape.k // sm) * sm, sn)  # (packed_k,)
    rows_of_b = group_base[None, :] + meta.astype(np.int64)  # (m, packed_k)
    out += np.einsum("mj,mjn->mn", values, b[rows_of_b])
    return out
