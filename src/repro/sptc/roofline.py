"""Roofline analysis of the emulated kernels.

Classifies each SpMM configuration as memory- or compute-bound under the
A100-class parameters and reports the arithmetic intensity (FLOP/byte) the
cost model implies.  This is the analysis layer that explains *why* the
paper's speedups look the way they do: CSR SpMM sits far below the CUDA-core
roof at any intensity (irregularity-limited), while the SPTC kernels climb
the memory roof and saturate at tensor-core throughput once H is large.
"""

from __future__ import annotations

from dataclasses import dataclass

from .costmodel import A100Params, CostModel, DEFAULT_PARAMS, SpmmWorkload
from .csr import CSRMatrix
from .venom import VNMCompressed

__all__ = ["RooflinePoint", "csr_roofline", "venom_roofline", "roofline_series"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel configuration on the roofline plane."""

    kernel: str
    h: int
    flops: float
    bytes_moved: float
    modelled_seconds: float

    @property
    def arithmetic_intensity(self) -> float:
        """FLOP per byte of modelled traffic."""
        return self.flops / self.bytes_moved if self.bytes_moved else 0.0

    @property
    def achieved_flops(self) -> float:
        return self.flops / self.modelled_seconds if self.modelled_seconds else 0.0

    def bound(self, params: A100Params = DEFAULT_PARAMS, *, peak: float | None = None) -> str:
        """"memory" or "compute", by which roof the point sits under."""
        roof_peak = peak if peak is not None else params.sptc_flops
        ridge = roof_peak / params.mem_bandwidth
        return "memory" if self.arithmetic_intensity < ridge else "compute"


def csr_roofline(csr: CSRMatrix, h: int, model: CostModel | None = None) -> RooflinePoint:
    """Roofline point of the CUDA-core CSR SpMM on this operand."""
    cm = model or CostModel()
    p = cm.params
    wl = SpmmWorkload.from_csr(csr, h)
    flops = 2.0 * wl.nnz * h
    b_bytes = wl.n_cols * h * p.value_bytes_dense
    miss = cm._miss_fraction(b_bytes, p.csr_gather_miss_floor)
    traffic = (
        wl.nnz * (4 + p.value_bytes_dense)
        + (wl.n_rows + 1) * 4
        + wl.nnz * h * p.value_bytes_dense * miss
        + wl.n_rows * h * p.value_bytes_dense
    )
    return RooflinePoint("csr", h, flops, traffic, cm.time_csr_spmm(wl))


def venom_roofline(a: VNMCompressed, h: int, model: CostModel | None = None) -> RooflinePoint:
    """Roofline point of the SPTC V:N:M SpMM on this operand."""
    cm = model or CostModel()
    p = cm.params
    flops = 2.0 * a.values.size * h
    live = a.n_live_cols if a.n_live_cols else a.n_tiles * a.pattern.k
    b_bytes = a.shape[1] * h * p.value_bytes_tc
    miss = cm._miss_fraction(b_bytes, p.sptc_gather_miss_floor) * p.sptc_locality
    traffic = (
        a.storage_bytes()
        + live * h * p.value_bytes_tc * miss
        + a.shape[0] * h * p.value_bytes_tc
    )
    return RooflinePoint("venom", h, flops, traffic, cm.time_venom_spmm(a, h))


def roofline_series(
    csr: CSRMatrix,
    venom: VNMCompressed,
    hs: tuple[int, ...] = (64, 128, 256, 512),
    model: CostModel | None = None,
) -> list[RooflinePoint]:
    """Both kernels' points across the H sweep (for the analysis bench)."""
    out: list[RooflinePoint] = []
    for h in hs:
        out.append(csr_roofline(csr, h, model))
        out.append(venom_roofline(venom, h, model))
    return out
