"""Analytical A100-class timing model for the emulated kernels.

The paper's performance results come from real A100 GPUs; this module is the
documented substitution (see DESIGN.md §3).  It models the two mechanisms the
paper attributes the speedups to:

* **CSR SpMM on CUDA cores** is bound by irregular memory access: effective
  throughput is a small fraction of peak (measured cuSPARSE SpMM on scattered
  graphs reaches a few hundred GFLOP/s), worsened by row-length imbalance,
  plus streaming traffic for the index/value arrays and the gathered B rows
  (with an L2-style reuse model).
* **SPTC SpMM** streams compact V:N:M tiles through ``mma.sp`` at tensor-core
  throughput, paying for every *stored* slot — including the padding slots in
  mostly-empty meta-blocks — plus structured (post-reorder, cache-friendly)
  fetches of each tile's live B columns.  The padding charge is what makes
  ultra-sparse scattered matrices slower after conversion to large-V
  patterns, reproducing the paper's slowdown-tail observation (see the
  selection-policy ablation bench).

Absolute times are not claims; ratios (who wins, by what factor, where the
crossover sits) are the reproduced quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

import math

from .csr import CSRMatrix
from .nm_format import NMCompressed
from .venom import VNMCompressed

__all__ = ["A100Params", "Calibration", "CostModel", "SpmmWorkload", "DEFAULT_PARAMS"]


class Calibration:
    """Running predicted-vs-measured accounting for one cost model.

    Serving (with metrics enabled) feeds every kernel launch's
    ``(predicted, measured)`` pair in through :meth:`observe`; the running
    geometric-mean ratio becomes a multiplicative correction
    (:meth:`calibrated`) and the mean relative residual is exported as the
    ``costmodel_residual`` gauge — the model's accuracy is continuously
    observable instead of silently drifting.
    """

    __slots__ = ("count", "_sum_log_ratio", "_sum_residual", "last_predicted", "last_measured")

    def __init__(self):
        self.count = 0
        self._sum_log_ratio = 0.0
        self._sum_residual = 0.0
        self.last_predicted = 0.0
        self.last_measured = 0.0

    def observe(self, predicted: float, measured: float) -> None:
        """Record one ``(predicted, measured)`` seconds pair."""
        if predicted <= 0.0 or measured <= 0.0:
            return
        self.count += 1
        self._sum_log_ratio += math.log(measured / predicted)
        self._sum_residual += (measured - predicted) / predicted
        self.last_predicted = predicted
        self.last_measured = measured

    @property
    def factor(self) -> float:
        """Geometric-mean ``measured / predicted`` ratio (1.0 when empty)."""
        if self.count == 0:
            return 1.0
        return math.exp(self._sum_log_ratio / self.count)

    @property
    def mean_residual(self) -> float:
        """Mean relative residual ``(measured - predicted) / predicted``."""
        if self.count == 0:
            return 0.0
        return self._sum_residual / self.count

    def calibrated(self, predicted: float) -> float:
        """``predicted`` corrected by the running measured/predicted factor."""
        return predicted * self.factor

    def summary(self) -> dict:
        return {
            "count": self.count,
            "factor": self.factor,
            "mean_residual": self.mean_residual,
            "last_predicted": self.last_predicted,
            "last_measured": self.last_measured,
        }


@dataclass(frozen=True)
class A100Params:
    """Machine parameters; defaults approximate one NVIDIA A100-40GB."""

    mem_bandwidth: float = 1.555e12       # bytes/s HBM2e
    l2_bytes: float = 20e6                # effective reuse window (half of 40MB L2)
    kernel_launch: float = 4e-6           # seconds per kernel
    cuda_spmm_flops: float = 4.5e11       # effective FLOP/s of CSR SpMM on CUDA cores
    sptc_flops: float = 1.6e13            # effective FLOP/s of mma.sp pipelines
    tc_dense_flops: float = 1.9e14        # effective dense tensor-core FLOP/s
    cuda_dense_flops: float = 1.2e13      # effective dense FP32 CUDA-core FLOP/s
    csr_gather_miss_floor: float = 0.08   # min fraction of gathers missing L2
    sptc_gather_miss_floor: float = 0.05
    # Structured-access traffic discount: after reordering, tiles in the same
    # tile row share live columns and adjacent tile rows reference nearby
    # columns, so B-row fetches hit L2 far more often than CSR's scattered
    # gathers do.
    sptc_locality: float = 0.25
    imbalance_weight: float = 0.1         # row-length skew penalty weight
    value_bytes_dense: int = 4            # fp32 on CUDA cores
    value_bytes_tc: int = 2               # fp16 operands on tensor cores


DEFAULT_PARAMS = A100Params()


@dataclass(frozen=True)
class SpmmWorkload:
    """Shape summary of one SpMM ``A (n_rows × n_cols, sparse) @ B (n_cols × h)``."""

    n_rows: int
    n_cols: int
    nnz: int
    h: int
    max_degree: int = 1
    avg_degree: float = 1.0

    @classmethod
    def from_csr(cls, a: CSRMatrix, h: int) -> "SpmmWorkload":
        deg = a.row_nnz()
        return cls(
            a.shape[0], a.shape[1], a.nnz, h,
            int(deg.max(initial=1)), float(deg.mean()) if deg.size else 1.0,
        )


class CostModel:
    """Timing oracle shared by the emulated device and the benchmarks."""

    def __init__(self, params: A100Params = DEFAULT_PARAMS):
        self.params = params
        self.calibration = Calibration()

    def with_params(self, **overrides) -> "CostModel":
        return CostModel(replace(self.params, **overrides))

    # -- helpers -------------------------------------------------------------
    def _miss_fraction(self, b_bytes: float, floor: float) -> float:
        return float(np.clip(b_bytes / self.params.l2_bytes, floor, 1.0))

    def _imbalance_penalty(self, wl: SpmmWorkload) -> float:
        skew = wl.max_degree / max(wl.avg_degree, 1e-9)
        return 1.0 + self.params.imbalance_weight * float(np.log2(1.0 + skew))

    # -- CSR on CUDA cores -----------------------------------------------------
    def time_csr_spmm(self, wl: SpmmWorkload) -> float:
        p = self.params
        flops = 2.0 * wl.nnz * wl.h
        compute = flops / p.cuda_spmm_flops * self._imbalance_penalty(wl)
        b_bytes = wl.n_cols * wl.h * p.value_bytes_dense
        miss = self._miss_fraction(b_bytes, p.csr_gather_miss_floor)
        traffic = (
            wl.nnz * (4 + p.value_bytes_dense)          # column index + value stream
            + (wl.n_rows + 1) * 4                        # indptr
            + wl.nnz * wl.h * p.value_bytes_dense * miss  # gathered B rows
            + wl.n_rows * wl.h * p.value_bytes_dense      # C write
        )
        return p.kernel_launch + max(compute, traffic / p.mem_bandwidth)

    # -- SPTC structured kernels -------------------------------------------------
    def time_venom_spmm(self, a: VNMCompressed, h: int) -> float:
        live = a.n_live_cols if a.n_live_cols else a.n_tiles * a.pattern.k
        return self._time_sptc(
            n_rows=a.shape[0],
            n_cols=a.shape[1],
            stored_slots=a.values.size,
            live_b_rows=live,
            a_bytes=a.storage_bytes(),
            h=h,
        )

    def time_nm_spmm(self, a: NMCompressed, h: int) -> float:
        return self._time_sptc(
            n_rows=a.shape[0],
            n_cols=a.shape[1],
            stored_slots=a.values.size,
            live_b_rows=a.values.size,
            a_bytes=a.storage_bytes(),
            h=h,
        )

    def _time_sptc(
        self, *, n_rows: int, n_cols: int, stored_slots: int,
        live_b_rows: int, a_bytes: int, h: int,
    ) -> float:
        p = self.params
        flops = 2.0 * stored_slots * h  # every stored slot computes, padding included
        compute = flops / p.sptc_flops
        b_bytes = n_cols * h * p.value_bytes_tc
        miss = self._miss_fraction(b_bytes, p.sptc_gather_miss_floor) * p.sptc_locality
        traffic = (
            a_bytes
            + live_b_rows * h * p.value_bytes_tc * miss  # per-tile live-column B fetch
            + n_rows * h * p.value_bytes_tc               # C write
        )
        return p.kernel_launch + max(compute, traffic / p.mem_bandwidth)

    def time_bsr_spmm(self, a, h: int) -> float:
        """Dense-block SpMM over BSR: every stored block multiplies densely.

        Same mechanism as the TC-GNN model — block² slots compute regardless
        of the sparsity inside each block, and the full dense block values
        stream from memory.
        """
        p = self.params
        stored = a.blocks.size
        flops = 2.0 * stored * h
        compute = flops / p.tc_dense_flops
        b_bytes = a.shape[1] * h * p.value_bytes_tc
        miss = self._miss_fraction(b_bytes, p.sptc_gather_miss_floor) * p.sptc_locality
        traffic = (
            a.storage_bytes()
            + a.bcol_ind.size * a.block * h * p.value_bytes_tc * miss
            + a.shape[0] * h * p.value_bytes_tc
        )
        return p.kernel_launch + max(compute, traffic / p.mem_bandwidth)

    def time_sell_spmm(self, a, h: int) -> float:
        """SELL-C-σ SpMM on CUDA cores: regular slices, padded lanes compute.

        Padding removes the row-length imbalance penalty CSR pays but every
        padded slot still multiplies and its column index still streams.
        """
        p = self.params
        flops = 2.0 * a.padded_entries * h
        compute = flops / p.cuda_spmm_flops
        b_bytes = a.shape[1] * h * p.value_bytes_dense
        miss = self._miss_fraction(b_bytes, p.csr_gather_miss_floor)
        traffic = (
            a.storage_bytes()
            + a.padded_entries * h * p.value_bytes_dense * miss
            + a.shape[0] * h * p.value_bytes_dense
        )
        return p.kernel_launch + max(compute, traffic / p.mem_bandwidth)

    def time_tcgnn_spmm(self, a, h: int) -> float:
        """Dense-tensor-core SpMM over a TC-GNN-style blocked operand.

        Every stored tile runs a dense MMA (tile² slots compute regardless of
        sparsity inside the tile) and the full dense tile values stream from
        memory — the mechanism behind the format's memory-pressure problem.
        """
        p = self.params
        stored = a.blocks.size
        flops = 2.0 * stored * h
        compute = flops / p.tc_dense_flops
        b_bytes = a.shape[1] * h * p.value_bytes_tc
        miss = self._miss_fraction(b_bytes, p.sptc_gather_miss_floor) * p.sptc_locality
        traffic = (
            a.storage_bytes()
            + a.col_map.size * h * p.value_bytes_tc * miss
            + a.shape[0] * h * p.value_bytes_tc
        )
        return p.kernel_launch + max(compute, traffic / p.mem_bandwidth)

    # -- dense kernels ----------------------------------------------------------
    def time_dense_gemm(self, m: int, k: int, n: int, *, tensor_core: bool = True) -> float:
        p = self.params
        flops = 2.0 * m * k * n
        vb = p.value_bytes_tc if tensor_core else p.value_bytes_dense
        peak = p.tc_dense_flops if tensor_core else p.cuda_dense_flops
        traffic = (m * k + k * n + m * n) * vb
        return p.kernel_launch + max(flops / peak, traffic / p.mem_bandwidth)

    # -- element-wise / epilogue ---------------------------------------------------
    def time_elementwise(self, n_elements: int, *, reads: int = 1, writes: int = 1) -> float:
        p = self.params
        traffic = n_elements * p.value_bytes_dense * (reads + writes)
        return p.kernel_launch + traffic / p.mem_bandwidth

    # -- convenience ----------------------------------------------------------------
    def speedup_csr_to_venom(self, csr: CSRMatrix, venom: VNMCompressed, h: int) -> float:
        wl = SpmmWorkload.from_csr(csr, h)
        return self.time_csr_spmm(wl) / self.time_venom_spmm(venom, h)
