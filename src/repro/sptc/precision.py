"""Mixed-precision emulation of the tensor-core datapath.

The reordering itself is lossless, but the SPTC hardware multiplies fp16
operands into fp32 accumulators.  This module emulates that datapath so the
numeric side of "lossless" can be quantified: values and gathered B rows are
rounded to fp16, products are exact in fp32 (an fp16×fp16 product is
representable), and accumulation rounds in fp32 — exactly the `mma.sp`
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .venom import VNMCompressed

__all__ = [
    "quantize_fp16",
    "venom_spmm_fp16",
    "PrecisionReport",
    "precision_report",
    "row_scaled_error",
    "FP32_ROW_SCALED_BOUND",
]

# Acceptance bound for the engine's opt-in fp32 compute path: fp32 keeps
# ~7 decimal digits and the serving reductions span at most a few thousand
# terms, so a healthy fp32 kernel stays orders of magnitude below 1e-4 of
# each row's scale.  Exceeding it means the operand's dynamic range defeats
# fp32 and the engine must stay on float64.
FP32_ROW_SCALED_BOUND = 1e-4


def _row_scaled(exact: np.ndarray, approx: np.ndarray) -> np.ndarray:
    """Per-cell error normalized by each exact row's infinity norm.

    Rows whose exact output is (near) zero carry no signal to lose and are
    masked out rather than dividing by noise.
    """
    abs_err = np.abs(exact - approx)
    row_scale = np.maximum(np.abs(exact).max(axis=1, keepdims=True), 1e-30)
    scaled = abs_err / row_scale
    live_rows = np.abs(exact).max(axis=1) > 1e-12
    return scaled[live_rows] if live_rows.any() else np.zeros((1, 1))


def row_scaled_error(exact: np.ndarray, approx: np.ndarray) -> float:
    """Maximum row-scaled error of ``approx`` against ``exact``.

    The scalar form of the :class:`PrecisionReport` normalization, used by
    :func:`repro.perf.engine.fp32_within_bound` to gate the engine's fp32
    compute path against :data:`FP32_ROW_SCALED_BOUND`.
    """
    return float(_row_scaled(np.asarray(exact), np.asarray(approx)).max(initial=0.0))


def quantize_fp16(x: np.ndarray) -> np.ndarray:
    """Round to the nearest fp16 value (returned as float64 for further math)."""
    return np.asarray(x, dtype=np.float64).astype(np.float16).astype(np.float64)


def venom_spmm_fp16(a: VNMCompressed, b: np.ndarray) -> np.ndarray:
    """V:N:M SpMM through the emulated fp16-multiply / fp32-accumulate path."""
    b = np.asarray(b, dtype=np.float64)
    if b.shape[0] != a.shape[1]:
        raise ValueError("inner dimension mismatch")
    v = a.pattern.v
    h = b.shape[1]
    padded_rows = max(b.shape[0], int(a.col_ids.max(initial=0)) + 1)
    if padded_rows == b.shape[0]:
        padded_b = b  # aligned: no zero-padded copy (see VNMCompressed.spmm)
    else:
        padded_b = np.zeros((padded_rows, h))
        padded_b[: b.shape[0]] = b
    if a.n_tiles == 0:
        return np.zeros((a.shape[0], h), dtype=np.float64)
    gather_cols = np.take_along_axis(
        a.col_ids[:, None, :].repeat(v, axis=1), a.meta.astype(np.int64), axis=2
    )
    vals16 = quantize_fp16(a.values).astype(np.float32)
    b16 = quantize_fp16(padded_b[gather_cols]).astype(np.float32)
    # fp16 products are exact in fp32; the einsum accumulates in fp32.
    contrib = np.einsum("tvn,tvnh->tvh", vals16, b16, dtype=np.float32)
    tile_rows = np.repeat(np.arange(a.n_tile_rows), np.diff(a.tile_ptr))
    out = np.zeros((a.n_tile_rows, v, h), dtype=np.float32)
    np.add.at(out, tile_rows, contrib)
    return out.reshape(a.n_tile_rows * v, h)[: a.shape[0]].astype(np.float64)


@dataclass
class PrecisionReport:
    """Error statistics of the fp16 path against the fp64 reference.

    Errors are normalized by each output row's infinity norm: element-wise
    relative error is meaningless where an exact output is incidentally near
    zero (catastrophic-cancellation cells), but row-scaled error measures
    how much of each row's signal the fp16 path loses.
    """

    max_abs_error: float
    max_row_scaled_error: float
    mean_row_scaled_error: float

    @property
    def within_fp16_expectations(self) -> bool:
        """fp16 has ~3 decimal digits; < 1% of the row scale is nominal."""
        return self.max_row_scaled_error < 1e-2


def precision_report(a: VNMCompressed, b: np.ndarray) -> PrecisionReport:
    """Compare the emulated fp16 datapath against exact fp64 SpMM."""
    exact = a.spmm(b)
    approx = venom_spmm_fp16(a, b)
    scaled = _row_scaled(exact, approx)
    return PrecisionReport(
        max_abs_error=float(np.abs(exact - approx).max(initial=0.0)),
        max_row_scaled_error=float(scaled.max(initial=0.0)),
        mean_row_scaled_error=float(scaled.mean()) if scaled.size else 0.0,
    )
