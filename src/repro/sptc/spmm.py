"""SpMM kernels over the supported operand formats.

All kernels are numerically exact and interchangeable; they differ in the
*access structure* the cost model charges for:

* :func:`csr_spmm` — cuSPARSE-style row-gather kernel on "CUDA cores": one
  irregular gather of a B row per non-zero.
* :func:`nm_spmm` / :func:`venom_spmm` — SPTC kernels: stream compressed
  operands tile by tile through the (emulated) ``mma.sp`` pipeline.
* :func:`dense_spmm` — dense reference.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix
from .nm_format import NMCompressed
from .venom import VNMCompressed

__all__ = ["csr_spmm", "nm_spmm", "venom_spmm", "dense_spmm", "spmm"]


def csr_spmm(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Baseline CSR SpMM (cuSPARSE ``CSR_ALG2`` / torchsparse structure)."""
    return a.matmat(b)


def nm_spmm(a: NMCompressed, b: np.ndarray) -> np.ndarray:
    """SPTC SpMM over the native N:M compressed operand."""
    return a.spmm(b)


def venom_spmm(a: VNMCompressed, b: np.ndarray) -> np.ndarray:
    """Spatha-style SpMM over the V:N:M compressed operand."""
    return a.spmm(b)


def dense_spmm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense reference multiply."""
    return np.asarray(a, dtype=np.float64) @ np.asarray(b, dtype=np.float64)


# Resolved lazily on the first call (the registry imports this module, so a
# top-level import would cycle), then cached so the per-request path pays a
# module-global load instead of an import-machinery round trip.
_dispatch_spmm = None


def spmm(a, b: np.ndarray) -> np.ndarray:
    """Dispatch on operand type via the pipeline backend registry."""
    global _dispatch_spmm
    if _dispatch_spmm is None:
        from ..pipeline.registry import dispatch_spmm

        _dispatch_spmm = dispatch_spmm
    return _dispatch_spmm(a, b)
