"""V:N:M (VENOM) compressed format and its structured SpMM.

The VENOM abstraction [11] generalizes hardware 2:4 sparsity: a matrix is a
grid of V×M *meta-blocks*; each non-empty block stores the ids of its ≤ k
live columns (k = 4 on current SPTC) plus an N:k compressed V×N value panel
with per-value 2-bit positions.  The hardware ``mma.sp`` consumes the inner
panels; the column-id indirection is the software abstraction layered on
top.  Storage is CSR-of-tiles: only non-empty meta-blocks are kept.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.patterns import VNMPattern

__all__ = ["VNMCompressed", "VNMFormatError"]


class VNMFormatError(ValueError):
    """Raised when a matrix does not conform to the requested V:N:M pattern."""


@dataclass
class VNMCompressed:
    """CSR-of-tiles V:N:M compressed matrix.

    Attributes
    ----------
    tile_ptr:
        ``(n_tile_rows + 1,)`` — CSR-style extent of each tile row.
    tile_seg:
        ``(n_tiles,)`` — segment (tile column) index of each stored tile.
    col_ids:
        ``(n_tiles, k)`` — global column ids of each tile's live columns,
        padded with the tile's first column (padding slots carry zero values).
    values / meta:
        ``(n_tiles, V, N)`` — compressed value panel and, per value, its
        position within the tile's ``col_ids`` (the 2-bit metadata).
    """

    pattern: VNMPattern
    shape: tuple[int, int]
    tile_ptr: np.ndarray
    tile_seg: np.ndarray
    col_ids: np.ndarray
    values: np.ndarray
    meta: np.ndarray
    # Total live (non-padding) columns across all tiles; the cost model
    # charges B-operand traffic for these, not for the full k per tile.
    n_live_cols: int = 0

    # -- construction ------------------------------------------------------
    @classmethod
    def compress(cls, a: np.ndarray, pattern: VNMPattern) -> "VNMCompressed":
        """Compress a dense conforming matrix; raises on pattern violations."""
        a = np.asarray(a, dtype=np.float64)
        n_rows, n_cols = a.shape
        v, n, m, k = pattern.v, pattern.n, pattern.m, pattern.k
        n_trows = (n_rows + v - 1) // v
        n_segs = (n_cols + m - 1) // m
        padded = np.zeros((n_trows * v, n_segs * m), dtype=np.float64)
        padded[:n_rows, :n_cols] = a
        tiles = padded.reshape(n_trows, v, n_segs, m).transpose(0, 2, 1, 3)  # (tr, ts, v, m)
        live = (tiles != 0).any(axis=2)  # (tr, ts, m)
        n_live = live.sum(axis=2)
        if (n_live > k).any():
            tr, ts = np.argwhere(n_live > k)[0]
            raise VNMFormatError(
                f"meta-block ({tr},{ts}) has {int(n_live[tr, ts])} live columns > k={k}"
            )
        row_nnz = (tiles != 0).sum(axis=3)
        if (row_nnz > n).any():
            tr, ts = np.argwhere((row_nnz > n).any(axis=2))[0]
            raise VNMFormatError(f"meta-block ({tr},{ts}) violates the {n}:{m} row constraint")

        keep = live.any(axis=2)  # non-empty tiles
        tr_idx, ts_idx = np.nonzero(keep)
        n_tiles = tr_idx.size
        tile_ptr = np.zeros(n_trows + 1, dtype=np.int64)
        np.add.at(tile_ptr, tr_idx + 1, 1)
        np.cumsum(tile_ptr, out=tile_ptr)

        # Select live column positions (pad with the tile's first column).
        live_kept = live[tr_idx, ts_idx]  # (n_tiles, m)
        order = np.argsort(~live_kept, axis=1, kind="stable")[:, :k]  # local cols
        pad_mask = np.take_along_axis(~live_kept, order, axis=1)
        order[pad_mask] = 0
        col_ids = ts_idx[:, None] * m + order  # global ids (may exceed n_cols in padding; values are 0)

        # Condense each tile to its k live columns, then N-compress the rows.
        tiles_kept = tiles[tr_idx, ts_idx]  # (n_tiles, v, m)
        condensed = np.take_along_axis(tiles_kept, order[:, None, :].repeat(v, axis=1), axis=2)
        condensed[pad_mask[:, None, :].repeat(v, axis=1)] = 0.0
        pos_order = np.argsort(condensed == 0, axis=2, kind="stable")[:, :, :n]
        meta = pos_order.astype(np.uint8)
        values = np.take_along_axis(condensed, pos_order, axis=2)

        return cls(
            pattern,
            (n_rows, n_cols),
            tile_ptr,
            ts_idx.astype(np.int64),
            col_ids.astype(np.int64),
            values,
            meta,
            n_live_cols=int(live_kept.sum()),
        )

    @classmethod
    def compress_csr(cls, csr, pattern: VNMPattern) -> "VNMCompressed":
        """Compress straight from CSR without densifying (O(nnz log nnz)).

        Group non-zeros into meta-blocks, rank each tile's live columns, and
        slot each value into its row's N-compressed panel — all with sorts and
        segmented cumulative counts, never materializing the dense matrix.
        """
        from .csr import CSRMatrix  # local import to avoid a cycle at module load

        assert isinstance(csr, CSRMatrix)
        n_rows, n_cols = csr.shape
        v, n, m, k = pattern.v, pattern.n, pattern.m, pattern.k
        n_trows = (n_rows + v - 1) // v
        n_segs = (n_cols + m - 1) // m
        rows, cols, data = csr.to_coo()
        if rows.size == 0:
            return cls(
                pattern, (n_rows, n_cols),
                np.zeros(n_trows + 1, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros((0, k), dtype=np.int64),
                np.zeros((0, v, n)),
                np.zeros((0, v, n), dtype=np.uint8),
                n_live_cols=0,
            )
        tile_key = (rows // v) * np.int64(n_segs) + (cols // m)
        lcol = cols % m
        rv = rows % v

        # Pass 1: live-column ranks per tile (sorted by tile, then local col).
        o1 = np.lexsort((rv, lcol, tile_key))
        tk1, lc1 = tile_key[o1], lcol[o1]
        tile_start = np.ones(tk1.size, dtype=bool)
        tile_start[1:] = tk1[1:] != tk1[:-1]
        pair_start = tile_start.copy()
        pair_start[1:] |= lc1[1:] != lc1[:-1]
        c = np.cumsum(pair_start) - 1  # global live-pair counter
        tile_first_c = np.repeat(c[tile_start], np.diff(np.append(np.nonzero(tile_start)[0], tk1.size)))
        rank1 = c - tile_first_c
        if rank1.max(initial=0) >= k:
            raise VNMFormatError(f"a meta-block has more than k={k} live columns")
        tile_index1 = np.cumsum(tile_start) - 1

        tiles_keys = tk1[tile_start]
        n_tiles = tiles_keys.size
        ts_idx = tiles_keys % n_segs
        tr_idx = tiles_keys // n_segs
        col_ids = np.broadcast_to((ts_idx * m)[:, None], (n_tiles, k)).copy()
        col_ids[tile_index1[pair_start], rank1[pair_start]] = ts_idx[tile_index1[pair_start]] * m + lc1[pair_start]

        # Per non-zero live rank, back in original order.
        live_rank = np.empty(rows.size, dtype=np.int64)
        live_rank[o1] = rank1

        # Pass 2: slot each value within its (tile, tile-row) panel.
        o2 = np.lexsort((lcol, rv, tile_key))
        tk2, rv2 = tile_key[o2], rv[o2]
        grp_start = np.ones(tk2.size, dtype=bool)
        grp_start[1:] = (tk2[1:] != tk2[:-1]) | (rv2[1:] != rv2[:-1])
        g = np.cumsum(grp_start) - 1
        grp_first = np.repeat(np.nonzero(grp_start)[0], np.diff(np.append(np.nonzero(grp_start)[0], tk2.size)))
        slot2 = np.arange(tk2.size) - grp_first
        if slot2.max(initial=0) >= n:
            raise VNMFormatError(f"a segment vector violates the {n}:{m} row constraint")
        del g

        tile_start2 = np.ones(tk2.size, dtype=bool)
        tile_start2[1:] = tk2[1:] != tk2[:-1]
        tile_index2 = np.cumsum(tile_start2) - 1

        values = np.zeros((n_tiles, v, n), dtype=np.float64)
        meta = np.zeros((n_tiles, v, n), dtype=np.uint8)
        values[tile_index2, rv2, slot2] = data[o2]
        meta[tile_index2, rv2, slot2] = live_rank[o2].astype(np.uint8)
        # Give padding slots distinct positions: fill with the slot index where
        # no value landed (keeps add-based decompression exact).
        pad = values == 0.0
        # Only padding slots after the last real value need care; real zeros
        # cannot exist because CSR stores non-zeros only.
        slot_grid = np.broadcast_to(np.arange(n, dtype=np.uint8), meta.shape)
        meta = np.where(pad, np.minimum(slot_grid, k - 1), meta)

        tile_ptr = np.zeros(n_trows + 1, dtype=np.int64)
        np.add.at(tile_ptr, tr_idx + 1, 1)
        np.cumsum(tile_ptr, out=tile_ptr)
        return cls(
            pattern, (n_rows, n_cols), tile_ptr, ts_idx.astype(np.int64),
            col_ids, values, meta, n_live_cols=int(pair_start.sum()),
        )

    # -- properties ----------------------------------------------------------
    @property
    def n_tiles(self) -> int:
        return int(self.tile_seg.shape[0])

    @property
    def n_tile_rows(self) -> int:
        return int(self.tile_ptr.shape[0] - 1)

    def storage_bytes(self, value_bytes: int = 2, meta_bits: int = 2, col_id_bytes: int = 4) -> int:
        """Modelled footprint: fp16 values, 2-bit metadata, 32-bit column ids."""
        return (
            self.values.size * value_bytes
            + (self.meta.size * meta_bits + 7) // 8
            + self.col_ids.size * col_id_bytes
            + self.tile_ptr.size * 8
            + self.tile_seg.size * 4
        )

    # -- numerics --------------------------------------------------------------
    def decompress(self) -> np.ndarray:
        v = self.pattern.v
        out = np.zeros((self.n_tile_rows * v, max(self.shape[1], int(self.col_ids.max(initial=0)) + 1)), dtype=np.float64)
        tile_rows = np.repeat(np.arange(self.n_tile_rows), np.diff(self.tile_ptr))
        cols = np.take_along_axis(
            self.col_ids[:, None, :].repeat(v, axis=1), self.meta.astype(np.int64), axis=2
        )  # (n_tiles, v, n)
        rows = tile_rows[:, None, None] * v + np.arange(v)[None, :, None]
        # Padding slots hold zero values at possibly duplicated positions; add
        # (instead of assign) is safe because live positions are distinct.
        np.add.at(out, (rows, cols), self.values)
        return out[: self.shape[0], : self.shape[1]]

    def spmm(self, b: np.ndarray) -> np.ndarray:
        """Structured SpMM ``A @ B`` reading only compressed data.

        Per tile: gather the ≤k live B rows via ``col_ids``, then contract the
        V×N value panel against the metadata-selected rows — the software
        analogue of looping ``mma.sp`` over meta-blocks.
        """
        b = np.asarray(b, dtype=np.float64)
        if b.shape[0] != self.shape[1]:
            raise ValueError("inner dimension mismatch")
        v = self.pattern.v
        h = b.shape[1]
        padded_rows = max(b.shape[0], int(self.col_ids.max(initial=0)) + 1)
        if padded_rows == b.shape[0]:
            # Aligned operand (no col_id reaches into padding): gather
            # straight from B, no zero-padded copy.
            padded_b = b
        else:
            padded_b = np.zeros((padded_rows, h), dtype=np.float64)
            padded_b[: b.shape[0]] = b
        if self.n_tiles == 0:
            return np.zeros((self.shape[0], h), dtype=np.float64)
        # B rows per value slot: (n_tiles, v, n)
        gather_cols = np.take_along_axis(
            self.col_ids[:, None, :].repeat(v, axis=1), self.meta.astype(np.int64), axis=2
        )
        contrib = np.einsum("tvn,tvnh->tvh", self.values, padded_b[gather_cols])
        tile_rows = np.repeat(np.arange(self.n_tile_rows), np.diff(self.tile_ptr))
        out = np.zeros((self.n_tile_rows, v, h), dtype=np.float64)
        np.add.at(out, tile_rows, contrib)
        return out.reshape(self.n_tile_rows * v, h)[: self.shape[0]]

    def __repr__(self) -> str:
        return f"VNMCompressed(pattern={self.pattern}, shape={self.shape}, n_tiles={self.n_tiles})"
