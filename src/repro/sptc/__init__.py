"""Emulated Sparse Tensor Core substrate (DESIGN.md §3 substitution).

Sparse formats (CSR, BSR, N:M, VENOM V:N:M), a functional ``mma.sp``
emulation, SpMM kernels, the A100-class analytical cost model, and the
virtual-clock device the experiments run on.
"""

from .bsr import BSRMatrix
from .conformance import (
    conforming_tile_rows,
    row_nm_violations,
    tile_row_vertical_violations,
    topn_keep_mask,
)
from .costmodel import A100Params, CostModel, DEFAULT_PARAMS, SpmmWorkload
from .csr import CSRMatrix
from .device import EmulatedDevice, KernelRecord
from .hybrid import HybridVNM, split_csr_to_pattern, split_to_pattern
from .mma import MMA_M16N8K32, MmaShape, compress_tile_2to4, expand_tile_2to4, mma_sp
from .nm_format import NMCompressed, NMFormatError
from .spmm import csr_spmm, dense_spmm, nm_spmm, spmm, venom_spmm
from .sddmm import csr_sddmm, venom_sddmm
from .sell import SellCSigma
from .serialize import load_preprocessed, save_preprocessed
from .tcgnn import TCGNNBlocked
from .venom import VNMCompressed, VNMFormatError

__all__ = [
    "BSRMatrix",
    "CSRMatrix",
    "NMCompressed",
    "NMFormatError",
    "VNMCompressed",
    "VNMFormatError",
    "MmaShape",
    "MMA_M16N8K32",
    "mma_sp",
    "compress_tile_2to4",
    "expand_tile_2to4",
    "csr_spmm",
    "nm_spmm",
    "venom_spmm",
    "dense_spmm",
    "spmm",
    "A100Params",
    "CostModel",
    "DEFAULT_PARAMS",
    "SpmmWorkload",
    "EmulatedDevice",
    "KernelRecord",
    "HybridVNM",
    "split_to_pattern",
    "split_csr_to_pattern",
    "topn_keep_mask",
    "row_nm_violations",
    "tile_row_vertical_violations",
    "conforming_tile_rows",
    "TCGNNBlocked",
    "SellCSigma",
    "csr_sddmm",
    "venom_sddmm",
    "save_preprocessed",
    "load_preprocessed",
]
