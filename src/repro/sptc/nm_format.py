"""N:M compressed storage — the native SPTC operand layout.

A matrix conforming to an N:M pattern stores, per M-wide segment vector,
exactly N value slots plus an N-entry metadata index (the in-segment column
of each kept value, 2 bits each on hardware for 2:4).  This halves (2:4) or
better the operand footprint and is what the ``mma.sp`` instruction consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.patterns import NMPattern

__all__ = ["NMCompressed", "NMFormatError"]


class NMFormatError(ValueError):
    """Raised when a matrix does not conform to the requested N:M pattern."""


@dataclass
class NMCompressed:
    """Dense-of-segments N:M compressed matrix.

    Attributes
    ----------
    values:
        ``(n_rows, n_segs * N)`` float array; slot ``(r, s*N + j)`` holds the
        j-th kept value of segment ``s`` in row ``r`` (zero-padded when the
        segment has fewer than N non-zeros).
    meta:
        Same shape, uint8: in-segment column position of each kept value.
        When a segment has fewer than N non-zeros the spare slots carry a
        zero value at some unused (distinct) in-segment position, so the N
        positions of a segment are always pairwise distinct — the property
        the hardware metadata encoding relies on.
    """

    pattern: NMPattern
    shape: tuple[int, int]
    values: np.ndarray
    meta: np.ndarray

    @classmethod
    def compress(cls, a: np.ndarray, pattern: NMPattern) -> "NMCompressed":
        """Compress a dense matrix; raises :class:`NMFormatError` on violation."""
        a = np.asarray(a, dtype=np.float64)
        n_rows, n_cols = a.shape
        n, m = pattern.n, pattern.m
        n_segs = (n_cols + m - 1) // m
        padded = np.zeros((n_rows, n_segs * m), dtype=np.float64)
        padded[:, :n_cols] = a
        segs = padded.reshape(n_rows, n_segs, m)
        nnz_per_vec = (segs != 0.0).sum(axis=2)
        if (nnz_per_vec > n).any():
            r, s = np.argwhere(nnz_per_vec > n)[0]
            raise NMFormatError(
                f"segment vector (row {r}, segment {s}) has "
                f"{int(nnz_per_vec[r, s])} non-zeros, violating {pattern}"
            )
        # Order positions so non-zeros come first (stable by column), then pad.
        nonzero = segs != 0.0
        order = np.argsort(~nonzero, axis=2, kind="stable")
        meta = order[:, :, :n].astype(np.uint8)
        values = np.take_along_axis(segs, order[:, :, :n], axis=2)
        return cls(pattern, (n_rows, n_cols), values.reshape(n_rows, n_segs * n), meta.reshape(n_rows, n_segs * n))

    @property
    def n_segs(self) -> int:
        return self.meta.shape[1] // self.pattern.n

    def decompress(self) -> np.ndarray:
        # The execution plan already holds the seg_base + meta gather
        # indices; reuse them instead of recomputing the scatter geometry
        # (the plan is cached per operand, so repeated decompression —
        # degradation ladders, densify() — pays the index build once).
        from ..perf.engine import plan_for

        return plan_for(self).scatter_dense(self)[:, : self.shape[1]]

    def storage_bytes(self, value_bytes: int = 2, meta_bits: int = 2) -> int:
        """Modelled operand footprint (fp16 values + 2-bit metadata, as on A100)."""
        return self.values.size * value_bytes + (self.meta.size * meta_bits + 7) // 8

    def spmm(self, b: np.ndarray) -> np.ndarray:
        """Structured SpMM: every row processes exactly ``n_segs * N`` slots.

        This mirrors the regular, compaction-driven access pattern of SPTC:
        gather indices are ``segment_base + meta`` (strided and predictable)
        rather than arbitrary CSR column indices.
        """
        b = np.asarray(b, dtype=np.float64)
        if b.shape[0] != self.shape[1]:
            raise ValueError("inner dimension mismatch")
        n, m = self.pattern.n, self.pattern.m
        n_segs = self.n_segs
        if b.shape[0] == n_segs * m:
            # Aligned operand (n_cols % M == 0, the common post-reorder
            # case): gather straight from B, no zero-padded copy.
            padded_b = b
        else:
            padded_b = np.zeros((n_segs * m, b.shape[1]), dtype=np.float64)
            padded_b[: b.shape[0]] = b
        seg_base = np.repeat(np.arange(n_segs) * m, n)
        gather = seg_base[None, :] + self.meta.astype(np.int64)  # (n_rows, n_segs*n)
        # out[r, :] = sum_j values[r, j] * B[gather[r, j], :]
        return np.einsum("rj,rjh->rh", self.values, padded_b[gather])

    def __repr__(self) -> str:
        return f"NMCompressed(pattern={self.pattern}, shape={self.shape})"
