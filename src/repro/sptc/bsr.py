"""Block Sparse Row storage (paper §4.5, Listing 1 substrate).

The CUDA library stores the adjacency matrix as a collection of M×M blocks
with CSR-style block indexing (``bsrrowptr`` / ``bsrcolind`` / ``bsrval``)
and converts segment vectors to bit strings with integer intrinsics.
:meth:`BSRMatrix.row_segment_bits` is the NumPy analogue of Listing 1: it
produces the M-bit string of one segment vector by locating the block via
binary search in the block-column index and packing the block row's values.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix

__all__ = ["BSRMatrix"]


class BSRMatrix:
    """A square block-sparse matrix with ``block × block`` dense blocks."""

    # __weakref__ lets the execution-plan cache (repro.perf.engine) key
    # plans by operand identity with weakref-finalize eviction.
    __slots__ = ("block", "brow_ptr", "bcol_ind", "blocks", "shape", "__weakref__")

    def __init__(
        self,
        block: int,
        brow_ptr: np.ndarray,
        bcol_ind: np.ndarray,
        blocks: np.ndarray,
        shape: tuple[int, int],
    ):
        self.block = block
        self.brow_ptr = np.asarray(brow_ptr, dtype=np.int64)
        self.bcol_ind = np.asarray(bcol_ind, dtype=np.int64)
        self.blocks = np.asarray(blocks, dtype=np.float64)
        self.shape = shape
        if self.blocks.ndim != 3 or self.blocks.shape[1:] != (block, block):
            raise ValueError("blocks must have shape (n_blocks, block, block)")

    @classmethod
    def from_dense(cls, a: np.ndarray, block: int) -> "BSRMatrix":
        a = np.asarray(a, dtype=np.float64)
        n_rows, n_cols = a.shape
        nbr = (n_rows + block - 1) // block
        nbc = (n_cols + block - 1) // block
        padded = np.zeros((nbr * block, nbc * block), dtype=np.float64)
        padded[:n_rows, :n_cols] = a
        tiles = padded.reshape(nbr, block, nbc, block).transpose(0, 2, 1, 3)
        keep = np.abs(tiles).sum(axis=(2, 3)) > 0
        brow_ptr = np.zeros(nbr + 1, dtype=np.int64)
        brow_ptr[1:] = np.cumsum(keep.sum(axis=1))
        bi, bj = np.nonzero(keep)
        return cls(block, brow_ptr, bj, tiles[bi, bj], (n_rows, n_cols))

    @classmethod
    def from_csr(cls, csr: CSRMatrix, block: int) -> "BSRMatrix":
        return cls.from_dense(csr.to_dense(), block)

    def to_dense(self) -> np.ndarray:
        block = self.block
        nbr = self.brow_ptr.shape[0] - 1
        nbc = (self.shape[1] + block - 1) // block
        out = np.zeros((nbr * block, nbc * block), dtype=np.float64)
        for bi in range(nbr):
            for k in range(self.brow_ptr[bi], self.brow_ptr[bi + 1]):
                bj = self.bcol_ind[k]
                out[bi * block : (bi + 1) * block, bj * block : (bj + 1) * block] = self.blocks[k]
        return out[: self.shape[0], : self.shape[1]]

    @property
    def n_blocks(self) -> int:
        return int(self.bcol_ind.shape[0])

    def storage_bytes(self, value_bytes: int = 2) -> int:
        """Modelled footprint: dense block values plus block indexing."""
        return (
            self.blocks.size * value_bytes
            + self.bcol_ind.size * 4
            + self.brow_ptr.size * 8
        )

    def matmat(self, b: np.ndarray) -> np.ndarray:
        """Block-row SpMM: each stored block multiplies its B panel densely."""
        b = np.asarray(b, dtype=np.float64)
        if b.shape[0] != self.shape[1]:
            raise ValueError("inner dimension mismatch")
        block, h = self.block, b.shape[1]
        nbr = self.brow_ptr.shape[0] - 1
        nbc = (self.shape[1] + block - 1) // block
        padded_b = np.zeros((nbc * block, h), dtype=np.float64)
        padded_b[: b.shape[0]] = b
        panels = padded_b.reshape(nbc, block, h)
        out = np.zeros((nbr, block, h), dtype=np.float64)
        if self.n_blocks:
            contrib = np.einsum("kij,kjh->kih", self.blocks, panels[self.bcol_ind])
            brow = np.repeat(np.arange(nbr), np.diff(self.brow_ptr))
            np.add.at(out, brow, contrib)
        return out.reshape(nbr * block, h)[: self.shape[0]]

    def block_lookup(self, brow: int, bcol: int) -> int:
        """Binary search the block-column index (Listing 1 line 1); -1 if absent."""
        lo, hi = int(self.brow_ptr[brow]), int(self.brow_ptr[brow + 1])
        pos = int(np.searchsorted(self.bcol_ind[lo:hi], bcol)) + lo
        if pos < hi and self.bcol_ind[pos] == bcol:
            return pos
        return -1

    def row_segment_bits(self, row: int, seg: int) -> int:
        """M-bit string of segment vector ``(row, seg)`` — Listing 1 semantics.

        Bit ``i`` (MSB-first, matching the listing's left-shift loop) is set
        iff element ``seg * M + i`` of the row is non-zero.
        """
        m = self.block
        bid = self.block_lookup(row // m, seg)
        val = 0
        if bid != -1:
            lane = row % m
            for i in range(m):
                val = (val << 1) | int(self.blocks[bid, lane, i] != 0.0)
        return val

    def all_segment_bits(self) -> np.ndarray:
        """Bit strings for every (row, segment) pair, shape ``(n, n_segs)``."""
        m = self.block
        n = self.shape[0]
        n_segs = (self.shape[1] + m - 1) // m
        out = np.zeros((n, n_segs), dtype=np.uint64)
        weights = (1 << np.arange(m - 1, -1, -1)).astype(np.uint64)
        nbr = self.brow_ptr.shape[0] - 1
        for bi in range(nbr):
            lo, hi = self.brow_ptr[bi], self.brow_ptr[bi + 1]
            if hi == lo:
                continue
            bits = (self.blocks[lo:hi] != 0.0).astype(np.uint64)
            packed = bits @ weights  # (n_blocks_in_row, m): one bit string per lane
            r0 = bi * m
            rows = min(m, n - r0)
            out[r0 : r0 + rows, self.bcol_ind[lo:hi]] = packed.T[:rows]
        return out

    def __repr__(self) -> str:
        return f"BSRMatrix(shape={self.shape}, block={self.block}, n_blocks={self.n_blocks})"
