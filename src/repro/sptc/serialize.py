"""On-disk persistence of preprocessing artefacts.

The reordering is an offline step whose outputs get reused "repeatedly
across many inferences" (paper §1/§4.4).  This module saves and loads those
artefacts — the vertex permutation, the chosen pattern, and the compressed
operand — as a single ``.npz`` so a serving process never re-runs the
search.  Both the bare :class:`VNMCompressed` operand and the lossless
:class:`HybridVNM` (V:N:M main part + CSR residual) round-trip; the artifact
cache in :mod:`repro.pipeline.cache` is layered on this format.

Format version 2 added the optional hybrid-residual arrays; loading any
other version raises ``ValueError``.

Integrity: every artefact embeds a sha256 ``checksum`` over its payload
arrays (names, dtypes, shapes, bytes).  :func:`load_preprocessed` verifies
it and raises :class:`repro.pipeline.resilience.ArtifactCorruptError` — a
``ValueError`` subclass, so pre-taxonomy callers keep working — on any
mismatch, turning silent bit-rot into a classified, quarantinable fault.
Artefacts written before the checksum existed still load.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from ..core.patterns import VNMPattern
from ..core.permutation import Permutation
from .csr import CSRMatrix
from .hybrid import HybridVNM
from .venom import VNMCompressed

__all__ = ["save_preprocessed", "load_preprocessed", "payload_checksum"]

_FORMAT_VERSION = 2


def payload_checksum(arrays: dict) -> np.ndarray:
    """sha256 over the artefact's payload arrays, as a uint8 array.

    Covers names, dtypes, shapes, and raw bytes of every array except the
    ``checksum`` entry itself, in name order — so any corruption that still
    yields a structurally loadable ``.npz`` is caught at load time.
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        if name == "checksum":
            continue
        arr = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(str(arr.shape).encode())
        digest.update(arr.tobytes())
    return np.frombuffer(digest.digest(), dtype=np.uint8).copy()


def save_preprocessed(
    path,
    *,
    operand: VNMCompressed | HybridVNM,
    permutation: Permutation | None = None,
) -> None:
    """Write a compressed operand (and optionally its permutation) to ``path``."""
    residual: CSRMatrix | None = None
    is_hybrid = isinstance(operand, HybridVNM)
    if is_hybrid:
        residual = operand.residual
        operand = operand.main
    arrays = {
        "format_version": np.array([_FORMAT_VERSION]),
        "is_hybrid": np.array([int(is_hybrid)]),
        "pattern": np.array([operand.pattern.v, operand.pattern.n, operand.pattern.m, operand.pattern.k]),
        "shape": np.array(operand.shape),
        "tile_ptr": operand.tile_ptr,
        "tile_seg": operand.tile_seg,
        "col_ids": operand.col_ids,
        "values": operand.values,
        "meta": operand.meta,
        "n_live_cols": np.array([operand.n_live_cols]),
    }
    if residual is not None:
        arrays["residual_indptr"] = residual.indptr
        arrays["residual_indices"] = residual.indices
        arrays["residual_data"] = residual.data
    if permutation is not None:
        arrays["permutation"] = permutation.order
    arrays["checksum"] = payload_checksum(arrays)
    # Write through a file handle: np.savez would append ".npz" to bare
    # paths, which breaks atomic-write temp names like "<key>.npz.tmp".
    with open(Path(path), "wb") as fh:
        np.savez_compressed(fh, **arrays)


def load_preprocessed(path) -> tuple[VNMCompressed | HybridVNM, Permutation | None]:
    """Inverse of :func:`save_preprocessed`."""
    with np.load(Path(path)) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported preprocessed-file version {version}")
        if "checksum" in data:
            arrays = {name: data[name] for name in data.files}
            if not np.array_equal(payload_checksum(arrays), data["checksum"]):
                # Lazy import: sptc sits below the pipeline package.
                from ..pipeline.resilience import ArtifactCorruptError

                raise ArtifactCorruptError(
                    f"artefact {path} failed checksum verification", path=str(path)
                )
        v, n, m, k = (int(x) for x in data["pattern"])
        operand: VNMCompressed | HybridVNM = VNMCompressed(
            VNMPattern(v, n, m, k),
            tuple(int(x) for x in data["shape"]),
            data["tile_ptr"].copy(),
            data["tile_seg"].copy(),
            data["col_ids"].copy(),
            data["values"].copy(),
            data["meta"].copy(),
            n_live_cols=int(data["n_live_cols"][0]),
        )
        if "is_hybrid" in data and int(data["is_hybrid"][0]):
            residual = None
            if "residual_indptr" in data:
                residual = CSRMatrix(
                    data["residual_indptr"].copy(),
                    data["residual_indices"].copy(),
                    data["residual_data"].copy(),
                    operand.shape,
                )
            operand = HybridVNM(operand, residual)
        perm = Permutation(data["permutation"].copy()) if "permutation" in data else None
    return operand, perm
