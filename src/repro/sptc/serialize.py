"""On-disk persistence of preprocessing artefacts.

The reordering is an offline step whose outputs get reused "repeatedly
across many inferences" (paper §1/§4.4).  This module saves and loads those
artefacts — the vertex permutation, the chosen pattern, and the compressed
operand — as a single ``.npz`` so a serving process never re-runs the
search.  Both the bare :class:`VNMCompressed` operand and the lossless
:class:`HybridVNM` (V:N:M main part + CSR residual) round-trip; the artifact
cache in :mod:`repro.pipeline.cache` is layered on this format.

Format version 2 added the optional hybrid-residual arrays; loading any
other version raises ``ValueError``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.patterns import VNMPattern
from ..core.permutation import Permutation
from .csr import CSRMatrix
from .hybrid import HybridVNM
from .venom import VNMCompressed

__all__ = ["save_preprocessed", "load_preprocessed"]

_FORMAT_VERSION = 2


def save_preprocessed(
    path,
    *,
    operand: VNMCompressed | HybridVNM,
    permutation: Permutation | None = None,
) -> None:
    """Write a compressed operand (and optionally its permutation) to ``path``."""
    residual: CSRMatrix | None = None
    is_hybrid = isinstance(operand, HybridVNM)
    if is_hybrid:
        residual = operand.residual
        operand = operand.main
    arrays = {
        "format_version": np.array([_FORMAT_VERSION]),
        "is_hybrid": np.array([int(is_hybrid)]),
        "pattern": np.array([operand.pattern.v, operand.pattern.n, operand.pattern.m, operand.pattern.k]),
        "shape": np.array(operand.shape),
        "tile_ptr": operand.tile_ptr,
        "tile_seg": operand.tile_seg,
        "col_ids": operand.col_ids,
        "values": operand.values,
        "meta": operand.meta,
        "n_live_cols": np.array([operand.n_live_cols]),
    }
    if residual is not None:
        arrays["residual_indptr"] = residual.indptr
        arrays["residual_indices"] = residual.indices
        arrays["residual_data"] = residual.data
    if permutation is not None:
        arrays["permutation"] = permutation.order
    np.savez_compressed(Path(path), **arrays)


def load_preprocessed(path) -> tuple[VNMCompressed | HybridVNM, Permutation | None]:
    """Inverse of :func:`save_preprocessed`."""
    with np.load(Path(path)) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported preprocessed-file version {version}")
        v, n, m, k = (int(x) for x in data["pattern"])
        operand: VNMCompressed | HybridVNM = VNMCompressed(
            VNMPattern(v, n, m, k),
            tuple(int(x) for x in data["shape"]),
            data["tile_ptr"].copy(),
            data["tile_seg"].copy(),
            data["col_ids"].copy(),
            data["values"].copy(),
            data["meta"].copy(),
            n_live_cols=int(data["n_live_cols"][0]),
        )
        if "is_hybrid" in data and int(data["is_hybrid"][0]):
            residual = None
            if "residual_indptr" in data:
                residual = CSRMatrix(
                    data["residual_indptr"].copy(),
                    data["residual_indices"].copy(),
                    data["residual_data"].copy(),
                    operand.shape,
                )
            operand = HybridVNM(operand, residual)
        perm = Permutation(data["permutation"].copy()) if "permutation" in data else None
    return operand, perm
