"""On-disk persistence of preprocessing artefacts.

The reordering is an offline step whose outputs get reused "repeatedly
across many inferences" (paper §1/§4.4).  This module saves and loads those
artefacts — the vertex permutation, the chosen pattern, and the compressed
V:N:M operand — as a single ``.npz`` so a serving process never re-runs the
search.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.patterns import VNMPattern
from ..core.permutation import Permutation
from .venom import VNMCompressed

__all__ = ["save_preprocessed", "load_preprocessed"]

_FORMAT_VERSION = 1


def save_preprocessed(
    path,
    *,
    operand: VNMCompressed,
    permutation: Permutation | None = None,
) -> None:
    """Write a compressed operand (and optionally its permutation) to ``path``."""
    arrays = {
        "format_version": np.array([_FORMAT_VERSION]),
        "pattern": np.array([operand.pattern.v, operand.pattern.n, operand.pattern.m, operand.pattern.k]),
        "shape": np.array(operand.shape),
        "tile_ptr": operand.tile_ptr,
        "tile_seg": operand.tile_seg,
        "col_ids": operand.col_ids,
        "values": operand.values,
        "meta": operand.meta,
        "n_live_cols": np.array([operand.n_live_cols]),
    }
    if permutation is not None:
        arrays["permutation"] = permutation.order
    np.savez_compressed(Path(path), **arrays)


def load_preprocessed(path) -> tuple[VNMCompressed, Permutation | None]:
    """Inverse of :func:`save_preprocessed`."""
    with np.load(Path(path)) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported preprocessed-file version {version}")
        v, n, m, k = (int(x) for x in data["pattern"])
        operand = VNMCompressed(
            VNMPattern(v, n, m, k),
            tuple(int(x) for x in data["shape"]),
            data["tile_ptr"].copy(),
            data["tile_seg"].copy(),
            data["col_ids"].copy(),
            data["values"].copy(),
            data["meta"].copy(),
            n_live_cols=int(data["n_live_cols"][0]),
        )
        perm = Permutation(data["permutation"].copy()) if "permutation" in data else None
    return operand, perm
