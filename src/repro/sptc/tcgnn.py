"""TC-GNN-style blocked format for *dense* tensor cores (related work, §6).

TC-GNN [50] and DTC-SpMM [20] run sparse GNN workloads on dense tensor cores
by translating the sparse matrix into dense tiles (TC-GNN's "sparse graph
translation" condenses each row window's non-zero columns, then stores the
resulting tiles densely).  The paper's critique: "the use of dense formats
significantly increases memory usage, adding tens to hundreds of times more
space" — this module implements the format so the memory-overhead benchmark
can quantify that claim against CSR and V:N:M.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRMatrix

__all__ = ["TCGNNBlocked"]


@dataclass
class TCGNNBlocked:
    """Row-window condensed dense-tile storage.

    The matrix is split into ``tile`` -row windows; within each window the
    non-zero columns are condensed (deduplicated and packed left), and the
    resulting ``tile × (n_condensed)`` strip is stored as dense ``tile×tile``
    blocks plus the condensed-column index map.
    """

    tile: int
    shape: tuple[int, int]
    window_ptr: np.ndarray        # (n_windows + 1,) tile extents per window
    col_map: np.ndarray           # (total_condensed_cols,) original column ids
    blocks: np.ndarray            # (n_blocks, tile, tile) dense values

    @classmethod
    def from_csr(cls, csr: CSRMatrix, tile: int = 16) -> "TCGNNBlocked":
        n_rows, n_cols = csr.shape
        n_windows = (n_rows + tile - 1) // tile
        rows, cols, data = csr.to_coo()
        window = rows // tile
        order = np.lexsort((cols, window))
        window, rows, cols, data = window[order], rows[order], cols[order], data[order]

        window_ptr = np.zeros(n_windows + 1, dtype=np.int64)
        col_map_parts: list[np.ndarray] = []
        block_parts: list[np.ndarray] = []
        for w in range(n_windows):
            sel = window == w
            if not sel.any():
                window_ptr[w + 1] = window_ptr[w]
                continue
            wc = cols[sel]
            wr = rows[sel] - w * tile
            wd = data[sel]
            uniq, inv = np.unique(wc, return_inverse=True)
            n_blocks_w = (uniq.size + tile - 1) // tile
            dense = np.zeros((tile, n_blocks_w * tile), dtype=np.float64)
            dense[wr, inv] = wd
            col_map_parts.append(
                np.concatenate([uniq, np.full(n_blocks_w * tile - uniq.size, -1, dtype=np.int64)])
            )
            block_parts.append(
                dense.reshape(tile, n_blocks_w, tile).transpose(1, 0, 2)
            )
            window_ptr[w + 1] = window_ptr[w] + n_blocks_w
        col_map = np.concatenate(col_map_parts) if col_map_parts else np.empty(0, dtype=np.int64)
        blocks = (
            np.concatenate(block_parts)
            if block_parts
            else np.empty((0, tile, tile), dtype=np.float64)
        )
        return cls(tile, (n_rows, n_cols), window_ptr, col_map, blocks)

    @property
    def n_blocks(self) -> int:
        return int(self.blocks.shape[0])

    def storage_bytes(self, value_bytes: int = 2) -> int:
        """Dense tile values (fp16) + condensed column map + window pointers."""
        return (
            self.blocks.size * value_bytes
            + self.col_map.size * 4
            + self.window_ptr.size * 8
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        tile = self.tile
        for w in range(self.window_ptr.size - 1):
            lo, hi = int(self.window_ptr[w]), int(self.window_ptr[w + 1])
            r0 = w * tile
            r1 = min(r0 + tile, self.shape[0])
            for b in range(lo, hi):
                cmap = self.col_map[b * tile : (b + 1) * tile]
                valid = cmap >= 0
                out[r0:r1, cmap[valid]] += self.blocks[b, : r1 - r0, valid].T
        return out

    def spmm(self, b: np.ndarray) -> np.ndarray:
        """Dense-tile SpMM: every stored tile multiplies densely (TC style)."""
        b = np.asarray(b, dtype=np.float64)
        if b.shape[0] != self.shape[1]:
            raise ValueError("inner dimension mismatch")
        tile = self.tile
        out = np.zeros((self.shape[0], b.shape[1]), dtype=np.float64)
        for w in range(self.window_ptr.size - 1):
            lo, hi = int(self.window_ptr[w]), int(self.window_ptr[w + 1])
            if hi == lo:
                continue
            r0 = w * tile
            r1 = min(r0 + tile, self.shape[0])
            cmap = self.col_map[lo * tile : hi * tile]
            valid = cmap >= 0
            gathered = np.zeros((cmap.size, b.shape[1]), dtype=np.float64)
            gathered[valid] = b[cmap[valid]]
            strip = self.blocks[lo:hi].transpose(1, 0, 2).reshape(tile, -1)
            out[r0:r1] += strip[: r1 - r0] @ gathered
        return out

    def __repr__(self) -> str:
        return f"TCGNNBlocked(shape={self.shape}, tile={self.tile}, n_blocks={self.n_blocks})"
