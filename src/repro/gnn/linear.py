"""Parameters and the dense linear layer (the GNN "update" phase)."""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter", "Linear"]


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    __slots__ = ("value", "grad")

    def __init__(self, value: np.ndarray):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    @property
    def shape(self):
        return self.value.shape


class Linear:
    """Fully connected layer ``y = x @ W + b`` with Glorot init."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, *, bias: bool = True):
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Parameter(rng.uniform(-limit, limit, size=(in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self._x: np.ndarray | None = None

    def parameters(self) -> list[Parameter]:
        return [self.weight] + ([self.bias] if self.bias is not None else [])

    def forward(self, x: np.ndarray) -> np.ndarray:
        from ..sptc.device import active_device

        self._x = x
        device = active_device()
        if device is not None:
            y = device.gemm(x, self.weight.value, tag="update")
        else:
            y = x @ self.weight.value
        if self.bias is not None:
            y = y + self.bias.value
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += self._x.T @ dy
        if self.bias is not None:
            self.bias.grad += dy.sum(axis=0)
        return dy @ self.weight.value.T

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)
