"""Graph convolution layers (aggregation + update phases, paper §2).

Each layer separates the *aggregation* phase — an SpMM against the graph
operator, routed through an :class:`Aggregator` so the kernel/backends and
the virtual-clock device can be swapped per experiment setting — from the
*update* phase (dense linear algebra).  All layers implement backward passes
so the accuracy experiments (Table 5) can train them.
"""

from __future__ import annotations

import numpy as np

from .linear import Linear, Parameter

__all__ = ["Aggregator", "GCNConv", "SAGEConv", "ChebConv", "SGConv"]


class Aggregator:
    """The graph operator used by the aggregation phase.

    ``operator`` is any operand registered with the pipeline backend
    registry (CSRMatrix, VNMCompressed, NMCompressed, HybridVNM, BSR, SELL,
    dense, a :class:`repro.pipeline.serving.ServingSession`, or a
    third-party format).  ``operator_t`` supplies the transpose for backward
    when the operator is not symmetric (e.g. the mean aggregator D⁻¹A);
    symmetric operators can omit it.  When a ``device`` is attached every
    multiply advances its virtual clock under ``tag``; a ServingSession
    operator instead charges the device it owns.
    """

    def __init__(self, operator, operator_t=None, *, device=None, tag: str = "aggregation"):
        self.operator = operator
        self.operator_t = operator_t if operator_t is not None else operator
        self.device = device
        self.tag = tag

    def _run(self, op, x: np.ndarray) -> np.ndarray:
        if self.device is not None:
            return self.device.spmm(op, x, tag=self.tag)
        # The planned engine path: per-operand precompiled gather indices
        # and scratch, falling back to naive dispatch for operands it
        # cannot plan (including ServingSession, which plans internally).
        from ..perf.engine import execute

        return execute(op, x)

    def mm(self, x: np.ndarray) -> np.ndarray:
        return self._run(self.operator, x)

    def mm_t(self, x: np.ndarray) -> np.ndarray:
        return self._run(self.operator_t, x)

    # -- degradation surface ----------------------------------------------
    @property
    def backend_name(self) -> str:
        """Registered backend serving the forward operator.

        A ServingSession operator reports its *underlying* operand's backend
        (which moves down the fallback ladder on degradation), not the
        ``serving`` pseudo-backend it dispatches through.
        """
        inner = getattr(self.operator, "backend_name", None)
        if isinstance(inner, str):
            return inner
        from ..pipeline.registry import backend_for

        try:
            return backend_for(self.operator).name
        except TypeError:
            return type(self.operator).__name__

    @property
    def degraded(self) -> bool:
        """Whether the operator (a ServingSession) has fallen back."""
        stats = getattr(self.operator, "resilience", None)
        return bool(stats is not None and stats.degraded)

    def health(self) -> dict:
        """Degradation/retry state of the underlying operator.

        Models and training loops consume the aggregation phase through
        this object, so the serving session's fault accounting is surfaced
        here instead of making callers reach into pipeline internals.
        Plain operands report a healthy static backend.
        """
        stats = getattr(self.operator, "resilience", None)
        report = {
            "backend": self.backend_name,
            "degraded": bool(stats is not None and stats.degraded),
            "retries": stats.retries if stats is not None else 0,
            "downgrades": tuple(stats.downgrades) if stats is not None else (),
        }
        # A ServingSession operator with a metrics registry attached also
        # exposes its live series (latency quantiles, counters) here.
        metrics = getattr(self.operator, "metrics", None)
        if callable(metrics):
            live = metrics()
            if live:
                report["metrics"] = live
        # Which engine kernel variant is serving the operator (a session's
        # plan lives on its underlying operand).
        from ..perf.engine import cached_plan

        target = getattr(self.operator, "operand", self.operator)
        plan = cached_plan(target) if target is not None else None
        if plan is not None:
            report["kernel_variant"] = plan.variant
            # A segmented plan serves different row blocks on different
            # kernels; surface the block layout and per-backend coverage.
            if getattr(plan, "backend", None) == "segmented":
                report["segments"] = plan.summary()
        # With a breaker board installed, its per-backend state rides along
        # — an operator may look healthy while its fast backend is cooling
        # down behind an open breaker.
        from ..pipeline.guard import active_breakers

        board = active_breakers()
        if board is not None:
            report["breakers"] = board.snapshot()
        return report


class GCNConv:
    """Kipf & Welling convolution: ``Y = Â (X W) + b``.

    GCN aggregates *after* its linear layer (paper §5.1's explanation of the
    GCN-vs-SAGE speedup gap), so the SpMM runs on the (n × out) matrix.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        self.linear = Linear(in_features, out_features, rng)
        self._agg: Aggregator | None = None

    def parameters(self) -> list[Parameter]:
        return self.linear.parameters()

    def forward(self, x: np.ndarray, agg: Aggregator) -> np.ndarray:
        self._agg = agg
        xw = self.linear.forward(x)
        return agg.mm(xw)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        assert self._agg is not None
        d_xw = self._agg.mm_t(dy)
        return self.linear.backward(d_xw)


class SAGEConv:
    """GraphSAGE (mean): ``Y = X W_root + mean_agg(X) W_nbr + b``.

    Aggregates *before* its two linear layers, so the SpMM runs on the full
    (n × in) feature matrix — the reason SAGE gains more from SPTC than GCN.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        self.lin_root = Linear(in_features, out_features, rng)
        self.lin_nbr = Linear(in_features, out_features, rng, bias=False)
        self._agg: Aggregator | None = None

    def parameters(self) -> list[Parameter]:
        return self.lin_root.parameters() + self.lin_nbr.parameters()

    def forward(self, x: np.ndarray, agg: Aggregator) -> np.ndarray:
        self._agg = agg
        h_nbr = agg.mm(x)
        return self.lin_root.forward(x) + self.lin_nbr.forward(h_nbr)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        assert self._agg is not None
        dx_root = self.lin_root.backward(dy)
        dh_nbr = self.lin_nbr.backward(dy)
        return dx_root + self._agg.mm_t(dh_nbr)


class ChebConv:
    """Chebyshev spectral convolution of order ``K``.

    ``Y = Σ_k T_k(L̂) X W_k`` with ``T_0 = X``, ``T_1 = L̂X``,
    ``T_k = 2L̂T_{k-1} − T_{k-2}`` and ``L̂ = −Â`` (normalized Laplacian with
    the usual λ_max ≈ 2 shift).  Backward reuses the same recurrence on the
    per-order gradients because ``T_k`` is a polynomial in the symmetric ``L̂``.
    """

    def __init__(self, in_features: int, out_features: int, k: int, rng: np.random.Generator):
        if k < 1:
            raise ValueError("Chebyshev order must be >= 1")
        self.k = k
        self.linears = [Linear(in_features, out_features, rng, bias=(i == 0)) for i in range(k)]
        self._agg: Aggregator | None = None

    def parameters(self) -> list[Parameter]:
        return [p for lin in self.linears for p in lin.parameters()]

    def _lhat(self, x: np.ndarray, agg: Aggregator) -> np.ndarray:
        return -agg.mm(x)

    def _lhat_t(self, x: np.ndarray, agg: Aggregator) -> np.ndarray:
        return -agg.mm_t(x)

    def forward(self, x: np.ndarray, agg: Aggregator) -> np.ndarray:
        self._agg = agg
        t_prev, t_cur = None, x
        out = self.linears[0].forward(x)
        for i in range(1, self.k):
            if i == 1:
                t_next = self._lhat(t_cur, agg)
            else:
                t_next = 2.0 * self._lhat(t_cur, agg) - t_prev
            out = out + self.linears[i].forward(t_next)
            t_prev, t_cur = t_cur, t_next
        return out

    def backward(self, dy: np.ndarray) -> np.ndarray:
        assert self._agg is not None
        agg = self._agg
        # T_k is a polynomial in the symmetric L̂, so each order's input
        # gradient is dX_k = T_k(L̂ᵀ) (dY W_kᵀ).
        grads = [lin.backward(dy) for lin in self.linears]
        dx = grads[0]
        for i in range(1, self.k):
            dx = dx + self._cheb_apply(grads[i], i, agg)
        return dx

    def _cheb_apply(self, x: np.ndarray, order: int, agg: Aggregator) -> np.ndarray:
        """Apply ``T_order(L̂)`` to ``x`` by direct recurrence."""
        t_prev, t_cur = x, self._lhat_t(x, agg)
        for _ in range(2, order + 1):
            t_prev, t_cur = t_cur, 2.0 * self._lhat_t(t_cur, agg) - t_prev
        return t_cur if order >= 1 else x


class SGConv:
    """Simplified GCN: ``Y = Â^K X W`` — K chained aggregations, one linear."""

    def __init__(self, in_features: int, out_features: int, k: int, rng: np.random.Generator):
        if k < 1:
            raise ValueError("SGC power must be >= 1")
        self.k = k
        self.linear = Linear(in_features, out_features, rng)
        self._agg: Aggregator | None = None

    def parameters(self) -> list[Parameter]:
        return self.linear.parameters()

    def forward(self, x: np.ndarray, agg: Aggregator) -> np.ndarray:
        self._agg = agg
        z = x
        for _ in range(self.k):
            z = agg.mm(z)
        return self.linear.forward(z)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        assert self._agg is not None
        dz = self.linear.backward(dy)
        for _ in range(self.k):
            dz = self._agg.mm_t(dz)
        return dz
