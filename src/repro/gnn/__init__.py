"""NumPy GNN stack: layers, models, training, and the framework shims."""

from .attention import GATConv, edge_softmax, gat_aggregate_csr, gat_aggregate_venom
from .functional import (
    accuracy,
    cross_entropy,
    cross_entropy_grad,
    dropout_mask,
    log_softmax,
    relu,
    relu_grad,
    softmax,
)
from .frameworks import (
    FRAMEWORKS,
    ForwardTiming,
    FrameworkSpec,
    PreparedSetting,
    SETTINGS,
    gnn_speedups,
    make_device,
    prepare_setting,
    reorder_for_graph,
    timed_forward,
)
from .layers import Aggregator, ChebConv, GCNConv, SAGEConv, SGConv
from .linear import Linear, Parameter
from .models import GCN, ChebNet, GNNModel, GraphSAGE, MODEL_NAMES, SGC, build_model
from .optim import Adam, SGD
from .training import TrainResult, evaluate, make_aggregator, train_node_classifier, train_sampled

__all__ = [
    "GATConv",
    "edge_softmax",
    "gat_aggregate_csr",
    "gat_aggregate_venom",
    "relu",
    "relu_grad",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "cross_entropy_grad",
    "accuracy",
    "dropout_mask",
    "Parameter",
    "Linear",
    "Aggregator",
    "GCNConv",
    "SAGEConv",
    "ChebConv",
    "SGConv",
    "GNNModel",
    "GCN",
    "GraphSAGE",
    "ChebNet",
    "SGC",
    "MODEL_NAMES",
    "build_model",
    "Adam",
    "SGD",
    "TrainResult",
    "train_node_classifier",
    "train_sampled",
    "evaluate",
    "make_aggregator",
    "FRAMEWORKS",
    "SETTINGS",
    "FrameworkSpec",
    "PreparedSetting",
    "prepare_setting",
    "reorder_for_graph",
    "make_device",
    "ForwardTiming",
    "timed_forward",
    "gnn_speedups",
]
