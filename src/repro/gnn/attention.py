"""Attention aggregation on sparse patterns (extension beyond the paper).

The paper evaluates four non-attentive GNNs; attention models (GAT) need the
*other* sparse kernel, SDDMM, for per-edge scores plus an edge softmax
before the SpMM.  With a V:N:M-conforming pattern both kernels run on the
structured path, so the reordering benefits extend to attention models —
this module provides the inference pipeline used by the extension bench.
"""

from __future__ import annotations

import numpy as np

from ..sptc.csr import CSRMatrix
from ..sptc.sddmm import csr_sddmm, venom_sddmm
from ..sptc.venom import VNMCompressed
from .linear import Linear

__all__ = ["edge_softmax", "GATConv", "gat_aggregate_csr", "gat_aggregate_venom"]


def edge_softmax(scores: CSRMatrix) -> CSRMatrix:
    """Row-wise softmax over the stored entries of a CSR score matrix.

    ``out[i, j] = exp(s[i,j] − max_j s[i,·]) / Σ_j exp(…)`` over the row's
    non-zero pattern — the neighbour-softmax every attention GNN needs.
    """
    indptr, indices, data = scores.indptr, scores.indices, scores.data
    out = np.empty_like(data)
    n_rows = scores.shape[0]
    row_lengths = np.diff(indptr)
    nonempty = row_lengths > 0
    starts = indptr[:-1][nonempty]
    # segment max (reduceat) then exp then segment sum.
    row_max = np.full(n_rows, -np.inf)
    if nonempty.any():
        row_max[nonempty] = np.maximum.reduceat(data, starts)
    rows = np.repeat(np.arange(n_rows), row_lengths)
    shifted = np.exp(data - row_max[rows])
    row_sum = np.zeros(n_rows)
    if nonempty.any():
        row_sum[nonempty] = np.add.reduceat(shifted, starts)
    out = shifted / np.maximum(row_sum[rows], 1e-30)
    return CSRMatrix(indptr.copy(), indices.copy(), out, scores.shape)


def gat_aggregate_csr(
    pattern: CSRMatrix, q: np.ndarray, k: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Baseline attention aggregation: CSR SDDMM → edge softmax → CSR SpMM."""
    scores = csr_sddmm(pattern, q, k)
    alpha = edge_softmax(scores)
    return alpha.matmat(values)


def gat_aggregate_venom(
    operand: VNMCompressed, q: np.ndarray, k: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Structured attention aggregation on a conforming V:N:M operand.

    The SDDMM and SpMM both run tile-wise; the softmax normalization is a
    per-row epilogue (computed here via the decompressed score rows' CSR
    view, which shares the operand's pattern).
    """
    scored = venom_sddmm(operand, q, k)
    # Softmax over each row's stored entries: extract per-slot scores.
    csr_scores = CSRMatrix.from_dense(scored.decompress())
    alpha = edge_softmax(csr_scores)
    # Re-inject the normalized scores into the structured operand and SpMM.
    alpha_compressed = VNMCompressed.compress_csr(alpha, operand.pattern)
    return alpha_compressed.spmm(values)


class GATConv:
    """Single-head GAT-style layer (inference pipeline).

    ``h' = softmax_edges(<Q h, K h>) · (V h)`` with learned projections —
    a dot-product-attention variant chosen so both sparse kernels (SDDMM,
    SpMM) appear exactly as in serving workloads.  Training attention models
    is out of scope for the reproduction; this layer exists to measure the
    kernels (the extension bench) and ships forward-only.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        self.q_proj = Linear(in_features, out_features, rng, bias=False)
        self.k_proj = Linear(in_features, out_features, rng, bias=False)
        self.v_proj = Linear(in_features, out_features, rng, bias=False)

    def forward_csr(self, pattern: CSRMatrix, x: np.ndarray) -> np.ndarray:
        return gat_aggregate_csr(
            pattern, self.q_proj(x), self.k_proj(x), self.v_proj(x)
        )

    def forward_venom(self, operand: VNMCompressed, x: np.ndarray) -> np.ndarray:
        return gat_aggregate_venom(
            operand, self.q_proj(x), self.k_proj(x), self.v_proj(x)
        )
