"""The four GNN models the paper evaluates (GCN, GraphSAGE, ChebNet, SGC)."""

from __future__ import annotations

import numpy as np

from .functional import relu, relu_grad
from .layers import Aggregator, ChebConv, GCNConv, SAGEConv, SGConv
from .linear import Parameter

__all__ = ["GNNModel", "GCN", "GraphSAGE", "ChebNet", "SGC", "build_model", "MODEL_NAMES"]

MODEL_NAMES = ("gcn", "sage", "cheb", "sgc")


class GNNModel:
    """Base: a stack of conv layers with ReLU between them."""

    def __init__(self):
        self.convs: list = []
        self._pre_acts: list[np.ndarray] = []
        self._drop_masks: list = []

    def parameters(self) -> list[Parameter]:
        return [p for conv in self.convs for p in conv.parameters()]

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def forward(
        self,
        x: np.ndarray,
        agg: Aggregator,
        *,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Forward pass; ``dropout > 0`` applies inverted dropout after each
        hidden activation (training mode — pass a generator for
        reproducibility)."""
        from ..sptc.device import active_device
        from .functional import dropout_mask

        self._pre_acts = []
        self._drop_masks = []
        device = active_device()
        if dropout > 0.0 and rng is None:
            rng = np.random.default_rng(0)
        h = x
        for i, conv in enumerate(self.convs):
            h = conv.forward(h, agg)
            if i < len(self.convs) - 1:
                self._pre_acts.append(h)
                if device is not None:
                    h = device.elementwise(h, relu, tag="update")
                else:
                    h = relu(h)
                if dropout > 0.0:
                    mask = dropout_mask(h.shape, dropout, rng)
                    self._drop_masks.append(mask)
                    h = h * mask
                else:
                    self._drop_masks.append(None)
        return h

    def backward(self, dlogits: np.ndarray) -> np.ndarray:
        dh = dlogits
        for i in range(len(self.convs) - 1, -1, -1):
            dh = self.convs[i].backward(dh)
            if i > 0:
                mask = self._drop_masks[i - 1] if self._drop_masks else None
                if mask is not None:
                    dh = dh * mask
                dh = relu_grad(self._pre_acts[i - 1], dh)
        return dh

    @property
    def n_aggregations(self) -> int:
        """SpMM launches per forward pass (for per-layer speedup accounting)."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray, agg: Aggregator) -> np.ndarray:
        return self.forward(x, agg)


class GCN(GNNModel):
    """Two-layer GCN (aggregation after the linear transform)."""

    def __init__(self, in_features: int, hidden: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        self.convs = [GCNConv(in_features, hidden, rng), GCNConv(hidden, out_features, rng)]

    @property
    def n_aggregations(self) -> int:
        return 2


class GraphSAGE(GNNModel):
    """Two-layer GraphSAGE with mean aggregation (aggregation first)."""

    def __init__(self, in_features: int, hidden: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        self.convs = [SAGEConv(in_features, hidden, rng), SAGEConv(hidden, out_features, rng)]

    @property
    def n_aggregations(self) -> int:
        return 2


class ChebNet(GNNModel):
    """Two-layer ChebNet of order K (K−1 aggregation-chains per layer)."""

    def __init__(self, in_features: int, hidden: int, out_features: int, rng: np.random.Generator, *, k: int = 3):
        super().__init__()
        self.k = k
        self.convs = [ChebConv(in_features, hidden, k, rng), ChebConv(hidden, out_features, k, rng)]

    @property
    def n_aggregations(self) -> int:
        # Each layer's recurrence launches k-1 SpMMs.
        return 2 * (self.k - 1)


class SGC(GNNModel):
    """Single SGConv with K chained propagations."""

    def __init__(self, in_features: int, hidden: int, out_features: int, rng: np.random.Generator, *, k: int = 2):
        super().__init__()
        del hidden  # SGC is linear: no hidden layer
        self.k = k
        self.convs = [SGConv(in_features, out_features, k, rng)]

    @property
    def n_aggregations(self) -> int:
        return self.k


def build_model(
    name: str,
    in_features: int,
    hidden: int,
    out_features: int,
    *,
    seed: int = 0,
) -> GNNModel:
    """Factory over the paper's four model names."""
    rng = np.random.default_rng(seed)
    key = name.lower()
    if key == "gcn":
        return GCN(in_features, hidden, out_features, rng)
    if key in ("sage", "graphsage"):
        return GraphSAGE(in_features, hidden, out_features, rng)
    if key in ("cheb", "chebnet"):
        return ChebNet(in_features, hidden, out_features, rng)
    if key == "sgc":
        return SGC(in_features, hidden, out_features, rng)
    raise KeyError(f"unknown model {name!r}; known: {MODEL_NAMES}")
