"""Optimizers for the NumPy GNN stack."""

from __future__ import annotations

import numpy as np

from .linear import Parameter

__all__ = ["SGD", "Adam"]


class SGD:
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(self, params: list[Parameter], lr: float = 0.1, momentum: float = 0.0, weight_decay: float = 0.0):
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            g = p.grad + self.weight_decay * p.value
            v *= self.momentum
            v += g
            p.value -= self.lr * v

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-2,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        self.params = params
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in params]
        self._v = [np.zeros_like(p.value) for p in params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad + self.weight_decay * p.value
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            p.value -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
