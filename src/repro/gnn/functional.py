"""Activation, loss, and metric primitives for the NumPy GNN stack."""

from __future__ import annotations

import numpy as np

__all__ = [
    "relu",
    "relu_grad",
    "log_softmax",
    "softmax",
    "cross_entropy",
    "cross_entropy_grad",
    "accuracy",
    "dropout_mask",
]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Gradient of ReLU given the *pre-activation* input."""
    return dy * (x > 0.0)


def log_softmax(x: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise log-softmax."""
    shifted = x - x.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


def softmax(x: np.ndarray) -> np.ndarray:
    """Row-wise softmax."""
    return np.exp(log_softmax(x))


def cross_entropy(logits: np.ndarray, labels: np.ndarray, mask: np.ndarray | None = None) -> float:
    """Mean negative log-likelihood over (optionally masked) rows."""
    logp = log_softmax(logits)
    idx = np.arange(logits.shape[0])
    nll = -logp[idx, labels]
    if mask is not None:
        nll = nll[mask]
    return float(nll.mean()) if nll.size else 0.0


def cross_entropy_grad(logits: np.ndarray, labels: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
    """d(mean masked NLL)/d(logits)."""
    p = softmax(logits)
    grad = p.copy()
    grad[np.arange(logits.shape[0]), labels] -= 1.0
    if mask is not None:
        grad = grad * mask[:, None]
        denom = max(int(mask.sum()), 1)
    else:
        denom = logits.shape[0]
    return grad / denom


def accuracy(logits: np.ndarray, labels: np.ndarray, mask: np.ndarray | None = None) -> float:
    """Top-1 accuracy over (optionally masked) rows."""
    pred = logits.argmax(axis=1)
    hits = pred == labels
    if mask is not None:
        hits = hits[mask]
    return float(hits.mean()) if hits.size else 0.0


def dropout_mask(shape: tuple, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Inverted-dropout multiplier mask."""
    if not 0.0 <= rate < 1.0:
        raise ValueError("dropout rate must be in [0, 1)")
    if rate == 0.0:
        return np.ones(shape)
    keep = rng.random(shape) >= rate
    return keep / (1.0 - rate)
