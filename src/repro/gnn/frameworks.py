"""Framework shims and the four experiment settings (paper §5.1).

The paper compares PyG and DGL, whose default SpMM kernels differ (PyG uses
a torchsparse-style CSR kernel, DGL the faster cuSPARSE ``CSR_ALG2``); both
get *revised* variants whose SpMM is swapped for the Spatha-style SPTC
kernel.  The four settings:

* ``default-original``   — framework CSR kernel, original vertex order.
* ``default-reordered``  — framework CSR kernel, SOGRE-reordered order
  (expected ≈ 1×: CUDA cores are oblivious to V:N:M patterns — Table 4).
* ``revised-pruned``     — SPTC kernel on magnitude-pruned operators (fast
  but lossy — Table 5's accuracy casualty).
* ``revised-reordered``  — SPTC kernel on reordered operators (the paper's
  solution: fast *and* lossless — Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.patterns import VNMPattern
from ..core.permutation import Permutation
from ..core.reorder import reorder
from ..graphs.graph import Graph
from ..sptc.costmodel import A100Params, CostModel
from ..sptc.csr import CSRMatrix
from ..sptc.device import EmulatedDevice, use_device
from ..sptc.hybrid import HybridVNM
from .layers import Aggregator
from .models import build_model
from .training import aggregator_kind_for

__all__ = [
    "FRAMEWORKS",
    "SETTINGS",
    "FrameworkSpec",
    "PreparedSetting",
    "prepare_setting",
    "make_device",
    "ForwardTiming",
    "timed_forward",
    "gnn_speedups",
]

SETTINGS = (
    "default-original",
    "default-reordered",
    "revised-pruned",
    "revised-reordered",
)


@dataclass(frozen=True)
class FrameworkSpec:
    """Performance personality of one GNN framework's kernels."""

    name: str
    # DGL's cuSPARSE ALG2 CSR SpMM outruns PyG's torchsparse kernel (paper
    # §5.1), so its baseline is harder to beat.
    cuda_spmm_flops: float


FRAMEWORKS = {
    "pyg": FrameworkSpec("pyg", cuda_spmm_flops=4.0e11),
    "dgl": FrameworkSpec("dgl", cuda_spmm_flops=5.5e11),
}


def make_device(framework: str) -> EmulatedDevice:
    """An emulated A100 with the framework's CSR-SpMM personality."""
    spec = FRAMEWORKS[framework]
    params = A100Params(cuda_spmm_flops=spec.cuda_spmm_flops)
    return EmulatedDevice(cost_model=CostModel(params))


def _mean_operators(graph: Graph) -> tuple[CSRMatrix, CSRMatrix]:
    rows, cols, data = graph.csr().to_coo()
    deg = np.zeros(graph.n)
    np.add.at(deg, rows, 1.0)
    inv = np.where(deg > 0, 1.0 / np.maximum(deg, 1e-12), 0.0)
    op = CSRMatrix.from_coo(rows, cols, data * inv[rows], (graph.n, graph.n))
    op_t = CSRMatrix.from_coo(rows, cols, data * inv[cols], (graph.n, graph.n))
    return op, op_t


@dataclass
class PreparedSetting:
    """Everything a timed forward pass needs for one setting."""

    setting: str
    graph: Graph
    operators: dict = field(default_factory=dict)   # kind -> (op, op_t)
    pattern: VNMPattern | None = None
    permutation: Permutation | None = None
    prune_ratio: float = 0.0
    residual_fraction: float = 0.0

    def aggregator(self, model_name: str, device: EmulatedDevice | None) -> Aggregator:
        kind = aggregator_kind_for(model_name)
        op, op_t = self.operators[kind]
        return Aggregator(op, op_t, device=device)


def reorder_for_graph(
    graph: Graph, pattern: VNMPattern, *, max_iter: int = 10
) -> Permutation:
    """Reorder targeting the structure actually multiplied: A + I.

    Every model's operator structure is contained in A + I (GCN/Cheb/SGC use
    Â with self-loops; SAGE's mean operator has A's structure, a subset), so
    one permutation serves all four models.
    """
    bm = graph.bitmatrix().copy()
    for i in range(graph.n):
        bm.set(i, i, 1)
    return reorder(bm, pattern, max_iter=max_iter).permutation


def prepare_setting(
    graph: Graph,
    setting: str,
    pattern: VNMPattern,
    *,
    permutation: Permutation | None = None,
    max_iter: int = 10,
) -> PreparedSetting:
    """Build the operators for one experiment setting.

    ``permutation`` short-circuits the (deterministic) reordering when the
    caller already computed it — the offline-preprocessing story of §4.4.
    """
    if setting not in SETTINGS:
        raise KeyError(f"unknown setting {setting!r}; known: {SETTINGS}")

    prepared = PreparedSetting(setting=setting, graph=graph, pattern=pattern)

    if setting in ("default-reordered", "revised-reordered"):
        if permutation is None:
            permutation = reorder_for_graph(graph, pattern, max_iter=max_iter)
        graph = graph.relabel(permutation)
        prepared.graph = graph
        prepared.permutation = permutation

    gcn_op = graph.csr(normalized=True, add_self_loops=True)
    mean_op, mean_op_t = _mean_operators(graph)

    if setting.startswith("default"):
        prepared.operators = {"gcn": (gcn_op, gcn_op), "mean": (mean_op, mean_op_t)}
        return prepared

    if setting == "revised-pruned":
        # Lossy: magnitude pruning == keeping only the conforming part of the
        # split and *discarding* the residual.
        from ..sptc.hybrid import split_csr_to_pattern
        from ..sptc.venom import VNMCompressed

        def pruned(op: CSRMatrix) -> HybridVNM:
            conforming, _residual = split_csr_to_pattern(op, pattern)
            return HybridVNM(VNMCompressed.compress_csr(conforming, pattern), None)

        con, res = split_csr_to_pattern(gcn_op, pattern)
        prepared.prune_ratio = res.nnz / max(gcn_op.nnz, 1)
        prepared.operators = {
            "gcn": (HybridVNM(VNMCompressed.compress_csr(con, pattern), None),) * 2,
            "mean": (pruned(mean_op), pruned(mean_op_t)),
        }
        return prepared

    # revised-reordered: lossless hybrid compression of the reordered operators.
    gcn_h = HybridVNM.compress_csr(gcn_op, pattern)
    mean_h = HybridVNM.compress_csr(mean_op, pattern)
    mean_t_h = HybridVNM.compress_csr(mean_op_t, pattern)
    prepared.residual_fraction = gcn_h.residual_fraction()
    prepared.operators = {"gcn": (gcn_h, gcn_h), "mean": (mean_h, mean_t_h)}
    return prepared


@dataclass
class ForwardTiming:
    """Modelled timing of one forward pass."""

    aggregation_seconds: float
    update_seconds: float
    logits: np.ndarray

    @property
    def total_seconds(self) -> float:
        return self.aggregation_seconds + self.update_seconds


def timed_forward(
    framework: str,
    model_name: str,
    prepared: PreparedSetting,
    *,
    hidden: int = 128,
    seed: int = 0,
) -> ForwardTiming:
    """Run one inference forward pass on the emulated device.

    The device's virtual clock splits into the aggregation phase (SpMM) and
    the update phase (dense GEMM + activations), giving the paper's "LYR" and
    "ALL" numbers.
    """
    graph = prepared.graph
    if graph.features is None or graph.labels is None:
        raise ValueError("graph must carry features and labels")
    device = make_device(framework)
    n_classes = int(graph.labels.max()) + 1
    model = build_model(model_name, graph.features.shape[1], hidden, n_classes, seed=seed)
    agg = prepared.aggregator(model_name, device)
    with use_device(device):
        logits = model.forward(graph.features, agg)
    return ForwardTiming(
        aggregation_seconds=device.elapsed("aggregation"),
        update_seconds=device.elapsed("update"),
        logits=logits,
    )


def gnn_speedups(
    framework: str,
    model_name: str,
    baseline: PreparedSetting,
    treatment: PreparedSetting,
    *,
    hidden: int = 128,
    seed: int = 0,
) -> dict[str, float]:
    """LYR / ALL speedups of ``treatment`` over ``baseline`` (Table 3/4/6 cells)."""
    t_base = timed_forward(framework, model_name, baseline, hidden=hidden, seed=seed)
    t_new = timed_forward(framework, model_name, treatment, hidden=hidden, seed=seed)
    return {
        "LYR": t_base.aggregation_seconds / t_new.aggregation_seconds,
        "ALL": t_base.total_seconds / t_new.total_seconds,
    }
