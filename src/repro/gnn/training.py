"""Training and evaluation loops for node classification (Table 5 substrate)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graphs.graph import Graph
from ..sptc.csr import CSRMatrix
from .functional import accuracy, cross_entropy, cross_entropy_grad
from .layers import Aggregator
from .models import GNNModel, build_model
from .optim import Adam

__all__ = [
    "make_aggregator",
    "TrainResult",
    "train_node_classifier",
    "train_sampled",
    "evaluate",
]


def make_aggregator(graph: Graph, kind: str, *, device=None) -> Aggregator:
    """Build the graph operator a model family aggregates with.

    ``kind='gcn'`` — symmetric Â = D^-1/2 (A+I) D^-1/2 (GCN / Cheb / SGC).
    ``kind='mean'`` — row mean D⁻¹A with its transpose for backward (SAGE).
    """
    if kind == "gcn":
        op = graph.csr(normalized=True, add_self_loops=True)
        return Aggregator(op, device=device)
    if kind == "mean":
        rows, cols, data = graph.csr().to_coo()
        deg = np.zeros(graph.n)
        np.add.at(deg, rows, 1.0)
        inv = np.where(deg > 0, 1.0 / np.maximum(deg, 1e-12), 0.0)
        mean_op = CSRMatrix.from_coo(rows, cols, data * inv[rows], (graph.n, graph.n))
        mean_op_t = CSRMatrix.from_coo(rows, cols, data * inv[cols], (graph.n, graph.n))
        return Aggregator(mean_op, mean_op_t, device=device)
    raise KeyError(f"unknown aggregator kind {kind!r}")


def aggregator_kind_for(model_name: str) -> str:
    return "mean" if model_name.lower() in ("sage", "graphsage") else "gcn"


@dataclass
class TrainResult:
    """Final metrics and the training trace."""

    model: GNNModel
    train_accuracy: float
    val_accuracy: float
    test_accuracy: float
    losses: list[float] = field(default_factory=list)


def evaluate(model: GNNModel, graph: Graph, agg: Aggregator) -> dict[str, float]:
    """Accuracy on the train/val/test splits with the given operator."""
    logits = model.forward(graph.features, agg)
    return {
        "train": accuracy(logits, graph.labels, graph.train_mask),
        "val": accuracy(logits, graph.labels, graph.val_mask),
        "test": accuracy(logits, graph.labels, graph.test_mask),
    }


def train_node_classifier(
    graph: Graph,
    model_name: str,
    *,
    hidden: int = 64,
    epochs: int = 60,
    lr: float = 0.01,
    weight_decay: float = 5e-4,
    dropout: float = 0.0,
    patience: int | None = None,
    seed: int = 0,
    model: GNNModel | None = None,
    agg: Aggregator | None = None,
) -> TrainResult:
    """Full-batch Adam training of one model on one graph.

    Deterministic for a fixed seed.  ``patience`` enables early stopping on
    validation accuracy (training halts after that many epochs without
    improvement; the best-validation parameters are restored).  An
    externally-built ``model`` or aggregator can be supplied (e.g. to
    evaluate the same trained weights under a different adjacency operator).
    """
    if graph.features is None or graph.labels is None:
        raise ValueError("graph must carry features and labels")
    n_classes = int(graph.labels.max()) + 1
    if model is None:
        model = build_model(model_name, graph.features.shape[1], hidden, n_classes, seed=seed)
    if agg is None:
        agg = make_aggregator(graph, aggregator_kind_for(model_name))
    opt = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    drop_rng = np.random.default_rng(seed + 1) if dropout > 0 else None
    losses: list[float] = []
    best_val = -1.0
    best_params: list[np.ndarray] | None = None
    stale = 0
    for _ in range(epochs):
        logits = model.forward(graph.features, agg, dropout=dropout, rng=drop_rng)
        loss = cross_entropy(logits, graph.labels, graph.train_mask)
        losses.append(loss)
        model.zero_grad()
        dlogits = cross_entropy_grad(logits, graph.labels, graph.train_mask)
        model.backward(dlogits)
        opt.step()
        if patience is not None and graph.val_mask is not None:
            val = accuracy(model.forward(graph.features, agg), graph.labels, graph.val_mask)
            if val > best_val:
                best_val = val
                best_params = [p.value.copy() for p in model.parameters()]
                stale = 0
            else:
                stale += 1
                if stale >= patience:
                    break
    if best_params is not None:
        for p, saved in zip(model.parameters(), best_params):
            p.value[...] = saved
    final = evaluate(model, graph, agg)
    return TrainResult(model, final["train"], final["val"], final["test"], losses)


def train_sampled(
    graph: Graph,
    model_name: str,
    *,
    hidden: int = 64,
    epochs: int = 10,
    batches_per_epoch: int = 4,
    n_seeds: int = 64,
    fanouts: tuple[int, ...] = (10, 10),
    lr: float = 0.01,
    weight_decay: float = 5e-4,
    seed: int = 0,
) -> TrainResult:
    """Minibatch training over NeighborSampler subgraphs (paper §5.2 setup).

    Each step draws a sampled subgraph, builds its aggregator, and applies
    one full-batch update on the subgraph — the standard large-graph GNN
    pipeline.  Final metrics are evaluated on the full graph.
    """
    from ..graphs.sampling import NeighborSampler

    if graph.features is None or graph.labels is None:
        raise ValueError("graph must carry features and labels")
    n_classes = int(graph.labels.max()) + 1
    model = build_model(model_name, graph.features.shape[1], hidden, n_classes, seed=seed)
    opt = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    sampler = NeighborSampler(graph, list(fanouts), seed=seed)
    kind = aggregator_kind_for(model_name)
    losses: list[float] = []
    for _ in range(epochs):
        for _ in range(batches_per_epoch):
            sub = sampler.sample(n_seeds)
            if sub.n == 0 or sub.train_mask is None or not sub.train_mask.any():
                continue
            agg = make_aggregator(sub, kind)
            logits = model.forward(sub.features, agg)
            losses.append(cross_entropy(logits, sub.labels, sub.train_mask))
            model.zero_grad()
            model.backward(cross_entropy_grad(logits, sub.labels, sub.train_mask))
            opt.step()
    full_agg = make_aggregator(graph, kind)
    final = evaluate(model, graph, full_agg)
    return TrainResult(model, final["train"], final["val"], final["test"], losses)
