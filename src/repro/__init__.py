"""repro — reproduction of "Accelerating GNNs on GPU Sparse Tensor Cores
through N:M Sparsity-Oriented Graph Reordering" (PPoPP 2025).

Public API highlights
---------------------
* :func:`repro.reorder` / :func:`repro.find_best_pattern` — the SOGRE
  dual-level reordering algorithm and the best V:N:M pattern search.
* :mod:`repro.sptc` — emulated Sparse Tensor Core substrate: CSR/BSR/N:M/
  VENOM formats, functional ``mma.sp``, SpMM kernels and the A100-class
  analytical cost model.
* :mod:`repro.graphs` — graph substrate: datasets, generators, sampling.
* :mod:`repro.gnn` — NumPy GNN framework (GCN / GraphSAGE / Cheb / SGC) with
  pluggable SpMM backends ("PyG-like" and "DGL-like" engines).
* :mod:`repro.prune`, :mod:`repro.baselines`, :mod:`repro.distributed` —
  the paper's comparison points and the multi-device experiment substrate.
"""

from .core import (
    BitMatrix,
    NMPattern,
    Permutation,
    ReorderResult,
    VNMPattern,
    find_best_pattern,
    reorder,
    reorder_graph_matrix,
)

__version__ = "1.0.0"

__all__ = [
    "BitMatrix",
    "NMPattern",
    "VNMPattern",
    "Permutation",
    "ReorderResult",
    "reorder",
    "reorder_graph_matrix",
    "find_best_pattern",
    "__version__",
]
