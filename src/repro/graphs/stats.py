"""Graph population statistics (paper Table 1 columns)."""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["graph_stats", "collection_stats", "estimate_diameter"]


def estimate_diameter(graph: Graph, *, n_sources: int = 4, seed: int = 0) -> int:
    """Lower-bound diameter estimate via BFS from a few pseudo-peripheral roots.

    Exact diameters are O(n·m); the double-sweep heuristic matches how large
    collections are usually characterized.
    """
    if graph.n == 0:
        return 0
    csr = graph.csr()
    indptr, indices = csr.indptr, csr.indices
    rng = np.random.default_rng(seed)

    def bfs_ecc(src: int) -> tuple[int, int]:
        dist = -np.ones(graph.n, dtype=np.int64)
        dist[src] = 0
        frontier = np.array([src], dtype=np.int64)
        level = 0
        far = src
        while frontier.size:
            nxt = []
            for v in frontier:
                nbrs = indices[indptr[v] : indptr[v + 1]]
                fresh = nbrs[dist[nbrs] < 0]
                dist[fresh] = level + 1
                nxt.append(fresh)
            frontier = np.unique(np.concatenate(nxt)) if nxt else np.empty(0, dtype=np.int64)
            if frontier.size:
                level += 1
                far = int(frontier[0])
        return level, far

    best = 0
    for _ in range(n_sources):
        src = int(rng.integers(0, graph.n))
        ecc, far = bfs_ecc(src)
        ecc2, _ = bfs_ecc(far)  # double sweep from the farthest vertex
        best = max(best, ecc, ecc2)
    return best


def graph_stats(graph: Graph, *, with_diameter: bool = False) -> dict:
    """Per-graph statistics: the columns of the paper's Table 1."""
    deg = graph.degrees()
    out = {
        "name": graph.name,
        "n_vertices": graph.n,
        "n_edges": graph.n_directed_edges,
        "avg_degree": float(deg.mean()) if deg.size else 0.0,
        "max_degree": int(deg.max(initial=0)),
        "density": graph.density(),
    }
    if with_diameter:
        out["diameter"] = estimate_diameter(graph)
    return out


def collection_stats(graphs: list[Graph], *, with_diameter: bool = False) -> dict:
    """Avg/median rows of Table 1 for a graph population."""
    rows = [graph_stats(g, with_diameter=with_diameter) for g in graphs]

    def agg(key):
        vals = np.array([r[key] for r in rows], dtype=np.float64)
        return {"avg": float(vals.mean()), "med": float(np.median(vals))}

    keys = ["n_vertices", "n_edges", "avg_degree", "max_degree"]
    if with_diameter:
        keys.append("diameter")
    return {"n_graphs": len(rows), **{k: agg(k) for k in keys}}
