"""Matrix Market I/O, written from scratch.

SuiteSparse distributes matrices in the MatrixMarket ``.mtx`` coordinate
format; this module reads and writes the subset needed for adjacency
matrices (coordinate real/pattern/integer, general or symmetric).
"""

from __future__ import annotations

import io as _io
from pathlib import Path

import numpy as np

from ..sptc.csr import CSRMatrix
from .graph import Graph

__all__ = ["read_matrix_market", "write_matrix_market", "graph_from_mtx", "graph_to_mtx"]


def read_matrix_market(path_or_file) -> tuple[CSRMatrix, bool]:
    """Parse a MatrixMarket coordinate file (``.mtx`` or ``.mtx.gz``).

    Returns ``(matrix, was_symmetric)``; symmetric inputs are expanded to
    full storage.
    """
    if isinstance(path_or_file, (str, Path)):
        if str(path_or_file).endswith(".gz"):
            import gzip

            with gzip.open(path_or_file, "rt") as f:
                return read_matrix_market(f)
        with open(path_or_file, "r") as f:
            return read_matrix_market(f)
    f = path_or_file
    header = f.readline().strip().split()
    if len(header) < 5 or header[0] != "%%MatrixMarket" or header[1] != "matrix":
        raise ValueError("not a MatrixMarket matrix file")
    layout, field, symmetry = header[2], header[3], header[4]
    if layout != "coordinate":
        raise ValueError(f"only coordinate layout is supported, got {layout}")
    if field not in ("real", "integer", "pattern"):
        raise ValueError(f"unsupported field type {field}")
    if symmetry not in ("general", "symmetric"):
        raise ValueError(f"unsupported symmetry {symmetry}")
    line = f.readline()
    while line.startswith("%"):
        line = f.readline()
    n_rows, n_cols, nnz = map(int, line.split())
    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    data = np.ones(nnz, dtype=np.float64)
    for i in range(nnz):
        parts = f.readline().split()
        rows[i] = int(parts[0]) - 1
        cols[i] = int(parts[1]) - 1
        if field != "pattern":
            data[i] = float(parts[2])
    if symmetry == "symmetric":
        off = rows != cols
        rows, cols, data = (
            np.concatenate([rows, cols[off]]),
            np.concatenate([cols, rows[off]]),
            np.concatenate([data, data[off]]),
        )
    return CSRMatrix.from_coo(rows, cols, data, (n_rows, n_cols), sum_duplicates=False), symmetry == "symmetric"


def write_matrix_market(matrix: CSRMatrix, path_or_file, *, symmetric: bool = False, pattern: bool = False) -> None:
    """Write a CSR matrix in MatrixMarket coordinate format (gzip if ``.gz``)."""
    if isinstance(path_or_file, (str, Path)):
        if str(path_or_file).endswith(".gz"):
            import gzip

            with gzip.open(path_or_file, "wt") as f:
                write_matrix_market(matrix, f, symmetric=symmetric, pattern=pattern)
                return
        with open(path_or_file, "w") as f:
            write_matrix_market(matrix, f, symmetric=symmetric, pattern=pattern)
            return
    f = path_or_file
    rows, cols, data = matrix.to_coo()
    if symmetric:
        keep = rows <= cols
        rows, cols, data = rows[keep], cols[keep], data[keep]
    field = "pattern" if pattern else "real"
    sym = "symmetric" if symmetric else "general"
    f.write(f"%%MatrixMarket matrix coordinate {field} {sym}\n")
    f.write(f"{matrix.shape[0]} {matrix.shape[1]} {rows.size}\n")
    for i in range(rows.size):
        if pattern:
            f.write(f"{rows[i] + 1} {cols[i] + 1}\n")
        else:
            f.write(f"{rows[i] + 1} {cols[i] + 1} {data[i]:.17g}\n")


def graph_from_mtx(path_or_file) -> Graph:
    """Load an adjacency matrix file as an undirected :class:`Graph`."""
    matrix, _ = read_matrix_market(path_or_file)
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError("adjacency matrix must be square")
    rows, cols, data = matrix.to_coo()
    return Graph.from_edge_list(matrix.shape[0], np.stack([rows, cols], axis=1), weights=data)


def graph_to_mtx(graph: Graph, path_or_file) -> None:
    """Write a graph's (symmetric) adjacency matrix."""
    write_matrix_market(graph.csr(), path_or_file, symmetric=True, pattern=graph.weights is None)


def graph_to_mtx_string(graph: Graph) -> str:
    buf = _io.StringIO()
    graph_to_mtx(graph, buf)
    return buf.getvalue()
