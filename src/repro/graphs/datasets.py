"""GNN dataset registry — synthetic stand-ins for the paper's Table 2.

Each entry records the published dataset characteristics (#V, #E, #features,
#classes).  :func:`load_dataset` materializes a seeded SBM graph with those
shapes: labels are block ids and features are class-informative Gaussians, so
edges genuinely carry label information (pruning them costs accuracy, as the
paper's Table 5 requires).  The huge OGBN graphs are represented by their
*sampled subgraphs* — the paper itself only ever feeds NeighborSampler
outputs of the listed average sizes to the kernels (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .generators import sbm_graph
from .graph import Graph

__all__ = ["DatasetSpec", "TABLE2_DATASETS", "OGBN_SAMPLE_SIZES", "load_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """Published characteristics of one GNN dataset (paper Table 2)."""

    name: str
    n_vertices: int
    n_edges: int
    n_features: int
    n_classes: int
    # Scale applied when materializing the synthetic stand-in (1.0 = full
    # size).  Large graphs are downscaled for laptop-class experiments; the
    # sampled-subgraph path (Table 6) uses OGBN_SAMPLE_SIZES instead.
    materialize_scale: float = 1.0
    feature_scale: float = 1.0


TABLE2_DATASETS: dict[str, DatasetSpec] = {
    "cora": DatasetSpec("cora", 2708, 10556, 1433, 7, feature_scale=0.25),
    "citeseer": DatasetSpec("citeseer", 3327, 9104, 3703, 6, feature_scale=0.1),
    "facebook": DatasetSpec("facebook", 4039, 88234, 1283, 193, feature_scale=0.25),
    "computers": DatasetSpec("computers", 13752, 491722, 767, 10, materialize_scale=0.5),
    "cs": DatasetSpec("cs", 18333, 163788, 6805, 15, materialize_scale=0.4, feature_scale=0.05),
    "corafull": DatasetSpec("corafull", 19793, 126842, 8710, 70, materialize_scale=0.4, feature_scale=0.04),
    "amazon-ratings": DatasetSpec("amazon-ratings", 24492, 93050, 300, 5, materialize_scale=0.4),
    "physics": DatasetSpec("physics", 34493, 495924, 8415, 5, materialize_scale=0.25, feature_scale=0.04),
    "ogbn-proteins": DatasetSpec("ogbn-proteins", 132534, 39561252, 128, 2, materialize_scale=0.05),
    "ogbn-products": DatasetSpec("ogbn-products", 2449029, 61859140, 100, 47, materialize_scale=0.004),
    "ogbn-arxiv": DatasetSpec("ogbn-arxiv", 169343, 1166243, 128, 40, materialize_scale=0.03),
    "ogbn-papers100m": DatasetSpec("ogbn-papers100M", 111059956, 1615685872, 128, 172, materialize_scale=0.0001),
}

# Average sampled-subgraph vertex counts the paper reports for §5.2.
OGBN_SAMPLE_SIZES = {
    "ogbn-proteins": 24604,
    "ogbn-arxiv": 2514,
    "ogbn-products": 19833,
    "ogbn-papers100M": 7607,
}


def dataset_names() -> list[str]:
    """Names of the 12 registered Table-2 datasets."""
    return list(TABLE2_DATASETS)


def _attach_payload(
    g: Graph, blocks: np.ndarray, spec: DatasetSpec, rng: np.random.Generator
) -> Graph:
    n = g.n
    n_feat = max(8, int(spec.n_features * spec.feature_scale))
    centers = rng.normal(0.0, 1.0, size=(spec.n_classes, n_feat))
    feats = centers[blocks] * 0.6 + rng.normal(0.0, 1.0, size=(n, n_feat))
    labels = blocks.astype(np.int64)
    order = rng.permutation(n)
    n_train = max(spec.n_classes * 4, int(0.3 * n))
    n_val = max(1, int(0.2 * n))
    train = np.zeros(n, dtype=bool)
    val = np.zeros(n, dtype=bool)
    test = np.zeros(n, dtype=bool)
    train[order[:n_train]] = True
    val[order[n_train : n_train + n_val]] = True
    test[order[n_train + n_val :]] = True
    g.features = feats.astype(np.float64)
    g.labels = labels
    g.train_mask = train
    g.val_mask = val
    g.test_mask = test
    return g


def load_dataset(name: str, *, seed: int = 0, scale: float | None = None) -> Graph:
    """Materialize a synthetic stand-in with the dataset's published shape.

    ``scale`` overrides the spec's default materialization scale (1.0 builds
    the full published vertex count — feasible for the eight Table-3/5
    datasets, expensive for OGBN).
    """
    key = name.lower()
    if key not in TABLE2_DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {dataset_names()}")
    spec = TABLE2_DATASETS[key]
    eff_scale = spec.materialize_scale if scale is None else scale
    n = max(64, int(spec.n_vertices * eff_scale))
    target_edges = max(n, int(spec.n_edges * eff_scale))
    # Keep the published average degree when downscaling.
    avg_degree = 2.0 * spec.n_edges / spec.n_vertices
    target_edges = int(n * avg_degree / 2)
    rng = np.random.default_rng(seed + (sum(map(ord, key)) % 7919))
    blocks_needed = spec.n_classes
    # 85% of edge mass intra-block: strong label signal in the structure.
    # When blocks are small the intra probability saturates; the remainder of
    # the edge budget spills into the inter-block rate so the published edge
    # count is preserved either way.
    block_size = n / blocks_needed
    intra_pairs = n * max(block_size - 1, 0.0) / 2.0
    inter_pairs = max(n * (n - 1) / 2.0 - intra_pairs, 1.0)
    p_in = min(0.9, 0.85 * target_edges / max(intra_pairs, 1.0))
    expected_intra = p_in * intra_pairs
    p_out = min(0.9, max(target_edges - expected_intra, 0.0) / inter_pairs)
    g, blocks = sbm_graph(n, blocks_needed, p_in, p_out, rng, name=spec.name)
    return _attach_payload(g, blocks, spec, rng)
