"""Neighbour sampling for large graphs (paper §4.4 / §5.2).

Large OGBN graphs are never processed whole: PyG's ``NeighborSampler``
draws seed vertices and expands a bounded-fan-out multi-hop neighbourhood,
and the resulting subgraphs (tens of thousands of vertices at most) are what
the reordering and the SPTC kernels consume.  :class:`NeighborSampler`
implements that pipeline over :class:`~repro.graphs.graph.Graph`.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["NeighborSampler", "sample_ogbn_like_subgraphs"]


class NeighborSampler:
    """Fan-out-bounded multi-hop subgraph sampler."""

    def __init__(self, graph: Graph, fanouts: list[int], *, seed: int = 0):
        self.graph = graph
        self.fanouts = list(fanouts)
        self.rng = np.random.default_rng(seed)
        # CSR-ish neighbour lists for fast expansion.
        csr = graph.csr()
        self._indptr = csr.indptr
        self._indices = csr.indices

    def _neighbours(self, v: int) -> np.ndarray:
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def sample(self, n_seeds: int) -> Graph:
        """Draw one subgraph: ``n_seeds`` roots expanded by ``fanouts`` hops."""
        n = self.graph.n
        seeds = self.rng.choice(n, size=min(n_seeds, n), replace=False)
        visited = set(seeds.tolist())
        frontier = seeds
        for fanout in self.fanouts:
            nxt: list[np.ndarray] = []
            for v in frontier:
                nbrs = self._neighbours(int(v))
                if nbrs.size > fanout:
                    nbrs = self.rng.choice(nbrs, size=fanout, replace=False)
                nxt.append(nbrs)
            if not nxt:
                break
            cand = np.unique(np.concatenate(nxt)) if nxt else np.empty(0, dtype=np.int64)
            fresh = np.array([c for c in cand.tolist() if c not in visited], dtype=np.int64)
            visited.update(fresh.tolist())
            frontier = fresh
            if frontier.size == 0:
                break
        vertices = np.sort(np.fromiter(visited, dtype=np.int64))
        return self.graph.induced_subgraph(vertices)

    def batches(self, n_batches: int, n_seeds: int):
        for _ in range(n_batches):
            yield self.sample(n_seeds)


def sample_ogbn_like_subgraphs(
    graph: Graph, target_vertices: int, n_samples: int, *, seed: int = 0
) -> list[Graph]:
    """Draw ``n_samples`` subgraphs of roughly ``target_vertices`` vertices.

    Matches the paper's per-dataset average sampled sizes (Table 6 setup) by
    tuning the seed count to the graph's expansion rate.
    """
    sampler = NeighborSampler(graph, fanouts=[10, 10], seed=seed)
    avg_deg = max(graph.degrees().mean(), 1.0)
    expansion = 1.0 + min(avg_deg, 10) + min(avg_deg, 10) ** 1.5
    n_seeds = max(4, int(target_vertices / expansion))
    out = []
    for _ in range(n_samples):
        sub = sampler.sample(n_seeds)
        out.append(sub)
    return out
