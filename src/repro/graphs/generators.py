"""Synthetic graph generators.

The paper evaluates on the SuiteSparse Matrix Collection and on standard GNN
datasets; neither ships with this offline reproduction, so these seeded
generators produce populations matched to the published statistics (DESIGN.md
§3).  The collection generator mixes structure families — banded/mesh-like,
block-community, power-law, and uniform random — because the reordering
algorithm's success rate depends on non-zero *placement*, not just density,
and SuiteSparse spans exactly that mix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import Graph

__all__ = [
    "gnp_graph",
    "sbm_graph",
    "power_law_graph",
    "banded_graph",
    "grid_graph",
    "small_world_graph",
    "rmat_graph",
    "SuiteSparseClassSpec",
    "SUITESPARSE_CLASSES",
    "suitesparse_like_collection",
]


def _edges_from_pairs(n: int, u: np.ndarray, v: np.ndarray, name: str) -> Graph:
    return Graph.from_edge_list(n, np.stack([u, v], axis=1), name=name)


def gnp_graph(n: int, p: float, rng: np.random.Generator, *, name: str = "gnp") -> Graph:
    """Erdős–Rényi G(n, p) via expected-count sampling (fast for sparse p)."""
    target = int(p * n * (n - 1) / 2)
    m = rng.poisson(target) if target > 0 else 0
    u = rng.integers(0, n, size=int(m * 1.2) + 8)
    v = rng.integers(0, n, size=u.size)
    return _edges_from_pairs(n, u, v, name)


def sbm_graph(
    n: int,
    n_blocks: int,
    p_in: float,
    p_out: float,
    rng: np.random.Generator,
    *,
    name: str = "sbm",
) -> tuple[Graph, np.ndarray]:
    """Stochastic block model; returns (graph, block assignment).

    Intra-block edges dominate when ``p_in >> p_out`` so labels are learnable
    from the structure — the property the Table-5 accuracy experiment needs.
    """
    blocks = rng.integers(0, n_blocks, size=n)
    sizes = np.bincount(blocks, minlength=n_blocks)
    all_u, all_v = [], []
    # Intra-block edges.
    for b in range(n_blocks):
        members = np.nonzero(blocks == b)[0]
        nb = members.size
        if nb < 2:
            continue
        m = rng.poisson(p_in * nb * (nb - 1) / 2)
        if m:
            all_u.append(members[rng.integers(0, nb, size=m)])
            all_v.append(members[rng.integers(0, nb, size=m)])
    # Inter-block edges, sampled globally and filtered.
    m_out = rng.poisson(p_out * n * (n - 1) / 2)
    if m_out:
        u = rng.integers(0, n, size=m_out)
        v = rng.integers(0, n, size=m_out)
        keep = blocks[u] != blocks[v]
        all_u.append(u[keep])
        all_v.append(v[keep])
    if all_u:
        u = np.concatenate(all_u)
        v = np.concatenate(all_v)
    else:
        u = v = np.empty(0, dtype=np.int64)
    g = _edges_from_pairs(n, u, v, name)
    return g, blocks


def power_law_graph(
    n: int,
    avg_degree: float,
    rng: np.random.Generator,
    *,
    exponent: float = 2.5,
    max_degree: int | None = None,
    name: str = "powerlaw",
) -> Graph:
    """Configuration-model graph with a truncated power-law degree sequence.

    ``max_degree`` truncates the tail; real collections have hubs but not
    vertices adjacent to half the graph (SuiteSparse's published max-degree
    averages are 3–15% of n — paper Table 1).
    """
    # Sample degrees from a zeta-like distribution, rescale to the target mean.
    raw = (rng.pareto(exponent - 1.0, size=n) + 1.0)
    deg = np.maximum(1, np.round(raw * avg_degree / raw.mean()).astype(np.int64))
    deg = np.minimum(deg, n - 1 if max_degree is None else min(max_degree, n - 1))
    stubs = np.repeat(np.arange(n), deg)
    rng.shuffle(stubs)
    if stubs.size % 2:
        stubs = stubs[:-1]
    half = stubs.size // 2
    return _edges_from_pairs(n, stubs[:half], stubs[half:], name)


def banded_graph(
    n: int,
    bandwidth: int,
    fill: float,
    rng: np.random.Generator,
    *,
    name: str = "banded",
) -> Graph:
    """Random banded matrix: non-zeros within ``bandwidth`` of the diagonal.

    Mimics the mesh/stencil matrices that dominate SuiteSparse; these conform
    easily after reordering because non-zeros are already clustered.
    """
    target = int(fill * n * bandwidth)
    u = rng.integers(0, n, size=target)
    off = rng.integers(1, bandwidth + 1, size=target)
    v = np.minimum(u + off, n - 1)
    return _edges_from_pairs(n, u, v, name)


def grid_graph(side: int, *, name: str = "grid") -> Graph:
    """2-D 4-neighbour grid (``side × side`` vertices)."""
    n = side * side
    idx = np.arange(n).reshape(side, side)
    right = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1)
    down = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1)
    return Graph.from_edge_list(n, np.concatenate([right, down]), name=name)


def small_world_graph(
    n: int,
    k: int,
    rewire_p: float,
    rng: np.random.Generator,
    *,
    name: str = "smallworld",
) -> Graph:
    """Watts-Strogatz small-world graph: a ring lattice of degree ``k`` with
    each edge rewired to a random endpoint with probability ``rewire_p``.

    Lattice structure conforms to N:M patterns almost for free; rewiring
    injects the long-range edges that make reordering non-trivial.
    """
    if k % 2 or k >= n:
        raise ValueError("k must be even and smaller than n")
    base_u, base_v = [], []
    for off in range(1, k // 2 + 1):
        src = np.arange(n)
        base_u.append(src)
        base_v.append((src + off) % n)
    u = np.concatenate(base_u)
    v = np.concatenate(base_v)
    rewire = rng.random(u.size) < rewire_p
    v = np.where(rewire, rng.integers(0, n, size=u.size), v)
    return _edges_from_pairs(n, u, v, name)


def rmat_graph(
    n: int,
    n_edges: int,
    rng: np.random.Generator,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    name: str = "rmat",
) -> Graph:
    """R-MAT recursive generator — skewed, community-ish, social-network-like."""
    scale = int(np.ceil(np.log2(max(n, 2))))
    probs = np.array([a, b, c, 1.0 - a - b - c])
    u = np.zeros(n_edges, dtype=np.int64)
    v = np.zeros(n_edges, dtype=np.int64)
    for level in range(scale):
        quad = rng.choice(4, size=n_edges, p=probs)
        bit = np.int64(1) << (scale - 1 - level)
        u |= np.where((quad == 2) | (quad == 3), bit, 0)
        v |= np.where((quad == 1) | (quad == 3), bit, 0)
    keep = (u < n) & (v < n)
    return _edges_from_pairs(n, u[keep], v[keep], name)


@dataclass(frozen=True)
class SuiteSparseClassSpec:
    """Population statistics of one SuiteSparse size class (paper Table 1)."""

    name: str
    avg_vertices: int
    med_vertices: int
    avg_degree: float
    med_degree: float
    n_graphs: int
    avg_max_degree: float


SUITESPARSE_CLASSES = {
    "small": SuiteSparseClassSpec("small", 426, 430, 12.5, 7.6, 444, 60.7),
    "medium": SuiteSparseClassSpec("medium", 3600, 2600, 22.5, 9.7, 724, 405.1),
    "large": SuiteSparseClassSpec("large", 22600, 20500, 36.1, 13.8, 188, 1041.6),
}

# Structure-family mixture for the synthetic collection.  Banded/grid
# matrices (mesh-like) dominate SuiteSparse; power-law/rmat contribute the
# hard, hub-heavy tail that resists large-V patterns.
_FAMILY_WEIGHTS = (
    ("banded", 0.40),
    ("grid", 0.10),
    ("sbm", 0.20),
    ("powerlaw", 0.20),
    ("gnp", 0.10),
)


def _sample_class_graph(
    spec: SuiteSparseClassSpec,
    rng: np.random.Generator,
    index: int,
    max_vertices: int | None = None,
) -> Graph:
    # Log-normal vertex counts centred on the class median with the mean above
    # it, as in the published skewed statistics.
    sigma = np.sqrt(max(2 * np.log(spec.avg_vertices / spec.med_vertices), 0.05))
    upper = spec.avg_vertices * 6 if max_vertices is None else max_vertices
    n = int(np.clip(rng.lognormal(np.log(spec.med_vertices), sigma), 32, max(upper, 33)))
    deg_sigma = np.sqrt(max(2 * np.log(spec.avg_degree / spec.med_degree), 0.05))
    deg_cap = min(n / 4, spec.avg_degree * 2.5)
    avg_deg = float(np.clip(rng.lognormal(np.log(spec.med_degree), deg_sigma), 2.0, deg_cap))
    r = rng.random()
    acc = 0.0
    family = _FAMILY_WEIGHTS[-1][0]
    for fam, wgt in _FAMILY_WEIGHTS:
        acc += wgt
        if r < acc:
            family = fam
            break
    name = f"{spec.name}-{family}-{index}"
    if family == "banded":
        bandwidth = max(2, int(avg_deg * rng.uniform(0.6, 2.0)))
        return banded_graph(n, bandwidth, min(0.9, avg_deg / (2 * bandwidth)), rng, name=name)
    if family == "grid":
        side = max(6, int(np.sqrt(n)))
        return grid_graph(side, name=name)
    if family == "sbm":
        blocks = max(2, int(np.sqrt(n) / 2))
        p_in = min(0.5, avg_deg / max(n / blocks, 1.0))
        g, _ = sbm_graph(n, blocks, p_in, p_in / 50, rng, name=name)
        return g
    if family == "powerlaw":
        # Truncate the hub tail at the class's published max-degree scale,
        # adjusted for the sampled graph size.
        cap = max(16, int(spec.avg_max_degree * n / spec.avg_vertices * rng.uniform(0.5, 2.0)))
        return power_law_graph(n, avg_deg, rng, max_degree=cap, name=name)
    return gnp_graph(n, min(0.5, avg_deg / max(n - 1, 1)), rng, name=name)


def suitesparse_like_collection(
    class_name: str,
    count: int | None = None,
    seed: int = 0,
    *,
    max_vertices: int | None = None,
) -> list[Graph]:
    """A seeded synthetic stand-in for one SuiteSparse size class.

    ``count`` defaults to a CI-friendly fraction of the published class size;
    pass ``spec.n_graphs`` for the full-scale population.  ``max_vertices``
    caps the sampled graph sizes (used by the CI benchmark harness to bound
    reordering time; full-scale runs leave it unset).
    """
    spec = SUITESPARSE_CLASSES[class_name]
    if count is None:
        count = max(8, spec.n_graphs // 10)
    class_salt = sum(ord(c) * 131**i for i, c in enumerate(class_name)) % (2**16)
    rng = np.random.default_rng(seed + class_salt)
    return [_sample_class_graph(spec, rng, i, max_vertices) for i in range(count)]
