"""Graph substrate: container, generators, datasets, sampling, I/O, stats."""

from .datasets import (
    DatasetSpec,
    OGBN_SAMPLE_SIZES,
    TABLE2_DATASETS,
    dataset_names,
    load_dataset,
)
from .generators import (
    SUITESPARSE_CLASSES,
    SuiteSparseClassSpec,
    banded_graph,
    gnp_graph,
    grid_graph,
    power_law_graph,
    rmat_graph,
    sbm_graph,
    small_world_graph,
    suitesparse_like_collection,
)
from .graph import Graph
from .io import graph_from_mtx, graph_to_mtx, read_matrix_market, write_matrix_market
from .sampling import NeighborSampler, sample_ogbn_like_subgraphs
from .stats import collection_stats, estimate_diameter, graph_stats

__all__ = [
    "Graph",
    "DatasetSpec",
    "TABLE2_DATASETS",
    "OGBN_SAMPLE_SIZES",
    "load_dataset",
    "dataset_names",
    "SuiteSparseClassSpec",
    "SUITESPARSE_CLASSES",
    "suitesparse_like_collection",
    "gnp_graph",
    "sbm_graph",
    "power_law_graph",
    "banded_graph",
    "grid_graph",
    "rmat_graph",
    "small_world_graph",
    "NeighborSampler",
    "sample_ogbn_like_subgraphs",
    "read_matrix_market",
    "write_matrix_market",
    "graph_from_mtx",
    "graph_to_mtx",
    "graph_stats",
    "collection_stats",
    "estimate_diameter",
]
