"""The Graph container used across the library.

A :class:`Graph` is an undirected graph with optional edge weights, node
features, labels, and train/val/test masks — everything a GNN node
classification experiment needs.  Its adjacency is exposed in each of the
representations the pipeline consumes (BitMatrix for reordering, CSR for the
baseline SpMM, dense for compression), and :meth:`relabel` applies a vertex
permutation losslessly to *all* attached data, which is the paper's central
"reordering changes nothing but the numbering" property.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.bitmatrix import BitMatrix
from ..core.permutation import Permutation
from ..sptc.csr import CSRMatrix

__all__ = ["Graph"]


@dataclass
class Graph:
    """An undirected graph with GNN node-classification payload."""

    n: int
    edges: np.ndarray                       # (E, 2) undirected, each pair once, u < v
    weights: np.ndarray | None = None       # (E,) positive edge weights
    features: np.ndarray | None = None      # (n, F)
    labels: np.ndarray | None = None        # (n,)
    train_mask: np.ndarray | None = None
    val_mask: np.ndarray | None = None
    test_mask: np.ndarray | None = None
    name: str = ""
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_edge_list(
        cls,
        n: int,
        edges: np.ndarray,
        *,
        weights: np.ndarray | None = None,
        dedup: bool = True,
        **kwargs,
    ) -> "Graph":
        """Build from an arbitrary (possibly directed/duplicated) edge list.

        Edges are symmetrized to canonical ``u < v`` pairs; self-loops drop.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        keep = lo != hi
        lo, hi = lo[keep], hi[keep]
        if weights is not None:
            weights = weights[keep]
        if dedup and lo.size:
            key = lo * np.int64(n) + hi
            order = np.argsort(key, kind="stable")
            key, lo, hi = key[order], lo[order], hi[order]
            first = np.ones(key.size, dtype=bool)
            first[1:] = key[1:] != key[:-1]
            lo, hi = lo[first], hi[first]
            if weights is not None:
                weights = weights[order][first]
        return cls(n=n, edges=np.stack([lo, hi], axis=1), weights=weights, **kwargs)

    @classmethod
    def from_dense(cls, a: np.ndarray, **kwargs) -> "Graph":
        a = np.asarray(a)
        rows, cols = np.nonzero(np.triu(a, 1))
        w = a[rows, cols].astype(np.float64)
        return cls(n=a.shape[0], edges=np.stack([rows, cols], axis=1), weights=w, **kwargs)

    # -- basic stats ------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        return int(self.edges.shape[0])

    @property
    def n_directed_edges(self) -> int:
        """Directed (adjacency-matrix) non-zero count: 2 per undirected edge."""
        return 2 * self.n_edges

    def degrees(self) -> np.ndarray:
        deg = np.zeros(self.n, dtype=np.int64)
        np.add.at(deg, self.edges[:, 0], 1)
        np.add.at(deg, self.edges[:, 1], 1)
        return deg

    def density(self) -> float:
        return self.n_directed_edges / (self.n * self.n) if self.n else 0.0

    # -- adjacency views -----------------------------------------------------------
    def _sym_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        u, v = self.edges[:, 0], self.edges[:, 1]
        w = self.weights if self.weights is not None else np.ones(self.n_edges)
        rows = np.concatenate([u, v])
        cols = np.concatenate([v, u])
        data = np.concatenate([w, w])
        return rows, cols, data

    def bitmatrix(self) -> BitMatrix:
        bm = self._cache.get("bitmatrix")
        if bm is None:
            rows, cols, _ = self._sym_coo()
            bm = BitMatrix.from_edges(self.n, rows, cols)
            self._cache["bitmatrix"] = bm
        return bm

    def csr(self, *, normalized: bool = False, add_self_loops: bool = False) -> CSRMatrix:
        key = ("csr", normalized, add_self_loops)
        out = self._cache.get(key)
        if out is None:
            rows, cols, data = self._sym_coo()
            if add_self_loops:
                loops = np.arange(self.n)
                rows = np.concatenate([rows, loops])
                cols = np.concatenate([cols, loops])
                data = np.concatenate([data, np.ones(self.n)])
            if normalized:
                deg = np.zeros(self.n)
                np.add.at(deg, rows, data)
                inv_sqrt = np.where(deg > 0, 1.0 / np.sqrt(np.maximum(deg, 1e-12)), 0.0)
                data = data * inv_sqrt[rows] * inv_sqrt[cols]
            out = CSRMatrix.from_coo(rows, cols, data, (self.n, self.n))
            self._cache[key] = out
        return out

    def dense_adjacency(self, *, normalized: bool = False, add_self_loops: bool = False) -> np.ndarray:
        return self.csr(normalized=normalized, add_self_loops=add_self_loops).to_dense()

    # -- transformations ----------------------------------------------------------
    def relabel(self, perm: Permutation) -> "Graph":
        """Apply a vertex permutation to the whole graph — lossless.

        ``perm`` is in gather form (``perm[new] = old``); every per-vertex
        array is gathered and edge endpoints are renumbered via the inverse.
        """
        if perm.n != self.n:
            raise ValueError("permutation size does not match graph")
        new_of_old = perm.inverse().order

        def gather(x):
            return None if x is None else np.asarray(x)[perm.order]

        return Graph.from_edge_list(
            self.n,
            new_of_old[self.edges],
            weights=None if self.weights is None else self.weights.copy(),
            dedup=False,
            features=gather(self.features),
            labels=gather(self.labels),
            train_mask=gather(self.train_mask),
            val_mask=gather(self.val_mask),
            test_mask=gather(self.test_mask),
            name=self.name,
        )

    def induced_subgraph(self, vertices: np.ndarray) -> "Graph":
        """Subgraph on ``vertices`` (relabelled 0..len-1, original order kept)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        new_id = -np.ones(self.n, dtype=np.int64)
        new_id[vertices] = np.arange(vertices.size)
        u, v = self.edges[:, 0], self.edges[:, 1]
        keep = (new_id[u] >= 0) & (new_id[v] >= 0)

        def gather(x):
            return None if x is None else np.asarray(x)[vertices]

        return Graph.from_edge_list(
            vertices.size,
            np.stack([new_id[u[keep]], new_id[v[keep]]], axis=1),
            weights=None if self.weights is None else self.weights[keep],
            dedup=False,
            features=gather(self.features),
            labels=gather(self.labels),
            train_mask=gather(self.train_mask),
            val_mask=gather(self.val_mask),
            test_mask=gather(self.test_mask),
            name=self.name,
        )

    def to_networkx(self):
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(map(tuple, self.edges))
        return g

    def __repr__(self) -> str:
        return f"Graph(name={self.name!r}, n={self.n}, edges={self.n_edges})"
