"""Multilevel graph partitioning (the §4.4 distributed-GNN substrate).

The paper's distributed deployment partitions large graphs across devices
and cites the partitioning literature [6, 10, 33, 56, 64] for balance and
cut quality.  This is a compact multilevel partitioner in that family:

1. **Coarsen** — repeated heavy-edge matching collapses the graph until it
   is small;
2. **Initial partition** — greedy BFS region growing on the coarsest graph;
3. **Uncoarsen + refine** — project the assignment back up, fixing balance
   and applying a Kernighan–Lin-style boundary refinement at each level.

It is not METIS, but it produces balanced partitions with materially lower
edge cuts than contiguous 1-D blocking on clustered graphs, which is what
the distributed benches need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph

__all__ = ["PartitionResult", "multilevel_partition", "partition_quality"]


@dataclass
class PartitionResult:
    """Vertex → part assignment plus quality metrics."""

    assignment: np.ndarray
    n_parts: int
    edge_cut: int
    imbalance: float

    def part_sizes(self) -> np.ndarray:
        return np.bincount(self.assignment, minlength=self.n_parts)


def partition_quality(graph: Graph, assignment: np.ndarray, n_parts: int) -> tuple[int, float]:
    """(edge cut, imbalance) of an assignment; imbalance = max/ideal − 1."""
    u, v = graph.edges[:, 0], graph.edges[:, 1]
    cut = int((assignment[u] != assignment[v]).sum())
    sizes = np.bincount(assignment, minlength=n_parts)
    ideal = graph.n / n_parts
    imbalance = float(sizes.max() / ideal - 1.0) if graph.n else 0.0
    return cut, imbalance


# ---------------------------------------------------------------------------
# coarsening
# ---------------------------------------------------------------------------

def _heavy_edge_matching(n: int, u: np.ndarray, v: np.ndarray, w: np.ndarray, rng) -> np.ndarray:
    """Greedy matching preferring heavy edges; returns coarse-vertex map."""
    order = np.argsort(-w, kind="stable")
    matched = np.full(n, -1, dtype=np.int64)
    for e in order:
        a, b = int(u[e]), int(v[e])
        if matched[a] == -1 and matched[b] == -1 and a != b:
            matched[a] = b
            matched[b] = a
    coarse_id = np.full(n, -1, dtype=np.int64)
    nxt = 0
    for x in range(n):
        if coarse_id[x] != -1:
            continue
        coarse_id[x] = nxt
        if matched[x] != -1:
            coarse_id[matched[x]] = nxt
        nxt += 1
    return coarse_id


def _contract(n_coarse: int, u, v, w, coarse_id):
    cu, cv = coarse_id[u], coarse_id[v]
    keep = cu != cv
    cu, cv, cw = cu[keep], cv[keep], w[keep]
    lo = np.minimum(cu, cv)
    hi = np.maximum(cu, cv)
    key = lo * np.int64(n_coarse) + hi
    order = np.argsort(key, kind="stable")
    key, lo, hi, cw = key[order], lo[order], hi[order], cw[order]
    first = np.ones(key.size, dtype=bool)
    if key.size:
        first[1:] = key[1:] != key[:-1]
    group = np.cumsum(first) - 1
    summed = np.zeros(int(group[-1]) + 1 if key.size else 0)
    np.add.at(summed, group, cw)
    return lo[first], hi[first], summed


# ---------------------------------------------------------------------------
# initial partition + refinement
# ---------------------------------------------------------------------------

def _bfs_grow(n: int, adj_ptr, adj_idx, vweight, n_parts: int, rng) -> np.ndarray:
    """Greedy region growing from spread-out seeds, balanced by vertex weight."""
    assignment = np.full(n, -1, dtype=np.int64)
    total = float(vweight.sum())
    target = total / n_parts
    seeds = rng.choice(n, size=min(n_parts, n), replace=False)
    frontiers = [[int(s)] for s in seeds]
    sizes = np.zeros(n_parts, dtype=np.float64)
    for p, s in enumerate(seeds):
        assignment[s] = p
        sizes[p] += vweight[s]
    progress = True
    while progress:
        progress = False
        for p in range(n_parts):
            if sizes[p] >= target or not frontiers[p]:
                continue
            nxt = []
            for x in frontiers[p]:
                for y in adj_idx[adj_ptr[x] : adj_ptr[x + 1]]:
                    y = int(y)
                    if assignment[y] == -1 and sizes[p] < target:
                        assignment[y] = p
                        sizes[p] += vweight[y]
                        nxt.append(y)
            frontiers[p] = nxt
            progress = progress or bool(nxt)
    # Unreached vertices: fill lightest parts.
    for x in np.nonzero(assignment == -1)[0]:
        p = int(np.argmin(sizes))
        assignment[x] = p
        sizes[p] += vweight[x]
    return assignment


def _refine(
    n: int, adj_ptr, adj_idx, adj_w, vweight, assignment, n_parts: int, passes: int = 3
) -> np.ndarray:
    """Greedy boundary refinement with a weighted balance guard."""
    assignment = assignment.copy()
    sizes = np.zeros(n_parts, dtype=np.float64)
    np.add.at(sizes, assignment, vweight)
    max_size = float(vweight.sum()) / n_parts * 1.05
    for _ in range(passes):
        moved = 0
        for x in range(n):
            nbrs = adj_idx[adj_ptr[x] : adj_ptr[x + 1]]
            if nbrs.size == 0:
                continue
            wts = adj_w[adj_ptr[x] : adj_ptr[x + 1]]
            cur = assignment[x]
            gain_to = np.zeros(n_parts)
            np.add.at(gain_to, assignment[nbrs], wts)
            best = int(np.argmax(gain_to))
            if (
                best != cur
                and gain_to[best] > gain_to[cur]
                and sizes[best] + vweight[x] <= max_size
                and sizes[cur] > vweight[x]
            ):
                assignment[x] = best
                sizes[cur] -= vweight[x]
                sizes[best] += vweight[x]
                moved += 1
        if moved == 0:
            break
    return assignment


def _rebalance(
    n: int, adj_ptr, adj_idx, adj_w, vweight, assignment, n_parts: int
) -> np.ndarray:
    """Force every part under the balance cap, moving the cheapest vertices."""
    assignment = assignment.copy()
    sizes = np.zeros(n_parts, dtype=np.float64)
    np.add.at(sizes, assignment, vweight)
    cap = float(vweight.sum()) / n_parts * 1.05
    for _ in range(4 * n):
        over = int(np.argmax(sizes))
        if sizes[over] <= cap:
            break
        under = int(np.argmin(sizes))
        members = np.nonzero(assignment == over)[0]
        # Cheapest member to move: least internal connectivity to `over`.
        best_x, best_loss = int(members[0]), np.inf
        for x in members:
            nbrs = adj_idx[adj_ptr[x] : adj_ptr[x + 1]]
            wts = adj_w[adj_ptr[x] : adj_ptr[x + 1]]
            internal = float(wts[assignment[nbrs] == over].sum())
            toward = float(wts[assignment[nbrs] == under].sum())
            loss = internal - toward
            if loss < best_loss:
                best_loss, best_x = loss, int(x)
        assignment[best_x] = under
        sizes[over] -= vweight[best_x]
        sizes[under] += vweight[best_x]
    return assignment


def _csr_arrays(n, u, v, w):
    du = np.concatenate([u, v])
    dv = np.concatenate([v, u])
    dw = np.concatenate([w, w])
    order = np.argsort(du, kind="stable")
    du, dv, dw = du[order], dv[order], dw[order]
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(ptr, du + 1, 1)
    np.cumsum(ptr, out=ptr)
    return ptr, dv, dw


def multilevel_partition(
    graph: Graph,
    n_parts: int,
    *,
    coarsen_to: int = 64,
    seed: int = 0,
    refine_passes: int = 3,
) -> PartitionResult:
    """Partition ``graph`` into ``n_parts`` balanced parts, minimizing cut."""
    if n_parts < 1:
        raise ValueError("n_parts must be positive")
    if n_parts == 1 or graph.n <= n_parts:
        assignment = (np.arange(graph.n) % n_parts).astype(np.int64)
        cut, imb = partition_quality(graph, assignment, n_parts)
        return PartitionResult(assignment, n_parts, cut, imb)

    rng = np.random.default_rng(seed)
    levels = []
    u = graph.edges[:, 0].astype(np.int64)
    v = graph.edges[:, 1].astype(np.int64)
    w = (graph.weights if graph.weights is not None else np.ones(u.size)).astype(np.float64)
    n = graph.n
    vweight = np.ones(n, dtype=np.float64)
    vweights = [vweight]
    # Coarsening phase.
    while n > max(coarsen_to, 4 * n_parts) and u.size:
        coarse_id = _heavy_edge_matching(n, u, v, w, rng)
        n_coarse = int(coarse_id.max()) + 1
        if n_coarse >= n:  # no progress (e.g. empty matching)
            break
        levels.append(coarse_id)
        new_weight = np.zeros(n_coarse, dtype=np.float64)
        np.add.at(new_weight, coarse_id, vweight)
        vweight = new_weight
        vweights.append(vweight)
        u, v, w = _contract(n_coarse, u, v, w, coarse_id)
        n = n_coarse

    # Initial partition on the coarsest graph.
    ptr, idx, wts = _csr_arrays(n, u, v, w)
    assignment = _bfs_grow(n, ptr, idx, vweight, n_parts, rng)
    assignment = _refine(n, ptr, idx, wts, vweight, assignment, n_parts, refine_passes)

    # Uncoarsen with refinement at every level.  The fine graph at level i is
    # the original edge set projected through the first i contraction maps.
    base_u = graph.edges[:, 0].astype(np.int64)
    base_v = graph.edges[:, 1].astype(np.int64)
    base_w = (graph.weights if graph.weights is not None else np.ones(base_u.size)).astype(np.float64)
    for i in range(len(levels) - 1, -1, -1):
        coarse_id = levels[i]
        assignment = assignment[coarse_id]
        n_fine = coarse_id.shape[0]
        fu, fv = base_u, base_v
        for cid in levels[:i]:
            fu, fv = cid[fu], cid[fv]
        keep = fu != fv
        ptr, idx, wts = _csr_arrays(n_fine, fu[keep], fv[keep], base_w[keep])
        vw = vweights[i]
        assignment = _refine(n_fine, ptr, idx, wts, vw, assignment, n_parts, refine_passes)
        assignment = _rebalance(n_fine, ptr, idx, wts, vw, assignment, n_parts)

    cut, imb = partition_quality(graph, assignment, n_parts)
    return PartitionResult(assignment.astype(np.int64), n_parts, cut, imb)
