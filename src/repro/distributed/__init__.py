"""Distributed/multi-GPU experiment substrate (paper §4.4 and §5.2)."""

from .cluster import Cluster, ClusterRun
from .multilevel import PartitionResult, multilevel_partition, partition_quality
from .partition import (
    RowPartition,
    distributed_spmm,
    edge_cut,
    partition_rows,
    reorder_partitions,
)

__all__ = [
    "Cluster",
    "ClusterRun",
    "RowPartition",
    "partition_rows",
    "edge_cut",
    "reorder_partitions",
    "distributed_spmm",
    "PartitionResult",
    "multilevel_partition",
    "partition_quality",
]
