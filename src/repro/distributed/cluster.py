"""Multi-device cluster simulation for the large-graph experiment (§5.2).

The paper partitions OGBN graphs into sampled subgraphs via NeighborSampler,
reorders each, and runs the SPTC GNN on four A100s in parallel.  The
experiment is embarrassingly parallel over samples, so the cluster model is
a set of :class:`~repro.sptc.device.EmulatedDevice` instances with
independent virtual clocks, round-robin sample scheduling, and makespan
aggregation (max over device clocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.patterns import VNMPattern
from ..gnn.frameworks import PreparedSetting, make_device, prepare_setting, timed_forward
from ..graphs.graph import Graph
from ..sptc.device import EmulatedDevice

__all__ = ["ClusterRun", "Cluster"]


@dataclass
class ClusterRun:
    """Aggregated result of a parallel run over sampled subgraphs."""

    per_device_seconds: list[float]
    aggregation_seconds: float
    total_seconds: float
    n_samples: int

    @property
    def makespan(self) -> float:
        return max(self.per_device_seconds) if self.per_device_seconds else 0.0


@dataclass
class Cluster:
    """A fixed-size pool of emulated GPUs."""

    n_devices: int = 4
    framework: str = "pyg"
    devices: list[EmulatedDevice] = field(default_factory=list)

    def __post_init__(self):
        if not self.devices:
            self.devices = [make_device(self.framework) for _ in range(self.n_devices)]
            for i, d in enumerate(self.devices):
                d.device_id = i

    def run_gnn(
        self,
        samples: list[Graph],
        model_name: str,
        setting: str,
        pattern: VNMPattern,
        *,
        hidden: int = 128,
        seed: int = 0,
        prepared: list[PreparedSetting] | None = None,
    ) -> ClusterRun:
        """Round-robin the sampled subgraphs over the device pool.

        ``prepared`` allows reusing preprocessing (reordering is offline and
        shared between the settings being compared).
        """
        for d in self.devices:
            d.reset()
        agg_total = 0.0
        wall_total = 0.0
        if prepared is None:
            prepared = [prepare_setting(g, setting, pattern) for g in samples]
        for i, prep in enumerate(prepared):
            device = self.devices[i % self.n_devices]
            timing = timed_forward(self.framework, model_name, prep, hidden=hidden, seed=seed)
            device.clock += timing.total_seconds
            agg_total += timing.aggregation_seconds
            wall_total += timing.total_seconds
        return ClusterRun(
            per_device_seconds=[d.clock for d in self.devices],
            aggregation_seconds=agg_total,
            total_seconds=wall_total,
            n_samples=len(samples),
        )
