"""1-D row partitioning of adjacency matrices (paper §4.4).

For parallel/distributed GNNs each node multiplies a horizontal slice of the
adjacency matrix; the reordering algorithm applies independently to each
slice and results are mapped back before accumulation.  This module provides
the slicing, per-partition reordering, and the stitch-back bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bitmatrix import BitMatrix
from ..core.patterns import VNMPattern
from ..core.permutation import Permutation
from ..core.reorder import ReorderResult, reorder
from ..graphs.graph import Graph

__all__ = [
    "RowPartition",
    "partition_rows",
    "edge_cut",
    "reorder_partitions",
    "distributed_spmm",
]


@dataclass
class RowPartition:
    """One contiguous block of vertices assigned to a device."""

    device: int
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


def partition_rows(n: int, n_parts: int, *, align: int = 1) -> list[RowPartition]:
    """Balanced contiguous 1-D partition of ``n`` vertices.

    Guarantees exhaustive, disjoint coverage: every row lands in exactly
    one partition, partitions are contiguous and ordered, and
    ``parts[0].start == 0``, ``parts[-1].stop == n``.

    ``align`` snaps every *interior* boundary to a multiple of it — the
    N:M tile height ``v`` for sharded serving, so no V:N:M tile row ever
    straddles two shards (the final boundary is ``n`` itself; a partial
    tail tile stays whole inside the last partition).  Balance is in whole
    tiles: partition sizes differ by at most one tile.  Raises
    :class:`ValueError` when ``n_parts`` exceeds the number of tiles —
    an empty shard serves nothing and merges wrong.
    """
    if n_parts < 1:
        raise ValueError("need at least one partition")
    if align < 1:
        raise ValueError("align must be >= 1")
    if n < 1:
        raise ValueError("need at least one row to partition")
    n_tiles = -(-n // align)
    if n_parts > n_tiles:
        raise ValueError(
            f"cannot split {n} row(s) ({n_tiles} tile(s) of height {align}) "
            f"into {n_parts} non-empty aligned partitions"
        )
    base, extra = divmod(n_tiles, n_parts)
    parts: list[RowPartition] = []
    start = 0
    tile_stop = 0
    for i in range(n_parts):
        tile_stop += base + (1 if i < extra else 0)
        stop = min(n, tile_stop * align)
        parts.append(RowPartition(i, start, stop))
        start = stop
    return parts


def edge_cut(graph: Graph, parts: list[RowPartition]) -> int:
    """Number of undirected edges crossing partition boundaries."""
    owner = np.zeros(graph.n, dtype=np.int64)
    for p in parts:
        owner[p.start : p.stop] = p.device
    u, v = graph.edges[:, 0], graph.edges[:, 1]
    return int((owner[u] != owner[v]).sum())


def reorder_partitions(
    graph: Graph, n_parts: int, pattern: VNMPattern, *, max_iter: int = 10
) -> tuple[Permutation, list[ReorderResult]]:
    """Independently reorder each partition's induced subgraph (§4.4).

    The per-partition permutations act within partition boundaries, so the
    composed global permutation keeps each device's vertex range intact while
    making each local adjacency block conform.  Returns the global
    permutation plus the per-partition reorder results.
    """
    parts = partition_rows(graph.n, n_parts)
    global_order = np.arange(graph.n, dtype=np.int64)
    results: list[ReorderResult] = []
    bm = graph.bitmatrix()
    for p in parts:
        ids = np.arange(p.start, p.stop)
        # Local adjacency among the partition's own vertices.
        sub = _extract_block(bm, ids)
        res = reorder(sub, pattern, max_iter=max_iter)
        results.append(res)
        global_order[p.start : p.stop] = ids[res.permutation.order]
    return Permutation(global_order), results


def _extract_block(bm: BitMatrix, ids: np.ndarray) -> BitMatrix:
    rows, cols = bm.nonzero()
    lo, hi = ids[0], ids[-1] + 1
    keep = (rows >= lo) & (rows < hi) & (cols >= lo) & (cols < hi)
    return BitMatrix.from_edges(ids.size, rows[keep] - lo, cols[keep] - lo)


def distributed_spmm(
    graph: Graph,
    b: np.ndarray,
    n_parts: int,
    pattern: VNMPattern,
    *,
    max_iter: int = 5,
    device_factory=None,
) -> tuple[np.ndarray, list]:
    """Partitioned SpMM with per-device reordering (paper §4.4).

    Each device owns a contiguous vertex range.  Its *diagonal* block is
    reordered independently and runs on the SPTC path; the off-diagonal
    coupling blocks (whose rows/columns belong to different devices and thus
    cannot share one symmetric permutation) stay on the CSR path.  Every
    device's partial result is mapped back to the global vertex order before
    accumulation, so the output equals the monolithic ``A @ B`` exactly.

    Returns ``(result, devices)``; pass ``device_factory`` to time the run on
    emulated devices (defaults to untimed functional execution).
    """
    from ..sptc.csr import CSRMatrix
    from ..sptc.hybrid import HybridVNM

    b = np.asarray(b, dtype=np.float64)
    if b.shape[0] != graph.n:
        raise ValueError("B row count must match the vertex count")
    parts = partition_rows(graph.n, n_parts)
    global_perm, _ = reorder_partitions(graph, n_parts, pattern, max_iter=max_iter)
    csr = graph.csr()
    rows, cols, data = csr.to_coo()
    new_of_old = global_perm.inverse().order

    out = np.zeros((graph.n, b.shape[1]), dtype=np.float64)
    devices = []
    for p in parts:
        device = device_factory(p.device) if device_factory is not None else None
        in_rows = (rows >= p.start) & (rows < p.stop)
        local = (cols >= p.start) & (cols < p.stop)

        # Diagonal block in the per-partition reordered basis -> SPTC path.
        diag = in_rows & local
        r_new = new_of_old[rows[diag]] - p.start
        c_new = new_of_old[cols[diag]] - p.start
        diag_csr = CSRMatrix.from_coo(r_new, c_new, data[diag], (p.size, p.size))
        operand = HybridVNM.compress_csr(diag_csr, pattern)
        b_local = b[global_perm.order[p.start : p.stop]]
        partial = device.spmm(operand, b_local) if device else operand.spmm(b_local)
        # Map the partial result back to global vertex order (the paper's
        # "reordered back before accumulation").
        out[global_perm.order[p.start : p.stop]] += partial

        # Off-diagonal coupling stays in the original order on the CSR path.
        off = in_rows & ~local
        if off.any():
            off_csr = CSRMatrix.from_coo(
                rows[off] - p.start, cols[off], data[off], (p.size, graph.n)
            )
            contrib = device.spmm_csr(off_csr, b) if device else off_csr.matmat(b)
            out[p.start : p.stop] += contrib
        if device is not None:
            devices.append(device)
    return out, devices
