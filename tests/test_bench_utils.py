"""Benchmark-harness utilities."""

import numpy as np
import pytest

from repro.bench import collection_counts, format_cell, full_scale, geomean, render_table


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([5.0]) == pytest.approx(5.0)

    def test_ignores_nonpositive(self):
        assert geomean([4.0, 0.0, -1.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_generator_input(self):
        assert geomean(x for x in (1.0, 4.0)) == pytest.approx(2.0)


class TestScaleFlags:
    def test_full_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_scale()
        assert collection_counts() == {"small": 444, "medium": 724, "large": 188}

    def test_default_ci_counts(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not full_scale()
        counts = collection_counts()
        assert counts["small"] < 444


class TestRenderTable:
    def test_contains_title_headers_rows(self):
        out = render_table("My Table", ["a", "bb"], [[1, 2.5], ["x", 10000.0]])
        assert "== My Table ==" in out
        assert "a" in out and "bb" in out
        assert "2.50" in out
        assert "10,000" in out

    def test_column_alignment(self):
        out = render_table("t", ["col"], [[123456.0]])
        lines = out.splitlines()
        assert len(lines[1]) == len(lines[3])

    def test_format_cell(self):
        assert format_cell(0.0) == "0"
        assert format_cell(3.14159) == "3.14"
        assert format_cell(42.0) == "42.0"
        assert format_cell(1234567.0) == "1,234,567"
        assert format_cell("text") == "text"
        assert format_cell(7) == "7"
