"""Metrics registry: instruments, bucket edges, quantiles, exporters."""

import json

import pytest

from repro.obs import MetricsRegistry, default_registry
from repro.obs.metrics import DEFAULT_BUCKETS


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, reg):
        c = reg.counter("requests_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self, reg):
        with pytest.raises(ValueError, match="only go up"):
            reg.counter("requests_total").inc(-1)

    def test_same_name_same_object(self, reg):
        assert reg.counter("x_total") is reg.counter("x_total")

    def test_labels_split_series(self, reg):
        a = reg.counter("hits_total", backend="vnm")
        b = reg.counter("hits_total", backend="csr")
        assert a is not b
        a.inc()
        assert b.value == 0.0


class TestGauge:
    def test_set_inc_dec(self, reg):
        g = reg.gauge("depth")
        g.set(4.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 3.0


class TestHistogram:
    def test_default_buckets_log_scale(self):
        assert DEFAULT_BUCKETS[0] == 1e-6
        for lo, hi in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]):
            assert hi == pytest.approx(2.0 * lo)

    def test_bucket_edges_inclusive_upper(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(1.0)   # lands in the <=1.0 bucket, not the next
        h.observe(1.5)
        h.observe(100.0)  # +Inf tail
        assert h.counts == [1, 1, 0, 1]

    def test_rejects_unsorted_buckets(self, reg):
        with pytest.raises(ValueError, match="ascending"):
            reg.histogram("bad", buckets=(2.0, 1.0))

    def test_quantiles_interpolate(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(1.5)
        # All mass in (1, 2]: every quantile stays inside that bucket.
        assert 1.0 <= h.quantile(0.5) <= 2.0
        assert 1.0 <= h.quantile(0.99) <= 2.0
        assert h.quantile(1.0) == 2.0

    def test_summary_fields(self, reg):
        h = reg.histogram("lat")
        h.observe(0.5)
        s = h.summary()
        assert s["count"] == 1 and s["sum"] == 0.5 and s["avg"] == 0.5
        assert set(s) >= {"p50", "p95", "p99"}

    def test_empty_quantile_zero(self, reg):
        assert reg.histogram("lat").quantile(0.5) == 0.0


class TestRegistry:
    def test_kind_conflict_rejected(self, reg):
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_get_never_creates(self, reg):
        assert reg.get("nope") is None
        assert len(reg) == 0

    def test_reset(self, reg):
        reg.counter("x").inc()
        reg.reset()
        assert len(reg) == 0

    def test_snapshot_json_round_trip(self, reg):
        reg.counter("hits_total", backend="vnm").inc(3)
        reg.histogram("lat").observe(2e-6)
        snap = json.loads(reg.to_json())
        assert snap["hits_total"][0]["value"] == 3.0
        assert snap["hits_total"][0]["labels"] == {"backend": "vnm"}
        hist = snap["lat"][0]
        assert hist["type"] == "histogram" and hist["count"] == 1
        assert hist["buckets"]  # sparse cumulative edges present

    def test_prometheus_exposition(self, reg):
        reg.counter("hits_total", help="cache hits", backend="vnm").inc(2)
        reg.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        text = reg.to_prometheus()
        assert "# HELP hits_total cache hits" in text
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{backend="vnm"} 2.0' in text
        # Cumulative histogram wire shape with the +Inf bucket.
        assert 'lat_bucket{le="1.0"} 0' in text
        assert 'lat_bucket{le="2.0"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 1.5" in text and "lat_count 1" in text


def test_default_registry_is_process_wide():
    assert default_registry() is default_registry()


class TestQuantileOverflowClamp:
    """Regression: ranks landing in the +Inf bucket must clamp to the
    largest finite bound, never extrapolate past it."""

    def test_all_mass_in_overflow_returns_largest_finite_bound(self, reg):
        h = reg.histogram("lat", buckets=(0.001, 0.01, 0.1))
        for _ in range(100):
            h.observe(50.0)  # every observation past the last bound
        for q in (0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == 0.1

    def test_partial_overflow_high_quantile_clamped(self, reg):
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(100.0)
        assert h.quantile(0.99) == 2.0
        assert h.quantile(0.25) <= 1.0

    def test_clamp_shared_by_free_function(self):
        from repro.obs.metrics import quantile_from_counts
        # counts: one per bound plus the +Inf overflow slot
        assert quantile_from_counts((1.0, 2.0), (0, 0, 10), 0.95) == 2.0
        assert quantile_from_counts((1.0, 2.0), (0, 0, 0), 0.95) == 0.0

    def test_fraction_at_or_below_edges(self):
        from repro.obs.metrics import fraction_at_or_below
        buckets = (1.0, 2.0)
        assert fraction_at_or_below(buckets, (0, 0, 0), 5.0) == 1.0  # empty
        # overflow observations only count for an infinite threshold
        assert fraction_at_or_below(buckets, (0, 0, 10), 2.0) == 0.0
        assert fraction_at_or_below(buckets, (0, 0, 10), float("inf")) == 1.0
        # pro-rata inside the containing bucket
        assert fraction_at_or_below(buckets, (0, 10, 0), 1.5) == pytest.approx(0.5)


class TestExpositionEdgeCases:
    def test_label_values_escaped(self, reg):
        reg.counter("hits_total", path='a\\b"c\nd').inc()
        text = reg.to_prometheus()
        assert r'path="a\\b\"c\nd"' in text

    def test_escaping_round_trips_through_parser(self, reg):
        from repro.obs.metrics import parse_prometheus
        nasty = 'a\\b"c\nd'
        reg.counter("hits_total", path=nasty).inc(2)
        _, samples = parse_prometheus(reg.to_prometheus())
        assert samples["hits_total"] == [({"path": nasty}, 2.0)]

    def test_empty_registry_exposes_empty_text(self, reg):
        from repro.obs.metrics import parse_prometheus
        assert reg.to_prometheus() == ""
        assert parse_prometheus("") == ({}, {})

    def test_histogram_series_naming(self, reg):
        from repro.obs.metrics import parse_prometheus
        h = reg.histogram("lat", buckets=(1.0, 2.0), backend="vnm")
        h.observe(1.5)
        h.observe(3.0)
        types, samples = parse_prometheus(reg.to_prometheus())
        assert types == {"lat": "histogram"}
        # exactly the three conventional series, nothing bare-named
        assert set(samples) == {"lat_bucket", "lat_sum", "lat_count"}
        buckets = {lab["le"]: v for lab, v in samples["lat_bucket"]}
        assert buckets == {"1.0": 0.0, "2.0": 1.0, "+Inf": 2.0}  # cumulative
        assert all(lab["backend"] == "vnm" for lab, _ in samples["lat_bucket"])
        assert samples["lat_count"] == [({"backend": "vnm"}, 2.0)]

    def test_parser_rejects_garbage(self):
        from repro.obs.metrics import parse_prometheus
        with pytest.raises(ValueError, match="unparseable"):
            parse_prometheus("not a metric line at all !!!")

    def test_type_line_emitted_once_per_metric(self, reg):
        reg.counter("hits_total", backend="a").inc()
        reg.counter("hits_total", backend="b").inc()
        text = reg.to_prometheus()
        assert text.count("# TYPE hits_total counter") == 1
