"""End-to-end instrumentation: spans, events, and metrics emitted by the
reorder → preprocess → cache → serve stack, including the fault-injected
paths (``pytest -m faults`` runs those alongside the resilience suite)."""

import numpy as np
import pytest

from repro.core import BitMatrix, VNMPattern, reorder
from repro.obs import MetricsRegistry, use_events, use_tracer
from repro.parallel import reorder_many
from repro.pipeline import (
    ArtifactCache,
    FaultPlan,
    PreprocessPlan,
    RetryPolicy,
    ServingSession,
    inject,
    preprocess,
)

PATTERN = VNMPattern(1, 2, 4)
FAST = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.004, jitter=0.0)


def make_bm(seed=0, n=48, density=0.06):
    rng = np.random.default_rng(seed)
    a = rng.random((n, n)) < density
    a = (a | a.T).astype(np.uint8)
    np.fill_diagonal(a, 0)
    return BitMatrix.from_dense(a)


def make_session(bm, **kwargs):
    result = preprocess(bm, PreprocessPlan(pattern=PATTERN))
    kwargs.setdefault("retry_policy", FAST)
    return ServingSession.from_result(result, **kwargs)


class TestReorderSpans:
    def test_reorder_span_tree(self):
        with use_tracer() as tracer:
            reorder(make_bm(), PATTERN, max_iter=4)
        (root,) = tracer.roots
        assert root.name == "reorder"
        assert root.attrs["pattern"] == "1:2:4"
        assert "iterations" in root.attrs and "final_invalid" in root.attrs
        # Scored at least twice (initial + final), stages inside iterations.
        assert len(root.find("reorder.scores")) >= 2

    def test_stage_timings_cover_the_root(self):
        # The profile contract: direct children of each span account for
        # (almost) all of its wall time, so the rendered tree is trustworthy.
        with use_tracer() as tracer:
            reorder(make_bm(seed=3, n=96, density=0.1), PATTERN, max_iter=6)
        (root,) = tracer.roots
        covered = sum(c.duration for c in root.children)
        assert covered <= root.duration * 1.001
        assert covered >= root.duration * 0.5

    def test_reorder_iteration_events(self):
        with use_events() as log:
            reorder(make_bm(seed=3, n=96, density=0.1), PATTERN, max_iter=6)
        for event in log.of_kind("reorder.iteration"):
            assert {"iteration", "pscore", "mbscore", "improvement_rate"} <= set(event)


class TestWorkerSpanMerging:
    def test_inline_path_adopts_job_traces(self):
        mats = [make_bm(seed=s) for s in range(3)]
        with use_tracer() as tracer:
            reorder_many(mats, PATTERN, n_workers=1, max_iter=2)
        (root,) = tracer.roots
        assert root.name == "parallel.reorder_many"
        jobs = sorted(r.attrs["job"] for r in root.find("reorder"))
        assert jobs == [0, 1, 2]

    def test_pool_path_ships_records_across_processes(self):
        mats = [make_bm(seed=s) for s in range(3)]
        with use_tracer() as tracer:
            summaries = reorder_many(mats, PATTERN, n_workers=2, max_iter=2)
        assert all(s.trace is not None for s in summaries)
        (root,) = tracer.roots
        jobs = sorted(r.attrs["job"] for r in root.find("reorder"))
        assert jobs == [0, 1, 2]
        # Worker-side children (scoring spans) survived pickling too.
        assert root.find("reorder.scores")

    def test_no_trace_payload_when_disabled(self):
        summaries = reorder_many([make_bm()], PATTERN, n_workers=1, max_iter=2)
        assert summaries[0].trace is None


class TestPreprocessSpans:
    def test_preprocess_span_and_event(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        with use_tracer() as tracer, use_events() as log:
            preprocess(make_bm(), PreprocessPlan(pattern=PATTERN), cache=cache)
        (root,) = tracer.roots
        assert root.name == "preprocess"
        names = {r.name for r in root.walk()}
        assert {"preprocess.cache_lookup", "preprocess.compress",
                "preprocess.cache_store"} <= names
        (done,) = log.of_kind("preprocess.done")
        assert done["cached"] is False

    def test_cache_hit_span(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        plan = PreprocessPlan(pattern=PATTERN)
        preprocess(make_bm(), plan, cache=cache)
        with use_tracer() as tracer, use_events() as log:
            res = preprocess(make_bm(), plan, cache=cache)
        assert res.cached
        assert tracer.roots[0].attrs["cached"] is True
        assert log.of_kind("preprocess.done")[0]["cached"] is True


class TestCacheMetrics:
    def test_hit_miss_store_counters_and_latency(self, tmp_path):
        reg = MetricsRegistry()
        cache = ArtifactCache(tmp_path / "cache", metrics=reg)
        plan = PreprocessPlan(pattern=PATTERN)
        preprocess(make_bm(), plan, cache=cache)   # miss + store
        preprocess(make_bm(), plan, cache=cache)   # hit
        assert reg.get("cache_misses_total").value == 1
        assert reg.get("cache_stores_total").value == 1
        assert reg.get("cache_hits_total").value == 1
        assert reg.get("cache_load_seconds").count == 1
        assert reg.get("cache_store_seconds").count == 1


class TestServingMetrics:
    def test_latency_histogram_and_request_counter(self):
        reg = MetricsRegistry()
        session = make_session(make_bm(), metrics=reg)
        x = np.ones((session.shape[1], 4))
        for _ in range(3):
            session.spmm(x)
        assert reg.get("serve_requests_total").value == 3
        hist = reg.get("spmm_latency_seconds")
        assert hist.count == 3 and hist.sum > 0
        snap = session.metrics()
        assert snap["spmm_latency_seconds"][0]["count"] == 3

    def test_metrics_disabled_returns_empty(self):
        session = make_session(make_bm())
        assert session.metrics() == {}

    def test_calibrated_model_request_seconds(self):
        reg = MetricsRegistry()
        session = make_session(make_bm(), metrics=reg)
        uncalibrated = session.model_request_seconds(4)
        session.spmm(np.ones((session.shape[1], 4)))
        cal = session.cost_model.calibration
        assert cal.count == 1
        calibrated = session.model_request_seconds(4)
        assert calibrated == pytest.approx(uncalibrated * cal.factor)
        assert reg.get("costmodel_residual").value == pytest.approx(cal.mean_residual)

    def test_uncalibrated_without_metrics(self):
        # metrics=None: nothing is measured, so the raw estimate comes back.
        session = make_session(make_bm())
        session.spmm(np.ones((session.shape[1], 4)))
        assert session.cost_model.calibration.count == 0

    def test_aggregator_health_includes_live_metrics(self):
        session = make_session(make_bm(), metrics=MetricsRegistry())
        agg = session.aggregator()
        agg.mm(np.ones((session.shape[1], 4)))
        health = agg.health()
        assert health["metrics"]["serve_requests_total"][0]["value"] == 1

    def test_aggregator_health_plain_operand_has_no_metrics_key(self):
        session = make_session(make_bm())
        assert "metrics" not in session.aggregator().health()


@pytest.mark.faults
class TestFaultInjectedObservability:
    def test_retry_counter_matches_fault_plan(self):
        reg = MetricsRegistry()
        session = make_session(make_bm(), metrics=reg)
        x = np.ones((session.shape[1], 4))
        with use_events() as log, inject(FaultPlan(kernel_failures={"hybrid": 1})) as plan:
            session.spmm(x)
        assert plan.count("kernel") == 1
        assert reg.get("serve_retries_total").value == plan.count("kernel")
        assert reg.get("serve_downgrades_total").value == 0
        (event,) = log.of_kind("serve.retry")
        assert event["backend"] == "hybrid" and event["attempt"] == 0

    def test_downgrade_counter_and_event(self):
        reg = MetricsRegistry()
        session = make_session(make_bm(), metrics=reg)
        x = np.ones((session.shape[1], 4))
        with use_events() as log, inject(FaultPlan(kernel_failures={"hybrid": 100})):
            session.spmm(x)
        assert session.degraded
        assert reg.get("serve_downgrades_total").value == len(
            session.resilience.downgrades
        )
        assert reg.get("serve_retries_total").value == session.resilience.retries
        (event,) = log.of_kind("serve.downgrade")
        assert event["from_backend"] == "hybrid"
        assert event["to_backend"] == session.backend_name

    def test_quarantine_counter_and_event(self, tmp_path):
        reg = MetricsRegistry()
        cache = ArtifactCache(tmp_path / "cache", metrics=reg)
        plan = PreprocessPlan(pattern=PATTERN)
        preprocess(make_bm(), plan, cache=cache)
        with use_events() as log, inject(FaultPlan(cache_corruptions=1)) as fplan:
            res = preprocess(make_bm(), plan, cache=cache)
        assert fplan.count("cache") == 1
        assert not res.cached  # corrupt read answered as a miss
        assert reg.get("cache_corrupt_total").value == 1
        assert cache.stats.quarantined == 1
        (event,) = log.of_kind("cache.quarantine")
        assert event["key"] and event["dest"]
