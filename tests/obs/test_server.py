"""Telemetry HTTP server: exposition, health semantics, flight dumps."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    SLO,
    FlightRecorder,
    MetricsRegistry,
    MetricWindows,
    SLOEvaluator,
    TelemetryServer,
    parse_prometheus,
    session_health,
)
from repro.pipeline.guard import breaker_scope


@pytest.fixture
def reg():
    return MetricsRegistry()


def _get(url: str):
    """(status, decoded body) even for error statuses."""
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


class TestEndpoints:
    def test_metrics_text_and_round_trip(self, reg):
        reg.counter("requests_total", backend="vnm").inc(5)
        h = reg.histogram("lat")
        h.observe(0.01)
        windows = MetricWindows(reg)
        with TelemetryServer(reg, windows=windows) as srv:
            status, body = _get(srv.url + "/metrics")
        assert status == 200
        types, samples = parse_prometheus(body)
        assert types["requests_total"] == "counter"
        assert samples["requests_total"][0] == ({"backend": "vnm"}, 5.0)
        assert types["lat"] == "histogram"
        # windowed derived gauges ride the same exposition
        assert "lat_p95" in samples

    def test_readyz_flips_with_set_ready(self, reg):
        with TelemetryServer(reg) as srv:
            assert _get(srv.url + "/readyz")[0] == 503
            srv.set_ready()
            assert _get(srv.url + "/readyz")[0] == 200
            srv.set_ready(False)
            assert _get(srv.url + "/readyz")[0] == 503

    def test_healthz_defaults_healthy(self, reg):
        with TelemetryServer(reg) as srv:
            status, body = _get(srv.url + "/healthz")
        assert status == 200
        assert json.loads(body)["healthy"] is True

    def test_debug_requests_with_and_without_recorder(self, reg):
        with TelemetryServer(reg) as srv:
            assert _get(srv.url + "/debug/requests")[0] == 404
        rec = FlightRecorder(sample_every=1)
        rec.observe("error", error="boom")
        with TelemetryServer(reg, recorder=rec) as srv:
            status, body = _get(srv.url + "/debug/requests")
        assert status == 200
        payload = json.loads(body)
        assert payload["failures"] == 1
        assert payload["exemplars"][0]["error"] == "boom"

    def test_unknown_path_404(self, reg):
        with TelemetryServer(reg) as srv:
            assert _get(srv.url + "/nope")[0] == 404

    def test_port_zero_binds_any_free_port(self, reg):
        with TelemetryServer(reg) as srv:
            assert srv.port > 0


class TestHealthSemantics:
    def test_open_breaker_turns_healthz_503(self, reg):
        clock = [0.0]
        with breaker_scope(clock=lambda: clock[0]) as board:
            with TelemetryServer(reg, health=session_health) as srv:
                assert _get(srv.url + "/healthz")[0] == 200
                for _ in range(5):
                    board.record_failure("vnm")
                assert board.state("vnm") == "open"
                status, body = _get(srv.url + "/healthz")
                assert status == 503
                payload = json.loads(body)
                assert payload["open_breakers"] == ["vnm"]
                # breaker heals -> healthy again
                clock[0] += 100.0
                board.breaker("vnm").before_call()  # half-open probe
                board.record_success("vnm")
                assert _get(srv.url + "/healthz")[0] == 200

    def test_crash_looping_pool_turns_healthz_503(self, reg):
        class FakePool:
            crash_looping = True

        health = lambda: session_health(pool=FakePool())  # noqa: E731
        with TelemetryServer(reg, health=health) as srv:
            status, body = _get(srv.url + "/healthz")
        assert status == 503
        assert json.loads(body)["pool_crash_looping"] is True

    def test_slo_alerts_surface_in_healthz(self, reg):
        windows = MetricWindows(reg)
        slo = SLO(name="lat", kind="latency", threshold=0.001, objective=0.9)
        ev = SLOEvaluator([slo], windows)
        with TelemetryServer(reg, windows=windows, evaluator=ev) as srv:
            status, body = _get(srv.url + "/healthz")
        assert status == 200
        assert json.loads(body)["slo_alerting"] == []


class TestSampler:
    def test_sample_ticks_windows_and_slos(self, reg):
        windows = MetricWindows(reg)
        slo = SLO(name="lat", kind="latency", threshold=0.01)
        ev = SLOEvaluator([slo], windows)
        srv = TelemetryServer(reg, windows=windows, evaluator=ev)
        srv.sample()
        assert len(windows) == 1
        assert reg.get("slo_burn_rate", slo="lat", window="fast") is not None

    def test_start_takes_baseline_snapshot(self, reg):
        windows = MetricWindows(reg)
        with TelemetryServer(reg, windows=windows):
            assert len(windows) >= 1

    def test_double_start_rejected(self, reg):
        srv = TelemetryServer(reg).start()
        try:
            with pytest.raises(RuntimeError):
                srv.start()
        finally:
            srv.stop()

    def test_validation(self, reg):
        with pytest.raises(ValueError):
            TelemetryServer(reg, sample_interval=0.0)
