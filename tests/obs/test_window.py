"""Rolling windows: deltas, rates, windowed quantiles, admission facade."""

import pytest

from repro.obs import MetricsRegistry, MetricWindows
from repro.obs.window import WindowedHistogram


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def reg():
    return MetricsRegistry()


@pytest.fixture
def windows(reg, clock):
    return MetricWindows(reg, clock=clock)


class TestCounterWindows:
    def test_delta_and_rate_over_window(self, reg, windows, clock):
        c = reg.counter("requests_total")
        c.inc(10)
        windows.record()
        clock.advance(60.0)
        c.inc(30)
        entry = windows.view(60.0).get("requests_total")
        assert entry["delta"] == 30.0
        assert entry["rate"] == pytest.approx(0.5)

    def test_base_sample_is_newest_at_or_before_cutoff(self, reg, windows, clock):
        c = reg.counter("requests_total")
        windows.record()          # t=0, value 0
        clock.advance(30.0)
        c.inc(100)
        windows.record()          # t=30, value 100
        clock.advance(40.0)       # now t=70; cutoff for 60s window is t=10
        c.inc(1)
        entry = windows.view(60.0).get("requests_total")
        assert entry["delta"] == 101.0  # measured against the t=0 sample

    def test_short_uptime_falls_back_to_oldest(self, reg, windows, clock):
        c = reg.counter("requests_total")
        windows.record()
        clock.advance(5.0)
        c.inc(4)
        view = windows.view(3600.0)
        assert view.get("requests_total")["delta"] == 4.0
        assert view.elapsed == pytest.approx(5.0)

    def test_no_samples_means_full_value_zero_rate(self, reg, windows):
        reg.counter("requests_total").inc(7)
        entry = windows.view(60.0).get("requests_total")
        assert entry["delta"] == 7.0
        assert entry["rate"] == 0.0  # zero elapsed: no rate claim

    def test_registry_reset_clamps_negative_delta(self, reg, windows, clock):
        c = reg.counter("requests_total")
        c.inc(50)
        windows.record()
        clock.advance(10.0)
        reg.reset()
        c2 = reg.counter("requests_total")
        c2.inc(3)
        entry = windows.view(60.0).get("requests_total")
        assert entry["delta"] == 3.0  # not -47

    def test_horizon_prunes_old_samples(self, reg, clock):
        w = MetricWindows(reg, horizon=100.0, clock=clock)
        reg.counter("x_total")
        for _ in range(5):
            w.record()
            clock.advance(40.0)
        assert len(w) <= 3


class TestHistogramWindows:
    def test_windowed_quantiles_see_only_recent_observations(self, reg, windows, clock):
        h = reg.histogram("lat", buckets=(0.001, 0.01, 0.1, 1.0))
        for _ in range(100):
            h.observe(0.9)        # slow past
        windows.record()
        clock.advance(120.0)
        windows.record()
        clock.advance(30.0)
        for _ in range(10):
            h.observe(0.005)      # fast present
        view = windows.view(60.0)
        entry = view.get("lat")
        assert entry["count"] == 10
        assert entry["p95"] <= 0.01          # window forgets the slow past
        assert h.quantile(0.95) > 0.1        # lifetime still remembers it

    def test_avg_and_rate(self, reg, windows, clock):
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        windows.record()
        clock.advance(10.0)
        h.observe(1.0)
        h.observe(2.0)
        entry = windows.view(10.0).get("lat")
        assert entry["avg"] == pytest.approx(1.5)
        assert entry["rate"] == pytest.approx(0.2)


class TestWindowedHistogramFacade:
    def test_duck_type_for_admission(self, reg, windows, clock):
        wh = windows.histogram_view("spmm_latency_seconds", 60.0)
        assert isinstance(wh, WindowedHistogram)
        h = reg.histogram("spmm_latency_seconds")
        for _ in range(50):
            h.observe(0.5)
        windows.record()
        clock.advance(120.0)
        windows.record()
        clock.advance(10.0)
        h.observe(0.001)
        assert wh.count == 1                    # only the recent observation
        assert wh.quantile(0.95) < 0.01
        assert h.quantile(0.95) > 0.1

    def test_empty_window_count_zero(self, reg, windows):
        wh = windows.histogram_view("lat", 60.0)
        assert wh.count == 0
        assert wh.quantile(0.95) == 0.0

    def test_rejects_nonpositive_window(self, reg, windows):
        with pytest.raises(ValueError):
            windows.histogram_view("lat", 0.0)


class TestSumDeltas:
    def test_label_subset_match(self, reg, windows, clock):
        reg.counter("rows_total", backend="vnm").inc(80)
        reg.counter("rows_total", backend="csr").inc(20)
        windows.record()
        clock.advance(30.0)
        reg.counter("rows_total", backend="vnm").inc(40)
        reg.counter("rows_total", backend="csr").inc(60)
        view = windows.view(30.0)
        assert view.sum_deltas("rows_total") == 100.0
        assert view.sum_deltas("rows_total", backend="vnm") == 40.0


class TestWindowExposition:
    def test_derived_gauges_in_prometheus_text(self, reg, windows, clock):
        reg.counter("requests_total").inc(5)
        h = reg.histogram("lat")
        h.observe(0.01)
        windows.record()
        clock.advance(60.0)
        reg.counter("requests_total").inc(6)
        h.observe(0.02)
        text = windows.to_prometheus((60.0,))
        assert '# TYPE requests_rate gauge' in text
        assert 'requests_rate{window="60s"}' in text  # _total stripped
        assert 'lat_p95{window="60s"}' in text
        assert 'lat_rate{window="60s"}' in text

    def test_empty_windows_emit_nothing(self, reg, windows):
        assert windows.to_prometheus() == ""


class TestValidation:
    def test_bad_constructor_args(self, reg):
        with pytest.raises(ValueError):
            MetricWindows(reg, horizon=0.0)
        with pytest.raises(ValueError):
            MetricWindows(reg, max_samples=1)

    def test_bad_view_window(self, windows):
        with pytest.raises(ValueError):
            windows.view(-1.0)
