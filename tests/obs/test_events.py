"""Event log: envelope schema, JSONL persistence, scoped installation."""

import json

import pytest

from repro.obs import EventLog, use_events
from repro.obs import events as obs_events


class TestEventLog:
    def test_envelope_has_ts_and_kind(self):
        log = EventLog()
        record = log.emit("serve.retry", backend="vnm", attempt=1)
        assert record["kind"] == "serve.retry"
        assert record["backend"] == "vnm"
        assert isinstance(record["ts"], float)

    def test_of_kind_filters(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("a", x=1)
        assert len(log.of_kind("a")) == 2
        assert len(log) == 3

    def test_jsonl_persistence(self, tmp_path):
        path = tmp_path / "sub" / "events.jsonl"
        with EventLog(path) as log:
            log.emit("cache.quarantine", key="abc")
            log.emit("serve.downgrade", from_backend="vnm", to_backend="csr")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "cache.quarantine" and first["key"] == "abc"


class TestModuleEmit:
    def test_noop_without_log(self):
        assert obs_events.current_event_log() is None
        obs_events.emit("ignored", x=1)  # must not raise

    def test_use_events_scopes_the_sink(self):
        with use_events() as log:
            obs_events.emit("inside")
            assert obs_events.current_event_log() is log
        assert obs_events.current_event_log() is None
        assert log.of_kind("inside")

    def test_nested_scopes_restore(self):
        with use_events() as outer:
            with use_events() as inner:
                obs_events.emit("deep")
            obs_events.emit("shallow")
        assert len(inner.of_kind("deep")) == 1
        assert len(outer.of_kind("shallow")) == 1
        assert not outer.of_kind("deep")


class TestRotation:
    def test_rotates_to_dot1_at_byte_cap(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, max_bytes=200) as log:
            for i in range(20):
                log.emit("tick", i=i)
        assert log.rotations > 0
        rotated = path.with_name("events.jsonl.1")
        assert rotated.exists()
        # Live file never breached the cap; rotated generation is full lines.
        assert path.stat().st_size <= 200
        for line in rotated.read_text().strip().splitlines():
            assert json.loads(line)["kind"] == "tick"

    def test_one_generation_kept(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, max_bytes=120) as log:
            for i in range(50):
                log.emit("tick", i=i)
        assert log.rotations >= 2
        # Only <path> and <path>.1 exist: .1 is replaced, not chained.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "events.jsonl", "events.jsonl.1"]

    def test_no_events_lost_across_rotation(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, max_bytes=150) as log:
            for i in range(10):
                log.emit("tick", i=i)
        kept = [json.loads(line)["i"]
                for p in (path.with_name("events.jsonl.1"), path) if p.exists()
                for line in p.read_text().strip().splitlines()]
        # Later generations survive; earlier ones may have been replaced away,
        # but what is on disk is contiguous and ends with the last event.
        assert kept == list(range(10 - len(kept), 10))

    def test_oversized_single_record_lands_whole(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, max_bytes=50) as log:
            log.emit("big", payload="x" * 200)
        assert log.rotations == 0  # nothing useful to rotate away
        assert json.loads(path.read_text())["payload"] == "x" * 200

    def test_reopen_accounts_existing_size(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, max_bytes=10_000) as log:
            log.emit("first")
        with EventLog(path, max_bytes=10_000) as log:
            assert log._bytes == path.stat().st_size  # seeded from disk
            log.emit("second")
        kinds = [json.loads(line)["kind"]
                 for line in path.read_text().strip().splitlines()]
        assert kinds == ["first", "second"]

    def test_unbounded_without_max_bytes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            for i in range(100):
                log.emit("tick", i=i)
        assert log.rotations == 0
        assert not path.with_name("events.jsonl.1").exists()

    def test_validation(self):
        with pytest.raises(ValueError, match="max_bytes"):
            EventLog(max_bytes=0)
