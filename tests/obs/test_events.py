"""Event log: envelope schema, JSONL persistence, scoped installation."""

import json

from repro.obs import EventLog, use_events
from repro.obs import events as obs_events


class TestEventLog:
    def test_envelope_has_ts_and_kind(self):
        log = EventLog()
        record = log.emit("serve.retry", backend="vnm", attempt=1)
        assert record["kind"] == "serve.retry"
        assert record["backend"] == "vnm"
        assert isinstance(record["ts"], float)

    def test_of_kind_filters(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("a", x=1)
        assert len(log.of_kind("a")) == 2
        assert len(log) == 3

    def test_jsonl_persistence(self, tmp_path):
        path = tmp_path / "sub" / "events.jsonl"
        with EventLog(path) as log:
            log.emit("cache.quarantine", key="abc")
            log.emit("serve.downgrade", from_backend="vnm", to_backend="csr")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "cache.quarantine" and first["key"] == "abc"


class TestModuleEmit:
    def test_noop_without_log(self):
        assert obs_events.current_event_log() is None
        obs_events.emit("ignored", x=1)  # must not raise

    def test_use_events_scopes_the_sink(self):
        with use_events() as log:
            obs_events.emit("inside")
            assert obs_events.current_event_log() is log
        assert obs_events.current_event_log() is None
        assert log.of_kind("inside")

    def test_nested_scopes_restore(self):
        with use_events() as outer:
            with use_events() as inner:
                obs_events.emit("deep")
            obs_events.emit("shallow")
        assert len(inner.of_kind("deep")) == 1
        assert len(outer.of_kind("shallow")) == 1
        assert not outer.of_kind("deep")
