"""Logging setup: level mapping, handler idempotency, stream binding."""

import logging

from repro.obs import logging_setup
from repro.obs.logconfig import verbosity_level


class TestVerbosityLevel:
    def test_mapping(self):
        assert verbosity_level(-2) == logging.WARNING
        assert verbosity_level(-1) == logging.WARNING
        assert verbosity_level(0) == logging.INFO
        assert verbosity_level(1) == logging.DEBUG
        assert verbosity_level(3) == logging.DEBUG


class TestLoggingSetup:
    def test_idempotent_single_handler(self):
        logger = logging_setup(0)
        logger = logging_setup(1)
        tagged = [h for h in logger.handlers
                  if getattr(h, "_repro_obs_handler", False)]
        assert len(tagged) == 1
        assert logger.level == logging.DEBUG

    def test_binds_current_stdout(self, capsys):
        logging_setup(0)
        logging.getLogger("repro.cli").info("hello from the library")
        assert "hello from the library" in capsys.readouterr().out

    def test_quiet_suppresses_info(self, capsys):
        logging_setup(-1)
        logging.getLogger("repro.cli").info("should not appear")
        logging.getLogger("repro.cli").warning("should appear")
        out = capsys.readouterr().out
        assert "should not appear" not in out
        assert "should appear" in out

    def test_library_silent_without_setup(self, capsys):
        # A NullHandler keeps un-configured imports from printing anywhere.
        logger = logging.getLogger("repro")
        for handler in list(logger.handlers):
            if getattr(handler, "_repro_obs_handler", False):
                logger.removeHandler(handler)
        logging.getLogger("repro.pipeline.serving").debug("invisible")
        assert capsys.readouterr().out == ""
