"""Tracing: null default, nested trees, records, adoption, rendering."""

import pickle
import threading

import pytest

from repro.obs import SpanRecord, Tracer, render_tree, use_tracer
from repro.obs import trace as obs_trace


class TestNullDefault:
    def test_disabled_by_default(self):
        assert not obs_trace.tracing_enabled()

    def test_null_span_is_shared_noop(self):
        a = obs_trace.span("anything", x=1)
        b = obs_trace.span("else")
        assert a is b
        with a as sp:
            sp.set(ignored=True)  # must not raise


class TestSpanTrees:
    def test_nesting_builds_tree(self):
        with use_tracer() as tracer:
            with obs_trace.span("outer", n=2):
                with obs_trace.span("inner.a"):
                    pass
                with obs_trace.span("inner.b"):
                    pass
        (root,) = tracer.roots
        assert root.name == "outer" and root.attrs == {"n": 2}
        assert [c.name for c in root.children] == ["inner.a", "inner.b"]
        assert root.duration >= sum(c.duration for c in root.children)

    def test_exception_marks_error_and_propagates(self):
        with use_tracer() as tracer:
            with pytest.raises(RuntimeError, match="boom"):
                with obs_trace.span("failing"):
                    raise RuntimeError("boom")
        (root,) = tracer.roots
        assert root.status == "error"
        assert "RuntimeError: boom" in root.error

    def test_set_attaches_attrs_mid_span(self):
        with use_tracer() as tracer:
            with obs_trace.span("work") as sp:
                sp.set(items=7)
        assert tracer.roots[0].attrs["items"] == 7

    def test_use_tracer_restores_previous(self):
        assert not obs_trace.tracing_enabled()
        with use_tracer():
            assert obs_trace.tracing_enabled()
        assert not obs_trace.tracing_enabled()

    def test_threads_build_disjoint_roots(self):
        with use_tracer() as tracer:
            def work(i):
                with obs_trace.span(f"thread.{i}"):
                    pass
            threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert sorted(r.name for r in tracer.roots) == [
            f"thread.{i}" for i in range(4)
        ]


class TestSpanRecord:
    def _tree(self):
        leaf = SpanRecord("leaf", duration=0.25)
        return SpanRecord("root", duration=1.0, attrs={"k": 1}, children=[leaf])

    def test_walk_and_find(self):
        root = self._tree()
        assert [r.name for r in root.walk()] == ["root", "leaf"]
        assert root.find("leaf")[0].duration == 0.25

    def test_self_seconds(self):
        assert self._tree().self_seconds == 0.75

    def test_dict_round_trip(self):
        root = self._tree()
        clone = SpanRecord.from_dict(root.to_dict())
        assert clone.name == "root" and clone.attrs == {"k": 1}
        assert clone.children[0].duration == 0.25

    def test_picklable(self):
        clone = pickle.loads(pickle.dumps(self._tree()))
        assert clone.children[0].name == "leaf"


class TestAdopt:
    def test_adopt_grafts_under_open_span(self):
        worker = SpanRecord("worker.reorder", duration=0.1)
        with use_tracer() as tracer:
            with obs_trace.span("batch"):
                obs_trace.adopt(worker)
        assert tracer.roots[0].children[0] is worker

    def test_adopt_none_is_noop(self):
        with use_tracer() as tracer:
            obs_trace.adopt(None)
        assert tracer.roots == []

    def test_adopt_without_tracer_is_noop(self):
        obs_trace.adopt(SpanRecord("orphan"))  # must not raise


class TestRender:
    def test_render_tree_shape(self):
        root = SpanRecord("root", duration=0.01, attrs={"n": 3},
                          children=[SpanRecord("child", duration=0.004)])
        text = render_tree(root)
        lines = text.splitlines()
        assert "root" in lines[0] and "100.0%" in lines[0] and "[n=3]" in lines[0]
        assert "child" in lines[1] and "40.0%" in lines[1]

    def test_min_fraction_hides_small_subtrees(self):
        root = SpanRecord("root", duration=1.0,
                          children=[SpanRecord("tiny", duration=0.001)])
        assert "tiny" not in render_tree(root, min_fraction=0.05)

    def test_error_flagged(self):
        rec = SpanRecord("bad", duration=0.1, status="error", error="X")
        assert "!error" in render_tree(rec)

    def test_tracer_render(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert "a" in tracer.render()


class TestChromeTrace:
    def _tree(self):
        return SpanRecord(
            "serve.request", duration=0.010, attrs={"h": 64},
            children=[
                SpanRecord("plan.lookup", duration=0.001),
                SpanRecord("spmm.exec", duration=0.008,
                           children=[SpanRecord("kernel", duration=0.007)]),
            ])

    def test_complete_event_structure(self):
        from repro.obs import to_chrome_trace
        doc = to_chrome_trace([self._tree()])
        assert doc["displayTimeUnit"] == "ms"
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in events}
        root = by_name["serve.request"]
        assert root["dur"] == pytest.approx(10_000)  # microseconds
        assert root["pid"] == 1 and root["tid"] == 1
        assert root["args"] == {"h": 64}
        # children nest inside the parent's [ts, ts+dur) interval
        for child in ("plan.lookup", "spmm.exec"):
            e = by_name[child]
            assert e["ts"] >= root["ts"]
            assert e["ts"] + e["dur"] <= root["ts"] + root["dur"] + 1
        kernel = by_name["kernel"]
        exec_ = by_name["spmm.exec"]
        assert kernel["ts"] >= exec_["ts"]

    def test_roots_laid_back_to_back(self):
        from repro.obs import to_chrome_trace
        a = SpanRecord("first", duration=0.002)
        b = SpanRecord("second", duration=0.003)
        events = [e for e in to_chrome_trace([a, b])["traceEvents"]
                  if e["ph"] == "X"]
        first, second = events[0], events[1]
        assert first["name"] == "first"
        assert second["ts"] >= first["ts"] + first["dur"]

    def test_adopted_subtree_gets_its_own_pid(self):
        from repro.obs import to_chrome_trace
        worker_span = SpanRecord("stage1", duration=0.004,
                                 attrs={"worker_adopted": True})
        root = SpanRecord("parallel.reorder", duration=0.02,
                          children=[worker_span,
                                    SpanRecord("merge", duration=0.001)])
        doc = to_chrome_trace([root])
        events = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert events["parallel.reorder"]["pid"] == 1
        assert events["merge"]["pid"] == 1
        assert events["stage1"]["pid"] >= 2
        # the marker attr is presentation state, not span args
        assert "worker_adopted" not in events["stage1"]["args"]
        meta = {e["args"]["name"] for e in doc["traceEvents"]
                if e.get("name") == "process_name"}
        assert "main" in meta
        assert any("worker" in name for name in meta)

    def test_error_span_carries_status_and_error(self):
        from repro.obs import to_chrome_trace
        rec = SpanRecord("bad", duration=0.001, status="error", error="boom")
        (event,) = [e for e in to_chrome_trace([rec])["traceEvents"]
                    if e["ph"] == "X"]
        assert event["cat"] == "error"
        assert event["args"]["status"] == "error"
        assert event["args"]["error"] == "boom"

    def test_from_dict_round_trip_exports(self):
        from repro.obs import to_chrome_trace
        original = self._tree()
        revived = SpanRecord.from_dict(original.to_dict())
        doc = to_chrome_trace([revived])
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert names.count("serve.request") == 1
        assert "kernel" in names

    def test_tracer_method_delegates(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        doc = tracer.to_chrome_trace()
        assert [e["name"] for e in doc["traceEvents"]
                if e["ph"] == "X"] == ["a"]

    def test_adopt_marks_for_export(self):
        main = Tracer()
        worker = Tracer()
        with worker.span("remote"):
            pass
        main.adopt(worker.roots[0])
        doc = main.to_chrome_trace()
        (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["pid"] >= 2
