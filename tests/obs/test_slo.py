"""SLOs: spec parsing, burn-rate math, multi-window alerting."""

import pytest

from repro.obs import SLO, MetricsRegistry, MetricWindows, SLOEvaluator, use_events
from repro.obs.slo import MetricRef

from .test_window import FakeClock


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def reg():
    return MetricsRegistry()


@pytest.fixture
def windows(reg, clock):
    return MetricWindows(reg, clock=clock)


class TestMetricRef:
    def test_bare_name(self):
        ref = MetricRef.parse("serve_path_rows_total")
        assert ref.name == "serve_path_rows_total"
        assert ref.labels == ()

    def test_with_labels(self):
        ref = MetricRef.parse('rows_total{backend=vnm, zone="a"}')
        assert ref.labels == (("backend", "vnm"), ("zone", "a"))
        assert str(ref) == "rows_total{backend=vnm,zone=a}"

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            MetricRef.parse("not a metric!")


class TestSpecParsing:
    def test_latency_shorthand(self):
        slo = SLO.parse("latency:0.01")
        assert slo.kind == "latency"
        assert slo.threshold == 0.01
        assert slo.objective == 0.99

    def test_latency_shorthand_with_objective(self):
        slo = SLO.parse("latency:0.25:0.999")
        assert slo.objective == 0.999

    def test_vnm_rows_shorthand(self):
        slo = SLO.parse("vnm_rows:0.8")
        assert slo.kind == "ratio"
        assert slo.objective == 0.8
        assert slo.good.name == "serve_path_rows_total"
        assert dict(slo.good.labels) == {"backend": "vnm"}
        assert slo.total.labels == ()

    def test_full_form_with_braces(self):
        slo = SLO.parse(
            "kind=ratio,good=rows_total{backend=vnm},total=rows_total,"
            "objective=0.9,name=vnm-share,fast_window=30,slow_window=300"
        )
        assert slo.name == "vnm-share"
        assert slo.fast_window == 30.0

    def test_bad_specs(self):
        for spec in ("latency", "nope:1", "kind=latency",  # missing threshold
                     "kind=ratio,good=a", "kind=latency,threshold=0.1,bogus=1"):
            with pytest.raises(ValueError):
                SLO.parse(spec)

    def test_validation(self):
        with pytest.raises(ValueError, match="objective"):
            SLO(name="x", kind="latency", threshold=0.1, objective=1.0)
        with pytest.raises(ValueError, match="windows"):
            SLO(name="x", kind="latency", threshold=0.1,
                fast_window=600.0, slow_window=60.0)


def _latency_slo(**kw):
    kw.setdefault("name", "lat")
    kw.setdefault("kind", "latency")
    kw.setdefault("threshold", 0.01)
    kw.setdefault("objective", 0.9)
    return SLO(**kw)


class TestBurnRates:
    def test_zero_burn_when_all_good(self, reg, windows, clock):
        h = reg.histogram("spmm_latency_seconds", buckets=(0.001, 0.01, 0.1))
        windows.record()
        clock.advance(30.0)
        for _ in range(20):
            h.observe(0.001)
        ev = SLOEvaluator([_latency_slo()], windows)
        fast = ev.evaluate()[0]
        assert fast.burn_rate == pytest.approx(0.0)
        assert fast.good_fraction == 1.0

    def test_all_bad_burns_at_inverse_budget(self, reg, windows, clock):
        h = reg.histogram("spmm_latency_seconds", buckets=(0.001, 0.01, 0.1))
        windows.record()
        clock.advance(30.0)
        for _ in range(20):
            h.observe(50.0)  # all in +Inf, all above threshold
        ev = SLOEvaluator([_latency_slo()], windows)
        fast = ev.evaluate()[0]
        # budget is 0.1; everything bad burns at 1/0.1 = 10x
        assert fast.burn_rate == pytest.approx(10.0)

    def test_no_traffic_is_not_a_violation(self, reg, windows, clock):
        reg.histogram("spmm_latency_seconds")
        windows.record()
        ev = SLOEvaluator([_latency_slo()], windows)
        for status in ev.evaluate():
            assert status.burn_rate == 0.0
            assert status.samples == 0

    def test_ratio_burn(self, reg, windows, clock):
        slo = SLO.parse("vnm_rows:0.9")
        reg.counter("serve_path_rows_total", backend="vnm").inc(50)
        reg.counter("serve_path_rows_total", backend="csr").inc(50)
        windows.record()
        clock.advance(30.0)
        reg.counter("serve_path_rows_total", backend="vnm").inc(40)
        reg.counter("serve_path_rows_total", backend="csr").inc(60)
        ev = SLOEvaluator([slo], windows)
        fast = ev.evaluate()[0]
        # window: 40 of 100 rows on vnm -> bad fraction 0.6, budget 0.1
        assert fast.good_fraction == pytest.approx(0.4)
        assert fast.burn_rate == pytest.approx(6.0)

    def test_burn_gauges_exported(self, reg, windows, clock):
        reg.histogram("spmm_latency_seconds")
        windows.record()
        ev = SLOEvaluator([_latency_slo()], windows)
        ev.evaluate()
        assert reg.get("slo_burn_rate", slo="lat", window="fast") is not None
        assert reg.get("slo_burn_rate", slo="lat", window="slow") is not None


class TestAlerting:
    def _burning_setup(self, reg, windows, clock):
        h = reg.histogram("spmm_latency_seconds", buckets=(0.001, 0.01, 0.1))
        windows.record()
        clock.advance(700.0)  # past the slow window too
        for _ in range(50):
            h.observe(50.0)
        return h

    def test_alert_fires_when_both_windows_burn(self, reg, windows, clock):
        self._burning_setup(reg, windows, clock)
        ev = SLOEvaluator([_latency_slo()], windows)
        with use_events() as log:
            statuses = ev.evaluate()
        assert all(s.alerting for s in statuses)
        assert ev.alerting() == ("lat",)
        assert len(log.of_kind("slo.alert")) == 1
        assert reg.get("slo_alerts_total", slo="lat").value == 1.0

    def test_alert_resolves_when_burn_stops(self, reg, windows, clock):
        h = self._burning_setup(reg, windows, clock)
        ev = SLOEvaluator([_latency_slo()], windows)
        ev.evaluate()
        assert ev.alerting() == ("lat",)
        # Time passes; the bad minute ages out of both windows.
        for _ in range(30):
            windows.record()
            clock.advance(60.0)
        for _ in range(100):
            h.observe(0.001)
        with use_events() as log:
            ev.evaluate()
        assert ev.alerting() == ()
        assert len(log.of_kind("slo.resolved")) == 1

    def test_fast_spike_alone_does_not_alert(self, reg, windows, clock):
        h = reg.histogram("spmm_latency_seconds", buckets=(0.001, 0.01, 0.1))
        windows.record()
        clock.advance(700.0)
        for _ in range(1000):
            h.observe(0.001)   # long healthy history
        windows.record()
        clock.advance(30.0)
        for _ in range(5):
            h.observe(50.0)    # brief spike inside the fast window only
        ev = SLOEvaluator([_latency_slo()], windows)
        statuses = ev.evaluate()
        assert not any(s.alerting for s in statuses)

    def test_duplicate_names_rejected(self, windows):
        with pytest.raises(ValueError, match="duplicate"):
            SLOEvaluator([_latency_slo(), _latency_slo()], windows)

    def test_snapshot_shape(self, reg, windows, clock):
        reg.histogram("spmm_latency_seconds")
        windows.record()
        ev = SLOEvaluator([_latency_slo()], windows)
        snap = ev.snapshot()
        assert set(snap["lat"]) == {"fast", "slow", "alerting"}
