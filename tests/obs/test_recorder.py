"""Flight recorder: sampling, failure capture, span trees, dumps."""

import json
import signal
import threading

import pytest

from repro.obs import FlightRecorder, Tracer, current_recorder, use_recorder
from repro.obs import recorder as obs_recorder
from repro.obs import trace as obs_trace


class TestSampling:
    def test_every_nth_request_kept(self):
        rec = FlightRecorder(capacity=64, sample_every=4)
        for _ in range(8):
            with rec.begin(backend="vnm") as probe:
                pass
            probe.finish("ok")
        assert len(rec) == 2  # seq 4 and 8
        assert all(e.sampled for e in rec.exemplars())
        assert rec.n_requests == 8

    def test_unsampled_ok_requests_cost_nothing_retained(self):
        rec = FlightRecorder(capacity=64, sample_every=1000)
        for _ in range(10):
            with rec.begin() as probe:
                pass
            probe.finish("ok")
        assert len(rec) == 0

    def test_every_failure_kept_regardless_of_sampling(self):
        rec = FlightRecorder(capacity=64, sample_every=1000)
        for i in range(6):
            with rec.begin(backend="vnm") as probe:
                pass
            if i % 2:
                probe.finish("error", error=RuntimeError(f"boom {i}"))
            else:
                probe.finish("ok")
        assert len(rec) == 3
        assert rec.n_failures == 3
        assert all(e.status == "error" for e in rec.exemplars())

    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=4, sample_every=1)
        for _ in range(20):
            with rec.begin() as probe:
                pass
            probe.finish("ok")
        assert len(rec) == 4
        assert [e.seq for e in rec.exemplars()] == [17, 18, 19, 20]

    def test_finish_is_idempotent(self):
        rec = FlightRecorder(sample_every=1)
        with rec.begin() as probe:
            pass
        probe.finish("ok")
        probe.finish("error", error="late")  # ignored
        assert len(rec) == 1
        assert rec.exemplars()[0].status == "ok"

    def test_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(sample_every=0)


class TestSpanTrees:
    def test_sampled_request_installs_local_tracer(self):
        rec = FlightRecorder(sample_every=1)
        assert not obs_trace.tracing_enabled()
        with rec.begin() as probe:
            assert obs_trace.tracing_enabled()
            with obs_trace.span("serve.request"):
                with obs_trace.span("serve.kernel"):
                    pass
        assert not obs_trace.tracing_enabled()  # restored
        probe.finish("ok")
        tree = rec.exemplars()[0].span_tree
        assert tree["name"] == "serve.request"
        assert tree["children"][0]["name"] == "serve.kernel"

    def test_existing_tracer_not_displaced(self):
        rec = FlightRecorder(sample_every=1)
        with obs_trace.use_tracer() as tracer:
            with rec.begin() as probe:
                assert obs_trace.current_tracer() is tracer
                with obs_trace.span("serve.request"):
                    pass
            probe.finish("ok")
        # Trace went to the user's tracer, not a probe-local one.
        assert [r.name for r in tracer.roots] == ["serve.request"]

    def test_unsampled_failure_gets_synthesized_error_tree(self):
        rec = FlightRecorder(sample_every=1000)
        with rec.begin(backend="vnm", h=64) as probe:
            pass
        probe.finish("error", error=ValueError("bad operand"))
        tree = rec.exemplars()[0].span_tree
        assert tree["status"] == "error"
        assert "ValueError" in tree["error"]
        assert tree["attrs"]["backend"] == "vnm"
        assert tree["children"] == []


class TestObserve:
    def test_direct_observation_without_probe(self):
        rec = FlightRecorder(sample_every=1)
        rec.observe("ok", latency=0.002, backend="csr", batched=True, h=8)
        e = rec.exemplars()[0]
        assert e.batched is True
        assert e.latency == 0.002

    def test_observe_failure_always_kept(self):
        rec = FlightRecorder(sample_every=1000)
        rec.observe("error", latency=0.1, error=RuntimeError("x"))
        rec.observe("shed", shed_reason="queue_full")
        assert len(rec) == 2

    def test_unknown_fields_land_in_extra(self):
        rec = FlightRecorder(sample_every=1)
        rec.observe("ok", custom_field="hello")
        e = rec.exemplars()[0]
        assert e.extra["custom_field"] == "hello"
        assert e.to_dict()["custom_field"] == "hello"


class TestDumps:
    def test_dump_shape(self):
        rec = FlightRecorder(sample_every=1)
        rec.observe("error", error="x")
        payload = rec.dump(reason="test")
        assert payload["reason"] == "test"
        assert payload["failures"] == 1
        assert payload["exemplars"][0]["status"] == "error"
        json.dumps(payload)  # must be JSON-able

    def test_dump_json_writes_file(self, tmp_path):
        rec = FlightRecorder(sample_every=1, dump_dir=tmp_path)
        rec.observe("ok")
        path = rec.dump_json(reason="unit")
        assert path.parent == tmp_path
        data = json.loads(path.read_text())
        assert data["reason"] == "unit"
        assert rec.dumps == [str(path)]


class TestModuleRecorder:
    def test_off_by_default(self):
        assert current_recorder() is None
        assert obs_recorder.crash_dump("nothing") is None  # no-op, no raise

    def test_use_recorder_scopes(self):
        with use_recorder() as rec:
            assert current_recorder() is rec
        assert current_recorder() is None

    def test_crash_dump_records_and_writes(self, tmp_path):
        rec = FlightRecorder(sample_every=1000, dump_dir=tmp_path)
        with use_recorder(rec):
            path = obs_recorder.crash_dump("worker_crash_loop",
                                           error="3 restarts in 10s")
        data = json.loads(path.read_text())
        assert data["reason"] == "worker_crash_loop"
        assert any("3 restarts" in (e.get("error") or "")
                   for e in data["exemplars"])

    def test_signal_dump_installs_and_fires(self, tmp_path):
        rec = FlightRecorder(sample_every=1, dump_dir=tmp_path)
        previous = signal.getsignal(signal.SIGUSR1)
        try:
            with use_recorder(rec):
                assert obs_recorder.install_signal_dump() is True
                rec.observe("ok")
                signal.raise_signal(signal.SIGUSR1)
            assert len(rec.dumps) == 1
            assert json.loads(
                # the handler dumps with reason="signal"
                (tmp_path / rec.dumps[0].split("/")[-1]).read_text()
            )["reason"] == "signal"
        finally:
            signal.signal(signal.SIGUSR1, previous)

    def test_signal_dump_refused_off_main_thread(self):
        results = []
        t = threading.Thread(
            target=lambda: results.append(obs_recorder.install_signal_dump()))
        t.start()
        t.join()
        assert results == [False]


class TestTracerAttrsMark:
    def test_adopted_records_marked(self):
        tracer = Tracer()
        worker = Tracer()
        with obs_trace.use_tracer(worker):
            with obs_trace.span("stage1"):
                pass
        record = worker.roots[0]
        tracer.adopt(record)
        assert record.attrs["worker_adopted"] is True
