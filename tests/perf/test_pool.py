"""WorkerPool: lazy spawn, warm reuse, restart, and close semantics."""

import os

import pytest

from repro.perf.pool import PoolStats, WorkerPool


def _square(x):
    return x * x


def _pid():
    return os.getpid()


class TestLifecycle:
    def test_lazy_until_first_submit(self):
        with WorkerPool(2) as pool:
            assert not pool.alive
            assert pool.submit(_square, 7).result() == 49
            assert pool.alive
        assert not pool.alive

    def test_warm_prespawns(self):
        with WorkerPool(2) as pool:
            pool.warm()
            assert pool.alive
            assert pool.stats.spawns == 1

    def test_reuse_across_submissions_is_one_spawn(self):
        with WorkerPool(2) as pool:
            results = [pool.submit(_square, i).result() for i in range(6)]
            assert results == [i * i for i in range(6)]
            assert pool.stats == PoolStats(spawns=1, restarts=0, jobs=6)

    def test_jobs_run_in_child_processes(self):
        with WorkerPool(1) as pool:
            assert pool.submit(_pid).result() != os.getpid()

    def test_close_is_idempotent_and_final(self):
        pool = WorkerPool(1)
        pool.submit(_square, 2).result()
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit(_square, 3)

    def test_restart_spawns_fresh_executor(self):
        with WorkerPool(1) as pool:
            first = pool.submit(_pid).result()
            pool.restart()
            assert not pool.alive
            second = pool.submit(_pid).result()
            assert first != second
            assert pool.stats.restarts == 1
            assert pool.stats.spawns == 2

    def test_default_size_comes_from_default_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert WorkerPool().n_workers == 3

    def test_repr_reflects_state(self):
        pool = WorkerPool(2)
        assert "cold" in repr(pool)
        pool.submit(_square, 1).result()
        assert "warm" in repr(pool)
        pool.close()
        assert "closed" in repr(pool)
