"""WorkerPool: lazy spawn, warm reuse, restart, close, and supervision."""

import os
import threading
import time

import pytest

from repro.perf.pool import PoolStats, SupervisionPolicy, WorkerPool


def _square(x):
    return x * x


def _pid():
    return os.getpid()


def _sleep_forever():
    time.sleep(60.0)


class TestLifecycle:
    def test_lazy_until_first_submit(self):
        with WorkerPool(2) as pool:
            assert not pool.alive
            assert pool.submit(_square, 7).result() == 49
            assert pool.alive
        assert not pool.alive

    def test_warm_prespawns(self):
        with WorkerPool(2) as pool:
            pool.warm()
            assert pool.alive
            assert pool.stats.spawns == 1

    def test_reuse_across_submissions_is_one_spawn(self):
        with WorkerPool(2) as pool:
            results = [pool.submit(_square, i).result() for i in range(6)]
            assert results == [i * i for i in range(6)]
            assert pool.stats == PoolStats(spawns=1, restarts=0, jobs=6)

    def test_jobs_run_in_child_processes(self):
        with WorkerPool(1) as pool:
            assert pool.submit(_pid).result() != os.getpid()

    def test_close_is_idempotent_and_final(self):
        pool = WorkerPool(1)
        pool.submit(_square, 2).result()
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit(_square, 3)

    def test_restart_spawns_fresh_executor(self):
        with WorkerPool(1) as pool:
            first = pool.submit(_pid).result()
            pool.restart()
            assert not pool.alive
            second = pool.submit(_pid).result()
            assert first != second
            assert pool.stats.restarts == 1
            assert pool.stats.spawns == 2

    def test_default_size_comes_from_default_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert WorkerPool().n_workers == 3

    def test_repr_reflects_state(self):
        pool = WorkerPool(2)
        assert "cold" in repr(pool)
        pool.submit(_square, 1).result()
        assert "warm" in repr(pool)
        pool.close()
        assert "closed" in repr(pool)


class TestThreadSafety:
    def test_concurrent_submit_and_restart(self):
        """Satellite fix: the micro-batcher flush timer drives submissions
        from another thread while the owner restarts — the RLock must keep
        every job on a live executor (no race on a half-built one)."""
        errors = []
        with WorkerPool(2) as pool:
            pool.warm()
            stop = threading.Event()

            def submitter():
                while not stop.is_set():
                    try:
                        assert pool.submit(_square, 3).result(timeout=30) == 9
                    except Exception as exc:  # noqa: BLE001 - collected for assert
                        # A submission caught mid-restart may land on the
                        # cancelled executor; that surfaces as BrokenProcessPool
                        # or CancelledError, never as a deadlock or crash of
                        # the pool itself.
                        errors.append(exc)

            threads = [threading.Thread(target=submitter) for _ in range(3)]
            for t in threads:
                t.start()
            for _ in range(3):
                time.sleep(0.02)
                pool.restart()
            stop.set()
            for t in threads:
                t.join(timeout=30)
                assert not t.is_alive()
            # The pool itself must still work after the churn.
            assert pool.submit(_square, 4).result(timeout=30) == 16

    def test_single_spawn_under_concurrent_first_submits(self):
        with WorkerPool(2) as pool:
            barrier = threading.Barrier(4)

            def first_submit():
                barrier.wait()
                pool.submit(_square, 2).result(timeout=30)

            threads = [threading.Thread(target=first_submit) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert pool.stats.spawns == 1


class TestSupervision:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SupervisionPolicy(job_timeout=0)
        with pytest.raises(ValueError):
            SupervisionPolicy(max_restarts=0)
        with pytest.raises(ValueError):
            SupervisionPolicy(restart_window=-1)

    def test_run_returns_result_without_timeout_drama(self):
        with WorkerPool(1, supervision=SupervisionPolicy(job_timeout=30.0)) as pool:
            assert pool.run(_square, 6) == 36
            assert pool.stats.timeouts == 0

    def test_hung_job_is_killed_and_resubmitted(self):
        from repro.pipeline.resilience import DeadlineExceeded

        policy = SupervisionPolicy(job_timeout=0.3)
        with WorkerPool(1, supervision=policy) as pool:
            pool.warm()
            with pytest.raises(DeadlineExceeded):
                pool.run(_sleep_forever, resubmit=1)
            assert pool.stats.timeouts == 2  # original + one resubmission
            assert pool.stats.kills == 2
            # The pool recovered: fresh workers serve the next job.
            assert pool.run(_square, 5, timeout=30.0) == 25

    def test_kill_restart_terminates_worker_processes(self):
        with WorkerPool(1) as pool:
            pid = pool.submit(_pid).result()
            pool.submit(_sleep_forever)  # wedge the worker
            time.sleep(0.1)
            pool.restart(kill=True)
            assert pool.stats.kills == 1
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    break  # the hung worker is gone
                time.sleep(0.02)
            else:
                pytest.fail(f"killed worker {pid} still alive")
            assert pool.submit(_pid).result(timeout=30) != pid

    def test_crash_loop_cap_raises_worker_crash_error(self):
        from repro.pipeline.resilience import WorkerCrashError

        policy = SupervisionPolicy(max_restarts=3, restart_window=60.0)
        with WorkerPool(1, supervision=policy) as pool:
            for _ in range(3):
                pool.restart()
            with pytest.raises(WorkerCrashError) as exc_info:
                pool.restart()
            assert exc_info.value.context["restarts"] == 3
            assert pool.stats.restarts == 3  # the capped one never happened

    def test_restart_window_expires(self):
        policy = SupervisionPolicy(max_restarts=2, restart_window=0.1)
        with WorkerPool(1, supervision=policy) as pool:
            pool.restart()
            pool.restart()
            time.sleep(0.15)  # the window slides past the earlier restarts
            pool.restart()
            assert pool.stats.restarts == 3
