"""Autotuner: decision determinism, cache round-trips, serving integration."""

import numpy as np
import pytest

from repro.core import VNMPattern
from repro.perf import engine, tuner
from repro.perf.batching import BatchPolicy, MicroBatcher
from repro.pipeline import ArtifactCache, ServingSession
from repro.sptc import CSRMatrix, HybridVNM
from repro.sptc.spmm import dense_spmm

PATTERN = VNMPattern(1, 2, 4)


def make_operand(seed=0, n=48, density=0.15):
    rng = np.random.default_rng(seed)
    a = (rng.random((n, n)) < density) * rng.integers(1, 8, size=(n, n)).astype(np.float64)
    return HybridVNM.compress(a, PATTERN)


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


class TestDecisionKey:
    def test_same_content_same_key(self):
        a, b = make_operand(0), make_operand(0)
        assert a is not b
        assert tuner.operand_fingerprint(a) == tuner.operand_fingerprint(b)
        assert tuner.decision_key(a, 16, tuner.DEFAULT_BACKENDS) == \
            tuner.decision_key(b, 16, tuner.DEFAULT_BACKENDS)

    def test_key_varies_with_workload(self):
        op = make_operand(0)
        base = tuner.decision_key(op, 16, tuner.DEFAULT_BACKENDS)
        assert base != tuner.decision_key(make_operand(1), 16, tuner.DEFAULT_BACKENDS)
        assert base != tuner.decision_key(op, 64, tuner.DEFAULT_BACKENDS)
        assert base != tuner.decision_key(op, 16, ("csr", "dense"))
        assert base != tuner.decision_key(
            op, 16, tuner.DEFAULT_BACKENDS, include_float32=True)


class TestTune:
    def test_decision_persisted_and_ranked(self, cache):
        op = make_operand()
        decision = tuner.tune(op, 16, cache=cache, repeats=1)
        assert decision.source == "measured"
        assert cache.decision_path(decision.key).exists()
        seconds = [s for _, s in decision.timings]
        assert seconds == sorted(seconds)
        assert decision.label.startswith(decision.backend)
        assert decision.max_batch_columns == 16 * 8

    def test_second_tune_is_cache_hit_with_equal_decision(self, cache):
        op = make_operand()
        first = tuner.tune(op, 16, cache=cache, repeats=1)
        # A fresh but content-equal operand must hit the persisted decision:
        # determinism comes from the cache, not from wall-clock stability.
        again = tuner.tune(make_operand(), 16, cache=cache, repeats=1)
        assert again.source == "cache"
        assert (again.backend, again.dtype, again.variant, again.key) == \
            (first.backend, first.dtype, first.variant, first.key)
        assert again.timings == first.timings
        assert cache.stats.decision_hits == 1

    def test_failed_candidates_are_recorded(self, cache):
        # A pure-CSR operand cannot rebuild as strict vnm; the candidate
        # lands in `failed` instead of aborting the tune.
        rng = np.random.default_rng(3)
        a = (rng.random((32, 32)) < 0.4).astype(np.float64)
        op = CSRMatrix.from_dense(a)
        decision = tuner.tune(op, 8, cache=cache, repeats=1)
        assert "vnm" in decision.failed
        assert decision.backend not in decision.failed

    def test_no_candidates_raises(self):
        with pytest.raises(ValueError):
            tuner.tune(make_operand(), 8, backends=("no-such-backend",))

    def test_include_float32_adds_fp32_candidates(self, cache):
        op = make_operand()
        decision = tuner.tune(op, 8, cache=cache, repeats=1, include_float32=True)
        labels = [label for label, _ in decision.timings]
        assert any(label.endswith("+fp32") for label in labels)


class TestServingIntegration:
    def test_session_tune_applies_and_serves_exactly(self, cache):
        op = make_operand()
        dense = op.decompress()
        session = ServingSession(op)
        decision = session.tune(h=8, cache=cache, repeats=1)
        assert session.tuned is decision
        assert session.backend_name == decision.backend
        b = np.random.default_rng(4).integers(0, 256, size=(48, 8)).astype(np.float64)
        assert np.array_equal(session.spmm(b), dense_spmm(dense, b))

    def test_batcher_respects_tuned_column_cap(self):
        session = ServingSession(make_operand())
        batcher = MicroBatcher(session, BatchPolicy(max_columns=1024))
        assert batcher._max_columns() == 1024
        session.tuned = tuner.TunerDecision(
            backend="hybrid", dtype="float64", variant="panel", h=8,
            key="k", max_batch_columns=64,
        )
        assert batcher._max_columns() == 64

    def test_fp32_decision_sets_session_dtype(self, cache):
        session = ServingSession(make_operand())
        session.apply_decision(tuner.TunerDecision(
            backend="hybrid", dtype="float32", variant="panel", h=8, key="k",
        ))
        assert session.precision == "float32"
        assert session._dtype == np.float32

    def test_counters_flow_to_default_registry(self, cache):
        from repro.obs import metrics as obs_metrics

        tuner.tune(make_operand(5), 8, cache=cache, repeats=1)
        snapshot = obs_metrics.default_registry().snapshot()
        assert "tuner_decisions_total" in snapshot


class TestEnginePlanSidecars:
    def test_plan_store_load_roundtrip(self, cache):
        op = make_operand()
        plan = engine.build_plan(op)
        cache.store_plan("k1", plan)
        loaded = cache.load_plan("k1")
        assert type(loaded) is type(plan)
        b = np.random.default_rng(6).integers(0, 64, size=(48, 4)).astype(np.float64)
        assert np.array_equal(loaded.execute(op, b), plan.execute(op, b))
        assert cache.stats.plan_hits == 1

    def test_corrupt_plan_is_quarantined_miss(self, cache):
        cache.plan_path("bad").write_bytes(b"not a pickle")
        assert cache.load_plan("bad") is None
        assert cache.stats.plan_misses == 1
        assert not cache.plan_path("bad").exists()

    def test_fsck_reports_corrupt_plan_sidecars(self, cache):
        cache.store_plan("ok", engine.build_plan(make_operand()))
        cache.plan_path("bad").write_bytes(b"junk")
        report = cache.fsck()
        assert report["plan_corrupt"] == ["bad"]
        assert cache.plan_path("ok").exists()

    def test_invalidate_and_clear_remove_sidecars(self, cache):
        op = make_operand()
        cache.store_plan("k", engine.build_plan(op))
        cache.store_decision("k", {"backend": "csr"})
        cache.invalidate("k")
        assert not cache.plan_path("k").exists()
        assert not cache.decision_path("k").exists()
        cache.store_plan("k2", engine.build_plan(op))
        cache.clear()
        assert not cache.plan_path("k2").exists()
