"""MicroBatcher / BatchPolicy: coalescing correctness and queue mechanics."""

import numpy as np
import pytest

from repro.core import VNMPattern
from repro.graphs import sbm_graph
from repro.perf.batching import BatchPolicy, MicroBatcher
from repro.pipeline import PreprocessPlan, ServingSession, preprocess

PATTERN = VNMPattern(1, 2, 4)


@pytest.fixture(scope="module")
def served():
    g, _ = sbm_graph(72, 3, 0.15, 0.01, np.random.default_rng(11))
    return g, preprocess(g, PreprocessPlan(pattern=PATTERN))


class TestBatchPolicy:
    def test_defaults_are_valid(self):
        BatchPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_delay": -0.001},
            {"max_requests": 0},
            {"max_columns": 0},
            {"capacity": 0},
        ],
    )
    def test_rejects_degenerate_knobs(self, kwargs):
        with pytest.raises(ValueError):
            BatchPolicy(**kwargs)


class TestCoalescing:
    def test_flush_resolves_all_futures_identically(self, served):
        g, result = served
        session = ServingSession.from_result(result)
        rng = np.random.default_rng(0)
        xs = [rng.integers(0, 1 << 10, size=(g.n, 4)).astype(np.float64)
              for _ in range(5)]
        with MicroBatcher(session, BatchPolicy(max_delay=60.0)) as batcher:
            futures = [batcher.submit(x) for x in xs]
            batcher.flush()
            dense = g.dense_adjacency()
            for x, fut in zip(xs, futures):
                # Integer-valued features: stacked outputs must be bitwise
                # identical to both the dense reference and a solo spmm.
                assert np.array_equal(fut.result(), dense @ x)
                assert np.array_equal(fut.result(), session.spmm(x))
            assert batcher.n_batches == 1
            assert batcher.n_coalesced == 5

    def test_vector_requests_squeeze_back(self, served):
        g, result = served
        session = ServingSession.from_result(result)
        x = np.random.default_rng(1).random(g.n)
        with MicroBatcher(session, BatchPolicy(max_delay=60.0)) as batcher:
            fut = batcher.submit(x)
            batcher.flush()
            out = fut.result()
        assert out.shape == (g.n,)
        assert np.allclose(out, g.dense_adjacency() @ x)

    def test_deadline_flushes_without_explicit_flush(self, served):
        g, result = served
        session = ServingSession.from_result(result)
        x = np.random.default_rng(2).random((g.n, 3))
        batcher = MicroBatcher(session, BatchPolicy(max_delay=0.005))
        try:
            fut = batcher.submit(x)
            assert np.allclose(fut.result(timeout=10.0), g.dense_adjacency() @ x)
        finally:
            batcher.close()

    def test_max_requests_splits_batches(self, served):
        g, result = served
        session = ServingSession.from_result(result)
        rng = np.random.default_rng(3)
        xs = [rng.random((g.n, 2)) for _ in range(5)]
        with MicroBatcher(session, BatchPolicy(max_delay=60.0, max_requests=2)) as b:
            futs = [b.submit(x) for x in xs]
            b.flush()
            for x, fut in zip(xs, futs):
                assert np.allclose(fut.result(), g.dense_adjacency() @ x)
            assert b.n_batches == 3  # 2 + 2 + 1

    def test_max_columns_splits_batches(self, served):
        g, result = served
        session = ServingSession.from_result(result)
        rng = np.random.default_rng(4)
        xs = [rng.random((g.n, 4)) for _ in range(4)]
        with MicroBatcher(session, BatchPolicy(max_delay=60.0, max_columns=8)) as b:
            futs = [b.submit(x) for x in xs]
            b.flush()
            for fut in futs:
                fut.result()
            assert b.n_batches == 2  # 8 columns per batch


class TestQueueMechanics:
    def test_submit_validates_eagerly(self, served):
        _, result = served
        session = ServingSession.from_result(result)
        with MicroBatcher(session, BatchPolicy(max_delay=60.0)) as batcher:
            with pytest.raises(ValueError):
                batcher.submit(np.zeros((3, 2)))  # wrong row count
            assert batcher.queued == 0

    def test_closed_batcher_refuses_submissions(self, served):
        g, result = served
        session = ServingSession.from_result(result)
        batcher = MicroBatcher(session)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(np.zeros(g.n))

    def test_close_drains_queue(self, served):
        g, result = served
        session = ServingSession.from_result(result)
        batcher = MicroBatcher(session, BatchPolicy(max_delay=60.0))
        fut = batcher.submit(np.random.default_rng(5).random((g.n, 2)))
        batcher.close()
        assert fut.done()
        assert fut.result().shape == (g.n, 2)


class TestSessionSurface:
    def test_session_submit_flush_close(self, served):
        g, result = served
        session = ServingSession.from_result(result)
        x = np.random.default_rng(6).random((g.n, 3))
        with session:
            fut = session.submit(x)
            session.flush()
            assert np.allclose(fut.result(), g.dense_adjacency() @ x)
        assert session._batcher is None

    def test_request_accounting_counts_batched_requests(self, served):
        g, result = served
        session = ServingSession.from_result(result)
        rng = np.random.default_rng(7)
        futs = [session.submit(rng.random((g.n, 2))) for _ in range(3)]
        session.flush()
        for fut in futs:
            fut.result()
        session.close()
        assert session.n_requests == 3
