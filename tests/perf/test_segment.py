"""Segmented execution plans: bitwise stitching, per-group degradation,
spec round-trips, and the end of the VNM availability cliff.

Every exactness test uses integer-valued operands and features, so all
float64 partial sums are exact and the segmented plan's stitched output
must match the naive kernels **bitwise** — the row split never changes any
row's products or reduction order.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import VNMPattern
from repro.obs import default_registry
from repro.perf import engine
from repro.perf.segment import (
    DEFAULT_SEGMENT_CONFIG,
    RowSegmenter,
    SegmentConfig,
    SegmentSpec,
    SegmentedPlan,
    build_segmented_plan,
)
from repro.pipeline import faults, registry
from repro.sptc import CSRMatrix, HybridVNM

VNM = VNMPattern(1, 2, 4)


def integer_matrix(n_rows, n_cols, rng, density=0.2):
    mask = rng.random((n_rows, n_cols)) < density
    return mask * rng.integers(1, 8, size=(n_rows, n_cols)).astype(np.float64)


def banded_matrix(n_rows=64, n_cols=64, violate=()):
    """Conforming 2:4 rows everywhere except the listed violating rows.

    Violating rows get 3 entries in their first M-segment (breaks N=2);
    conforming rows get exactly 2 per segment — so segment boundaries land
    exactly where ``violate`` says.
    """
    a = np.zeros((n_rows, n_cols))
    for i in range(n_rows):
        for s in range(n_cols // 4):
            a[i, s * 4] = i + 1.0
            a[i, s * 4 + 2] = 2.0
    for i in violate:
        a[i, 1] = 3.0
    return a


def feature_block(n_cols, h=5, seed=3):
    rng = np.random.default_rng(seed)
    return rng.integers(-4, 5, size=(n_cols, h)).astype(np.float64)


class TestRowSegmenter:
    def test_partition_is_exact_and_ordered(self):
        a = banded_matrix(violate=(7, 8, 31))
        spec = RowSegmenter(VNM).segment(CSRMatrix.from_dense(a))
        stops = 0
        for seg in spec.segments:
            assert seg.start == stops
            assert seg.stop > seg.start
            stops = seg.stop
        assert stops == a.shape[0]

    def test_boundaries_follow_violations(self):
        a = banded_matrix(violate=(10, 11))
        spec = RowSegmenter(VNM).segment(CSRMatrix.from_dense(a))
        kinds = [(s.start, s.stop, s.backend) for s in spec.segments]
        assert kinds == [(0, 10, "vnm"), (10, 12, "csr"), (12, 64, "vnm")]

    def test_v_alignment(self):
        pat = VNMPattern(4, 2, 8)
        a = banded_matrix(n_rows=62, n_cols=64, violate=(17,))
        spec = RowSegmenter(pat).segment(CSRMatrix.from_dense(a))
        for seg in spec.segments:
            assert seg.start % pat.v == 0
        assert spec.segments[-1].stop == 62  # partial last band clamps

    def test_min_block_rows_demotes_short_runs(self):
        a = banded_matrix(violate=(2, 5))  # conforming islands of 2 rows
        cfg = SegmentConfig(min_block_rows=4)
        spec = RowSegmenter(VNM, cfg).segment(CSRMatrix.from_dense(a))
        assert spec.segments[0].backend == "csr"
        assert spec.segments[0].rows >= 6

    def test_max_blocks_bounds_segment_count(self):
        rng = np.random.default_rng(5)
        a = integer_matrix(96, 64, rng, density=0.15)
        cfg = SegmentConfig(min_block_rows=1, max_blocks=3)
        spec = RowSegmenter(VNM, cfg).segment(CSRMatrix.from_dense(a))
        assert 1 <= len(spec.segments) <= 3

    def test_empty_matrix(self):
        spec = RowSegmenter(VNM).segment(CSRMatrix.from_dense(np.zeros((0, 8))))
        assert spec.segments == ()


class TestSegmentedPlanExactness:
    def test_bitwise_equal_and_vnm_coverage_on_violating_operand(self):
        a = banded_matrix(violate=(20, 21, 40))
        csr = CSRMatrix.from_dense(a)
        b = feature_block(64)
        plan = build_segmented_plan(csr, pattern=VNM)
        out = plan.execute(csr, b)
        assert np.array_equal(out, a @ b)
        assert np.array_equal(out, registry.dispatch_spmm(csr, b))
        cov = plan.summary()["row_coverage"]
        assert cov["vnm"]["rows"] == 61 and cov["csr"]["rows"] == 3

    def test_out_buffer_is_used(self):
        a = banded_matrix(violate=(9,))
        csr = CSRMatrix.from_dense(a)
        b = feature_block(64)
        plan = build_segmented_plan(csr, pattern=VNM)
        buf = np.empty((64, b.shape[1]))
        res = plan.execute(csr, b, out=buf)
        assert res is buf and np.array_equal(buf, a @ b)

    def test_coalesced_and_non_coalesced_agree(self):
        rng = np.random.default_rng(11)
        a = integer_matrix(80, 48, rng, density=0.12)
        csr = CSRMatrix.from_dense(a)
        b = feature_block(48)
        pooled = build_segmented_plan(
            csr, pattern=VNM, config=SegmentConfig(coalesce=True), cache=False)
        per_block = build_segmented_plan(
            csr, pattern=VNM, config=SegmentConfig(coalesce=False), cache=False)
        out_pooled = pooled.execute(csr, b)
        out_blocks = per_block.execute(csr, b)
        assert np.array_equal(out_pooled, a @ b)
        assert np.array_equal(out_pooled, out_blocks)
        assert pooled.summary()["n_groups"] <= per_block.summary()["n_groups"]

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_rows=st.integers(min_value=1, max_value=64),
        n_cols=st.integers(min_value=1, max_value=64),
        density=st.floats(min_value=0.0, max_value=0.4),
        pattern=st.sampled_from(
            [VNMPattern(1, 2, 4), VNMPattern(2, 2, 4), VNMPattern(4, 2, 8)]
        ),
        min_block_rows=st.sampled_from([1, 2, 8]),
        max_blocks=st.sampled_from([1, 2, 4, 256]),
        coalesce=st.booleans(),
    )
    def test_property_bitwise_vs_naive_across_boundary_placements(
            self, seed, n_rows, n_cols, density, pattern,
            min_block_rows, max_blocks, coalesce):
        rng = np.random.default_rng(seed)
        a = integer_matrix(n_rows, n_cols, rng, density)
        csr = CSRMatrix.from_dense(a)
        b = rng.integers(-4, 5, size=(n_cols, 3)).astype(np.float64)
        cfg = SegmentConfig(min_block_rows=min_block_rows,
                            max_blocks=max_blocks, coalesce=coalesce)
        plan = build_segmented_plan(csr, pattern=pattern, config=cfg, cache=False)
        assert np.array_equal(plan.execute(csr, b),
                              registry.dispatch_spmm(csr, b))

    def test_pattern_bearing_operand_autodetects(self):
        rng = np.random.default_rng(13)
        a = integer_matrix(64, 64, rng, density=0.1)
        hybrid = HybridVNM.compress_csr(CSRMatrix.from_dense(a), VNM)
        b = feature_block(64)
        plan = build_segmented_plan(hybrid)
        assert np.array_equal(plan.execute(hybrid, b), a @ b)

    def test_patternless_operand_requires_pattern(self):
        csr = CSRMatrix.from_dense(np.eye(8))
        with pytest.raises(ValueError, match="pattern"):
            build_segmented_plan(csr)


class TestEngineIntegration:
    def test_plan_for_variant_segmented_caches(self):
        rng = np.random.default_rng(17)
        a = integer_matrix(64, 64, rng, density=0.1)
        hybrid = HybridVNM.compress_csr(CSRMatrix.from_dense(a), VNM)
        plan = engine.plan_for(hybrid, variant="segmented")
        assert isinstance(plan, SegmentedPlan)
        assert engine.plan_for(hybrid, variant="segmented") is plan
        b = feature_block(64)
        assert np.array_equal(engine.execute(hybrid, b), a @ b)

    def test_segment_kwargs_rejected_for_other_variants(self):
        csr = CSRMatrix.from_dense(np.eye(8))
        with pytest.raises(ValueError, match="segmented"):
            engine.build_plan(csr, variant="panel", pattern=VNM)

    def test_adopt_plan_checks_source_backend(self):
        a = banded_matrix(violate=(3,))
        csr = CSRMatrix.from_dense(a)
        plan = build_segmented_plan(csr, pattern=VNM, cache=False)
        other = CSRMatrix.from_dense(a)
        adopted = engine.adopt_plan(other, plan)
        assert adopted is plan
        b = feature_block(64)
        assert np.array_equal(plan.execute(other, b), a @ b)
        with pytest.raises(ValueError):
            engine.adopt_plan(a, plan)  # dense operand, csr-sourced spec

    def test_obs_counters_registered(self):
        a = banded_matrix(violate=(12,))
        csr = CSRMatrix.from_dense(a)
        plan = build_segmented_plan(csr, pattern=VNM, cache=False)
        plan.execute(csr, feature_block(64))
        snap = default_registry().snapshot()
        assert "engine_segments_total" in snap
        assert "engine_segment_rows" in snap
        backends = {
            tuple(sorted((s.get("labels") or {}).items()))
            for s in snap.get("engine_segment_variant_total", [])
        }
        assert (("backend", "vnm"),) in backends


class TestRoundTrips:
    def test_spec_dict_round_trip(self):
        a = banded_matrix(violate=(5, 6))
        spec = RowSegmenter(VNM, SegmentConfig(coalesce=False)).segment(
            CSRMatrix.from_dense(a))
        again = SegmentSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_config_dict_round_trip_with_defaults(self):
        cfg = SegmentConfig(min_block_rows=8, max_blocks=64, coalesce=False)
        assert SegmentConfig.from_dict(cfg.to_dict()) == cfg
        assert SegmentConfig.from_dict({}) == DEFAULT_SEGMENT_CONFIG

    def test_pickle_drops_scratch_and_rebuilds(self):
        a = banded_matrix(violate=(30, 31))
        csr = CSRMatrix.from_dense(a)
        b = feature_block(64)
        plan = build_segmented_plan(csr, pattern=VNM, cache=False)
        expected = plan.execute(csr, b)
        clone = pickle.loads(pickle.dumps(plan))
        assert not hasattr(clone, "_subs")
        assert clone.spec == plan.spec
        assert np.array_equal(clone.execute(csr, b), expected)

    def test_cache_sidecar_v2_and_v1_compat(self, tmp_path):
        from repro.pipeline.cache import ArtifactCache

        cache = ArtifactCache(tmp_path)
        a = banded_matrix(violate=(2,))
        csr = CSRMatrix.from_dense(a)
        plan = build_segmented_plan(csr, pattern=VNM, cache=False)
        cache.store_plan("k", plan)
        envelope = pickle.loads(cache.plan_path("k").read_bytes())
        assert envelope["sidecar_version"] == 2
        loaded = cache.load_plan("k")
        assert isinstance(loaded, SegmentedPlan) and loaded.spec == plan.spec
        # v1 sidecars (bare pickled plan) still load
        cache.plan_path("old").write_bytes(pickle.dumps(plan))
        assert isinstance(cache.load_plan("old"), SegmentedPlan)

    def test_tuner_decision_persists_segments(self, tmp_path):
        from repro.perf import tuner
        from repro.pipeline.cache import ArtifactCache

        rng = np.random.default_rng(23)
        a = integer_matrix(64, 64, rng, density=0.1)
        hybrid = HybridVNM.compress_csr(CSRMatrix.from_dense(a), VNM)
        cache = ArtifactCache(tmp_path)
        decision = tuner.tune(hybrid, h=4, cache=cache, repeats=1,
                              include_segmented=True)
        labels = [label for label, _ in decision.timings] + list(decision.failed)
        assert any(label.startswith("segmented:") for label in labels)
        again = tuner.tune(hybrid, h=4, cache=cache, repeats=1,
                           include_segmented=True)
        assert again.source == "cache"
        assert again.segments == decision.segments
        # the segmented toggle addresses a different decision
        plain = tuner.tune(hybrid, h=4, cache=cache, repeats=1)
        assert plain.key != decision.key and plain.segments is None
        # legacy payloads (no "segments") still load
        loaded = tuner.TunerDecision.from_dict(plain.to_dict())
        assert loaded.segments is None

    def test_preprocess_plan_key_only_changes_when_segmented(self):
        from repro.pipeline.preprocess import PreprocessPlan

        base = PreprocessPlan(pattern=VNM)
        assert "segmented" not in base.key_fields()
        assert PreprocessPlan(pattern=VNM, segmented=True).key_fields()[
            "segmented"] is True


@pytest.mark.faults
class TestPerSegmentDegradation:
    def test_only_failing_group_downgrades(self):
        a = banded_matrix(violate=(16, 17))
        csr = CSRMatrix.from_dense(a)
        b = feature_block(64)
        plan = build_segmented_plan(csr, pattern=VNM, cache=False)
        expected = plan.execute(csr, b)  # build groups, fault-free baseline
        before = {s["backend"] for s in plan.summary()["segments"]}
        assert before == {"vnm", "csr"}
        with faults.inject(faults.FaultPlan(kernel_failures={"vnm": 1})):
            out = plan.execute(csr, b)
        assert np.array_equal(out, expected)
        summary = plan.summary()
        by_backend = {s["backend"] for s in summary["segments"]}
        # the vnm group walked its ladder (vnm -> bsr), the csr tail did not
        assert "vnm" not in by_backend
        assert "csr" in by_backend
        assert summary["downgrades"] == 1
        downgraded = [s for s in summary["segments"]
                      if s.get("downgraded_from")]
        assert all(s["downgraded_from"] == ["vnm"] for s in downgraded)
        # sticky: the next fault-free execute serves from the fallback
        assert np.array_equal(plan.execute(csr, b), expected)

    def test_whole_ladder_failure_raises_backend_error(self):
        from repro.pipeline.resilience import BackendExecutionError

        a = banded_matrix(violate=(16,))
        csr = CSRMatrix.from_dense(a)
        b = feature_block(64)
        plan = build_segmented_plan(csr, pattern=VNM, cache=False)
        plan.execute(csr, b)
        with faults.inject(faults.FaultPlan(kernel_failures={
                "vnm": 1, "bsr": 1, "csr": 2, "dense": 1})):
            with pytest.raises(BackendExecutionError):
                plan.execute(csr, b)
