"""Execution engine: plan exactness, pickling, caching, fault composition.

Feature matrices are integer-valued throughout the exactness tests, so all
float64 partial sums are exact regardless of accumulation order and every
kernel variant must match the dense reference **bitwise**, not just
approximately.
"""

import gc
import pickle

import numpy as np
import pytest

from repro.core import VNMPattern
from repro.core.patterns import NMPattern
from repro.perf import engine
from repro.pipeline import faults, registry
from repro.pipeline.resilience import BackendExecutionError
from repro.sptc import CSRMatrix, HybridVNM
from repro.sptc.bsr import BSRMatrix
from repro.sptc.nm_format import NMCompressed
from repro.sptc.sell import SellCSigma
from repro.sptc.spmm import dense_spmm
from repro.sptc.venom import VNMCompressed

NM = NMPattern(2, 4)
VNM = VNMPattern(1, 2, 4)


def conforming(n_rows, n_cols, rng, n=2, m=4):
    """An integer-valued matrix obeying the N:M row constraint exactly."""
    a = np.zeros((n_rows, n_cols))
    n_segs = (n_cols + m - 1) // m
    for i in range(n_rows):
        for s in range(n_segs):
            width = min(m, n_cols - s * m)
            k = min(n, width)
            cols = rng.choice(width, size=k, replace=False) + s * m
            a[i, cols] = rng.integers(1, 8, size=k)
    return a


def sprinkled(n_rows, n_cols, rng, density=0.15):
    mask = rng.random((n_rows, n_cols)) < density
    return mask * rng.integers(1, 8, size=(n_rows, n_cols)).astype(np.float64)


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(7)
    a_conf = conforming(48, 48, rng)
    a_any = sprinkled(48, 48, rng)
    return {
        "dense": np.asarray(a_any, dtype=np.float64),
        "csr": CSRMatrix.from_dense(a_any),
        "bsr": BSRMatrix.from_dense(a_any, 4),
        "nm": NMCompressed.compress(a_conf, NM),
        "vnm": VNMCompressed.compress(a_conf, VNM),
        "hybrid": HybridVNM.compress(a_any, VNM),
    }


def dense_of(operand):
    if isinstance(operand, np.ndarray):
        return operand
    if hasattr(operand, "decompress"):
        return operand.decompress()
    return operand.to_dense()


BACKENDS = ("dense", "csr", "bsr", "nm", "vnm", "hybrid")
VARIANTS = ("panel", "gathered")


class TestExactness:
    @pytest.mark.parametrize("name", BACKENDS)
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_bitwise_vs_dense(self, operands, name, variant):
        op = operands[name]
        plan = engine.build_plan(op, variant=variant)
        b = np.random.default_rng(3).integers(0, 1 << 10, size=(48, 16)).astype(np.float64)
        reference = dense_spmm(dense_of(op), b)
        assert np.array_equal(plan.execute(op, b), reference)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_float_features_allclose(self, operands, name):
        op = operands[name]
        b = np.random.default_rng(4).standard_normal((48, 8))
        reference = dense_spmm(dense_of(op), b)
        for variant in VARIANTS:
            out = engine.build_plan(op, variant=variant).execute(op, b)
            assert np.allclose(out, reference, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("n_cols", [42, 100])
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_ragged_columns(self, n_cols, variant):
        # n_cols % M != 0: padding geometry must not leak phantom columns.
        rng = np.random.default_rng(n_cols)
        op = NMCompressed.compress(conforming(20, n_cols, rng), NM)
        b = rng.integers(0, 256, size=(n_cols, 6)).astype(np.float64)
        reference = dense_spmm(op.decompress(), b)
        out = engine.build_plan(op, variant=variant).execute(op, b)
        assert np.array_equal(out, reference)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_batched_wide_features(self, operands, name):
        # Column widths past REPRO_ENGINE_COL_CHUNK exercise the chunked GEMM.
        op = operands[name]
        b = np.random.default_rng(5).integers(0, 64, size=(48, 24)).astype(np.float64)
        reference = dense_spmm(dense_of(op), b)
        plan = engine.build_plan(op, variant="panel")
        assert np.array_equal(plan.execute(op, b), reference)

    def test_shape_mismatch_raises(self, operands):
        plan = engine.build_plan(operands["csr"])
        with pytest.raises(ValueError):
            plan.execute(operands["csr"], np.ones((7, 3)))


class TestFloat32:
    @pytest.mark.parametrize("name", BACKENDS)
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_fp32_close_to_fp64(self, operands, name, variant):
        op = operands[name]
        plan = engine.build_plan(op, variant=variant)
        b = np.random.default_rng(6).standard_normal((48, 8))
        exact = plan.execute(op, b)
        approx = plan.execute(op, b, dtype=np.float32)
        assert approx.dtype == np.float64  # cast back at the boundary
        assert np.allclose(approx, exact, rtol=1e-4, atol=1e-3)

    def test_fp32_within_bound_probe(self, operands):
        assert isinstance(engine.fp32_within_bound(operands["csr"]), bool)


class TestPickling:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_roundtrip_drops_scratch(self, operands, name):
        op = operands[name]
        plan = engine.build_plan(op, variant="panel")
        b = np.random.default_rng(8).integers(0, 64, size=(48, 4)).astype(np.float64)
        before = plan.execute(op, b)  # builds scratch
        state = plan.__getstate__()
        assert not any(k.startswith("_") for k in state)
        loaded = pickle.loads(pickle.dumps(plan))
        assert np.array_equal(loaded.execute(op, b), before)


class TestPlanCache:
    def test_identity_hit(self, operands):
        engine.clear_plan_cache()
        op = operands["csr"]
        assert engine.plan_for(op) is engine.plan_for(op)
        assert engine.cached_plan(op) is not None

    def test_weakref_eviction(self):
        engine.clear_plan_cache()
        op = CSRMatrix.from_dense(np.eye(8))
        engine.plan_for(op)
        assert engine.cached_plan(op) is not None
        del op
        gc.collect()
        assert engine.clear_plan_cache() == 0

    def test_dense_operands_skip_cache(self):
        a = np.eye(6)
        assert engine.plan_for(a) is not engine.plan_for(a)

    def test_adopt_plan_validates(self, operands):
        plan = engine.build_plan(operands["csr"])
        with pytest.raises(ValueError):
            engine.adopt_plan(CSRMatrix.from_dense(np.eye(5)), plan)  # shape
        with pytest.raises(ValueError):
            engine.adopt_plan(operands["nm"], plan)  # wrong plan type

    def test_unknown_variant_rejected(self, operands):
        with pytest.raises(ValueError):
            engine.build_plan(operands["csr"], variant="warp")


class TestExecuteIntegration:
    def test_unplannable_falls_back_to_naive(self):
        rng = np.random.default_rng(9)
        a = sprinkled(24, 24, rng)
        sell = SellCSigma.from_csr(CSRMatrix.from_dense(a), c=4, sigma=8)
        b = rng.integers(0, 64, size=(24, 4)).astype(np.float64)
        assert np.array_equal(engine.execute(sell, b), dense_spmm(a, b))

    def test_engine_env_kill_switch(self, operands, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "0")
        op = operands["csr"]
        b = np.random.default_rng(10).integers(0, 64, size=(48, 4)).astype(np.float64)
        assert np.array_equal(engine.execute(op, b), registry.dispatch_spmm(op, b))

    def test_fault_injection_covers_planned_path(self, operands):
        op = operands["nm"]
        b = np.random.default_rng(11).integers(0, 64, size=(48, 4)).astype(np.float64)
        with faults.inject(faults.FaultPlan(kernel_failures={"nm": 1})):
            with pytest.raises(BackendExecutionError):
                engine.execute(op, b)
            # The injected failure is consumed; the next launch heals.
            assert np.array_equal(engine.execute(op, b), dense_spmm(dense_of(op), b))

    def test_counters_flow_to_default_registry(self, operands):
        from repro.obs import metrics as obs_metrics

        engine.clear_plan_cache()
        op = CSRMatrix.from_dense(np.eye(12))
        engine.plan_for(op)
        engine.plan_for(op)
        snapshot = obs_metrics.default_registry().snapshot()
        assert "engine_plan_builds_total" in snapshot
        assert "engine_plan_cache_hits_total" in snapshot
