"""SharedMatrixBatch: zero-copy views, ownership, and cleanup guarantees."""

import numpy as np
import pytest

from repro.core import BitMatrix, VNMPattern, reorder
from repro.perf.shm import (
    SharedMatrixBatch,
    attach_bitmatrix,
    detach_all,
    live_segments,
)

PATTERN = VNMPattern(1, 2, 4)


def batch(count=3, n=48, seed=0):
    out = []
    for i in range(count):
        rng = np.random.default_rng(seed + i)
        a = rng.random((n, n)) < 0.06
        a = (a | a.T).astype(np.uint8)
        np.fill_diagonal(a, 0)
        out.append(BitMatrix.from_dense(a))
    return out


class TestPackAndView:
    def test_views_are_byte_identical(self):
        mats = batch()
        with SharedMatrixBatch.pack(mats) as shared:
            for i, bm in enumerate(mats):
                view = shared.view(i)
                assert view.shape == bm.shape
                assert np.array_equal(view.words, bm.words)

    def test_views_are_read_only(self):
        mats = batch(1)
        with SharedMatrixBatch.pack(mats) as shared:
            view = shared.view(0)
            assert not view.words.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                view.set(0, 1, 1)

    def test_reorder_on_view_matches_owned_copy(self):
        mats = batch(1)
        direct = reorder(mats[0], PATTERN)
        with SharedMatrixBatch.pack(mats) as shared:
            shared_res = reorder(shared.view(0), PATTERN)
        assert np.array_equal(direct.permutation.order, shared_res.permutation.order)
        assert direct.final_invalid_vectors == shared_res.final_invalid_vectors

    def test_handles_are_picklable_and_attachable(self):
        import pickle

        mats = batch(2)
        with SharedMatrixBatch.pack(mats) as shared:
            handle = pickle.loads(pickle.dumps(shared.handles[1]))
            view = attach_bitmatrix(handle)
            assert np.array_equal(view.words, mats[1].words)
            detach_all()

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            SharedMatrixBatch.pack([])


class TestLifecycle:
    def test_context_manager_unlinks(self):
        with SharedMatrixBatch.pack(batch(1)) as shared:
            assert shared.name in live_segments()
        assert shared.name not in live_segments()
        # Attaching a fresh view of an unlinked segment must fail.
        with pytest.raises(FileNotFoundError):
            attach_bitmatrix(shared.handles[0])
        detach_all()

    def test_dispose_is_idempotent(self):
        shared = SharedMatrixBatch.pack(batch(1))
        shared.dispose()
        shared.dispose()
        assert live_segments() == []

    def test_unlink_on_exception_inside_context(self):
        with pytest.raises(RuntimeError):
            with SharedMatrixBatch.pack(batch(1)) as shared:
                raise RuntimeError("boom")
        assert shared.name not in live_segments()


class TestBitMatrixFromBuffer:
    def test_zero_copy_alias(self):
        bm = batch(1)[0]
        view = BitMatrix.from_buffer(bm.words, bm.n_rows, bm.n_cols)
        assert view.words is bm.words
        assert view.nnz() == bm.nnz()

    def test_shape_validation_still_applies(self):
        bm = batch(1)[0]
        with pytest.raises(ValueError):
            BitMatrix.from_buffer(bm.words, bm.n_rows + 1, bm.n_cols)
