"""SharedMatrixBatch: zero-copy views, ownership, and cleanup guarantees."""

import numpy as np
import pytest

from repro.core import BitMatrix, VNMPattern, reorder
from repro.perf.shm import (
    SharedMatrixBatch,
    attach_bitmatrix,
    detach_all,
    live_segments,
)

PATTERN = VNMPattern(1, 2, 4)


def batch(count=3, n=48, seed=0):
    out = []
    for i in range(count):
        rng = np.random.default_rng(seed + i)
        a = rng.random((n, n)) < 0.06
        a = (a | a.T).astype(np.uint8)
        np.fill_diagonal(a, 0)
        out.append(BitMatrix.from_dense(a))
    return out


class TestPackAndView:
    def test_views_are_byte_identical(self):
        mats = batch()
        with SharedMatrixBatch.pack(mats) as shared:
            for i, bm in enumerate(mats):
                view = shared.view(i)
                assert view.shape == bm.shape
                assert np.array_equal(view.words, bm.words)

    def test_views_are_read_only(self):
        mats = batch(1)
        with SharedMatrixBatch.pack(mats) as shared:
            view = shared.view(0)
            assert not view.words.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                view.set(0, 1, 1)

    def test_reorder_on_view_matches_owned_copy(self):
        mats = batch(1)
        direct = reorder(mats[0], PATTERN)
        with SharedMatrixBatch.pack(mats) as shared:
            shared_res = reorder(shared.view(0), PATTERN)
        assert np.array_equal(direct.permutation.order, shared_res.permutation.order)
        assert direct.final_invalid_vectors == shared_res.final_invalid_vectors

    def test_handles_are_picklable_and_attachable(self):
        import pickle

        mats = batch(2)
        with SharedMatrixBatch.pack(mats) as shared:
            handle = pickle.loads(pickle.dumps(shared.handles[1]))
            view = attach_bitmatrix(handle)
            assert np.array_equal(view.words, mats[1].words)
            detach_all()

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            SharedMatrixBatch.pack([])


class TestLifecycle:
    def test_context_manager_unlinks(self):
        with SharedMatrixBatch.pack(batch(1)) as shared:
            assert shared.name in live_segments()
        assert shared.name not in live_segments()
        # Attaching a fresh view of an unlinked segment must fail.
        with pytest.raises(FileNotFoundError):
            attach_bitmatrix(shared.handles[0])
        detach_all()

    def test_dispose_is_idempotent(self):
        shared = SharedMatrixBatch.pack(batch(1))
        shared.dispose()
        shared.dispose()
        assert live_segments() == []

    def test_unlink_on_exception_inside_context(self):
        with pytest.raises(RuntimeError):
            with SharedMatrixBatch.pack(batch(1)) as shared:
                raise RuntimeError("boom")
        assert shared.name not in live_segments()


class TestBitMatrixFromBuffer:
    def test_zero_copy_alias(self):
        bm = batch(1)[0]
        view = BitMatrix.from_buffer(bm.words, bm.n_rows, bm.n_cols)
        assert view.words is bm.words
        assert view.nnz() == bm.nnz()

    def test_shape_validation_still_applies(self):
        bm = batch(1)[0]
        with pytest.raises(ValueError):
            BitMatrix.from_buffer(bm.words, bm.n_rows + 1, bm.n_cols)


class TestSegmentHelpers:
    def test_create_destroy_round_trip(self):
        from repro.perf.shm import SEGMENT_PREFIX, create_segment, destroy_segment

        seg = create_segment(128, label="t")
        assert seg.name.startswith(f"{SEGMENT_PREFIX}-t-")
        assert seg.name in live_segments()
        destroy_segment(seg)
        assert seg.name not in live_segments()
        destroy_segment(seg)  # idempotent

    def test_create_rejects_degenerate_size(self):
        from repro.perf.shm import create_segment

        with pytest.raises(ValueError):
            create_segment(0)


class TestLeakSweep:
    def test_sweeps_aged_orphans_only(self, tmp_path):
        import os

        from repro.obs import MetricsRegistry
        from repro.perf.shm import SEGMENT_PREFIX, sweep_leaked_segments

        old = tmp_path / f"{SEGMENT_PREFIX}-dead-1-aaaa"
        young = tmp_path / f"{SEGMENT_PREFIX}-dead-1-bbbb"
        foreign = tmp_path / "someone-elses-segment"
        for p in (old, young, foreign):
            p.write_bytes(b"x" * 16)
        os.utime(old, (0, 0))  # ancient

        metrics = MetricsRegistry()
        reclaimed = sweep_leaked_segments(
            max_age_seconds=60.0, shm_dir=str(tmp_path), metrics=metrics)
        assert reclaimed == [old.name]
        assert not old.exists()
        assert young.exists() and foreign.exists()  # age gate + prefix gate
        assert metrics.get("shm_segments_leaked_total").value == 1.0

    def test_never_sweeps_own_live_segments(self, tmp_path):
        from repro.perf.shm import create_segment, destroy_segment, sweep_leaked_segments

        seg = create_segment(64, label="own")
        try:
            # Point the sweep at the real mount with a zero age gate: the
            # segment is in this process's live set, so it must survive.
            reclaimed = sweep_leaked_segments(max_age_seconds=0.0)
            assert seg.name not in reclaimed
            assert seg.name in live_segments()
        finally:
            destroy_segment(seg)

    def test_missing_mount_sweeps_nothing(self, tmp_path):
        from repro.perf.shm import sweep_leaked_segments

        assert sweep_leaked_segments(shm_dir=str(tmp_path / "nope")) == []

    def test_negative_age_rejected(self):
        from repro.perf.shm import sweep_leaked_segments

        with pytest.raises(ValueError):
            sweep_leaked_segments(max_age_seconds=-1.0)


class TestAttachMemo:
    def test_memo_is_bounded(self):
        from repro.perf import shm as shm_mod

        batches = [SharedMatrixBatch.pack(batch(1, seed=100 + i))
                   for i in range(shm_mod._ATTACH_CACHE_CAP + 3)]
        try:
            for shared in batches:
                attach_bitmatrix(shared.handles[0])
            assert len(shm_mod._ATTACHED) <= shm_mod._ATTACH_CACHE_CAP
        finally:
            detach_all()
            for shared in batches:
                shared.dispose()

    def test_detach_all_empties_memo(self):
        from repro.perf import shm as shm_mod

        with SharedMatrixBatch.pack(batch(1)) as shared:
            attach_bitmatrix(shared.handles[0])
            assert shared.name in shm_mod._ATTACHED
            detach_all()
            assert shm_mod._ATTACHED == {}

    def test_pool_restart_invalidates_parent_memo(self):
        from repro.perf import WorkerPool
        from repro.perf import shm as shm_mod

        with SharedMatrixBatch.pack(batch(1)) as shared:
            attach_bitmatrix(shared.handles[0])
            assert shared.name in shm_mod._ATTACHED
            with WorkerPool(1) as pool:
                pool.warm()
                pool.restart(kill=True)
                # The restart dropped the stale parent-side attachment: a
                # recycled segment name can never alias an old mapping.
                assert shm_mod._ATTACHED == {}

    def test_invalidate_attachment_single_name(self):
        from repro.perf import shm as shm_mod
        from repro.perf.shm import invalidate_attachment

        with SharedMatrixBatch.pack(batch(1)) as shared:
            attach_bitmatrix(shared.handles[0])
            invalidate_attachment(shared.name)
            assert shared.name not in shm_mod._ATTACHED
            invalidate_attachment(shared.name)  # idempotent
