"""Public-API hygiene: every documented name imports and resolves."""

import importlib

import pytest

MODULES = [
    "repro",
    "repro.core",
    "repro.core.bitops",
    "repro.core.predictor",
    "repro.sptc",
    "repro.sptc.sell",
    "repro.sptc.tcgnn",
    "repro.graphs",
    "repro.gnn",
    "repro.prune",
    "repro.baselines",
    "repro.distributed",
    "repro.distributed.multilevel",
    "repro.bench",
    "repro.parallel",
    "repro.cli",
    "repro.obs",
    "repro.obs.metrics",
    "repro.obs.trace",
    "repro.obs.events",
    "repro.obs.logconfig",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", MODULES)
def test_all_names_resolve(module_name):
    mod = importlib.import_module(module_name)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module_name}.__all__ lists missing {name!r}"


def test_version():
    import repro

    assert repro.__version__


def test_top_level_exports():
    import repro

    for name in ("reorder", "find_best_pattern", "BitMatrix", "VNMPattern", "Permutation"):
        assert hasattr(repro, name)


def test_public_functions_documented():
    """Every public callable in the core packages carries a docstring."""
    undocumented = []
    for module_name in MODULES:
        mod = importlib.import_module(module_name)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(f"{module_name}.{name}")
    assert not undocumented, undocumented
