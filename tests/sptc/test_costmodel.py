"""A100-class analytical cost model: the shapes the paper's results rely on."""

import numpy as np
import pytest

from repro.core import VNMPattern
from repro.sptc import (
    A100Params,
    CSRMatrix,
    CostModel,
    SpmmWorkload,
    VNMCompressed,
)


def sparse_weighted(n, density, seed):
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    mask |= mask.T
    np.fill_diagonal(mask, False)
    w = np.triu(rng.random((n, n)) + 0.01, 1) * np.triu(mask, 1)
    return w + w.T


@pytest.fixture(scope="module")
def model():
    return CostModel()


class TestCsrModel:
    def test_positive_and_monotone_in_h(self, model):
        wl64 = SpmmWorkload(1000, 1000, 20000, 64)
        wl512 = SpmmWorkload(1000, 1000, 20000, 512)
        assert 0 < model.time_csr_spmm(wl64) < model.time_csr_spmm(wl512)

    def test_monotone_in_nnz(self, model):
        a = SpmmWorkload(1000, 1000, 10000, 128)
        b = SpmmWorkload(1000, 1000, 100000, 128)
        assert model.time_csr_spmm(a) < model.time_csr_spmm(b)

    def test_launch_floor(self, model):
        tiny = SpmmWorkload(4, 4, 2, 4)
        assert model.time_csr_spmm(tiny) >= model.params.kernel_launch

    def test_imbalance_penalty(self, model):
        balanced = SpmmWorkload(1000, 1000, 50000, 128, max_degree=50, avg_degree=50.0)
        skewed = SpmmWorkload(1000, 1000, 50000, 128, max_degree=900, avg_degree=50.0)
        assert model.time_csr_spmm(skewed) > model.time_csr_spmm(balanced)

    def test_from_csr_extracts_stats(self):
        a = sparse_weighted(64, 0.1, 0)
        wl = SpmmWorkload.from_csr(CSRMatrix.from_dense(a), 32)
        assert wl.nnz == np.count_nonzero(a)
        assert wl.h == 32
        assert wl.max_degree == int((a != 0).sum(1).max())


class TestSptcModel:
    def _venom(self, n=256, density=0.03, seed=1, pat=VNMPattern(1, 2, 4)):
        from repro.core import BitMatrix, reorder

        w = sparse_weighted(n, density, seed)
        res = reorder(BitMatrix.from_dense((w != 0).astype(np.uint8)), pat)
        wp = res.permutation.apply_to_matrix(w)
        from repro.sptc import HybridVNM

        return HybridVNM.compress(wp, pat).main, CSRMatrix.from_dense(wp)

    def test_speedup_grows_with_h(self, model):
        venom, csr = self._venom()
        speedups = [model.speedup_csr_to_venom(csr, venom, h) for h in (64, 128, 256, 512)]
        assert all(b >= a * 0.99 for a, b in zip(speedups, speedups[1:]))

    def test_sptc_wins_on_typical_graph(self, model):
        venom, csr = self._venom(n=512, density=0.02)
        assert model.speedup_csr_to_venom(csr, venom, 128) > 1.0

    def test_padding_waste_charged(self, model):
        # An ultra-sparse scattered matrix at large V stores mostly padding:
        # SPTC time per non-zero must exceed the V=1 case's.
        from repro.sptc import HybridVNM

        rng = np.random.default_rng(3)
        n = 512
        w = np.zeros((n, n))
        idx = rng.choice(n * n, size=300, replace=False)
        w.flat[idx] = 1.0
        big_v = HybridVNM.compress(w, VNMPattern(16, 2, 16)).main
        small_v = HybridVNM.compress(w, VNMPattern(1, 2, 16)).main
        assert big_v.values.size > small_v.values.size
        assert model.time_venom_spmm(big_v, 64) > model.time_venom_spmm(small_v, 64)


class TestDenseModel:
    def test_tensor_core_beats_cuda_cores(self, model):
        assert model.time_dense_gemm(2048, 2048, 2048, tensor_core=True) < model.time_dense_gemm(
            2048, 2048, 2048, tensor_core=False
        )

    def test_elementwise_scales_with_size(self, model):
        assert model.time_elementwise(10_000_000) > model.time_elementwise(1000)


class TestParams:
    def test_with_params_override(self, model):
        slower = model.with_params(cuda_spmm_flops=model.params.cuda_spmm_flops / 2)
        wl = SpmmWorkload(4096, 4096, 500000, 256)
        assert slower.time_csr_spmm(wl) > model.time_csr_spmm(wl)

    def test_defaults_frozen(self):
        with pytest.raises(Exception):
            A100Params().mem_bandwidth = 1.0
