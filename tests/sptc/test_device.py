"""Emulated device: functional kernels + virtual clock."""

import numpy as np
import pytest

from repro.core import NMPattern, VNMPattern
from repro.sptc import (
    CSRMatrix,
    EmulatedDevice,
    HybridVNM,
    NMCompressed,
    VNMCompressed,
)
from repro.sptc.device import active_device, use_device


@pytest.fixture
def device():
    return EmulatedDevice()


class TestClock:
    def test_clock_advances(self, device, rng):
        a = CSRMatrix.from_dense(np.eye(8))
        device.spmm(a, rng.random((8, 4)))
        assert device.clock > 0
        assert len(device.records) == 1

    def test_reset(self, device, rng):
        device.spmm(CSRMatrix.identity(4), rng.random((4, 2)))
        device.reset()
        assert device.clock == 0.0
        assert device.records == []

    def test_elapsed_by_tag(self, device, rng):
        device.spmm(CSRMatrix.identity(4), rng.random((4, 2)), tag="aggregation")
        device.gemm(rng.random((4, 4)), rng.random((4, 4)), tag="update")
        assert device.elapsed("aggregation") > 0
        assert device.elapsed("update") > 0
        assert device.elapsed() == pytest.approx(
            device.elapsed("aggregation") + device.elapsed("update")
        )


class TestKernels:
    def test_csr_numerics(self, device, weighted_sym_dense, rng):
        b = rng.random((weighted_sym_dense.shape[1], 6))
        out = device.spmm(CSRMatrix.from_dense(weighted_sym_dense), b)
        assert np.allclose(out, weighted_sym_dense @ b)

    def test_venom_numerics(self, device, rng):
        pat = VNMPattern(2, 2, 4)
        a = np.zeros((8, 8))
        a[0, [0, 2]] = [1.0, 2.0]
        a[1, 0] = 3.0
        c = VNMCompressed.compress(a, pat)
        b = rng.random((8, 3))
        assert np.allclose(device.spmm(c, b), a @ b)

    def test_nm_numerics(self, device, rng):
        pat = NMPattern(2, 4)
        a = np.zeros((4, 8))
        a[0, [1, 3]] = 1.0
        c = NMCompressed.compress(a, pat)
        b = rng.random((8, 3))
        assert np.allclose(device.spmm(c, b), a @ b)

    def test_hybrid_numerics(self, device, weighted_sym_dense, rng):
        pat = VNMPattern(4, 2, 8)
        hy = HybridVNM.compress(weighted_sym_dense, pat)
        b = rng.random((weighted_sym_dense.shape[1], 4))
        assert np.allclose(device.spmm(hy, b), weighted_sym_dense @ b)

    def test_unknown_operand_rejected(self, device, rng):
        with pytest.raises(TypeError):
            device.spmm(object(), rng.random((4, 2)))

    def test_gemm_and_elementwise(self, device, rng):
        a, b = rng.random((5, 6)), rng.random((6, 7))
        assert np.allclose(device.gemm(a, b), a @ b)
        x = rng.random((4, 4)) - 0.5
        assert np.allclose(device.elementwise(x, np.abs), np.abs(x))


class TestDeviceContext:
    def test_context_scoping(self, device):
        assert active_device() is None
        with use_device(device):
            assert active_device() is device
            inner = EmulatedDevice()
            with use_device(inner):
                assert active_device() is inner
            assert active_device() is device
        assert active_device() is None

    def test_context_restored_on_exception(self, device):
        with pytest.raises(RuntimeError):
            with use_device(device):
                raise RuntimeError("boom")
        assert active_device() is None
