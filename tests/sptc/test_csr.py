"""From-scratch CSR matrix."""

import numpy as np
import pytest

from repro.sptc import CSRMatrix


class TestConstruction:
    def test_from_dense_roundtrip(self, weighted_sym_dense):
        csr = CSRMatrix.from_dense(weighted_sym_dense)
        assert np.allclose(csr.to_dense(), weighted_sym_dense)

    def test_from_coo_sums_duplicates(self):
        csr = CSRMatrix.from_coo([0, 0], [1, 1], [2.0, 3.0], (2, 2))
        assert csr.nnz == 1
        assert csr.to_dense()[0, 1] == 5.0

    def test_from_coo_no_dedup(self):
        csr = CSRMatrix.from_coo([0, 0], [1, 1], [2.0, 3.0], (2, 2), sum_duplicates=False)
        assert csr.nnz == 2

    def test_from_coo_default_data(self):
        csr = CSRMatrix.from_coo([0, 1], [1, 0], None, (2, 2))
        assert np.allclose(csr.data, 1.0)

    def test_identity(self):
        eye = CSRMatrix.identity(4)
        assert np.allclose(eye.to_dense(), np.eye(4))

    def test_scipy_roundtrip(self, weighted_sym_dense):
        import scipy.sparse as sp

        csr = CSRMatrix.from_scipy(sp.csr_matrix(weighted_sym_dense))
        assert np.allclose(csr.to_dense(), weighted_sym_dense)
        assert np.allclose(csr.to_scipy().toarray(), weighted_sym_dense)

    def test_validation(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 1]), np.array([5]), np.array([1.0]), (1, 3))
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 1, 1]), np.array([0]), np.array([1.0]), (1, 3))
        with pytest.raises(ValueError):
            CSRMatrix(np.array([0, 1]), np.array([0, 1]), np.array([1.0]), (1, 3))


class TestOps:
    def test_matvec(self, weighted_sym_dense, rng):
        csr = CSRMatrix.from_dense(weighted_sym_dense)
        x = rng.random(weighted_sym_dense.shape[1])
        assert np.allclose(csr.matvec(x), weighted_sym_dense @ x)

    def test_matmat(self, weighted_sym_dense, rng):
        csr = CSRMatrix.from_dense(weighted_sym_dense)
        b = rng.random((weighted_sym_dense.shape[1], 17))
        assert np.allclose(csr.matmat(b), weighted_sym_dense @ b)

    def test_matmat_with_empty_rows(self, rng):
        a = np.zeros((6, 6))
        a[0, 1] = 2.0
        a[5, 0] = 3.0  # rows 1-4 empty
        csr = CSRMatrix.from_dense(a)
        b = rng.random((6, 3))
        assert np.allclose(csr.matmat(b), a @ b)

    def test_matmat_empty_matrix(self, rng):
        csr = CSRMatrix.from_coo([], [], [], (4, 4))
        assert np.allclose(csr.matmat(rng.random((4, 2))), 0.0)

    def test_matmat_dim_mismatch(self, rng):
        csr = CSRMatrix.identity(3)
        with pytest.raises(ValueError):
            csr.matmat(rng.random((4, 2)))

    def test_transpose(self, rng):
        a = rng.random((5, 8)) * (rng.random((5, 8)) < 0.4)
        csr = CSRMatrix.from_dense(a)
        assert np.allclose(csr.transpose().to_dense(), a.T)

    def test_permute_symmetric(self, weighted_sym_dense, rng):
        csr = CSRMatrix.from_dense(weighted_sym_dense)
        order = rng.permutation(weighted_sym_dense.shape[0])
        out = csr.permute_symmetric(order)
        assert np.allclose(out.to_dense(), weighted_sym_dense[np.ix_(order, order)])

    def test_permute_symmetric_rect_rejected(self):
        csr = CSRMatrix.from_coo([0], [1], [1.0], (2, 3))
        with pytest.raises(ValueError):
            csr.permute_symmetric(np.arange(2))

    def test_is_symmetric(self, weighted_sym_dense):
        assert CSRMatrix.from_dense(weighted_sym_dense).is_symmetric(tol=1e-12)
        asym = weighted_sym_dense.copy()
        asym[0, 1] += 1.0
        assert not CSRMatrix.from_dense(asym).is_symmetric(tol=1e-12)


class TestStats:
    def test_row_nnz_and_density(self, weighted_sym_dense):
        csr = CSRMatrix.from_dense(weighted_sym_dense)
        assert np.array_equal(csr.row_nnz(), (weighted_sym_dense != 0).sum(axis=1))
        assert csr.density() == pytest.approx((weighted_sym_dense != 0).mean())

    def test_to_coo_roundtrip(self, weighted_sym_dense):
        csr = CSRMatrix.from_dense(weighted_sym_dense)
        r, c, d = csr.to_coo()
        back = CSRMatrix.from_coo(r, c, d, csr.shape)
        assert np.allclose(back.to_dense(), weighted_sym_dense)
