"""TC-GNN-style dense-tensor-core blocked format."""

import numpy as np
import pytest

from repro.sptc import CSRMatrix, TCGNNBlocked


@pytest.fixture
def sparse_case(rng):
    a = rng.random((70, 90)) * (rng.random((70, 90)) < 0.06)
    return a, CSRMatrix.from_dense(a)


class TestFormat:
    def test_roundtrip(self, sparse_case):
        a, csr = sparse_case
        blocked = TCGNNBlocked.from_csr(csr, tile=16)
        assert np.allclose(blocked.to_dense(), a)

    def test_roundtrip_small_tile(self, sparse_case):
        a, csr = sparse_case
        blocked = TCGNNBlocked.from_csr(csr, tile=8)
        assert np.allclose(blocked.to_dense(), a)

    def test_spmm_matches_dense(self, sparse_case, rng):
        a, csr = sparse_case
        blocked = TCGNNBlocked.from_csr(csr, tile=16)
        b = rng.random((90, 12))
        assert np.allclose(blocked.spmm(b), a @ b)

    def test_empty_matrix(self):
        csr = CSRMatrix.from_coo([], [], [], (32, 32))
        blocked = TCGNNBlocked.from_csr(csr)
        assert blocked.n_blocks == 0
        assert np.allclose(blocked.to_dense(), 0.0)
        assert np.allclose(blocked.spmm(np.ones((32, 3))), 0.0)

    def test_empty_window_handled(self, rng):
        a = np.zeros((48, 48))
        a[0, 0] = 1.0
        a[40, 5] = 2.0  # windows 1 (rows 16-31) empty
        blocked = TCGNNBlocked.from_csr(CSRMatrix.from_dense(a), tile=16)
        assert np.allclose(blocked.to_dense(), a)

    def test_dim_mismatch(self, sparse_case, rng):
        _, csr = sparse_case
        blocked = TCGNNBlocked.from_csr(csr)
        with pytest.raises(ValueError):
            blocked.spmm(rng.random((5, 2)))


class TestMemoryOverhead:
    @staticmethod
    def _csr_bytes(csr, value_bytes=2):
        # fp16 values + int32 column ids + int64 row pointers (same value
        # precision as the dense-tile format for a fair comparison).
        return csr.nnz * (value_bytes + 4) + (csr.shape[0] + 1) * 8

    def test_dense_tiles_cost_more_than_csr_on_scattered(self, rng):
        # The paper's related-work critique: scattered sparse matrices blow up
        # in dense-tile formats.
        n = 512
        a = np.zeros((n, n))
        idx = rng.choice(n * n, size=2000, replace=False)
        a.flat[idx] = 1.0
        csr = CSRMatrix.from_dense(a)
        blocked = TCGNNBlocked.from_csr(csr, tile=16)
        assert blocked.storage_bytes() > 4 * self._csr_bytes(csr)

    def test_overhead_grows_with_sparsity(self, rng):
        # Ultra-sparse scattered graphs pay "tens of times" more (paper §6).
        n = 2048
        a_rows = rng.integers(0, n, size=3000)
        a_cols = rng.integers(0, n, size=3000)
        csr = CSRMatrix.from_coo(a_rows, a_cols, np.ones(3000), (n, n))
        blocked = TCGNNBlocked.from_csr(csr, tile=16)
        assert blocked.storage_bytes() > 3.5 * self._csr_bytes(csr)
        # The "tens of times" figure is about stored value slots vs non-zeros.
        assert blocked.blocks.size > 15 * csr.nnz

    def test_stored_slots_at_least_nnz(self, sparse_case):
        _, csr = sparse_case
        blocked = TCGNNBlocked.from_csr(csr)
        assert blocked.blocks.size >= csr.nnz


class TestCostModel:
    def test_tcgnn_time_positive_and_h_monotone(self, sparse_case):
        from repro.sptc import CostModel

        _, csr = sparse_case
        blocked = TCGNNBlocked.from_csr(csr)
        cm = CostModel()
        t64 = cm.time_tcgnn_spmm(blocked, 64)
        t512 = cm.time_tcgnn_spmm(blocked, 512)
        assert 0 < t64 <= t512
