"""SDDMM kernels and preprocessed-artefact serialization."""

import numpy as np
import pytest

from repro.core import BitMatrix, Permutation, VNMPattern, reorder
from repro.sptc import CSRMatrix, HybridVNM
from repro.sptc.sddmm import csr_sddmm, venom_sddmm
from repro.sptc.serialize import load_preprocessed, save_preprocessed


@pytest.fixture(scope="module")
def case():
    rng = np.random.default_rng(8)
    n = 128
    mask = rng.random((n, n)) < 0.04
    mask |= mask.T
    np.fill_diagonal(mask, False)
    w = np.triu(rng.random((n, n)) + 0.1, 1) * np.triu(mask, 1)
    w = w + w.T
    res = reorder(BitMatrix.from_dense((w != 0).astype(np.uint8)), VNMPattern(1, 2, 4))
    wp = res.permutation.apply_to_matrix(w)
    venom = HybridVNM.compress_csr(CSRMatrix.from_dense(wp), VNMPattern(1, 2, 4)).main
    rng2 = np.random.default_rng(9)
    q = rng2.random((n, 16))
    k = rng2.random((n, 16))
    return wp, venom, q, k, res.permutation


class TestCsrSddmm:
    def test_matches_dense_masked_product(self, case):
        wp, _, q, k, _ = case
        csr = CSRMatrix.from_dense(wp)
        out = csr_sddmm(csr, q, k)
        dense_scores = (q @ k.T) * wp
        assert np.allclose(out.to_dense(), dense_scores)

    def test_pattern_preserved(self, case):
        wp, _, q, k, _ = case
        csr = CSRMatrix.from_dense(wp)
        out = csr_sddmm(csr, q, k)
        assert np.array_equal(out.indices, csr.indices)
        assert np.array_equal(out.indptr, csr.indptr)

    def test_shape_checks(self, case):
        wp, _, q, k, _ = case
        csr = CSRMatrix.from_dense(wp)
        with pytest.raises(ValueError):
            csr_sddmm(csr, q[:-1], k)
        with pytest.raises(ValueError):
            csr_sddmm(csr, q, k[:, :-1])


class TestVenomSddmm:
    def test_matches_csr_sddmm(self, case):
        wp, venom, q, k, _ = case
        out = venom_sddmm(venom, q, k)
        expect = (q @ k.T) * wp
        assert np.allclose(out.decompress(), expect)

    def test_structure_unchanged(self, case):
        _, venom, q, k, _ = case
        out = venom_sddmm(venom, q, k)
        assert np.array_equal(out.tile_ptr, venom.tile_ptr)
        assert np.array_equal(out.col_ids, venom.col_ids)
        assert np.array_equal(out.meta, venom.meta)
        assert out.n_live_cols == venom.n_live_cols

    def test_then_spmm_is_attention_like(self, case):
        # SDDMM scores followed by SpMM: the GAT-style aggregation pipeline.
        wp, venom, q, k, _ = case
        scored = venom_sddmm(venom, q, k)
        features = np.random.default_rng(10).random((wp.shape[1], 8))
        out = scored.spmm(features)
        expect = ((q @ k.T) * wp) @ features
        assert np.allclose(out, expect)

    def test_empty_operand(self):
        from repro.sptc import VNMCompressed

        empty = VNMCompressed.compress(np.zeros((8, 8)), VNMPattern(1, 2, 4))
        out = venom_sddmm(empty, np.ones((8, 4)), np.ones((8, 4)))
        assert out.n_tiles == 0

    def test_shape_checks(self, case):
        _, venom, q, k, _ = case
        with pytest.raises(ValueError):
            venom_sddmm(venom, q[:-2], k)


class TestSerialize:
    def test_roundtrip(self, case, tmp_path):
        _, venom, _, _, perm = case
        path = tmp_path / "prep.npz"
        save_preprocessed(path, operand=venom, permutation=perm)
        loaded, loaded_perm = load_preprocessed(path)
        assert np.allclose(loaded.decompress(), venom.decompress())
        assert loaded.pattern == venom.pattern
        assert loaded.n_live_cols == venom.n_live_cols
        assert loaded_perm == perm

    def test_roundtrip_without_permutation(self, case, tmp_path):
        _, venom, _, _, _ = case
        path = tmp_path / "prep.npz"
        save_preprocessed(path, operand=venom)
        loaded, loaded_perm = load_preprocessed(path)
        assert loaded_perm is None
        assert loaded.shape == venom.shape

    def test_spmm_after_load(self, case, tmp_path):
        wp, venom, _, _, _ = case
        path = tmp_path / "prep.npz"
        save_preprocessed(path, operand=venom)
        loaded, _ = load_preprocessed(path)
        b = np.random.default_rng(11).random((wp.shape[1], 5))
        assert np.allclose(loaded.spmm(b), wp @ b)

    def test_hybrid_roundtrip(self, case, tmp_path):
        wp, _, _, _, perm = case
        hybrid = HybridVNM.compress_csr(CSRMatrix.from_dense(wp), VNMPattern(1, 2, 4))
        path = tmp_path / "hybrid.npz"
        save_preprocessed(path, operand=hybrid, permutation=perm)
        loaded, loaded_perm = load_preprocessed(path)
        assert isinstance(loaded, HybridVNM)
        assert np.allclose(loaded.decompress(), hybrid.decompress())
        assert loaded.main.pattern == hybrid.main.pattern
        assert loaded_perm == perm
        b = np.random.default_rng(12).random((wp.shape[1], 4))
        assert np.array_equal(loaded.spmm(b), hybrid.spmm(b))

    def test_version_check(self, case, tmp_path):
        _, venom, _, _, _ = case
        path = tmp_path / "prep.npz"
        save_preprocessed(path, operand=venom)
        import numpy as np_mod

        with np_mod.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["format_version"] = np_mod.array([99])
        np_mod.savez_compressed(path, **arrays)
        with pytest.raises(ValueError):
            load_preprocessed(path)
