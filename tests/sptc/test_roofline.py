"""Roofline analysis layer."""

import numpy as np
import pytest

from repro.core import BitMatrix, VNMPattern, reorder
from repro.sptc import CSRMatrix, CostModel, HybridVNM
from repro.sptc.roofline import RooflinePoint, csr_roofline, roofline_series, venom_roofline


@pytest.fixture(scope="module")
def case():
    rng = np.random.default_rng(6)
    n = 256
    a = rng.random((n, n)) < 0.03
    a = (a | a.T).astype(np.uint8)
    np.fill_diagonal(a, 0)
    res = reorder(BitMatrix.from_dense(a), VNMPattern(1, 2, 4))
    csr = CSRMatrix.from_scipy(res.matrix.to_scipy())
    venom = HybridVNM.compress_csr(csr, VNMPattern(1, 2, 4)).main
    return csr, venom


class TestRooflinePoints:
    def test_csr_point_consistent_with_costmodel(self, case):
        csr, _ = case
        cm = CostModel()
        pt = csr_roofline(csr, 128, cm)
        from repro.sptc import SpmmWorkload

        assert pt.modelled_seconds == pytest.approx(
            cm.time_csr_spmm(SpmmWorkload.from_csr(csr, 128))
        )
        assert pt.flops == 2.0 * csr.nnz * 128

    def test_venom_point_consistent(self, case):
        _, venom = case
        cm = CostModel()
        pt = venom_roofline(venom, 128, cm)
        assert pt.modelled_seconds == pytest.approx(cm.time_venom_spmm(venom, 128))
        assert pt.flops == 2.0 * venom.values.size * 128

    def test_intensity_positive(self, case):
        csr, venom = case
        for pt in roofline_series(csr, venom):
            assert pt.arithmetic_intensity > 0
            assert pt.achieved_flops > 0

    def test_achieved_below_roofs(self, case):
        csr, venom = case
        cm = CostModel()
        for pt in roofline_series(csr, venom, model=cm):
            # Nothing exceeds min(peak, AI*BW) + launch slack.
            roof = min(
                cm.params.sptc_flops if pt.kernel == "venom" else cm.params.cuda_spmm_flops * 4,
                pt.arithmetic_intensity * cm.params.mem_bandwidth,
            )
            assert pt.achieved_flops <= roof * 1.01

    def test_bound_classification(self):
        pt_mem = RooflinePoint("x", 64, flops=1e6, bytes_moved=1e6, modelled_seconds=1e-5)
        assert pt_mem.bound() == "memory"  # AI = 1 << ridge
        pt_cmp = RooflinePoint("x", 64, flops=1e12, bytes_moved=1e3, modelled_seconds=1e-3)
        assert pt_cmp.bound() == "compute"

    def test_csr_achieves_less_than_venom_per_flop(self, case):
        # The core mechanism: CSR's effective throughput is crippled by
        # irregular access; SPTC streams structured tiles.
        csr, venom = case
        c = csr_roofline(csr, 256)
        v = venom_roofline(venom, 256)
        assert v.achieved_flops > c.achieved_flops

    def test_series_covers_both_kernels(self, case):
        csr, venom = case
        pts = roofline_series(csr, venom, hs=(64, 128))
        assert [p.kernel for p in pts] == ["csr", "venom", "csr", "venom"]
