"""Mixed-precision (fp16 multiply / fp32 accumulate) datapath emulation."""

import numpy as np
import pytest

from repro.core import BitMatrix, VNMPattern, reorder
from repro.sptc import CSRMatrix, HybridVNM
from repro.sptc.precision import (
    precision_report,
    quantize_fp16,
    venom_spmm_fp16,
)


@pytest.fixture(scope="module")
def case():
    rng = np.random.default_rng(3)
    n = 192
    mask = rng.random((n, n)) < 0.03
    mask |= mask.T
    np.fill_diagonal(mask, False)
    w = np.triu(rng.random((n, n)) * 2.0, 1) * np.triu(mask, 1)
    w = w + w.T
    res = reorder(BitMatrix.from_dense((w != 0).astype(np.uint8)), VNMPattern(1, 2, 4))
    wp = res.permutation.apply_to_matrix(w)
    venom = HybridVNM.compress_csr(CSRMatrix.from_dense(wp), VNMPattern(1, 2, 4)).main
    rng2 = np.random.default_rng(4)
    b = rng2.random((n, 32))
    return venom, b


class TestQuantize:
    def test_fp16_values_are_fixed_points(self):
        x = np.array([1.0, 0.5, 0.1, 3.14159])
        q = quantize_fp16(x)
        assert np.array_equal(q, quantize_fp16(q))  # idempotent

    def test_roundoff_bounded(self, rng):
        x = rng.random(1000)
        assert np.abs(quantize_fp16(x) - x).max() < 1e-3  # fp16 eps ~ 5e-4 at O(1)


class TestFp16Spmm:
    def test_close_to_exact(self, case):
        venom, b = case
        exact = venom.spmm(b)
        approx = venom_spmm_fp16(venom, b)
        assert np.allclose(approx, exact, rtol=5e-2, atol=1e-2)

    def test_not_bitwise_identical(self, case):
        venom, b = case
        exact = venom.spmm(b)
        approx = venom_spmm_fp16(venom, b)
        assert not np.array_equal(approx, exact)  # fp16 rounding is real

    def test_dim_mismatch(self, case):
        venom, _ = case
        with pytest.raises(ValueError):
            venom_spmm_fp16(venom, np.zeros((3, 2)))

    def test_empty_operand(self):
        from repro.sptc import VNMCompressed

        empty = VNMCompressed.compress(np.zeros((8, 8)), VNMPattern(1, 2, 4))
        out = venom_spmm_fp16(empty, np.ones((8, 4)))
        assert np.allclose(out, 0.0)


class TestReport:
    def test_within_fp16_expectations(self, case):
        venom, b = case
        rep = precision_report(venom, b)
        assert rep.within_fp16_expectations
        assert rep.max_abs_error > 0.0
        assert 0.0 <= rep.mean_row_scaled_error <= rep.max_row_scaled_error

    def test_gnn_predictions_survive_fp16(self, case):
        # The end-to-end question: does the fp16 aggregation change argmax
        # predictions?  For well-separated logits it must not.
        venom, b = case
        exact = venom.spmm(b)
        approx = venom_spmm_fp16(venom, b)
        agree = (exact.argmax(axis=1) == approx.argmax(axis=1)).mean()
        assert agree > 0.97
