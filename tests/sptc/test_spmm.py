"""SpMM kernel dispatch and cross-format agreement."""

import numpy as np
import pytest

from repro.core import BitMatrix, NMPattern, VNMPattern, reorder
from repro.sptc import (
    CSRMatrix,
    NMCompressed,
    VNMCompressed,
    csr_spmm,
    dense_spmm,
    nm_spmm,
    spmm,
    venom_spmm,
)


@pytest.fixture(scope="module")
def conforming_case():
    """A weighted symmetric matrix reordered to full 1:2:4 conformance."""
    rng = np.random.default_rng(11)
    n = 96
    mask = rng.random((n, n)) < 0.04
    mask |= mask.T
    np.fill_diagonal(mask, False)
    w = np.triu(rng.random((n, n)) + 0.01, 1) * np.triu(mask, 1)
    w = w + w.T
    res = reorder(BitMatrix.from_dense((w != 0).astype(np.uint8)), VNMPattern(1, 2, 4))
    assert res.conforms
    wp = res.permutation.apply_to_matrix(w)
    b = rng.random((n, 33))
    return wp, b


class TestAgreement:
    def test_all_formats_agree(self, conforming_case):
        wp, b = conforming_case
        ref = dense_spmm(wp, b)
        csr = CSRMatrix.from_dense(wp)
        nm = NMCompressed.compress(wp, NMPattern(2, 4))
        vn = VNMCompressed.compress(wp, VNMPattern(1, 2, 4))
        assert np.allclose(csr_spmm(csr, b), ref)
        assert np.allclose(nm_spmm(nm, b), ref)
        assert np.allclose(venom_spmm(vn, b), ref)

    def test_dispatch(self, conforming_case):
        wp, b = conforming_case
        ref = wp @ b
        assert np.allclose(spmm(CSRMatrix.from_dense(wp), b), ref)
        assert np.allclose(spmm(NMCompressed.compress(wp, NMPattern(2, 4)), b), ref)
        assert np.allclose(spmm(VNMCompressed.compress(wp, VNMPattern(1, 2, 4)), b), ref)
        assert np.allclose(spmm(wp, b), ref)

    def test_dispatch_rejects_unknown(self):
        with pytest.raises(TypeError):
            spmm("nope", np.zeros((2, 2)))
