"""BSR storage and the Listing-1 bit-string encoding."""

import numpy as np

from repro.core import BitMatrix
from repro.sptc import BSRMatrix, CSRMatrix


class TestBSR:
    def test_dense_roundtrip(self, weighted_sym_dense):
        bsr = BSRMatrix.from_dense(weighted_sym_dense, 4)
        assert np.allclose(bsr.to_dense(), weighted_sym_dense)

    def test_from_csr(self, weighted_sym_dense):
        csr = CSRMatrix.from_dense(weighted_sym_dense)
        bsr = BSRMatrix.from_csr(csr, 8)
        assert np.allclose(bsr.to_dense(), weighted_sym_dense)

    def test_only_nonzero_blocks_stored(self):
        a = np.zeros((8, 8))
        a[0, 0] = 1.0
        bsr = BSRMatrix.from_dense(a, 4)
        assert bsr.n_blocks == 1

    def test_padding_for_non_multiple_shape(self, rng):
        a = rng.random((10, 10)) * (rng.random((10, 10)) < 0.3)
        bsr = BSRMatrix.from_dense(a, 4)
        assert np.allclose(bsr.to_dense(), a)

    def test_block_lookup(self):
        a = np.zeros((8, 8))
        a[0, 4] = 1.0
        bsr = BSRMatrix.from_dense(a, 4)
        assert bsr.block_lookup(0, 1) >= 0
        assert bsr.block_lookup(0, 0) == -1
        assert bsr.block_lookup(1, 1) == -1


class TestListing1:
    def test_row_segment_bits_msb_first(self):
        a = np.zeros((4, 4))
        a[1, 0] = 5.0
        a[1, 3] = 7.0
        bsr = BSRMatrix.from_dense(a, 4)
        # MSB-first: bit for column 0 is the leftmost => 0b1001.
        assert bsr.row_segment_bits(1, 0) == 0b1001

    def test_missing_block_encodes_zero(self):
        a = np.zeros((8, 8))
        a[0, 0] = 1.0
        bsr = BSRMatrix.from_dense(a, 4)
        assert bsr.row_segment_bits(0, 1) == 0

    def test_all_segment_bits_consistent_with_scalar(self, weighted_sym_dense):
        bsr = BSRMatrix.from_dense(weighted_sym_dense, 8)
        allbits = bsr.all_segment_bits()
        for row in range(0, weighted_sym_dense.shape[0], 11):
            for seg in range(allbits.shape[1]):
                assert int(allbits[row, seg]) == bsr.row_segment_bits(row, seg)

    def test_bitstrings_match_bitmatrix_modulo_bit_order(self, weighted_sym_dense):
        # BSR encodes MSB-first (Listing 1's left shift), BitMatrix LSB-first.
        m = 8
        bsr = BSRMatrix.from_dense(weighted_sym_dense, m)
        bm = BitMatrix.from_dense((weighted_sym_dense != 0).astype(np.uint8))
        bits_bsr = bsr.all_segment_bits()
        bits_bm = bm.segment_values(m)

        def revbits(x: int) -> int:
            return int(f"{x:0{m}b}"[::-1], 2)

        for row in range(0, weighted_sym_dense.shape[0], 13):
            for seg in range(bits_bm.shape[1]):
                assert revbits(int(bits_bm[row, seg])) == int(bits_bsr[row, seg])
