"""V:N:M (VENOM) compressed format: dense and CSR compression paths."""

import numpy as np
import pytest

from repro.core import VNMPattern
from repro.sptc import CSRMatrix, VNMCompressed, VNMFormatError


def conforming_vnm_dense(n_rows, n_cols, pattern, rng, tile_fill=0.5):
    """Random matrix conforming to ``pattern`` by construction."""
    v, n, m, k = pattern.v, pattern.n, pattern.m, pattern.k
    a = np.zeros((n_rows, n_cols))
    for tr in range((n_rows + v - 1) // v):
        for ts in range((n_cols + m - 1) // m):
            if rng.random() >= tile_fill:
                continue
            width = min(m, n_cols - ts * m)
            if width <= 0:
                continue
            live = rng.choice(width, size=min(k, width, rng.integers(1, k + 1)), replace=False)
            for r in range(tr * v, min((tr + 1) * v, n_rows)):
                cnt = int(rng.integers(0, n + 1))
                if cnt:
                    pick = rng.choice(live, size=min(cnt, live.size), replace=False)
                    a[r, ts * m + pick] = rng.random(pick.size) + 0.1
    return a


PATTERNS = [VNMPattern(1, 2, 4), VNMPattern(4, 2, 8), VNMPattern(8, 2, 16), VNMPattern(16, 2, 16)]


class TestDenseCompress:
    @pytest.mark.parametrize("pat", PATTERNS, ids=str)
    def test_roundtrip(self, pat, rng):
        a = conforming_vnm_dense(64, 64, pat, rng)
        c = VNMCompressed.compress(a, pat)
        assert np.allclose(c.decompress(), a)

    def test_vertical_violation_rejected(self, rng):
        pat = VNMPattern(4, 2, 8)
        a = np.zeros((4, 8))
        a[0, [0, 1]] = 1.0
        a[1, [2, 3]] = 1.0
        a[2, [4]] = 1.0  # 5 live columns in the tile
        with pytest.raises(VNMFormatError, match="live columns"):
            VNMCompressed.compress(a, pat)

    def test_horizontal_violation_rejected(self, rng):
        pat = VNMPattern(4, 2, 8)
        a = np.zeros((4, 8))
        a[0, [0, 1, 2]] = 1.0
        with pytest.raises(VNMFormatError, match="row constraint"):
            VNMCompressed.compress(a, pat)

    def test_empty_tiles_skipped(self):
        pat = VNMPattern(4, 2, 8)
        a = np.zeros((8, 16))
        a[0, 0] = 1.0
        c = VNMCompressed.compress(a, pat)
        assert c.n_tiles == 1

    def test_empty_matrix(self):
        pat = VNMPattern(4, 2, 8)
        c = VNMCompressed.compress(np.zeros((8, 8)), pat)
        assert c.n_tiles == 0
        assert np.allclose(c.decompress(), 0.0)


class TestCsrCompress:
    @pytest.mark.parametrize("pat", PATTERNS, ids=str)
    def test_matches_dense_path(self, pat, rng):
        a = conforming_vnm_dense(64, 64, pat, rng)
        d = VNMCompressed.compress(a, pat)
        c = VNMCompressed.compress_csr(CSRMatrix.from_dense(a), pat)
        assert c.n_tiles == d.n_tiles
        assert np.allclose(c.decompress(), a)
        assert np.array_equal(c.tile_ptr, d.tile_ptr)
        assert np.array_equal(c.tile_seg, d.tile_seg)

    def test_empty_csr(self):
        pat = VNMPattern(2, 2, 4)
        c = VNMCompressed.compress_csr(CSRMatrix.from_coo([], [], [], (8, 8)), pat)
        assert c.n_tiles == 0

    def test_vertical_violation_rejected(self):
        pat = VNMPattern(4, 2, 8)
        a = np.zeros((4, 8))
        a[0, [0, 1]] = 1.0
        a[1, [2, 3]] = 1.0
        a[2, [4]] = 1.0
        with pytest.raises(VNMFormatError):
            VNMCompressed.compress_csr(CSRMatrix.from_dense(a), pat)

    def test_horizontal_violation_rejected(self):
        pat = VNMPattern(4, 2, 8)
        a = np.zeros((4, 8))
        a[0, [0, 1, 2]] = 1.0
        with pytest.raises(VNMFormatError):
            VNMCompressed.compress_csr(CSRMatrix.from_dense(a), pat)

    def test_non_multiple_shapes(self, rng):
        pat = VNMPattern(4, 2, 8)
        a = conforming_vnm_dense(13, 19, pat, rng)
        c = VNMCompressed.compress_csr(CSRMatrix.from_dense(a), pat)
        assert np.allclose(c.decompress(), a)


class TestSpmm:
    @pytest.mark.parametrize("pat", PATTERNS, ids=str)
    def test_matches_dense(self, pat, rng):
        a = conforming_vnm_dense(64, 64, pat, rng)
        c = VNMCompressed.compress(a, pat)
        b = rng.random((64, 13))
        assert np.allclose(c.spmm(b), a @ b)

    def test_csr_path_spmm(self, rng):
        pat = VNMPattern(4, 2, 8)
        a = conforming_vnm_dense(32, 40, pat, rng)
        c = VNMCompressed.compress_csr(CSRMatrix.from_dense(a), pat)
        b = rng.random((40, 7))
        assert np.allclose(c.spmm(b), a @ b)

    def test_dim_mismatch(self, rng):
        pat = VNMPattern(1, 2, 4)
        c = VNMCompressed.compress(np.zeros((8, 8)), pat)
        with pytest.raises(ValueError):
            c.spmm(rng.random((9, 2)))


class TestStorage:
    def test_storage_smaller_than_dense(self, rng):
        pat = VNMPattern(8, 2, 16)
        a = conforming_vnm_dense(128, 128, pat, rng, tile_fill=0.2)
        c = VNMCompressed.compress(a, pat)
        assert c.storage_bytes() < a.size * 2  # fp16 dense
