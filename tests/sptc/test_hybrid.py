"""Hybrid V:N:M + residual splitting (lossless SPTC path for any matrix)."""

import numpy as np
import pytest

from repro.core import VNMPattern
from repro.sptc import (
    CSRMatrix,
    HybridVNM,
    VNMCompressed,
    split_csr_to_pattern,
    split_to_pattern,
)


class TestSplitDense:
    def test_split_is_exact(self, weighted_sym_dense):
        pat = VNMPattern(4, 2, 8)
        con, res = split_to_pattern(weighted_sym_dense, pat)
        assert np.allclose(con + res, weighted_sym_dense)

    def test_conforming_part_compresses(self, weighted_sym_dense):
        pat = VNMPattern(4, 2, 8)
        con, _ = split_to_pattern(weighted_sym_dense, pat)
        VNMCompressed.compress(con, pat)  # must not raise

    def test_conforming_input_has_empty_residual(self):
        pat = VNMPattern(2, 2, 4)
        a = np.zeros((4, 8))
        a[0, 0] = a[1, 1] = 1.0
        con, res = split_to_pattern(a, pat)
        assert np.allclose(con, a)
        assert not res.any()

    def test_keeps_largest_magnitudes(self):
        pat = VNMPattern(1, 2, 4)
        a = np.array([[5.0, 4.0, 3.0, 0.0]])
        con, res = split_to_pattern(a, pat)
        assert con[0].tolist() == [5.0, 4.0, 0.0, 0.0]
        assert res[0].tolist() == [0.0, 0.0, 3.0, 0.0]


class TestSplitCsr:
    def test_matches_dense_split(self, weighted_sym_dense):
        pat = VNMPattern(4, 2, 8)
        con_d, res_d = split_to_pattern(weighted_sym_dense, pat)
        con_s, res_s = split_csr_to_pattern(CSRMatrix.from_dense(weighted_sym_dense), pat)
        # Tie-breaking may differ; the split must be exact and conforming.
        assert np.allclose(con_s.to_dense() + res_s.to_dense(), weighted_sym_dense)
        assert res_s.nnz == np.count_nonzero(res_d)
        VNMCompressed.compress(con_s.to_dense(), pat)

    def test_empty_input(self):
        pat = VNMPattern(2, 2, 4)
        con, res = split_csr_to_pattern(CSRMatrix.from_coo([], [], [], (8, 8)), pat)
        assert con.nnz == 0 and res.nnz == 0

    @pytest.mark.parametrize("pat", [VNMPattern(1, 2, 4), VNMPattern(8, 2, 16)], ids=str)
    def test_conforming_part_valid(self, weighted_sym_dense, pat):
        con, _ = split_csr_to_pattern(CSRMatrix.from_dense(weighted_sym_dense), pat)
        VNMCompressed.compress_csr(con, pat)  # must not raise


class TestHybridVNM:
    def test_lossless_roundtrip(self, weighted_sym_dense):
        pat = VNMPattern(4, 2, 8)
        hy = HybridVNM.compress(weighted_sym_dense, pat)
        assert np.allclose(hy.decompress(), weighted_sym_dense)

    def test_csr_path_lossless(self, weighted_sym_dense):
        pat = VNMPattern(4, 2, 8)
        hy = HybridVNM.compress_csr(CSRMatrix.from_dense(weighted_sym_dense), pat)
        assert np.allclose(hy.decompress(), weighted_sym_dense)

    def test_spmm_exact(self, weighted_sym_dense, rng):
        pat = VNMPattern(4, 2, 8)
        hy = HybridVNM.compress(weighted_sym_dense, pat)
        b = rng.random((weighted_sym_dense.shape[1], 11))
        assert np.allclose(hy.spmm(b), weighted_sym_dense @ b)

    def test_no_residual_for_conforming(self):
        pat = VNMPattern(2, 2, 4)
        a = np.zeros((4, 8))
        a[0, 1] = 2.0
        hy = HybridVNM.compress(a, pat)
        assert hy.residual is None
        assert hy.residual_nnz == 0
        assert hy.residual_fraction() == 0.0

    def test_model_time_includes_residual(self, weighted_sym_dense):
        from repro.sptc import CostModel

        pat = VNMPattern(4, 2, 8)
        cm = CostModel()
        hy = HybridVNM.compress(weighted_sym_dense, pat)
        t_with = hy.model_time(cm, 64)
        t_main_only = cm.time_venom_spmm(hy.main, 64)
        if hy.residual is not None:
            assert t_with > t_main_only
        else:
            assert t_with == t_main_only
