"""Shared N:M conformance scans (repro.sptc.conformance).

The helpers are consumed from two sites — the hybrid splitter's top-N
magnitude selection and the row segmenter's per-tile-row profile — so the
tests pin the predicates both rely on: the keep mask equals the dense
ranking, and ``conforming_tile_rows`` says exactly where whole-matrix
V:N:M compression would succeed.
"""

import numpy as np
import pytest

from repro.core import VNMPattern
from repro.sptc import CSRMatrix
from repro.sptc.conformance import (
    conforming_tile_rows,
    row_nm_violations,
    tile_row_vertical_violations,
    topn_keep_mask,
)
from repro.sptc.venom import VNMCompressed, VNMFormatError

VNM = VNMPattern(1, 2, 4)


def random_coo(n_rows, n_cols, rng, density=0.25):
    mask = rng.random((n_rows, n_cols)) < density
    dense = mask * (rng.random((n_rows, n_cols)) + 0.5)
    rows, cols = np.nonzero(dense)
    return dense, rows.astype(np.int64), cols.astype(np.int64), dense[rows, cols]


class TestTopnKeepMask:
    def test_keeps_top_n_per_row_segment(self):
        rng = np.random.default_rng(0)
        n_rows, n_cols, n, m = 32, 24, 2, 4
        n_segs = (n_cols + m - 1) // m
        dense, rows, cols, data = random_coo(n_rows, n_cols, rng)
        keep = topn_keep_mask(rows, cols, data, n=n, m=m, n_segs=n_segs)
        # every (row, segment) keeps at most n entries, and the kept ones
        # are magnitude-maximal within their segment
        for i in range(n_rows):
            for s in range(n_segs):
                sel = (rows == i) & (cols // m == s)
                kept_vals = np.abs(data[sel & keep])
                dropped_vals = np.abs(data[sel & ~keep])
                assert kept_vals.size <= n
                if dropped_vals.size:
                    assert kept_vals.size == n
                    assert kept_vals.min() >= dropped_vals.max()

    def test_respects_prior_keep_mask(self):
        rows = np.array([0, 0, 0, 0])
        cols = np.array([0, 1, 2, 3])
        data = np.array([9.0, 8.0, 2.0, 1.0])
        prior = np.array([False, True, True, True])
        keep = topn_keep_mask(rows, cols, data, n=2, m=4, n_segs=1, keep=prior)
        assert keep.tolist() == [False, True, True, False]


class TestViolationScans:
    def test_row_violations_count_overflow(self):
        a = np.zeros((4, 8))
        a[1, :4] = [1, 2, 3, 0]   # 3 nnz in one 2:4 segment: 1 overflow
        a[3, :8] = 1.0            # 4 nnz in each segment: 2 overflow each
        counts = row_nm_violations(CSRMatrix.from_dense(a), VNM)
        assert counts.tolist() == [0, 1, 0, 4]

    def test_vertical_violations(self):
        pat = VNMPattern(4, 2, 4, k=2)
        a = np.zeros((4, 4))
        a[0, 0] = a[1, 1] = a[2, 2] = 1.0  # 3 live columns > k=2
        assert tile_row_vertical_violations(CSRMatrix.from_dense(a), pat).tolist() == [1]
        a[2, 2] = 0.0
        assert tile_row_vertical_violations(CSRMatrix.from_dense(a), pat).tolist() == [0]

    def test_conforming_tile_rows_predicts_compressibility(self):
        rng = np.random.default_rng(7)
        dense, *_ = random_coo(40, 32, rng, density=0.2)
        csr = CSRMatrix.from_dense(dense)
        ok = conforming_tile_rows(csr, VNM)
        for t in range(40):
            band = CSRMatrix.from_dense(dense[t : t + 1])
            if ok[t]:
                VNMCompressed.compress_csr(band, VNM)  # must not raise
            else:
                with pytest.raises(VNMFormatError):
                    VNMCompressed.compress_csr(band, VNM)
