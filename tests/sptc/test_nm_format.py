"""N:M compressed format."""

import numpy as np
import pytest

from repro.core import NMPattern
from repro.sptc import NMCompressed, NMFormatError


def conforming_nm_dense(n_rows, n_cols, pattern, rng, fill=0.7):
    a = np.zeros((n_rows, n_cols))
    n_segs = n_cols // pattern.m
    for r in range(n_rows):
        for s in range(n_segs):
            if rng.random() < fill:
                cnt = rng.integers(1, pattern.n + 1)
                pos = rng.choice(pattern.m, size=cnt, replace=False)
                a[r, s * pattern.m + pos] = rng.random(cnt) + 0.1
    return a


class TestCompress:
    def test_roundtrip(self, rng):
        pat = NMPattern(2, 4)
        a = conforming_nm_dense(12, 32, pat, rng)
        c = NMCompressed.compress(a, pat)
        assert np.allclose(c.decompress(), a)

    def test_shapes(self, rng):
        pat = NMPattern(2, 8)
        a = conforming_nm_dense(6, 24, pat, rng)
        c = NMCompressed.compress(a, pat)
        assert c.values.shape == (6, 3 * 2)
        assert c.meta.shape == (6, 3 * 2)
        assert c.n_segs == 3

    def test_violation_rejected_with_location(self, rng):
        pat = NMPattern(2, 4)
        a = conforming_nm_dense(6, 16, pat, rng)
        a[3, 8:11] = 1.0
        with pytest.raises(NMFormatError, match="row 3"):
            NMCompressed.compress(a, pat)

    def test_padding_columns(self, rng):
        pat = NMPattern(2, 8)
        a = np.zeros((4, 10))
        a[0, 9] = 3.0
        c = NMCompressed.compress(a, pat)
        assert np.allclose(c.decompress(), a)

    def test_meta_positions_distinct_per_segment(self, rng):
        pat = NMPattern(2, 4)
        a = conforming_nm_dense(10, 16, pat, rng, fill=0.5)
        c = NMCompressed.compress(a, pat)
        meta = c.meta.reshape(10, -1, pat.n)
        for r in range(10):
            for s in range(meta.shape[1]):
                assert len(set(meta[r, s])) == pat.n


class TestSpmm:
    def test_matches_dense(self, rng):
        pat = NMPattern(2, 4)
        a = conforming_nm_dense(16, 32, pat, rng)
        c = NMCompressed.compress(a, pat)
        b = rng.random((32, 9))
        assert np.allclose(c.spmm(b), a @ b)

    def test_with_padding(self, rng):
        pat = NMPattern(2, 8)
        a = np.zeros((4, 11))
        a[1, 10] = 2.0
        a[2, 0] = 1.0
        c = NMCompressed.compress(a, pat)
        b = rng.random((11, 5))
        assert np.allclose(c.spmm(b), a @ b)

    def test_dim_mismatch(self, rng):
        pat = NMPattern(2, 4)
        a = conforming_nm_dense(4, 8, pat, rng)
        c = NMCompressed.compress(a, pat)
        with pytest.raises(ValueError):
            c.spmm(rng.random((9, 3)))


class TestStorage:
    def test_storage_bytes_halved_vs_dense_fp16(self, rng):
        # 2:4 stores half the values plus 2-bit metadata.
        pat = NMPattern(2, 4)
        a = conforming_nm_dense(16, 64, pat, rng)
        c = NMCompressed.compress(a, pat)
        dense_fp16 = a.size * 2
        assert c.storage_bytes() < dense_fp16 * 0.7
