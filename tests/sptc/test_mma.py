"""Functional mma.sp emulation."""

import numpy as np
import pytest

from repro.sptc import (
    MMA_M16N8K32,
    MmaShape,
    compress_tile_2to4,
    expand_tile_2to4,
    mma_sp,
)


def conforming_tile(rng, shape=MMA_M16N8K32):
    t = np.zeros((shape.m, shape.k))
    for i in range(shape.m):
        for g in range(shape.k // shape.sparsity_m):
            pos = rng.choice(shape.sparsity_m, size=shape.sparsity_n, replace=False)
            t[i, g * shape.sparsity_m + pos] = rng.random(shape.sparsity_n)
    return t


class TestShape:
    def test_default_shape(self):
        assert (MMA_M16N8K32.m, MMA_M16N8K32.n, MMA_M16N8K32.k) == (16, 8, 32)
        assert MMA_M16N8K32.packed_k == 16
        assert str(MMA_M16N8K32) == "m16n8k32"


class TestCompress:
    def test_roundtrip(self, rng):
        t = conforming_tile(rng)
        v, meta = compress_tile_2to4(t)
        assert v.shape == (16, 16)
        assert np.allclose(expand_tile_2to4(v, meta), t)

    def test_partial_groups_roundtrip(self, rng):
        t = conforming_tile(rng)
        t[3, 4:8] = 0.0  # a fully-empty group
        t[5, 0] = 0.0    # a one-non-zero group
        v, meta = compress_tile_2to4(t)
        assert np.allclose(expand_tile_2to4(v, meta), t)

    def test_violation_rejected(self, rng):
        t = conforming_tile(rng)
        t[0, 0:3] = 1.0
        with pytest.raises(ValueError):
            compress_tile_2to4(t)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            compress_tile_2to4(np.zeros((8, 32)))


class TestMmaSp:
    def test_matches_dense(self, rng):
        t = conforming_tile(rng)
        v, meta = compress_tile_2to4(t)
        b = rng.random((32, 8))
        assert np.allclose(mma_sp(v, meta, b), t @ b)

    def test_accumulates_into_c(self, rng):
        t = conforming_tile(rng)
        v, meta = compress_tile_2to4(t)
        b = rng.random((32, 8))
        c = rng.random((16, 8))
        assert np.allclose(mma_sp(v, meta, b, c), c + t @ b)

    def test_does_not_mutate_c(self, rng):
        t = conforming_tile(rng)
        v, meta = compress_tile_2to4(t)
        b = rng.random((32, 8))
        c = np.zeros((16, 8))
        mma_sp(v, meta, b, c)
        assert np.allclose(c, 0.0)

    def test_b_shape_checked(self, rng):
        t = conforming_tile(rng)
        v, meta = compress_tile_2to4(t)
        with pytest.raises(ValueError):
            mma_sp(v, meta, np.zeros((16, 8)))

    def test_operand_shape_checked(self, rng):
        with pytest.raises(ValueError):
            mma_sp(np.zeros((16, 8)), np.zeros((16, 8), dtype=np.uint8), np.zeros((32, 8)))

    def test_custom_shape(self, rng):
        shape = MmaShape(8, 4, 16)
        t = conforming_tile(rng, shape)
        v, meta = compress_tile_2to4(t, shape)
        b = rng.random((16, 4))
        assert np.allclose(mma_sp(v, meta, b, shape=shape), t @ b)
