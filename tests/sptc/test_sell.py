"""SELL-C-σ format."""

import numpy as np
import pytest

from repro.sptc import CSRMatrix
from repro.sptc.sell import SellCSigma


@pytest.fixture
def case(rng):
    a = rng.random((50, 60)) * (rng.random((50, 60)) < 0.1)
    return a, CSRMatrix.from_dense(a)


class TestConstruction:
    def test_roundtrip(self, case):
        a, csr = case
        sell = SellCSigma.from_csr(csr, c=8, sigma=16)
        assert np.allclose(sell.to_dense(), a)

    def test_roundtrip_various_c(self, case):
        a, csr = case
        for c, sigma in ((4, 4), (8, 32), (16, 16)):
            assert np.allclose(SellCSigma.from_csr(csr, c=c, sigma=sigma).to_dense(), a)

    def test_sigma_multiple_of_c(self, case):
        _, csr = case
        with pytest.raises(ValueError):
            SellCSigma.from_csr(csr, c=8, sigma=12)

    def test_row_order_is_permutation(self, case):
        _, csr = case
        sell = SellCSigma.from_csr(csr)
        assert sorted(sell.row_order.tolist()) == list(range(csr.shape[0]))

    def test_sorting_reduces_padding(self, rng):
        # A skewed matrix: sigma-window sorting should pad less than sigma=C.
        a = np.zeros((64, 64))
        for i in range(64):
            k = 1 if i % 8 else 30
            a[i, rng.choice(64, size=k, replace=False)] = 1.0
        csr = CSRMatrix.from_dense(a)
        unsorted = SellCSigma.from_csr(csr, c=8, sigma=8)
        sorted_ = SellCSigma.from_csr(csr, c=8, sigma=64)
        assert sorted_.padding_fraction() < unsorted.padding_fraction()

    def test_empty(self):
        sell = SellCSigma.from_csr(CSRMatrix.from_coo([], [], [], (16, 16)))
        assert sell.padded_entries == 0
        assert np.allclose(sell.to_dense(), 0.0)


class TestSpmm:
    def test_matches_dense(self, case, rng):
        a, csr = case
        sell = SellCSigma.from_csr(csr, c=8, sigma=16)
        b = rng.random((60, 9))
        assert np.allclose(sell.matmat(b), a @ b)

    def test_non_multiple_rows(self, rng):
        a = rng.random((13, 20)) * (rng.random((13, 20)) < 0.3)
        sell = SellCSigma.from_csr(CSRMatrix.from_dense(a), c=8, sigma=8)
        b = rng.random((20, 4))
        assert np.allclose(sell.matmat(b), a @ b)

    def test_dim_mismatch(self, case, rng):
        _, csr = case
        sell = SellCSigma.from_csr(csr)
        with pytest.raises(ValueError):
            sell.matmat(rng.random((7, 2)))


class TestStorage:
    def test_padding_fraction_bounds(self, case):
        _, csr = case
        sell = SellCSigma.from_csr(csr, c=8, sigma=32)
        assert 0.0 <= sell.padding_fraction() < 1.0

    def test_storage_at_least_nnz(self, case):
        _, csr = case
        sell = SellCSigma.from_csr(csr)
        assert sell.padded_entries >= csr.nnz
