"""Process-parallel batch reordering."""

import logging
from contextlib import contextmanager

import numpy as np
import pytest

from repro.core import BitMatrix, VNMPattern, reorder
from repro.parallel import ReorderSummary, default_workers, reorder_many
from repro.perf import WorkerPool, live_segments

PATTERN = VNMPattern(1, 2, 4)


@contextmanager
def _capture_warnings(logger_name):
    """Collect records on the named logger directly — immune to whatever
    handler/propagation setup other tests left on the ``repro`` root."""
    records = []
    handler = logging.Handler()
    handler.emit = records.append
    target = logging.getLogger(logger_name)
    old_level = target.level
    target.addHandler(handler)
    target.setLevel(logging.WARNING)
    try:
        yield records
    finally:
        target.removeHandler(handler)
        target.setLevel(old_level)


def batch(count=4, n=48, seed=0):
    out = []
    for i in range(count):
        rng = np.random.default_rng(seed + i)
        a = rng.random((n, n)) < 0.06
        a = (a | a.T).astype(np.uint8)
        np.fill_diagonal(a, 0)
        out.append(BitMatrix.from_dense(a))
    return out


class TestReorderMany:
    def test_inline_matches_direct(self):
        mats = batch(3)
        summaries = reorder_many(mats, PATTERN, n_workers=1)
        for bm, s in zip(mats, summaries):
            direct = reorder(bm, PATTERN)
            assert s.final_invalid_vectors == direct.final_invalid_vectors
            assert np.array_equal(s.order, direct.permutation.order)

    def test_parallel_matches_inline(self):
        mats = batch(4)
        inline = reorder_many(mats, PATTERN, n_workers=1)
        parallel = reorder_many(mats, PATTERN, n_workers=2)
        for a, b in zip(inline, parallel):
            assert a.final_invalid_vectors == b.final_invalid_vectors
            assert np.array_equal(a.order, b.order)

    def test_results_in_input_order(self):
        summaries = reorder_many(batch(5), PATTERN, n_workers=2)
        assert [s.index for s in summaries] == list(range(5))

    def test_summary_properties(self):
        (s,) = reorder_many(batch(1), PATTERN, n_workers=1)
        assert isinstance(s, ReorderSummary)
        assert 0.0 <= s.improvement_rate <= 1.0
        s.permutation.validate()
        assert s.pattern == "1:2:4"

    def test_kwargs_forwarded(self):
        (s,) = reorder_many(batch(1), PATTERN, n_workers=1, max_iter=0)
        assert s.iterations == 0

    def test_empty_batch(self):
        assert reorder_many([], PATTERN) == []

    def test_default_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.delenv("REPRO_WORKERS")
        assert default_workers() >= 1

    @pytest.mark.parametrize("bad", ["banana", "3.5", "-2", "0"])
    def test_default_workers_invalid_env_warns_and_falls_back(
        self, monkeypatch, bad
    ):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with _capture_warnings("repro.parallel") as records:
            workers = default_workers()
        assert workers >= 1  # fell back instead of raising
        assert any("REPRO_WORKERS" in r.getMessage() for r in records)

    def test_default_workers_empty_env_is_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "")
        with _capture_warnings("repro.parallel") as records:
            assert default_workers() >= 1
        assert not records  # empty means "not configured", no noise


class TestSharedMemoryTransport:
    def test_shm_matches_pickled_and_inline(self):
        mats = batch(4)
        inline = reorder_many(mats, PATTERN, n_workers=1)
        shm = reorder_many(mats, PATTERN, n_workers=2, use_shared_memory=True)
        pickled = reorder_many(mats, PATTERN, n_workers=2, use_shared_memory=False)
        for a, b, c in zip(inline, shm, pickled):
            assert np.array_equal(a.order, b.order)
            assert np.array_equal(a.order, c.order)
            assert a.final_invalid_vectors == b.final_invalid_vectors == (
                c.final_invalid_vectors)

    def test_no_segment_leaks_after_parallel_run(self):
        reorder_many(batch(4), PATTERN, n_workers=2, use_shared_memory=True)
        assert live_segments() == []

    def test_chunk_size_forwarded(self):
        mats = batch(5)
        chunked = reorder_many(mats, PATTERN, n_workers=2, chunk_size=2)
        inline = reorder_many(mats, PATTERN, n_workers=1)
        for a, b in zip(inline, chunked):
            assert np.array_equal(a.order, b.order)


class TestPersistentPool:
    def test_pool_reused_across_calls(self):
        with WorkerPool(2) as pool:
            first = reorder_many(batch(3, seed=0), PATTERN, pool=pool)
            second = reorder_many(batch(3, seed=9), PATTERN, pool=pool)
            assert len(first) == len(second) == 3
            assert pool.stats.spawns == 1  # one executor served both batches
        assert live_segments() == []

    def test_pool_results_match_inline(self):
        mats = batch(4)
        inline = reorder_many(mats, PATTERN, n_workers=1)
        with WorkerPool(2) as pool:
            pooled = reorder_many(mats, PATTERN, pool=pool)
        for a, b in zip(inline, pooled):
            assert np.array_equal(a.order, b.order)

    def test_caller_owned_pool_stays_open(self):
        pool = WorkerPool(2)
        try:
            reorder_many(batch(2), PATTERN, pool=pool)
            assert not pool._closed  # reorder_many must not close a borrowed pool
            pool.submit(len, [1, 2]).result()
        finally:
            pool.close()
