"""Process-parallel batch reordering."""

import numpy as np
import pytest

from repro.core import BitMatrix, VNMPattern, reorder
from repro.parallel import ReorderSummary, default_workers, reorder_many

PATTERN = VNMPattern(1, 2, 4)


def batch(count=4, n=48, seed=0):
    out = []
    for i in range(count):
        rng = np.random.default_rng(seed + i)
        a = rng.random((n, n)) < 0.06
        a = (a | a.T).astype(np.uint8)
        np.fill_diagonal(a, 0)
        out.append(BitMatrix.from_dense(a))
    return out


class TestReorderMany:
    def test_inline_matches_direct(self):
        mats = batch(3)
        summaries = reorder_many(mats, PATTERN, n_workers=1)
        for bm, s in zip(mats, summaries):
            direct = reorder(bm, PATTERN)
            assert s.final_invalid_vectors == direct.final_invalid_vectors
            assert np.array_equal(s.order, direct.permutation.order)

    def test_parallel_matches_inline(self):
        mats = batch(4)
        inline = reorder_many(mats, PATTERN, n_workers=1)
        parallel = reorder_many(mats, PATTERN, n_workers=2)
        for a, b in zip(inline, parallel):
            assert a.final_invalid_vectors == b.final_invalid_vectors
            assert np.array_equal(a.order, b.order)

    def test_results_in_input_order(self):
        summaries = reorder_many(batch(5), PATTERN, n_workers=2)
        assert [s.index for s in summaries] == list(range(5))

    def test_summary_properties(self):
        (s,) = reorder_many(batch(1), PATTERN, n_workers=1)
        assert isinstance(s, ReorderSummary)
        assert 0.0 <= s.improvement_rate <= 1.0
        s.permutation.validate()
        assert s.pattern == "1:2:4"

    def test_kwargs_forwarded(self):
        (s,) = reorder_many(batch(1), PATTERN, n_workers=1, max_iter=0)
        assert s.iterations == 0

    def test_empty_batch(self):
        assert reorder_many([], PATTERN) == []

    def test_default_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.delenv("REPRO_WORKERS")
        assert default_workers() >= 1
