"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BitMatrix
from repro.graphs import Graph, load_dataset, sbm_graph


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def random_symmetric_dense(n: int, density: float, rng: np.random.Generator) -> np.ndarray:
    """Random symmetric 0/1 matrix with an empty diagonal."""
    a = rng.random((n, n)) < density
    a = a | a.T
    np.fill_diagonal(a, False)
    return a.astype(np.uint8)


@pytest.fixture
def small_sym_dense(rng):
    return random_symmetric_dense(64, 0.06, rng)


@pytest.fixture
def small_sym_bitmatrix(small_sym_dense):
    return BitMatrix.from_dense(small_sym_dense)


@pytest.fixture
def weighted_sym_dense(rng):
    """Random symmetric weighted matrix (values in (0, 1], empty diagonal)."""
    mask = random_symmetric_dense(96, 0.05, rng)
    w = np.triu(rng.random((96, 96)) + 0.05, 1) * np.triu(mask, 1)
    return w + w.T


@pytest.fixture
def small_community_graph(rng) -> Graph:
    g, blocks = sbm_graph(120, 4, 0.25, 0.01, rng, name="test-sbm")
    g.labels = blocks.astype(np.int64)
    return g


@pytest.fixture(scope="session")
def cora_like() -> Graph:
    return load_dataset("cora", seed=7)
