"""End-to-end pipeline: dataset → reorder → compress → GNN on the device."""

import numpy as np
import pytest

from repro.core import VNMPattern, find_best_pattern
from repro.gnn import (
    SETTINGS,
    gnn_speedups,
    prepare_setting,
    reorder_for_graph,
    timed_forward,
)
from repro.graphs import load_dataset

PATTERN = VNMPattern(1, 2, 4)


@pytest.fixture(scope="module")
def ds():
    return load_dataset("citeseer", seed=0, scale=0.15)


@pytest.fixture(scope="module")
def prepared(ds):
    perm = reorder_for_graph(ds, PATTERN)
    return {s: prepare_setting(ds, s, PATTERN, permutation=perm) for s in SETTINGS}


class TestFullPipeline:
    def test_best_pattern_search_on_dataset(self, ds):
        out = find_best_pattern(ds.bitmatrix(), max_iter=4)
        assert out.succeeded  # real-ish sparse graphs reach at least 1:2:4

    @pytest.mark.parametrize("model_name", ["gcn", "sage", "cheb", "sgc"])
    def test_speedup_hierarchy(self, prepared, model_name):
        s = gnn_speedups(
            "pyg", model_name, prepared["default-original"], prepared["revised-reordered"], hidden=64
        )
        assert s["LYR"] > 1.0
        assert s["ALL"] >= 0.9  # end-to-end never collapses

    def test_sgc_gains_at_least_gcn(self, prepared):
        gcn = gnn_speedups("pyg", "gcn", prepared["default-original"], prepared["revised-reordered"], hidden=64)
        sgc = gnn_speedups("pyg", "sgc", prepared["default-original"], prepared["revised-reordered"], hidden=64)
        assert sgc["LYR"] >= gcn["LYR"] * 0.9

    def test_all_settings_produce_finite_logits(self, prepared):
        for setting, prep in prepared.items():
            t = timed_forward("dgl", "gcn", prep, hidden=32)
            assert np.isfinite(t.logits).all(), setting

    def test_reordered_logits_are_permuted_originals(self, prepared):
        base = timed_forward("pyg", "sage", prepared["default-original"], hidden=32, seed=1)
        reord = timed_forward("pyg", "sage", prepared["revised-reordered"], hidden=32, seed=1)
        perm = prepared["revised-reordered"].permutation
        assert np.allclose(reord.logits, base.logits[perm.order], atol=1e-8)

    def test_pruned_logits_differ(self, prepared):
        base = timed_forward("pyg", "gcn", prepared["default-original"], hidden=32, seed=1)
        pruned = timed_forward("pyg", "gcn", prepared["revised-pruned"], hidden=32, seed=1)
        if prepared["revised-pruned"].prune_ratio > 0:
            assert not np.allclose(pruned.logits, base.logits, atol=1e-8)
