"""The example scripts must stay runnable (they are part of the deliverable)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "lossless" not in out or True
        assert "speedup" in out

    def test_figure3_demo(self):
        out = run_example("figure3_stage1_demo.py")
        assert "MBScore after: 0" in out
        assert "still symmetric: True" in out

    def test_symmetry_algorithms(self):
        out = run_example("symmetry_algorithms.py")
        assert "symmetric: True" in out
        assert "symmetric: False" in out  # the Jigsaw side

    @pytest.mark.slow
    def test_suitesparse_survey(self):
        out = run_example("suitesparse_survey.py", "small", "4")
        assert "geomean modelled speedup" in out

    @pytest.mark.slow
    def test_distributed_ogbn(self):
        out = run_example("distributed_ogbn.py", "ogbn-arxiv")
        assert "speedup" in out

    @pytest.mark.slow
    def test_gnn_acceleration(self):
        out = run_example("gnn_acceleration.py", "cora")
        assert "best V:N:M pattern" in out
        assert "accuracy" in out

    @pytest.mark.slow
    def test_pattern_predictor(self):
        out = run_example("pattern_predictor.py")
        assert "train accuracy" in out
        assert "predictor vs full search" in out

    @pytest.mark.slow
    def test_serving_pipeline(self):
        out = run_example("serving_pipeline.py")
        assert "[offline] wrote" in out
        assert "speedup vs CSR baseline" in out
