"""Symmetry preservation enables symmetry-based graph algorithms (paper §1/§6).

The paper argues graph reordering (unlike Jigsaw's column reordering) keeps
the adjacency matrix symmetric, so spectral partitioning, MST, isomorphism
checks, etc. keep working.  These tests run such algorithms on the reordered
matrix and check the results are equivalent to the original's.
"""

import numpy as np
import pytest

from repro.baselines import jigsaw_column_reorder
from repro.core import NMPattern, VNMPattern, reorder
from repro.graphs import sbm_graph


@pytest.fixture(scope="module")
def case():
    rng = np.random.default_rng(5)
    g, blocks = sbm_graph(80, 2, 0.3, 0.01, rng)
    res = reorder(g.bitmatrix(), VNMPattern(1, 2, 4), max_iter=5)
    return g, blocks, res


class TestSymmetryPreservation:
    def test_reordered_matrix_symmetric(self, case):
        _, _, res = case
        assert res.matrix.is_symmetric()

    def test_jigsaw_breaks_symmetry_on_same_input(self, case):
        g, _, _ = case
        jr = jigsaw_column_reorder(g.bitmatrix(), NMPattern(2, 4))
        if not jr.column_permutation.is_identity():
            assert not jr.matrix.is_symmetric()


class TestSpectralPartitioning:
    def test_fiedler_partition_invariant(self, case):
        g, blocks, res = case
        perm = res.permutation

        def fiedler_sign(dense):
            deg = dense.sum(axis=1)
            lap = np.diag(deg) - dense
            vals, vecs = np.linalg.eigh(lap)
            return vecs[:, 1] >= 0

        base = fiedler_sign(g.bitmatrix().to_dense().astype(float))
        reord = fiedler_sign(res.matrix.to_dense().astype(float))
        # The reordered Fiedler partition is the permuted original (up to the
        # global sign of the eigenvector).
        mapped = base[perm.order]
        agreement = max((mapped == reord).mean(), (mapped == ~reord).mean())
        assert agreement > 0.95

    def test_partition_recovers_planted_blocks(self, case):
        g, blocks, res = case

        dense = res.matrix.to_dense().astype(float)
        deg = dense.sum(axis=1)
        lap = np.diag(deg) - dense
        _, vecs = np.linalg.eigh(lap)
        side = vecs[:, 1] >= 0
        blocks_reordered = blocks[res.permutation.order]
        agree = max(
            (side == (blocks_reordered == 0)).mean(),
            (side == (blocks_reordered == 1)).mean(),
        )
        assert agree > 0.9


class TestMinimumSpanningTree:
    def test_mst_weight_invariant(self, case):
        import networkx as nx

        g, _, res = case
        rng = np.random.default_rng(0)
        w = g.bitmatrix().to_dense().astype(float)
        weights = rng.random(w.shape)
        weights = (weights + weights.T) / 2
        w = w * weights
        wp = res.permutation.apply_to_matrix(w)

        def mst_weight(dense):
            gx = nx.Graph()
            rows, cols = np.nonzero(np.triu(dense))
            gx.add_weighted_edges_from(
                (int(r), int(c), float(dense[r, c])) for r, c in zip(rows, cols)
            )
            return sum(d["weight"] for _, _, d in nx.minimum_spanning_edges(gx, data=True))

        assert mst_weight(w) == pytest.approx(mst_weight(wp))


class TestIsomorphism:
    def test_reordered_graph_isomorphic_to_original(self, case):
        import networkx as nx

        g, _, res = case
        g1 = g.to_networkx()
        g2 = g.relabel(res.permutation).to_networkx()
        assert nx.is_isomorphic(g1, g2)

    def test_degree_sequence_invariant(self, case):
        g, _, res = case
        d1 = sorted(g.degrees().tolist())
        d2 = sorted(g.relabel(res.permutation).degrees().tolist())
        assert d1 == d2
