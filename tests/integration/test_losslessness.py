"""The paper's central claim: reordering is lossless, pruning is not (Table 5)."""

import numpy as np
import pytest

from repro.core import VNMPattern
from repro.gnn import evaluate, make_aggregator, train_node_classifier
from repro.gnn.training import aggregator_kind_for
from repro.graphs import load_dataset
from repro.prune import prune_graph
from repro.gnn.frameworks import reorder_for_graph

PATTERN = VNMPattern(1, 2, 4)


@pytest.fixture(scope="module")
def ds():
    # "computers" is dense (avg degree ~71), so the 1:2:4 pattern genuinely
    # requires pruning — the lossy-vs-lossless contrast the paper draws.
    return load_dataset("computers", seed=3, scale=0.08)


@pytest.fixture(scope="module")
def trained(ds):
    return {
        name: train_node_classifier(ds, name, epochs=25, seed=0)
        for name in ("gcn", "sage")
    }


class TestReorderLossless:
    @pytest.mark.parametrize("model_name", ["gcn", "sage"])
    def test_reordered_accuracy_identical(self, ds, trained, model_name):
        result = trained[model_name]
        perm = reorder_for_graph(ds, PATTERN)
        reordered = ds.relabel(perm)
        agg = make_aggregator(reordered, aggregator_kind_for(model_name))
        metrics = evaluate(result.model, reordered, agg)
        assert metrics["test"] == pytest.approx(result.test_accuracy, abs=1e-12)

    def test_predictions_exactly_permuted(self, ds, trained):
        model = trained["gcn"].model
        perm = reorder_for_graph(ds, PATTERN)
        reordered = ds.relabel(perm)
        base_logits = model.forward(ds.features, make_aggregator(ds, "gcn"))
        reord_logits = model.forward(reordered.features, make_aggregator(reordered, "gcn"))
        assert np.allclose(reord_logits, base_logits[perm.order], atol=1e-9)


class TestPruneLossy:
    @pytest.mark.parametrize("model_name", ["gcn", "sage"])
    def test_pruned_accuracy_not_higher(self, ds, trained, model_name):
        pruned, stats = prune_graph(ds, PATTERN)
        agg = make_aggregator(pruned, aggregator_kind_for(model_name))
        metrics = evaluate(trained[model_name].model, pruned, agg)
        # Pruning removes edges that carry label information; accuracy cannot
        # systematically beat the lossless evaluation.
        assert metrics["test"] <= trained[model_name].test_accuracy + 0.02
        assert stats.prune_ratio > 0.0

    def test_prune_changes_predictions(self, ds, trained):
        pruned, stats = prune_graph(ds, PATTERN)
        model = trained["gcn"].model
        base = model.forward(ds.features, make_aggregator(ds, "gcn"))
        after = model.forward(pruned.features, make_aggregator(pruned, "gcn"))
        if stats.prune_ratio > 0:
            assert not np.allclose(base, after, atol=1e-9)
